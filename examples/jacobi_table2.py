#!/usr/bin/env python3
"""Table 2 Jacobi row as a ``repro-racecheck``-able program file.

The dependence-driven future version of Jacobi at the ``table2`` scale
(64x64 interior, 16x16 tiles, 4 sweeps) — race-free by construction, and
the PR 8 acceptance workload for runtime parity:

    repro-racecheck examples/jacobi_table2.py                   # serial
    repro-racecheck examples/jacobi_table2.py --runtime threads --workers 2
    repro-racecheck examples/jacobi_table2.py --runtime threads --workers 4

All runs must print the same (empty) race set; the threaded runs execute
the tile tasks genuinely in parallel with online detection.
"""

from repro.workloads.jacobi import default_params, run_future

PARAMS = default_params("table2")


def setup(rt):
    return PARAMS


def program(rt, params=PARAMS):
    run_future(rt, params)


def main():
    from repro import ParallelRaceDetector, Runtime
    from repro.runtime import ThreadRuntime

    for label, make_rt in (
        ("serial", lambda d: Runtime(observers=[d])),
        ("threads-2", lambda d: ThreadRuntime(observers=[d], workers=2)),
    ):
        det = ParallelRaceDetector()
        make_rt(det).run(program)
        assert det.races == [], f"{label}: unexpected races {det.races}"
        print(f"{label}: {det.perf_stats['num_tasks']} tasks, "
              f"{det.perf_stats['num_accesses']} accesses, 0 races")
    print("runtime parity holds: Jacobi table2 is race-free everywhere")


if __name__ == "__main__":
    main()
