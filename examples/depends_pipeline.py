#!/usr/bin/env python3
"""OpenMP-style ``depends`` tasks on futures — the paper's Kastors recipe.

Section 5: the Jacobi/Strassen benchmarks "used the OpenMP 4.0 depends
clause … The translated versions used future as the main parallel
construct, with get() operations used to synchronize with previously data
dependent tasks."  This example shows the same translation on a
three-stage processing pipeline over a stream of items:

    load(i)  --out-->  raw[i]
    transform(i)       in: raw[i]      out: cooked[i]
    reduce(i)          in: cooked[i]   inout: total

Stage tasks for different items run logically in parallel; the ``inout``
accumulator serializes the reduce stage.  The detector confirms the
declared dependences cover every shared access, and the metrics show the
synchronization really is point-to-point (non-tree joins, no barriers).

Run:  python examples/depends_pipeline.py
"""

from repro import DeterminacyRaceDetector, Runtime, SharedArray, SharedVar
from repro.harness.metrics import MetricsCollector
from repro.runtime.depends import DependsTaskGroup

ITEMS = 6


def main() -> None:
    det = DeterminacyRaceDetector()
    metrics = MetricsCollector()
    rt = Runtime(observers=[det, metrics])

    raw = SharedArray(rt, "raw", ITEMS)
    cooked = SharedArray(rt, "cooked", ITEMS)
    total = SharedVar(rt, "total", 0)

    def program(rt):
        group = DependsTaskGroup(rt)
        for i in range(ITEMS):
            group.task(lambda i=i: raw.write(i, i * 10),
                       out=[("raw", i)], name=f"load[{i}]")
            group.task(lambda i=i: cooked.write(i, raw.read(i) + 1),
                       in_=[("raw", i)], out=[("cooked", i)],
                       name=f"transform[{i}]")
            group.task(lambda i=i: total.write(total.read() + cooked.read(i)),
                       in_=[("cooked", i)], inout=["total"],
                       name=f"reduce[{i}]")
        group.wait_all()
        return total.read()

    result = rt.run(program)
    expected = sum(i * 10 + 1 for i in range(ITEMS))
    assert result == expected, (result, expected)

    print(f"pipeline result: {result} (expected {expected})")
    print(det.report.summary())
    assert not det.report.has_races
    m = metrics.snapshot()
    print(f"tasks: {m.num_tasks}, point-to-point joins: {m.num_gets}, "
          f"of which non-tree (sibling) joins: {m.num_nt_joins}")
    print("no finish barrier was needed anywhere — this dependence graph")
    print("cannot be expressed with async-finish without losing parallelism")
    print("(the paper's motivation for future-aware race detection).")


if __name__ == "__main__":
    main()
