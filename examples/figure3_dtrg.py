#!/usr/bin/env python3
"""Figure 3 / Table 1: dynamic task reachability graph snapshots.

Reconstructs the paper's 7-task program and dumps the DTRG exactly as
Table 1 does — the disjoint-set partition D, the interval labels L, the
non-tree predecessor lists P, and the lowest significant ancestors A — at
the two snapshot points.

Run:  python examples/figure3_dtrg.py
"""

from repro.examples_lib.figure3 import run_figure3


def dump(title, snap):
    print(f"--- {title} ---")
    print("  disjoint sets D:",
          " | ".join("{" + ", ".join(sorted(g)) + "}"
                     for g in sorted(snap.partition, key=lambda g: sorted(g))))
    print("  non-tree preds P:",
          {k: list(v) for k, v in snap.nt_preds.items() if v} or "(none)")
    print("  LSA A:",
          {k: v for k, v in snap.lsa.items() if v is not None} or "(none)")
    pre = {k: v[0] for k, v in sorted(snap.labels.items())}
    print("  preorders:", pre)
    print()


def main() -> None:
    result = run_figure3()
    dump("Table 1(a): after T3's non-tree joins and spawns (step 11)",
         result.after_step_11)
    dump("Table 1(b): after all tree joins (step 17)",
         result.after_step_17)
    print("races:", result.detector.report.summary())


if __name__ == "__main__":
    main()
