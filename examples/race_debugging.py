#!/usr/bin/env python3
"""A realistic debugging session: a wavefront with a missing dependence.

Scenario: a tiled prefix-sum-style wavefront where the programmer forgot
the *vertical* dependence — tiles wait for their left neighbor but not the
one above.  The workflow shown:

1. run once under the detector *with race provenance* → races reported
   with task names and source call sites, plus a non-ordering witness
   per race explaining why PRECEDE answered false;
2. write the self-contained HTML report (the artifact you would attach
   to a bug ticket) — the same thing ``repro-racecheck --explain --html``
   produces;
3. extract two concrete schedules that produce different results for a
   racy cell (the executable witness of nondeterminism);
4. apply the fix (add the missing ``get``) → clean report, and the result
   now provably equals the serial elision on every schedule.

Run:  python examples/race_debugging.py
"""

import tempfile

from repro import DeterminacyRaceDetector, Runtime, SharedMatrix, SharedNDArray
from repro.graph import GraphBuilder, ReachabilityClosure
from repro.obs import RaceProvenance, render_html_report, render_witness_text
from repro.runtime.parallel import demonstrate_nondeterminism

import numpy as np

N_TILES = 3
TILE = 2
N = N_TILES * TILE


def wavefront(rt, grid, handles, *, wait_above: bool):
    """Tile (bi, bj) = max of its own inputs and the tiles left/above."""

    def tile_body(bi, bj):
        if bj > 0:
            handles.read(bi, bj - 1).get()
        if bi > 0 and wait_above:
            handles.read(bi - 1, bj).get()
        for i in range(bi * TILE, (bi + 1) * TILE):
            for j in range(bj * TILE, (bj + 1) * TILE):
                left = grid.read((i, j - 1)) if j > 0 else 0
                up = grid.read((i - 1, j)) if i > 0 else 0
                grid.write((i, j), grid.read((i, j)) + max(left, up))

    for bi in range(N_TILES):
        for bj in range(N_TILES):
            handles.write(bi, bj, rt.future(tile_body, bi, bj,
                                            name=f"tile({bi},{bj})"))
    for bi in range(N_TILES):
        for bj in range(N_TILES):
            handles.read(bi, bj).get()


def run(wait_above: bool, provenance=None):
    det = DeterminacyRaceDetector(provenance=provenance)
    gb = GraphBuilder()
    rt = Runtime(observers=[det, gb], provenance=provenance)
    grid = SharedNDArray(rt, "grid",
                         np.arange(N * N, dtype=np.int64).reshape(N, N))
    handles = SharedMatrix(rt, "handles", N_TILES, N_TILES)
    rt.run(lambda _rt: wavefront(rt, grid, handles, wait_above=wait_above))
    return det, gb.graph, grid


def main() -> None:
    print("=== step 1: run the buggy version with race provenance ===")
    prov = RaceProvenance()
    det, graph, _ = run(wait_above=False, provenance=prov)
    print(det.report.summary())  # each race now carries its call sites
    assert det.report.has_races
    assert all(r.prev_site and r.current_site for r in det.report)
    print("\nwhy the first pair is unordered (non-ordering certificate):")
    print(render_witness_text(det.witnesses[0]))

    print("\n=== step 2: write the shareable HTML report ===")
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".html", delete=False
    ) as fh:
        fh.write(render_html_report(
            program="examples/race_debugging.py (buggy wavefront)",
            report=det.report,
            witnesses=det.witnesses,
            provenance=prov,
        ))
        print(f"HTML race report written to {fh.name}")
        print("(repro-racecheck --explain --html report.html does the "
              "same for any program file)")

    print("\n=== step 3: turn one race into an executable witness ===")
    loc = sorted(det.racy_locations)[0]
    witness = demonstrate_nondeterminism(graph, loc,
                                         ReachabilityClosure(graph))
    assert witness is not None
    a, b = witness
    print(f"two legal schedules disagree on {loc}:")
    for diff in a.differs_from(b)[:3]:
        print("  -", diff)

    print("\n=== step 4: add the missing vertical get() and re-run ===")
    det, graph, grid = run(wait_above=True)
    print(det.report.summary())
    assert not det.report.has_races
    print("fixed wavefront result (race-free => deterministic):")
    print(grid.data)


if __name__ == "__main__":
    main()
