#!/usr/bin/env python3
"""Appendix A: the future-reference race that can deadlock.

Shows both renderings: the faithful one (the serial depth-first execution
hits a null future reference — the depth-first face of the deadlock) and
the defensive one (the program completes, and the detector pinpoints the
determinacy races on the shared reference cells that make the deadlock
possible).

Run:  python examples/appendix_deadlock.py
"""

from repro.examples_lib.appendix_deadlock import run_deadlock_example


def main() -> None:
    print("=== faithful execution (serial depth-first) ===")
    outcome = run_deadlock_example(defensive=False)
    print("NullFutureError:", outcome.null_future_error)

    print("\n=== defensive execution + race detection ===")
    outcome = run_deadlock_example(defensive=True)
    print(outcome.detector.report.summary())
    print("\nAppendix A's theorem in action: a deadlock in this model")
    print("requires a data race on a future reference — and both reference")
    print("cells ('a' and 'b') are reported racy.")


if __name__ == "__main__":
    main()
