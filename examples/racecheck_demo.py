#!/usr/bin/env python3
"""A small future-heavy program shaped for ``repro-racecheck``.

Unlike the other examples (self-contained scripts with their own
``main()``), this file exposes the ``setup(rt)`` / ``program(rt, state)``
surface the CLI loads, so it doubles as the repository's demo input:

    repro-racecheck examples/racecheck_demo.py \
        --perfetto trace.json --metrics-json metrics.json

The program is a tiny wavefront: a grid of futures where cell (i, j)
``get()``s its left and upper neighbours — every interior join is a
non-tree join, so the trace shows real PRECEDE searches (not just level-0
answers), and the last row's deliberate unsynchronized read produces one
read-write race for the report.  CI validates the emitted trace with
``python -m repro.obs.validate``.
"""

from repro import SharedArray

N = 4


def setup(rt):
    return SharedArray(rt, "grid", N * N)


def program(rt, grid):
    futures = {}

    def cell(i, j):
        left = futures.get((i, j - 1))
        up = futures.get((i - 1, j))
        acc = 1
        if left is not None:
            acc += left.get()
        if up is not None:
            acc += up.get()
        grid.write(i * N + j, acc)
        return acc

    with rt.finish():
        for i in range(N):
            for j in range(N):
                futures[(i, j)] = rt.future(cell, i, j, name=f"cell{i}{j}")
        # Deliberate race: read a cell without get()ing its producer.
        grid.read(0)
    return futures[(N - 1, N - 1)].get()


def main():
    """Run the CLI on this very file and check it catches the race."""
    import tempfile
    from pathlib import Path

    from repro.obs.validate import validate_chrome_trace
    from repro.tools.racecheck import main as racecheck

    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "trace.json"
        code = racecheck([__file__, "--perfetto", str(trace)])
        assert code == 1, "the planted race must be reported"
        import json

        assert validate_chrome_trace(json.loads(trace.read_text())) == []
    print("racecheck caught the planted race; trace schema valid")


if __name__ == "__main__":
    main()
