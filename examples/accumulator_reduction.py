#!/usr/bin/env python3
"""Fixing a racy reduction three ways.

The textbook parallel-search bug: every task increments one shared counter.
Under the serial depth-first execution the answer is even *correct* — which
is exactly why this bug survives testing — but the detector proves that a
parallel schedule can lose updates.  Three repairs, in increasing elegance:

1. per-task result slots + parent sums after the finish (the pattern the
   NQueens Table-2-style workload uses);
2. a future per subtree, values combined through get() (functional style);
3. an HJ-style Accumulator (race-free reduction as a runtime primitive).

Run:  python examples/accumulator_reduction.py
"""

import operator

from repro import DeterminacyRaceDetector, Runtime, SharedArray, SharedVar
from repro.runtime.accumulator import Accumulator

ITEMS = list(range(1, 17))   # reduce: sum of scores
SCORE = {i: i * i for i in ITEMS}


def racy(rt, det):
    counter = SharedVar(rt, "total", 0)

    def prog(rt):
        with rt.finish():
            for i in ITEMS:
                rt.async_(lambda i=i: counter.write(counter.read() + SCORE[i]))
        return counter.read()

    return rt.run(prog)


def slots(rt, det):
    partial = SharedArray(rt, "partial", len(ITEMS))

    def prog(rt):
        with rt.finish():
            for idx, i in enumerate(ITEMS):
                rt.async_(lambda idx=idx, i=i: partial.write(idx, SCORE[i]))
        return sum(partial.read(idx) for idx in range(len(ITEMS)))

    return rt.run(prog)


def futures(rt, det):
    def prog(rt):
        handles = [rt.future(lambda i=i: SCORE[i]) for i in ITEMS]
        return sum(h.get() for h in handles)

    return rt.run(prog)


def accumulator(rt, det):
    def prog(rt):
        with rt.finish() as scope:
            acc = Accumulator(rt, scope, op=operator.add, identity=0)
            for i in ITEMS:
                rt.async_(lambda i=i: acc.put(SCORE[i]))
        return acc.get()

    return rt.run(prog)


def main() -> None:
    expected = sum(SCORE.values())
    for name, variant in (("racy shared counter", racy),
                          ("per-task slots", slots),
                          ("futures (functional)", futures),
                          ("accumulator", accumulator)):
        det = DeterminacyRaceDetector()
        rt = Runtime(observers=[det])
        value = variant(rt, det)
        verdict = det.report.summary().splitlines()[0]
        print(f"{name:22s} -> value {value} (expected {expected}); {verdict}")
        assert value == expected  # DFS gets them all right...
    print("\nAll four give the right answer under the depth-first run; only")
    print("three of them give it under every schedule.  That gap is the")
    print("whole reason determinacy race detection exists.")


if __name__ == "__main__":
    main()
