#!/usr/bin/env python3
"""Figure 2 of the paper: the 12-step computation graph, exported as DOT.

Prints the graph in Graphviz DOT (pipe through `dot -Tpng` to render) and
verifies the caption's reachability claims.

Run:  python examples/figure2_computation_graph.py > figure2.dot
"""

import sys

from repro.examples_lib.figure2 import run_figure2, step_location
from repro.graph import GraphBuilder, ReachabilityClosure, to_dot


def main() -> None:
    gb = GraphBuilder()
    run_figure2([gb])
    graph = gb.graph
    closure = ReachabilityClosure(graph)

    def step_of(i):
        return graph.accesses_by_loc[step_location(i)][0].step

    print(to_dot(graph, title="Figure 2: computation graph with futures"))

    checks = [
        ("S2 does NOT precede S10",
         not closure.precedes(step_of(2), step_of(10))),
        ("S2 precedes S12", closure.precedes(step_of(2), step_of(12))),
    ]
    for label, ok in checks:
        print(f"// {'PASS' if ok else 'FAIL'}: {label}", file=sys.stderr)
        assert ok


if __name__ == "__main__":
    main()
