#!/usr/bin/env python3
"""Where the paper's detector stops being exact — and a detector that isn't.

The paper's precision guarantee quietly assumes future handles flow only
through the language (spawn arguments, future values, race-checked shared
memory).  This walkthrough builds the two minimal programs outside that
discipline (found by this repository's differential testing, DESIGN.md
deviation #4), runs the paper's DTRG detector, the beyond-paper exact
timestamped detector, and the ground-truth transitive closure on each, and
shows the disagreement — then shows that inside the discipline all three
agree, which is the regime the paper (correctly) claims.

Run:  python examples/exact_vs_dtrg.py
"""

from repro import DeterminacyRaceDetector, ExactDetector
from repro.baselines import BruteForceDetector
from repro.testing.generator import (
    Async,
    Future,
    Get,
    Program,
    Read,
    Write,
    run_program,
)

CASES = [
    (
        "prefix escape (task-level FALSE POSITIVE)",
        "async A { write x3; F = future{} };  F.get();  write x3",
        "main's get on F orders A's *prefix* (which wrote x3) before the\n"
        "   second write — no race.  Task-level PRECEDE(A, main) is false\n"
        "   because A's post-spawn suffix escaped the ordering.",
        Program(
            body=(
                Async(body=(Write(loc=3), Future(body=()))),
                Get(selector=0.9),
                Write(loc=3),
            ),
            num_locs=4,
        ),
    ),
    (
        "suffix escape (task-level FALSE NEGATIVE)",
        "async A { F = future{}; write x2 };  G = future { F.get(); read x2 }",
        "A's write happens *after* spawning F, so G's join on F does not\n"
        "   order it — the read races.  Task-level containment (A is an\n"
        "   ancestor of F) hides the racy suffix.",
        Program(
            body=(
                Async(body=(Future(body=()), Write(loc=2))),
                Future(body=(Get(selector=0.4), Read(loc=2))),
            ),
            num_locs=4,
        ),
    ),
]


def verdicts(program, scoped):
    dtrg = DeterminacyRaceDetector()
    exact = ExactDetector()
    oracle = BruteForceDetector()
    run_program(program, [dtrg, exact, oracle], scoped_handles=scoped)
    return dtrg.racy_locations, exact.racy_locations, set(oracle.racy_locations)


def main() -> None:
    print("OUT-OF-DISCIPLINE handle flows (the `get` uses a channel the")
    print("language cannot express — our generator's 'wild' mode):\n")
    for title, source, explanation, program in CASES:
        d, e, o = verdicts(program, scoped=False)
        print(f"* {title}")
        print(f"   {source}")
        print(f"   {explanation}")
        print(f"   ground truth: {sorted(o) or 'race-free'}")
        print(f"   DTRG (paper): {sorted(d) or 'race-free'}   <-- wrong here")
        print(f"   exact:        {sorted(e) or 'race-free'}   <-- matches\n")
        assert e == o and d != o

    print("INSIDE the discipline these programs are not expressible, and on")
    print("everything that is, all three detectors agree (property-tested on")
    print("thousands of programs) — the paper's Theorem 2, with its implicit")
    print("scope made explicit.  The price of not needing the assumption:")
    print("the exact detector is ~4x slower on future-heavy traces")
    print("(benchmarks/bench_detector_comparison.py).")


if __name__ == "__main__":
    main()
