#!/usr/bin/env python3
"""Futures vs barriers: the parallelism the paper says barriers lose.

Records the computation graphs of the Jacobi stencil in both renderings —
barrier-per-sweep async-finish and dependence-driven futures — and
simulates them on 1..32 workers with both a greedy scheduler and a
randomized work-stealing scheduler (the execution model of the Habanero
runtime the paper builds on).

Run:  python examples/speedup_simulation.py
"""

from repro.graph import GraphBuilder
from repro.runtime.runtime import Runtime
from repro.runtime.workstealing import (
    WorkStealingSimulator,
    greedy_schedule,
)
from repro.workloads import jacobi


def record(entry, params):
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    rt.run(lambda r: entry(r, params))
    return gb.graph


def main() -> None:
    params = jacobi.default_params("small")
    graphs = {
        "async-finish (barrier/sweep)": record(jacobi.run_af, params),
        "futures (point-to-point)": record(jacobi.run_future, params),
    }
    print(f"Jacobi {params.interior}x{params.interior}, "
          f"{params.tiles_per_side}x{params.tiles_per_side} tiles, "
          f"{params.sweeps} sweeps\n")
    for name, graph in graphs.items():
        s1 = greedy_schedule(graph, 1)
        print(f"{name}:")
        print(f"  work T1 = {s1.work}, span Tinf = {s1.span}, "
              f"parallelism T1/Tinf = {s1.work / s1.span:.2f}")
        row = []
        for p in (1, 2, 4, 8, 16, 32):
            stats = greedy_schedule(graph, p)
            row.append(f"p={p}: {stats.speedup:.2f}x")
        print("  greedy speedups:       ", ",  ".join(row))
        row = []
        for p in (1, 2, 4, 8, 16, 32):
            stats = WorkStealingSimulator(graph, p, seed=1).run()
            row.append(f"p={p}: {stats.speedup:.2f}x")
        print("  work-stealing speedups:", ",  ".join(row))
        print()
    af = greedy_schedule(graphs["async-finish (barrier/sweep)"], 16)
    fut = greedy_schedule(graphs["futures (point-to-point)"], 16)
    print("at 16 workers the dependence-driven version is "
          f"{af.makespan / fut.makespan:.2f}x faster than the barrier "
          "version —")
    print('the paper\'s "cannot be represented using only async-finish')
    print('constructs without loss of parallelism" (Section 5), quantified.')


if __name__ == "__main__":
    main()
