#!/usr/bin/env python3
"""A deliberately long check, built for watching the live telemetry plane.

Repeated recursive divide-and-conquer sweeps over one shared array: each
leaf task reads and rewrites only its own cell range, sweeps are separated
by ``finish`` barriers, so the program is race-free by construction — the
interesting output is not the (empty) race set but the run itself.  The
recursion spawns from *inside* worker tasks, so a threaded run populates
worker deques and produces real steals (unlike the Jacobi example, whose
tiles are all injected from the caller thread), and every cell access goes
through the striped shadow locks — the two counter families the telemetry
acceptance check watches.

Watch it live (README "Watching a long run")::

    repro-racecheck examples/longrun_demo.py --serve-metrics 9464 \
        --heartbeat 2 &
    curl -s localhost:9464/metrics | grep repro_detector_accesses
    curl -s localhost:9464/snapshot | python -m json.tool

or threaded, to see steal and stripe-lock counters move::

    repro-racecheck examples/longrun_demo.py --runtime threads \
        --workers 2 --serve-metrics 9464
"""

from repro.memory.shared import SharedArray

SIZE = 32768      #: shared cells per sweep
CUTOFF = 256      #: leaf range width (128 leaves per sweep)
SWEEPS = 12       #: finish-separated passes over the array

_MASK = 0x7FFFFFFF


def _step(value: int, i: int) -> int:
    return (value * 1103515245 + 12345 + i) & _MASK


def setup(rt):
    return None


def program(rt, params=None):
    cells = SharedArray(rt, "cells", SIZE)

    def sweep(lo: int, hi: int) -> None:
        if hi - lo <= CUTOFF:
            for i in range(lo, hi):
                value = cells.read(i)
                cells.write(i, _step(0 if value is None else value, i))
            return
        mid = (lo + hi) // 2
        with rt.finish():
            rt.async_(sweep, lo, mid, name=f"sweep[{lo}:{mid}]")
            rt.async_(sweep, mid, hi, name=f"sweep[{mid}:{hi}]")

    for _ in range(SWEEPS):
        with rt.finish():
            rt.async_(sweep, 0, SIZE, name="sweep-root")

    # Self-check: every cell is its index pushed through SWEEPS steps.
    for i in (0, SIZE // 2, SIZE - 1):
        expected = 0
        for _ in range(SWEEPS):
            expected = _step(expected, i)
        got = cells.read(i)
        assert got == expected, (i, got, expected)


def main():
    from repro import Runtime

    rt = Runtime()
    rt.run(program)
    print(f"longrun demo: {SWEEPS} sweeps over {SIZE} cells verified")


if __name__ == "__main__":
    main()
