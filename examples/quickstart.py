#!/usr/bin/env python3
"""Quickstart: find a determinacy race, fix it with a future, verify.

Run:  python examples/quickstart.py
"""

from repro import DeterminacyRaceDetector, Runtime, SharedArray


def racy_version() -> DeterminacyRaceDetector:
    """A producer future that nobody joins before the read — a race."""
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    data = SharedArray(rt, "data", [0])

    def program(rt):
        rt.future(lambda: data.write(0, 42), name="producer")
        # BUG: no get() before reading what the producer wrote.
        return data.read(0)

    rt.run(program)
    return det


def fixed_version() -> DeterminacyRaceDetector:
    """Joining the future with get() inserts the missing happens-before."""
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    data = SharedArray(rt, "data", [0])

    def program(rt):
        f = rt.future(lambda: data.write(0, 42), name="producer")
        f.get()  # point-to-point join: producer's write now precedes us
        return data.read(0)

    value = rt.run(program)
    assert value == 42
    return det


def main() -> None:
    print("=== racy version ===")
    det = racy_version()
    print(det.report.summary())
    assert det.report.has_races

    print("\n=== fixed version ===")
    det = fixed_version()
    print(det.report.summary())
    assert not det.report.has_races

    print("\nThe detector runs on a serial depth-first execution and is")
    print("sound AND precise: one run decides race-freedom for this input")
    print("across ALL parallel schedules (Theorem 2).")


if __name__ == "__main__":
    main()
