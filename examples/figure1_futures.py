#!/usr/bin/env python3
"""Figure 1 of the paper: futures with transitive join dependences.

Builds the example program, records its computation graph, and prints the
ordering facts the paper states (which statements run parallel to task
T_A, which are ordered after it, and the transitive dependence that orders
Stmt10 after T_B without a direct join).

Run:  python examples/figure1_futures.py
"""

from repro import DeterminacyRaceDetector
from repro.examples_lib.figure1 import run_figure1, statement_location
from repro.graph import GraphBuilder, ReachabilityClosure


def main() -> None:
    gb = GraphBuilder()
    det = DeterminacyRaceDetector()
    result = run_figure1([gb, det])
    graph = gb.graph
    closure = ReachabilityClosure(graph)

    def step_of(name):
        return graph.accesses_by_loc[statement_location(name)][0].step

    a_last = graph.last_step[result.a_tid]
    print("Relation of each statement to task T_A:")
    for stmt in ("Stmt3", "Stmt6", "Stmt8", "Stmt4", "Stmt7", "Stmt9"):
        s = step_of(stmt)
        if closure.precedes(a_last, s):
            rel = "ordered after T_A (via a join on A)"
        else:
            rel = "logically parallel with T_A"
        print(f"  {stmt:>6}: {rel}")

    s10 = step_of("Stmt10")
    print("\nStmt10 is ordered after:")
    for name, tid in (("T_A", result.a_tid), ("T_B", result.b_tid),
                      ("T_C", result.c_tid)):
        assert closure.precedes(graph.last_step[tid], s10)
        print(f"  {name} (main joined only C; B is ordered transitively)")

    print("\nDetector verdict:", det.report.summary())


if __name__ == "__main__":
    main()
