"""Shim for offline legacy editable installs (no wheel package available).

Optionally compiles the detector's flat-array hot path with mypyc::

    REPRO_BUILD_FAST=1 pip install -e '.[fast]'

The ``[fast]`` extra pulls in mypy (which ships mypyc); the env flag opts
the *build* in, because a compiled hot path is a correctness liability
unless it is gated — CI's ``fast-build`` leg runs the full tier-1 suite
plus the differential fuzzer against the compiled modules, whose
contract is bit-identical race lists, ``RaceReport.summary()`` text and
invariant ``DetectorPerf`` counters versus the pure-Python reference
(``tests/properties/test_array_equivalence.py``).

Without the flag — or when mypyc is unavailable — the build is
pure-Python and nothing changes; the compiled extension, when present,
transparently shadows ``repro/core/array_dtrg.py`` and
``repro/core/fastcheck.py`` at import time.
"""
import os

from setuptools import setup

_FAST_MODULES = [
    "src/repro/core/array_dtrg.py",
    "src/repro/core/fastcheck.py",
]

ext_modules = []
if os.environ.get("REPRO_BUILD_FAST") == "1":
    try:
        from mypyc.build import mypycify
    except ImportError:
        print(
            "warning: REPRO_BUILD_FAST=1 but mypyc is unavailable "
            "(pip install '.[fast]'); building pure-Python"
        )
    else:
        ext_modules = mypycify(_FAST_MODULES, opt_level="3")

setup(ext_modules=ext_modules)
