"""Table 2 rows *Crypt-af* and *Crypt-future*.

The paper's access-dominated rows: 7.77x / 8.26x slowdowns driven by the
lowest work-per-access ratio in the suite, with the future variant slightly
slower due to handle traffic and the fuller shadow reader sets.
"""

import pytest

from repro.workloads import crypt_idea
from repro.workloads.common import run_instrumented


@pytest.fixture(scope="module")
def params(scale):
    return crypt_idea.default_params(scale)


def test_seq(benchmark, params):
    result = benchmark(crypt_idea.serial, params)
    assert result.roundtrip == result.plaintext


def test_af_instrumented(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: crypt_idea.run_af(rt, params), detect=False
        )
    )
    assert run.metrics.num_nt_joins == 0


def test_af_racedet(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: crypt_idea.run_af(rt, params), detect=True
        )
    )
    assert not run.races
    assert 0.0 <= run.avg_readers <= 1.0


def test_future_instrumented(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: crypt_idea.run_future(rt, params), detect=False
        )
    )
    assert run.metrics.num_nt_joins == 0


def test_future_racedet(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: crypt_idea.run_future(rt, params), detect=True
        )
    )
    assert not run.races
