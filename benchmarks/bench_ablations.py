"""Ablations of the DTRG design choices DESIGN.md calls out.

Each variant runs the full detector over the identical recorded event
stream of the Smith-Waterman wavefront (the most non-tree-join-dense
workload), isolating the cost/benefit of:

* the LSA shortcut vs walking every spawn-tree ancestor;
* query memoization vs path-guarded re-exploration;
* O(1) interval containment vs parent-pointer chasing;
* the epoch-versioned PRECEDE cache vs recomputing every backward search.

All variants must report identical verdicts (the property suite proves
this on random programs; the assertion re-checks it here).
"""

import pytest

from repro.core.detector import DeterminacyRaceDetector
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.runtime.runtime import Runtime
from repro.workloads import smith_waterman as sw

VARIANTS = [
    ("full", {}),
    ("no-lsa", {"use_lsa": False}),
    ("no-memoization", {"memoize_visit": False}),
    ("no-intervals", {"use_intervals": False}),
    ("no-precede-cache", {"cache_precede": False}),
    ("naive", {"use_lsa": False, "memoize_visit": False, "use_intervals": False,
               "cache_precede": False}),
]


@pytest.fixture(scope="module")
def sw_trace(scale):
    params = sw.default_params(scale)
    recorder = TraceRecorder()
    rt = Runtime(observers=[recorder])
    rt.run(lambda r: sw.run_future(r, params))
    return recorder.trace


@pytest.mark.parametrize("name,options", VARIANTS, ids=[n for n, _ in VARIANTS])
def test_ablation(benchmark, sw_trace, name, options):
    def run():
        det = DeterminacyRaceDetector(**options)
        replay_trace(sw_trace, [det])
        return det

    det = benchmark(run)
    assert not det.report.has_races


def test_variants_agree_on_query_counts(sw_trace):
    """The LSA shortcut must not change answers, only visit counts."""
    full = DeterminacyRaceDetector()
    replay_trace(sw_trace, [full])
    no_lsa = DeterminacyRaceDetector(use_lsa=False)
    replay_trace(sw_trace, [no_lsa])
    assert full.racy_locations == no_lsa.racy_locations
    assert full.dtrg.num_precede_queries == no_lsa.dtrg.num_precede_queries
