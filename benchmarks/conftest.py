"""Shared fixtures for the benchmark suites.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``tiny`` / ``small`` /
``table2`` (default ``tiny`` so ``pytest benchmarks/ --benchmark-only``
finishes in a couple of minutes; use ``small`` or ``table2`` for the
numbers archived in EXPERIMENTS.md).
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    if value not in ("tiny", "small", "table2"):
        raise ValueError(f"bad REPRO_BENCH_SCALE {value!r}")
    return value
