"""Theorem 1's query-cost shape, micro-benchmarked.

Per shared-memory access, the detector issues up to ``(#readers + 1)``
PRECEDE calls, and each call visits at most the non-tree edges reachable
backwards (``O((n+1) * alpha)``).  We time PRECEDE directly on synthetic
DTRGs sweeping the two cost drivers:

* chain length of non-tree joins the query must traverse;
* number of stored future readers a write-check loops over.
"""

import pytest

from repro.core.reachability import DynamicTaskReachabilityGraph

CHAIN_LENGTHS = [4, 16, 64, 256]


def build_nt_chain(n):
    """main spawns F0..Fn; each F(i+1) joined F(i) -> a non-tree chain.

    ``precede(F0, Fn)`` must walk the whole chain; ``precede(Fn, F0)`` is
    pruned immediately by the preorder check.
    """
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    prev = None
    for i in range(n + 1):
        name = f"F{i}"
        g.add_task("main", name, is_future=True, name=name)
        if prev is not None:
            g.record_join(name, prev)
        g.on_terminate(name)
        prev = name
    return g


@pytest.mark.parametrize("n", CHAIN_LENGTHS)
def test_precede_walks_nt_chain(benchmark, n):
    g = build_nt_chain(n)
    src, dst = "F0", f"F{n}"
    assert g.precede(src, dst)

    benchmark(g.precede, src, dst)


@pytest.mark.parametrize("n", CHAIN_LENGTHS)
def test_precede_pruned_is_constant_time(benchmark, n):
    """The reverse query fails the preorder prune on the first visit — the
    fast path that keeps structured programs SP-bags-cheap."""
    g = build_nt_chain(n)
    src, dst = f"F{n}", "F0"
    assert not g.precede(src, dst)
    before = g.num_visits
    g.precede(src, dst)
    # level-0 preorder prune: no set is ever expanded, so the expansion
    # counter does not move at all.
    assert g.num_visits - before == 0

    benchmark(g.precede, src, dst)


@pytest.mark.parametrize("n", CHAIN_LENGTHS)
def test_memoization_bounds_visits(n):
    """With memoization every set is expanded at most once per query even
    on an adversarial all-pairs join pattern."""
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    names = []
    for i in range(min(n, 64)):
        name = f"T{i}"
        g.add_task("main", name, is_future=True, name=name)
        for earlier in names:
            g.record_join(name, earlier)  # joins *every* predecessor
        g.on_terminate(name)
        names.append(name)
    before = g.num_visits
    g.precede(names[0], names[-1])
    # each of the k sets is visited at most once (+1 for the initial call)
    assert g.num_visits - before <= len(names) + 1


@pytest.mark.parametrize("num_tasks", [64, 256])
def test_tree_join_merge_cost(benchmark, num_tasks):
    """Structured joins are near-free: one union-find merge each."""

    def run():
        g = DynamicTaskReachabilityGraph()
        g.add_root("main")
        for i in range(num_tasks):
            name = f"T{i}"
            g.add_task("main", name, is_future=True, name=name)
            g.on_terminate(name)
            g.record_join("main", name)
        return g

    g = benchmark(run)
    assert g.num_tree_merges == num_tasks
