"""Table 2 rows *Series-af* and *Series-future*.

Regenerates the paper's measurement protocol for the Series benchmark:
``Seq`` (serial elision), an instrumented-no-detector middle bar, and
``Racedet``.  The paper's headline for these rows is a 1.00x slowdown —
integration work dwarfs the handful of shared accesses per task.
"""

import pytest

from repro.workloads import series
from repro.workloads.common import run_instrumented


@pytest.fixture(scope="module")
def params(scale):
    return series.default_params(scale)


def test_seq(benchmark, params):
    result = benchmark(series.serial, params)
    assert len(result) == params.n


def test_af_instrumented(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(lambda rt: series.run_af(rt, params), detect=False)
    )
    assert run.metrics.num_nt_joins == 0


def test_af_racedet(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(lambda rt: series.run_af(rt, params), detect=True)
    )
    assert not run.races
    assert 0.0 <= run.avg_readers <= 1.0  # async-finish bound


def test_future_instrumented(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: series.run_future(rt, params), detect=False
        )
    )
    # af does 2 coefficient writes per task (2n); the future variant adds
    # the paper's delta of 2 accesses per task (handle write + read).
    assert run.metrics.num_shared_accesses == 2 * params.n + 2 * params.n


def test_future_racedet(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: series.run_future(rt, params), detect=True
        )
    )
    assert not run.races
    assert run.metrics.num_nt_joins == 0
