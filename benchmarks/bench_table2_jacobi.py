"""Table 2 row *Jacobi* (plus the async-finish rendering for comparison).

The dependence-driven future version carries the suite's largest non-tree
join count per task; the paper measures 8.05x and notes the slowdown is
dominated by #SharedMem, not by the non-tree edges ("usually only
requiring 1-2 hops").
"""

import pytest

from repro.workloads import jacobi
from repro.workloads.common import run_instrumented


@pytest.fixture(scope="module")
def params(scale):
    return jacobi.default_params(scale)


def test_seq(benchmark, params):
    benchmark(jacobi.serial, params)


def test_future_instrumented(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: jacobi.run_future(rt, params), detect=False
        )
    )
    assert run.metrics.num_nt_joins > 0


def test_future_racedet(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: jacobi.run_future(rt, params), detect=True
        )
    )
    assert not run.races


def test_af_racedet_for_comparison(benchmark, params):
    """The barrier-per-sweep version: zero non-tree joins, same accesses."""
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: jacobi.run_af(rt, params), detect=True
        )
    )
    assert not run.races
    assert run.metrics.num_nt_joins == 0
