"""Cold vs. cached PRECEDE throughput and end-to-end detector speedup.

Three measurements of the epoch-versioned PRECEDE cache
(``repro.core.precede_cache``), runnable standalone (no pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_precede_cache.py [--quick]

1. **Query micro-benchmark** — the same backward-search-heavy query issued
   repeatedly against a non-tree-join chain DTRG, with the cache off
   (every call pays the search) and on (first call pays, the rest hit).
2. **End-to-end replay** — the recorded event streams of the two
   access-dominated Table 2 workloads with futures (Smith-Waterman,
   Jacobi) replayed into the full detector with ``cache_precede`` off/on.
   Verifies ``#AvgReaders`` and the race report are bit-identical (Table 2
   parity) and reports the speedup.
3. **Random programs** — the ``testing/generator`` corpus replayed both
   ways; verdicts must match per location.

``--quick`` shrinks scales/repeats for CI smoke runs; parity violations
always exit non-zero, and ``--require-speedup X`` additionally fails the
run unless some end-to-end workload reaches an ``X``× speedup.
"""

from __future__ import annotations

import argparse
import gc
import random
import sys
import time

from repro.core.detector import DeterminacyRaceDetector
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.runtime.runtime import Runtime
from repro.testing.generator import random_program, run_program
from repro.workloads import jacobi, smith_waterman


def _timed(fn) -> float:
    """Wall time of ``fn()`` with the cyclic GC parked.

    The off/on sides run back-to-back in one process, so whichever side
    happens to trip a generational collection pays for *all* garbage
    accumulated so far — at ms scales that swamps the effect being
    measured.  Collect up front, then keep the collector off while timing.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


# ---------------------------------------------------------------------- #
# 1. Query throughput: cold vs cached                                    #
# ---------------------------------------------------------------------- #
def build_nt_chain(n: int, *, cache_precede: bool) -> DynamicTaskReachabilityGraph:
    """main spawns F0..Fn; each F(i+1) joins F(i) — a non-tree chain whose
    ``precede(F0, Fn)`` query walks the whole chain when cold."""
    g = DynamicTaskReachabilityGraph(cache_precede=cache_precede)
    g.add_root("main")
    prev = None
    for i in range(n + 1):
        name = f"F{i}"
        g.add_task("main", name, is_future=True, name=name)
        if prev is not None:
            g.record_join(name, prev)
        g.on_terminate(name)
        prev = name
    return g


def bench_query_throughput(chain: int, queries: int) -> None:
    rates = {}
    for cached in (False, True):
        g = build_nt_chain(chain, cache_precede=cached)
        src, dst = "F0", f"F{chain}"
        assert g.precede(src, dst)  # warm: resolves roots / fills cache

        def burst(g=g, src=src, dst=dst):
            for _ in range(queries):
                g.precede(src, dst)

        elapsed = _timed(burst)
        rates[cached] = queries / elapsed if elapsed else float("inf")
    print(f"  chain={chain:>4}  cold {rates[False]:>12,.0f} q/s   "
          f"cached {rates[True]:>12,.0f} q/s   "
          f"({rates[True] / rates[False]:.1f}x)")


# ---------------------------------------------------------------------- #
# 2. End-to-end detector replay on Table 2 workloads                     #
# ---------------------------------------------------------------------- #
def record_workload_trace(module, scale: str):
    params = module.default_params(scale)
    recorder = TraceRecorder()
    rt = Runtime(observers=[recorder])
    rt.run(lambda r: module.run_future(r, params))
    return recorder.trace


def bench_workload(name: str, trace, repeats: int) -> float:
    """Replay ``trace`` cache off/on; return the on/off speedup."""
    results = {}
    for cached in (False, True):
        best = float("inf")
        det = None
        for _ in range(repeats):
            det = DeterminacyRaceDetector(cache_precede=cached)
            best = min(best, _timed(lambda d=det: replay_trace(trace, [d])))
        results[cached] = (best, det)
    (off_s, det_off), (on_s, det_on) = results[False], results[True]
    # Table 2 parity: the caching layer must not move the paper's columns.
    if det_on.shadow.avg_readers != det_off.shadow.avg_readers:
        raise SystemExit(
            f"{name}: #AvgReaders moved with cache on "
            f"({det_off.shadow.avg_readers} -> {det_on.shadow.avg_readers})"
        )
    if det_on.racy_locations != det_off.racy_locations or len(
        det_on.races
    ) != len(det_off.races):
        raise SystemExit(f"{name}: race report moved with cache on")
    stats = det_on.perf_stats
    speedup = off_s / on_s if on_s else float("inf")
    print(f"  {name:<16} events={len(trace):>8,}  "
          f"off={off_s * 1e3:>8.1f}ms  on={on_s * 1e3:>8.1f}ms  "
          f"speedup={speedup:.2f}x  "
          f"hit-rate={stats['cache_hit_rate']:.2f}  "
          f"#AvgReaders={det_on.shadow.avg_readers:.2f}")
    return speedup


# ---------------------------------------------------------------------- #
# 3. Generated random programs                                           #
# ---------------------------------------------------------------------- #
def bench_random_programs(num_programs: int, seed0: int = 0) -> None:
    traces = []
    for seed in range(seed0, seed0 + num_programs):
        program = random_program(random.Random(seed))
        recorder = TraceRecorder()
        run_program(program, [recorder])
        traces.append(recorder.trace)
    totals = {}
    verdicts = {}
    for cached in (False, True):
        locs = []

        def corpus(cached=cached, locs=locs):
            for trace in traces:
                det = DeterminacyRaceDetector(cache_precede=cached)
                replay_trace(trace, [det])
                locs.append(frozenset(det.racy_locations))

        best = float("inf")
        for _ in range(2):  # best-of-2: first pass also warms allocator
            del locs[:]
            best = min(best, _timed(corpus))
        totals[cached] = best
        verdicts[cached] = locs
    if verdicts[False] != verdicts[True]:
        raise SystemExit("random programs: verdicts moved with cache on")
    events = sum(len(t) for t in traces)
    print(f"  {num_programs} programs ({events:,} events): "
          f"off={totals[False] * 1e3:.1f}ms on={totals[True] * 1e3:.1f}ms "
          f"({totals[False] / totals[True]:.2f}x), verdicts identical")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: tiny scales, few repeats")
    parser.add_argument("--scale", default=None,
                        choices=("tiny", "small", "table2"),
                        help="workload scale (default: small, or tiny "
                             "with --quick)")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X", help="exit non-zero unless some "
                        "workload reaches an X-times speedup")
    args = parser.parse_args(argv)
    scale = args.scale or ("tiny" if args.quick else "small")
    repeats = args.repeats or (1 if args.quick else 3)

    print("PRECEDE query throughput (same query, cold vs cached):")
    for chain in ((16, 64) if args.quick else (16, 64, 256)):
        bench_query_throughput(chain, 2_000 if args.quick else 20_000)

    print(f"\nEnd-to-end detector replay (scale={scale}, "
          f"best of {repeats}):")
    speedups = []
    for name, module in (("Smith-Waterman", smith_waterman),
                         ("Jacobi", jacobi)):
        trace = record_workload_trace(module, scale)
        speedups.append(bench_workload(name, trace, repeats))

    print("\nGenerated random programs (replayed off/on):")
    bench_random_programs(30 if args.quick else 200)

    if args.require_speedup is not None:
        best = max(speedups)
        if best < args.require_speedup:
            print(f"FAIL: best end-to-end speedup {best:.2f}x < "
                  f"required {args.require_speedup}x", file=sys.stderr)
            return 1
        print(f"\nOK: best end-to-end speedup {best:.2f}x >= "
              f"{args.require_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
