"""Observability overhead: disabled tracing must cost (close to) nothing.

The :mod:`repro.obs` layer is wired through the hottest code in the
repository — ``precede``, the shadow-memory checks, every runtime
boundary.  Its design promise is the null-object protocol: with ``obs``
unset (or :data:`~repro.obs.NULL_OBSERVABILITY`) no hook point installs
anything, so the executed bytecode is the pre-observability code path.
This benchmark holds the layer to that promise on the Jacobi workload
(the future-heavy stencil whose detection run is access-dominated),
runnable standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]

Three configurations, same workload, min-of-N wall time:

1. **baseline** — detector run exactly as before this layer existed;
2. **null**     — ``obs=NULL_OBSERVABILITY`` threaded through runtime and
   detector (must be within ``--max-overhead`` of baseline, default 5%);
3. **enabled**  — full metrics + ring tracer (reported for context, not
   asserted: tracing is allowed to cost what it costs).

The run also asserts the Table-2 structural columns are bit-identical
across all three configurations — instrumentation must observe, never
perturb.  Exit status 1 on either violation.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.obs import NULL_OBSERVABILITY, MetricsRegistry, Observability, RingTracer
from repro.workloads import jacobi
from repro.workloads.common import run_instrumented


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


def _run(params, obs):
    return run_instrumented(
        lambda rt: jacobi.run_future(rt, params), detect=True, obs=obs
    )


def _structure(run) -> tuple:
    m = run.metrics
    return (
        m.num_tasks,
        m.num_nt_joins,
        m.num_shared_accesses,
        run.detector.dtrg.num_precede_queries,
        run.detector.dtrg.num_visits,
        round(run.avg_readers, 12),
        len(run.races),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny scale, fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed fractional slowdown of the "
                             "disabled-obs run vs baseline (default 0.05)")
    args = parser.parse_args(argv)

    scale = "tiny" if args.quick else "small"
    repeats = args.repeats or (3 if args.quick else 5)
    params = jacobi.default_params(scale)

    def best(obs_factory) -> tuple:
        best_wall, structure = float("inf"), None
        for _ in range(repeats):
            holder = {}
            wall = _timed(lambda: holder.update(run=_run(params, obs_factory())))
            best_wall = min(best_wall, wall)
            structure = _structure(holder["run"])
        return best_wall, structure

    base_wall, base_struct = best(lambda: None)
    null_wall, null_struct = best(lambda: NULL_OBSERVABILITY)
    on_wall, on_struct = best(
        lambda: Observability(tracer=RingTracer(), registry=MetricsRegistry())
    )

    overhead = (null_wall - base_wall) / base_wall if base_wall else 0.0
    enabled_x = on_wall / base_wall if base_wall else 0.0
    print(f"jacobi scale={scale} repeats={repeats}")
    print(f"  baseline (no obs):        {base_wall * 1e3:9.1f} ms")
    print(f"  NULL_OBSERVABILITY:       {null_wall * 1e3:9.1f} ms "
          f"({overhead:+.1%} vs baseline)")
    print(f"  enabled (trace+metrics):  {on_wall * 1e3:9.1f} ms "
          f"({enabled_x:.2f}x baseline)")

    ok = True
    if not (base_struct == null_struct == on_struct):
        print("FAIL: structural columns differ across obs configurations:"
              f"\n  baseline {base_struct}\n  null     {null_struct}"
              f"\n  enabled  {on_struct}")
        ok = False
    if overhead > args.max_overhead:
        print(f"FAIL: disabled-obs overhead {overhead:.1%} exceeds "
              f"{args.max_overhead:.0%}")
        ok = False
    if ok:
        print(f"PASS: disabled path within {args.max_overhead:.0%}, "
              "structure bit-identical")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
