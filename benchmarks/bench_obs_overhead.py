"""Observability overhead: disabled tracing must cost (close to) nothing.

The :mod:`repro.obs` layer is wired through the hottest code in the
repository — ``precede``, the shadow-memory checks, every runtime
boundary.  Its design promise is the null-object protocol: with ``obs``
unset (or :data:`~repro.obs.NULL_OBSERVABILITY`) no hook point installs
anything, so the executed bytecode is the pre-observability code path.
This benchmark holds the layer to that promise on the Jacobi workload
(the future-heavy stencil whose detection run is access-dominated),
runnable standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]

Four configurations, same workload, min-of-N wall time:

1. **baseline** — detector run exactly as before this layer existed;
2. **null**     — ``obs=NULL_OBSERVABILITY`` threaded through runtime and
   detector (must be within ``--max-overhead`` of baseline, default 5%);
3. **enabled**  — full metrics + ring tracer (reported for context, not
   asserted: tracing is allowed to cost what it costs);
4. **live**     — the PR 9 telemetry plane at its worst: a 250 ms
   :class:`~repro.obs.live.RuntimeSampler` with the detector attached as
   a source, the HTTP exporter bound to an ephemeral port, and an
   in-process client scraping ``/metrics`` every 250 ms, all running
   *while the detector executes* (also gated at ``--max-overhead`` vs
   baseline — the sampler reads counters the hot path already maintains,
   so serving metrics must not slow the run it observes).

The run also asserts the Table-2 structural columns are bit-identical
across all four configurations — instrumentation must observe, never
perturb.  Exit status 1 on any violation.
"""

from __future__ import annotations

import argparse
import gc
import sys
import threading
import time
import urllib.request

from repro.obs import NULL_OBSERVABILITY, MetricsRegistry, Observability, RingTracer
from repro.workloads import jacobi
from repro.workloads.common import run_instrumented


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


def _run(params, obs):
    return run_instrumented(
        lambda rt: jacobi.run_future(rt, params), detect=True, obs=obs
    )


def _structure(run, detector=None) -> tuple:
    det = detector if detector is not None else run.detector
    m = run.metrics
    return (
        m.num_tasks,
        m.num_nt_joins,
        m.num_shared_accesses,
        det.dtrg.num_precede_queries,
        det.dtrg.num_visits,
        round(det.shadow.avg_readers, 12),
        len(det.races),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny scale, fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed fractional slowdown of the "
                             "disabled-obs run vs baseline (default 0.05)")
    args = parser.parse_args(argv)

    scale = "tiny" if args.quick else "small"
    repeats = args.repeats or (3 if args.quick else 5)
    params = jacobi.default_params(scale)

    def best(obs_factory) -> tuple:
        best_wall, structure = float("inf"), None
        for _ in range(repeats):
            holder = {}
            wall = _timed(lambda: holder.update(run=_run(params, obs_factory())))
            best_wall = min(best_wall, wall)
            structure = _structure(holder["run"])
        return best_wall, structure

    def best_live() -> tuple:
        """The served configuration: a live sampler + HTTP exporter +
        250 ms self-scraper all running while the detection run executes.
        The detector is pre-built so the sampler can watch it mid-run;
        passing it through ``extra_observers`` with ``detect=False``
        produces the exact observer list ``detect=True`` builds."""
        from repro.core.detector import DeterminacyRaceDetector
        from repro.obs.live import LiveTelemetry, detector_source

        best_wall, structure, scrapes = float("inf"), None, 0
        holder = {}
        telemetry = LiveTelemetry(port=0, interval=0.25)
        telemetry.add_source(
            lambda: detector_source(holder["detector"])()
            if "detector" in holder else {}
        )
        telemetry.start()
        stop = threading.Event()

        def scrape_loop():
            nonlocal scrapes
            url = f"{telemetry.url}/metrics"
            while True:
                try:
                    with urllib.request.urlopen(url, timeout=2.0) as resp:
                        resp.read()
                    scrapes += 1
                except OSError:
                    pass
                if stop.wait(0.25):
                    return

        scraper = threading.Thread(target=scrape_loop, daemon=True)
        scraper.start()
        try:
            for _ in range(repeats):
                detector = DeterminacyRaceDetector()
                holder["detector"] = detector
                run_holder = {}
                wall = _timed(lambda: run_holder.update(
                    run=run_instrumented(
                        lambda rt: jacobi.run_future(rt, params),
                        detect=False, extra_observers=(detector,),
                    )
                ))
                best_wall = min(best_wall, wall)
                structure = _structure(run_holder["run"], detector)
        finally:
            stop.set()
            scraper.join(timeout=2.0)
            telemetry.stop()
        return best_wall, structure, scrapes

    base_wall, base_struct = best(lambda: None)
    null_wall, null_struct = best(lambda: NULL_OBSERVABILITY)
    on_wall, on_struct = best(
        lambda: Observability(tracer=RingTracer(), registry=MetricsRegistry())
    )
    live_wall, live_struct, live_scrapes = best_live()

    overhead = (null_wall - base_wall) / base_wall if base_wall else 0.0
    live_overhead = (live_wall - base_wall) / base_wall if base_wall else 0.0
    enabled_x = on_wall / base_wall if base_wall else 0.0
    print(f"jacobi scale={scale} repeats={repeats}")
    print(f"  baseline (no obs):        {base_wall * 1e3:9.1f} ms")
    print(f"  NULL_OBSERVABILITY:       {null_wall * 1e3:9.1f} ms "
          f"({overhead:+.1%} vs baseline)")
    print(f"  enabled (trace+metrics):  {on_wall * 1e3:9.1f} ms "
          f"({enabled_x:.2f}x baseline)")
    print(f"  live (sampler+exporter):  {live_wall * 1e3:9.1f} ms "
          f"({live_overhead:+.1%} vs baseline, "
          f"{live_scrapes} scrape(s))")

    # The gate is relative, but on sub-10ms legs (--quick) a few percent
    # is below scheduler jitter on a loaded box — allow 1 ms of absolute
    # slack so the smoke run measures the code, not the timer.
    slack = max(args.max_overhead * base_wall, 1e-3)

    ok = True
    if not (base_struct == null_struct == on_struct == live_struct):
        print("FAIL: structural columns differ across obs configurations:"
              f"\n  baseline {base_struct}\n  null     {null_struct}"
              f"\n  enabled  {on_struct}\n  live     {live_struct}")
        ok = False
    if null_wall - base_wall > slack:
        print(f"FAIL: disabled-obs overhead {overhead:.1%} exceeds "
              f"{args.max_overhead:.0%}")
        ok = False
    if live_wall - base_wall > slack:
        print(f"FAIL: live-telemetry overhead {live_overhead:.1%} exceeds "
              f"{args.max_overhead:.0%}")
        ok = False
    if ok:
        print(f"PASS: disabled path and live telemetry within "
              f"{args.max_overhead:.0%}, structure bit-identical")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
