"""Table 2 row *Smith-Waterman* — the paper's worst case (9.92x): a
wavefront of future tiles whose every DP cell performs 3 reads + 1 write.
"""

import pytest

from repro.workloads import smith_waterman as sw
from repro.workloads.common import run_instrumented


@pytest.fixture(scope="module")
def params(scale):
    return sw.default_params(scale)


def test_seq(benchmark, params):
    benchmark(sw.serial, params)


def test_future_instrumented(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: sw.run_future(rt, params), detect=False
        )
    )
    assert run.metrics.num_nt_joins > 0


def test_future_racedet(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: sw.run_future(rt, params), detect=True
        )
    )
    assert not run.races
