"""§1's motivation bench: vector clocks "have to be allocated with a size
proportional to the maximum number of simultaneously live tasks (which can
be unboundedly large)".

An interleaved spawn/join loop makes main's clock accumulate one component
per joined task, so every subsequent spawn copies an ever-larger clock:
total copied entries grow quadratically for the vector-clock detector
while the DTRG detector's per-task state stays constant-size.  The
assertions pin the qualitative shape (clock width tracks task count;
copied entries superlinear); the benchmark timings show the wall-clock
consequence.
"""

import pytest

from repro.baselines import VectorClockDetector
from repro.core.detector import DeterminacyRaceDetector
from repro.runtime.runtime import Runtime

SIZES = [64, 128, 256]


def spawn_join_interleaved(n):
    def entry(rt):
        for _ in range(n):
            rt.future(lambda: None).get()

    return entry


@pytest.mark.parametrize("n", SIZES)
def test_vector_clock_spawn_join(benchmark, n):
    def run():
        det = VectorClockDetector()
        rt = Runtime(observers=[det])
        rt.run(spawn_join_interleaved(n))
        return det

    det = benchmark(run)
    assert det.max_clock_size >= n  # clock width tracks task count
    # copies grow superlinearly (~n^2/2 entries overall)
    assert det.total_clock_entries_copied >= n * (n - 1) // 4


@pytest.mark.parametrize("n", SIZES)
def test_dtrg_spawn_join(benchmark, n):
    def run():
        det = DeterminacyRaceDetector()
        rt = Runtime(observers=[det])
        rt.run(spawn_join_interleaved(n))
        return det

    det = benchmark(run)
    # constant-size per-task state: one label + one set entry per task
    assert det.dtrg.num_tree_merges == n
    assert det.dtrg.num_non_tree_edges == 0
