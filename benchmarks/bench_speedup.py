"""§5's parallelism argument, made quantitative.

"In general, this kind of task dependences cannot be represented using only
async-finish constructs without loss of parallelism."  We simulate both
renderings of the same computation (Jacobi: barrier-per-sweep vs
dependence-driven futures) on P workers and benchmark the simulators
themselves; the assertions pin the claim — the future version's critical
path is never longer, and its simulated speedup at high worker counts is at
least as good.

The snapshot-freeze microbenchmarks at the bottom quantify the other
parallelism lever: :meth:`DTRGSnapshot.freeze` is the sequential prefix of
every sharded parallel check (ALGORITHM.md §12), so its cost per task —
microseconds to freeze, bytes per task in the frozen arrays and in the
pickled payload each spawn-mode worker receives — bounds how small a trace
can be before fan-out pays.
"""

import pickle
import random

import pytest

from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.core.snapshot import DTRGSnapshot
from repro.graph import GraphBuilder
from repro.runtime.runtime import Runtime
from repro.runtime.workstealing import (
    WorkStealingSimulator,
    greedy_schedule,
)
from repro.workloads import jacobi, sor


def record(entry, params):
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    rt.run(lambda r: entry(r, params))
    return gb.graph


@pytest.fixture(scope="module")
def jacobi_graphs(scale):
    params = jacobi.default_params("tiny" if scale == "tiny" else "small")
    return record(jacobi.run_af, params), record(jacobi.run_future, params)


@pytest.fixture(scope="module")
def sor_graphs(scale):
    params = sor.default_params("tiny" if scale == "tiny" else "small")
    return record(sor.run_af, params), record(sor.run_future, params)


@pytest.mark.parametrize("workers", [4, 16])
def test_greedy_simulation_jacobi_future(benchmark, jacobi_graphs, workers):
    _, fut = jacobi_graphs
    stats = benchmark(greedy_schedule, fut, workers)
    assert stats.satisfies_brent_bound()


@pytest.mark.parametrize("workers", [4, 16])
def test_work_stealing_simulation_jacobi_future(
    benchmark, jacobi_graphs, workers
):
    _, fut = jacobi_graphs
    stats = benchmark(lambda: WorkStealingSimulator(fut, workers, seed=3).run())
    assert stats.busy == stats.work


def test_futures_expose_at_least_af_parallelism(jacobi_graphs, sor_graphs):
    for af, fut in (jacobi_graphs, sor_graphs):
        assert fut.num_steps > 0 and af.num_steps > 0
        af16 = greedy_schedule(af, 16)
        fut16 = greedy_schedule(fut, 16)
        assert fut16.span <= af16.span
        assert fut16.speedup >= af16.speedup * 0.95  # never meaningfully worse


def build_finished_dtrg(num_tasks: int, seed: int = 0):
    """A terminated DTRG with a future-heavy random topology.

    Tasks spawn under random live parents, half as futures; terminated
    futures are joined by random live consumers (non-tree edges, so the
    frozen CSR/LSA columns are populated, not degenerate); everything
    terminates children-first, which is a legal completion order.
    """
    rng = random.Random(seed)
    dtrg = DynamicTaskReachabilityGraph(cache_precede=False)
    dtrg.add_root(0)
    done = []
    for tid in range(1, num_tasks):
        dtrg.add_task(rng.randrange(tid), tid,
                      is_future=rng.random() < 0.5)
        if done and rng.random() < 0.4:
            producer = rng.choice(done)
            if producer != tid:
                dtrg.record_join(tid, producer)
        if rng.random() < 0.6:
            dtrg.on_terminate(tid)
            done.append(tid)
    for tid in range(num_tasks - 1, -1, -1):
        if not dtrg.node(tid).label.final:
            dtrg.on_terminate(tid)
    return dtrg


@pytest.mark.parametrize("num_tasks", [256, 1024, 4096])
def test_snapshot_freeze(benchmark, num_tasks):
    """tasks -> freeze µs, plus bytes/task of the frozen arrays and of
    the pickled payload a spawn-mode worker receives."""
    dtrg = build_finished_dtrg(num_tasks)
    snap = benchmark(DTRGSnapshot.freeze, dtrg)
    benchmark.extra_info["tasks"] = num_tasks
    benchmark.extra_info["snapshot_bytes"] = snap.nbytes
    benchmark.extra_info["bytes_per_task"] = round(
        snap.nbytes / num_tasks, 1
    )
    benchmark.extra_info["pickle_bytes_per_task"] = round(
        len(pickle.dumps(snap)) / num_tasks, 1
    )
    # Freezing must not have changed any answer (spot-check a diagonal).
    for a in range(0, num_tasks, max(1, num_tasks // 16)):
        b = (a * 7 + 3) % num_tasks
        assert snap.precede(a, b) == dtrg.precede(a, b)


def test_speedup_report(jacobi_graphs):
    """Emit the speedup table (visible with pytest -s) and sanity-check
    the asymptote: speedup is capped by work/span."""
    af, fut = jacobi_graphs
    for name, graph in (("af", af), ("future", fut)):
        s1 = greedy_schedule(graph, 1)
        parallelism = s1.work / s1.span
        for p in (2, 4, 8, 16):
            stats = greedy_schedule(graph, p)
            assert stats.speedup <= parallelism + 1e-9
