"""§5's parallelism argument, made quantitative.

"In general, this kind of task dependences cannot be represented using only
async-finish constructs without loss of parallelism."  We simulate both
renderings of the same computation (Jacobi: barrier-per-sweep vs
dependence-driven futures) on P workers and benchmark the simulators
themselves; the assertions pin the claim — the future version's critical
path is never longer, and its simulated speedup at high worker counts is at
least as good.
"""

import pytest

from repro.graph import GraphBuilder
from repro.runtime.runtime import Runtime
from repro.runtime.workstealing import (
    WorkStealingSimulator,
    greedy_schedule,
)
from repro.workloads import jacobi, sor


def record(entry, params):
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    rt.run(lambda r: entry(r, params))
    return gb.graph


@pytest.fixture(scope="module")
def jacobi_graphs(scale):
    params = jacobi.default_params("tiny" if scale == "tiny" else "small")
    return record(jacobi.run_af, params), record(jacobi.run_future, params)


@pytest.fixture(scope="module")
def sor_graphs(scale):
    params = sor.default_params("tiny" if scale == "tiny" else "small")
    return record(sor.run_af, params), record(sor.run_future, params)


@pytest.mark.parametrize("workers", [4, 16])
def test_greedy_simulation_jacobi_future(benchmark, jacobi_graphs, workers):
    _, fut = jacobi_graphs
    stats = benchmark(greedy_schedule, fut, workers)
    assert stats.satisfies_brent_bound()


@pytest.mark.parametrize("workers", [4, 16])
def test_work_stealing_simulation_jacobi_future(
    benchmark, jacobi_graphs, workers
):
    _, fut = jacobi_graphs
    stats = benchmark(lambda: WorkStealingSimulator(fut, workers, seed=3).run())
    assert stats.busy == stats.work


def test_futures_expose_at_least_af_parallelism(jacobi_graphs, sor_graphs):
    for af, fut in (jacobi_graphs, sor_graphs):
        assert fut.num_steps > 0 and af.num_steps > 0
        af16 = greedy_schedule(af, 16)
        fut16 = greedy_schedule(fut, 16)
        assert fut16.span <= af16.span
        assert fut16.speedup >= af16.speedup * 0.95  # never meaningfully worse


def test_speedup_report(jacobi_graphs):
    """Emit the speedup table (visible with pytest -s) and sanity-check
    the asymptote: speedup is capped by work/span."""
    af, fut = jacobi_graphs
    for name, graph in (("af", af), ("future", fut)):
        s1 = greedy_schedule(graph, 1)
        parallelism = s1.work / s1.span
        for p in (2, 4, 8, 16):
            stats = greedy_schedule(graph, p)
            assert stats.speedup <= parallelism + 1e-9
