"""§5's structured-parallelism claim: "the slowdowns for Series-af and
Crypt-af are comparable to the slowdowns reported for the ESP-Bags
algorithm … our determinacy race detector does not incur additional
overhead for async/finish constructs relative to state-of-the-art
implementations."

We make the comparison sharper than wall-clock workload runs: record each
async-finish workload's instrumentation stream once, then replay the
*identical* event stream through every detector, so the numbers are pure
detector cost on identical inputs.  SP-bags/ESP-bags only run on the
async-finish traces; the futures trace additionally compares the DTRG
detector against vector clocks (the only other future-capable baseline).
"""

import pytest

from repro.baselines import (
    BruteForceDetector,
    ESPBagsDetector,
    OffsetSpanDetector,
    SPBagsDetector,
    SPD3Detector,
    VectorClockDetector,
)
from repro.core.detector import DeterminacyRaceDetector
from repro.core.exact import ExactDetector
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.runtime.runtime import Runtime
from repro.workloads import crypt_idea, jacobi, series


def record_trace(entry):
    recorder = TraceRecorder()
    rt = Runtime(observers=[recorder])
    rt.run(entry)
    return recorder.trace


@pytest.fixture(scope="module")
def series_af_trace(scale):
    params = series.default_params(scale)
    return record_trace(lambda rt: series.run_af(rt, params))


@pytest.fixture(scope="module")
def crypt_af_trace(scale):
    params = crypt_idea.default_params(scale)
    return record_trace(lambda rt: crypt_idea.run_af(rt, params))


@pytest.fixture(scope="module")
def jacobi_future_trace(scale):
    params = jacobi.default_params(scale)
    return record_trace(lambda rt: jacobi.run_future(rt, params))


DETECTORS_AF = [
    ("dtrg", DeterminacyRaceDetector),
    ("espbags", ESPBagsDetector),
    ("spbags", SPBagsDetector),
    ("spd3", SPD3Detector),
    ("offset-span", OffsetSpanDetector),
    ("vector-clock", VectorClockDetector),
]


@pytest.mark.parametrize("name,cls", DETECTORS_AF, ids=[n for n, _ in DETECTORS_AF])
def test_series_af_trace(benchmark, series_af_trace, name, cls):
    det = benchmark(lambda: _replay(series_af_trace, cls))
    assert not det.report.has_races


@pytest.mark.parametrize("name,cls", DETECTORS_AF, ids=[n for n, _ in DETECTORS_AF])
def test_crypt_af_trace(benchmark, crypt_af_trace, name, cls):
    det = benchmark(lambda: _replay(crypt_af_trace, cls))
    assert not det.report.has_races


DETECTORS_FUT = [
    ("dtrg", DeterminacyRaceDetector),
    ("exact", ExactDetector),
    ("vector-clock", VectorClockDetector),
    ("brute-force", BruteForceDetector),
]


@pytest.mark.parametrize(
    "name,cls", DETECTORS_FUT, ids=[n for n, _ in DETECTORS_FUT]
)
def test_jacobi_future_trace(benchmark, jacobi_future_trace, name, cls):
    det = benchmark(lambda: _replay(jacobi_future_trace, cls))
    assert not det.report.has_races


def _replay(trace, cls):
    det = cls()
    replay_trace(trace, [det])
    return det
