"""Benchmarks for the extension workloads (SOR, NQueens, reduction tree)
and the accumulator primitive.

These are not Table 2 rows; they broaden the overhead picture along axes
the paper's suite doesn't cover: a fully strict divide-and-conquer search
(NQueens — the SP-bags-compatible shape), a dependence-precision-sensitive
stencil (SOR), and the zero-shared-access functional extreme (reduction
tree, where detection cost collapses to task bookkeeping).
"""

import operator

import pytest

from repro.runtime.accumulator import Accumulator
from repro.runtime.runtime import Runtime
from repro.workloads import nqueens, reduce_tree, sor
from repro.workloads.common import run_instrumented


@pytest.fixture(scope="module")
def sor_params(scale):
    return sor.default_params(scale)


@pytest.fixture(scope="module")
def nq_params(scale):
    return nqueens.default_params(scale)


@pytest.fixture(scope="module")
def red_params(scale):
    return reduce_tree.default_params(scale)


def test_sor_seq(benchmark, sor_params):
    benchmark(sor.serial, sor_params)


@pytest.mark.parametrize("entry", ["run_af", "run_future"])
def test_sor_racedet(benchmark, sor_params, entry):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: getattr(sor, entry)(rt, sor_params), detect=True
        )
    )
    assert not run.races


def test_nqueens_seq(benchmark, nq_params):
    benchmark(nqueens.serial, nq_params)


def test_nqueens_racedet(benchmark, nq_params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: nqueens.run_af(rt, nq_params), detect=True
        )
    )
    assert not run.races


def test_reduce_tree_racedet(benchmark, red_params):
    """Functional futures: the detector's task bookkeeping in isolation
    (zero shared accesses, zero shadow cells)."""
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: reduce_tree.run_future(rt, red_params), detect=True
        )
    )
    assert not run.races
    assert run.metrics.num_shared_accesses == 0


def test_accumulator_reduction(benchmark, nq_params):
    """Accumulator-based NQueens: race-free reduction without the
    per-subtree result slots (no shared accesses at all)."""

    def run():
        det_rt = Runtime()
        out = {}

        def prog(rt):
            n, cutoff = nq_params.n, nq_params.cutoff
            with rt.finish() as scope:
                acc = Accumulator(rt, scope, op=operator.add, identity=0)

                def explore(placement):
                    if len(placement) >= cutoff:
                        acc.put(nqueens._count_sequential(placement, n))
                        return
                    with rt.finish():
                        for col in range(n):
                            if nqueens._safe(placement, col):
                                rt.async_(explore, placement + (col,))

                explore(())
            out["v"] = acc.get()

        det_rt.run(prog)
        return out["v"]

    result = benchmark(run)
    nqueens.verify(nq_params, result)
