"""Table 2 row *Strassen* — 7 product futures + 4 combining futures per
recursion level, combiners joining products through sibling (non-tree)
gets.  The paper measures 5.35x, the lowest of the dependence-driven rows
thanks to the largest work-per-access ratio among them.
"""

import pytest

from repro.workloads import strassen
from repro.workloads.common import run_instrumented


@pytest.fixture(scope="module")
def params(scale):
    return strassen.default_params(scale)


def test_seq(benchmark, params):
    benchmark(strassen.serial, params)


def test_future_instrumented(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: strassen.run_future(rt, params), detect=False
        )
    )
    assert run.metrics.num_nt_joins > 0


def test_future_racedet(benchmark, params):
    run = benchmark(
        lambda: run_instrumented(
            lambda rt: strassen.run_future(rt, params), detect=True
        )
    )
    assert not run.races
