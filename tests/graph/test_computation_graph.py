"""Unit tests for computation-graph construction (Section 3)."""

from repro import Runtime, SharedArray
from repro.graph import EdgeKind, GraphBuilder


def build(builder, locs=4):
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return gb.graph


def test_single_task_two_steps():
    # Main's body is one step; closing the implicit root finish starts the
    # terminal step (Definition 1: end-of-finish is a step boundary).
    graph = build(lambda rt, mem: (mem.write(0, 1), mem.read(0)))
    assert graph.num_steps == 2
    assert graph.num_tasks == 1
    assert [kind for (_, _, kind) in graph.edges] == [EdgeKind.CONTINUE]
    step = graph.steps[0]
    assert len(step.accesses) == 2


def test_spawn_creates_three_edge_pattern():
    def prog(rt, mem):
        rt.async_(lambda: mem.write(0, 1))
        mem.read(1)

    graph = build(prog)
    counts = graph.edge_counts()
    assert counts[EdgeKind.SPAWN] == 1
    assert counts[EdgeKind.CONTINUE] == 2   # pre->post spawn, post->terminal
    assert counts[EdgeKind.JOIN_TREE] == 1  # implicit finish joins the async
    # main: pre-spawn, post-spawn, post-implicit-finish; child: one step
    assert graph.num_steps == 4


def test_step_ids_are_depth_first_execution_order():
    order = []

    def prog(rt, mem):
        mem.write(0, 0)  # main step 0

        def child():
            mem.write(1, 1)
            rt.async_(lambda: mem.write(2, 2))
            mem.write(3, 3)

        rt.async_(child)
        mem.read(0)

    graph = build(prog)
    # Access order in the log must be sorted by step id.
    flat = [a for loc in graph.accesses_by_loc.values() for a in loc]
    flat.sort(key=lambda a: a.step)
    values = [a.loc for a in flat]
    assert values == [("x", 0), ("x", 1), ("x", 2), ("x", 3), ("x", 0)]
    # Topological: every edge goes forward in step id.
    assert all(src < dst for src, dst, _ in graph.edges)


def test_get_join_edges_classified():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1), name="p")
        f.get()  # parent join: tree

        def consumer():
            f.get()  # sibling join: non-tree
            mem.read(0)

        g = rt.future(consumer, name="c")
        g.get()

    graph = build(prog)
    counts = graph.edge_counts()
    assert counts[EdgeKind.JOIN_NON_TREE] == 1
    # tree joins: parent get of p, parent get of c, implicit finish (2 tasks)
    assert counts[EdgeKind.JOIN_TREE] == 4


def test_finish_join_edges_from_all_registered_tasks():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: rt.async_(lambda: None))  # escaping grandchild

    graph = build(prog)
    # finish end joins both tasks, plus implicit-root join of nothing new
    assert graph.edge_counts()[EdgeKind.JOIN_TREE] == 2


def test_first_and_last_steps_tracked():
    def prog(rt, mem):
        t = rt.async_(lambda: (mem.write(0, 1), rt.async_(lambda: None)))
        assert t is not None

    graph = build(prog)
    for tid in graph.task_parent:
        assert tid in graph.first_step
        assert tid in graph.last_step
        assert graph.first_step[tid] <= graph.last_step[tid]


def test_is_ancestor_task():
    def prog(rt, mem):
        def child():
            rt.async_(lambda: None)

        rt.async_(child)
        rt.async_(lambda: None)

    graph = build(prog)
    assert graph.is_ancestor_task(0, 1)
    assert graph.is_ancestor_task(0, 2)
    assert graph.is_ancestor_task(1, 2)
    assert not graph.is_ancestor_task(2, 1)
    assert not graph.is_ancestor_task(1, 3)


def test_task_names_and_kinds_recorded():
    def prog(rt, mem):
        rt.future(lambda: None, name="fut")
        rt.async_(lambda: None, name="asy")

    graph = build(prog)
    assert graph.task_names[1] == "fut"
    assert graph.task_is_future[1] is True
    assert graph.task_is_future[2] is False


def test_steps_of_task_and_label_lookup():
    def prog(rt, mem):
        mem.write(0, 1)
        rt.async_(lambda: None)
        mem.write(1, 1)

    graph = build(prog)
    main_steps = graph.steps_of_task(0)
    assert len(main_steps) == 3  # pre-spawn, post-spawn, post-root-finish
    graph.steps[0].label = "first"
    assert graph.step_by_label("first") is graph.steps[0]
