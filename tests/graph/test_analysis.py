"""Unit tests for graph analyses: closure, race oracle, work/span."""

from repro import Runtime, SharedArray
from repro.graph import (
    GraphBuilder,
    ReachabilityClosure,
    find_races,
    max_logical_parallelism,
    racy_locations,
    work_and_span,
)


def build(builder, locs=4):
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return gb.graph


def fork_join_graph():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(1, 2))
        mem.read(0)

    return build(prog)


def test_closure_precedes_and_parallel():
    graph = fork_join_graph()
    cl = ReachabilityClosure(graph)
    a_steps = graph.steps_of_task(1)
    b_steps = graph.steps_of_task(2)
    a, b = a_steps[0].sid, b_steps[0].sid
    assert cl.parallel(a, b)
    assert not cl.precedes(a, b)
    first_main = graph.first_step[0]
    assert cl.precedes(first_main, a)
    assert cl.precedes(a, graph.last_step[0])
    assert not cl.parallel(a, a)


def test_descendants_set():
    graph = fork_join_graph()
    cl = ReachabilityClosure(graph)
    first = graph.first_step[0]
    # the first step reaches every other step
    assert cl.descendants(first) == set(range(1, graph.num_steps))
    assert cl.descendants(graph.last_step[0] ) == set()


def test_find_races_and_racy_locations_agree():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))
            rt.async_(lambda: mem.read(1))
        mem.write(1, 3)  # ordered: after the finish

    graph = build(prog)
    races = find_races(graph)
    locs = racy_locations(graph)
    assert locs == frozenset({("x", 0)})
    assert {r.loc for r in races} == {("x", 0)}


def test_read_read_is_not_a_race():
    def prog(rt, mem):
        mem.write(0, 1)
        with rt.finish():
            rt.async_(lambda: mem.read(0))
            rt.async_(lambda: mem.read(0))

    graph = build(prog)
    assert racy_locations(graph) == frozenset()


def test_max_pairs_per_loc_caps_enumeration():
    def prog(rt, mem):
        with rt.finish():
            for _ in range(4):
                rt.async_(lambda: mem.write(0, 1))

    graph = build(prog)
    assert len(find_races(graph, max_pairs_per_loc=1)) == 1
    assert len(find_races(graph, max_pairs_per_loc=None)) == 6  # C(4,2)


def test_task_precedes_matches_on_the_fly_semantics():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1))
        rt.future(lambda: (f.get(), mem.read(0)))
        mem.read(1)

    graph = build(prog)
    cl = ReachabilityClosure(graph)
    # every step of the producer (task 1) precedes the consumer's read step
    consumer_read = graph.accesses_by_loc[("x", 0)][1].step
    assert cl.task_precedes(1, consumer_read)
    # main's later read step is NOT preceded by the consumer (task 2):
    main_read = graph.accesses_by_loc[("x", 1)][0].step
    assert not cl.task_precedes(2, main_read)


def test_work_and_span_serial_vs_parallel():
    # A task-free program still has two steps: main's body and the step
    # after the implicit root finish.
    serial = build(lambda rt, mem: mem.write(0, 1))
    w, s = work_and_span(serial)
    assert (w, s) == (2, 2)

    parallel = fork_join_graph()
    w, s = work_and_span(parallel)
    assert w == parallel.num_steps
    assert s < w  # some parallelism exists


def test_max_logical_parallelism():
    graph = fork_join_graph()
    # the two asyncs run in parallel: at least 2 simultaneous steps
    assert max_logical_parallelism(graph) >= 2
    serial = build(lambda rt, mem: mem.write(0, 1))
    assert max_logical_parallelism(serial) == 1
