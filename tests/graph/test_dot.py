"""Unit tests for the DOT exporter."""

from repro import Runtime, SharedArray
from repro.graph import GraphBuilder, to_dot


def test_dot_output_structure():
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    mem = SharedArray(rt, "x", 2)

    def prog(_rt):
        f = rt.future(lambda: mem.write(0, 1), name="producer")
        f.get()
        mem.read(0)

    rt.run(prog)
    dot = to_dot(gb.graph, title="test graph")
    assert dot.startswith("digraph G {")
    assert dot.rstrip().endswith("}")
    assert 'label="test graph"' in dot
    assert "cluster_0" in dot and "cluster_1" in dot
    assert "producer" in dot
    # one line per edge
    assert dot.count("->") == len(gb.graph.edges)
    # every step node is declared
    for step in gb.graph.steps:
        assert f"s{step.sid} " in dot or f"s{step.sid} [" in dot
