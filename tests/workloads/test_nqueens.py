"""Unit tests for the NQueens extension workload."""

import pytest

from repro import Runtime
from repro.baselines import (
    ESPBagsDetector,
    OffsetSpanDetector,
    SPBagsDetector,
    SPD3Detector,
)
from repro.workloads import nqueens
from repro.workloads.common import run_instrumented


@pytest.mark.parametrize("n", range(1, 9))
def test_serial_matches_known_counts(n):
    assert nqueens.serial(nqueens.NQueensParams(n=n)) == (
        nqueens.KNOWN_SOLUTIONS[n - 1]
    )


def test_safe_predicate():
    assert nqueens._safe((), 0)
    assert not nqueens._safe((0,), 0)   # same column
    assert not nqueens._safe((0,), 1)   # diagonal
    assert nqueens._safe((0,), 2)


def test_slot_ids_unique_and_in_range():
    n, cutoff = 5, 2
    seen = set()

    def walk(placement):
        slot = nqueens._slot_of(placement, n)
        assert slot not in seen
        seen.add(slot)
        assert 0 <= slot < nqueens._max_tasks(n, cutoff)
        if len(placement) < cutoff:
            for col in range(n):
                walk(placement + (col,))

    walk(())


@pytest.mark.parametrize("cutoff", [1, 2, 3])
def test_parallel_count_correct_any_cutoff(cutoff):
    params = nqueens.NQueensParams(n=6, cutoff=cutoff)
    run = run_instrumented(lambda rt: nqueens.run_af(rt, params), detect=True)
    nqueens.verify(params, run.result)
    assert not run.races


def test_fully_strict_runs_under_every_baseline():
    """NQueens is the workload every restricted model can handle."""
    params = nqueens.default_params("tiny")
    for cls in (SPBagsDetector, ESPBagsDetector, SPD3Detector,
                OffsetSpanDetector):
        det = cls()
        rt = Runtime(observers=[det])
        result = rt.run(lambda r: nqueens.run_af(r, params))
        nqueens.verify(params, result)
        assert not det.report.has_races, cls.__name__


def test_racy_counter_flagged_by_all_detectors():
    params = nqueens.default_params("tiny")
    run = run_instrumented(
        lambda rt: nqueens.run_racy_counter(rt, params), detect=True
    )
    assert ("solutions",) in run.detector.racy_locations
    for cls in (SPBagsDetector, ESPBagsDetector, SPD3Detector):
        det = cls()
        rt = Runtime(observers=[det])
        rt.run(lambda r: nqueens.run_racy_counter(r, params))
        assert ("solutions",) in det.racy_locations, cls.__name__


def test_racy_counter_depth_first_value_happens_to_be_right():
    """Under the serial depth-first execution the racy counter still sums
    correctly — exactly why this bug survives testing without a detector."""
    params = nqueens.default_params("tiny")
    run = run_instrumented(
        lambda rt: nqueens.run_racy_counter(rt, params), detect=False
    )
    nqueens.verify(params, run.result)  # value right, program still racy!
