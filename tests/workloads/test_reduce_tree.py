"""Unit tests for the functional reduction-tree workload."""

import pytest

from repro.workloads import reduce_tree
from repro.workloads.common import run_instrumented


@pytest.mark.parametrize("op", ["add", "max", "mul"])
def test_serial_fold(op):
    params = reduce_tree.ReduceParams(size=10, cutoff=2, op=op)
    data = reduce_tree._data(params)
    expected = params.identity
    for v in data:
        expected = params.operator(expected, v)
    assert reduce_tree.serial(params) == expected


@pytest.mark.parametrize("op", ["add", "max", "mul"])
@pytest.mark.parametrize("size,cutoff", [(16, 4), (64, 8), (33, 5)])
def test_parallel_matches_serial(op, size, cutoff):
    params = reduce_tree.ReduceParams(size=size, cutoff=cutoff, op=op)
    run = run_instrumented(
        lambda rt: reduce_tree.run_future(rt, params), detect=True
    )
    reduce_tree.verify(params, run.result)
    assert not run.races


def test_purely_functional_no_shared_accesses():
    """The Section 2 guarantee: value-only futures cannot race."""
    params = reduce_tree.default_params("small")
    run = run_instrumented(
        lambda rt: reduce_tree.run_future(rt, params), detect=True
    )
    assert run.metrics.num_shared_accesses == 0
    assert run.metrics.num_tasks > 0
    assert run.metrics.num_nt_joins == 0  # every get by the spawning task
    assert run.detector.shadow.num_locations == 0


def test_task_count_matches_tree_shape():
    params = reduce_tree.ReduceParams(size=64, cutoff=8)
    run = run_instrumented(
        lambda rt: reduce_tree.run_future(rt, params), detect=False
    )
    # 64/8 = 8 leaves -> internal splits spawn 2 futures each: 2+4+8 = 14
    assert run.metrics.num_tasks == 14
    assert run.metrics.num_future_tasks == run.metrics.num_tasks
