"""Unit tests for the Jacobi stencil workload."""

import numpy as np
import pytest

from repro.workloads import jacobi
from repro.workloads.common import run_instrumented


def test_params_validation():
    with pytest.raises(ValueError):
        jacobi.JacobiParams(interior=10, tile=4)


def test_serial_matches_reference_loop():
    params = jacobi.JacobiParams(interior=4, tile=2, sweeps=3)
    expected = jacobi.serial(params)
    # independent reference: explicit python loops
    u = jacobi._initial_grid(params)
    v = u.copy()
    for _ in range(params.sweeps):
        for i in range(1, params.n - 1):
            for j in range(1, params.n - 1):
                v[i, j] = 0.25 * (
                    u[i - 1, j] + u[i + 1, j] + u[i, j - 1] + u[i, j + 1]
                )
        u, v = v, u
    assert np.allclose(expected, u, rtol=1e-12, atol=1e-14)


def test_boundary_unchanged():
    params = jacobi.default_params("tiny")
    result = jacobi.serial(params)
    initial = jacobi._initial_grid(params)
    assert np.array_equal(result[0, :], initial[0, :])
    assert np.array_equal(result[:, -1], initial[:, -1])


@pytest.mark.parametrize("entry", ["run_af", "run_future"])
def test_parallel_variants_correct_and_race_free(entry):
    params = jacobi.default_params("tiny")
    run = run_instrumented(
        lambda rt: getattr(jacobi, entry)(rt, params), detect=True
    )
    jacobi.verify(params, run.result)
    assert not run.races, run.detector.report.summary()


def test_future_variant_has_non_tree_joins_af_does_not():
    params = jacobi.default_params("tiny")
    af = run_instrumented(lambda rt: jacobi.run_af(rt, params), detect=False)
    fut = run_instrumented(
        lambda rt: jacobi.run_future(rt, params), detect=False
    )
    assert af.metrics.num_nt_joins == 0
    assert fut.metrics.num_nt_joins > 0
    # same tile-task count either way
    assert af.metrics.num_tasks == fut.metrics.num_tasks
    assert (
        af.metrics.num_tasks
        == params.tiles_per_side ** 2 * params.sweeps
    )


def test_access_count_formula():
    """4 reads + 1 write per interior cell per sweep."""
    params = jacobi.default_params("tiny")
    run = run_instrumented(lambda rt: jacobi.run_af(rt, params), detect=False)
    expected = params.interior ** 2 * 5 * params.sweeps
    assert run.metrics.num_shared_accesses == expected


def test_missing_dependence_is_caught():
    """Sanity: drop the neighbor dependences and the detector fires."""
    from repro.runtime.depends import DependsTaskGroup

    params = jacobi.default_params("tiny")

    def broken(rt):
        u, v = jacobi._setup(rt, params)
        group = DependsTaskGroup(rt)
        t = params.tiles_per_side
        for sweep in range(2):
            for bi in range(t):
                for bj in range(t):
                    r0 = 1 + bi * params.tile
                    c0 = 1 + bj * params.tile
                    # out-dep only: readers of neighbors race across sweeps
                    group.task(
                        jacobi._compute_tile,
                        u, v, r0, r0 + params.tile, c0, c0 + params.tile,
                        out=[("t", bi, bj, sweep)],
                    )
            u, v = v, u
        group.wait_all()
        return u

    run = run_instrumented(broken, detect=True)
    assert run.races
