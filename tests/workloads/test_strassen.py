"""Unit tests for the Strassen workload."""

import numpy as np
import pytest

from repro.workloads import strassen
from repro.workloads.common import run_instrumented


def test_params_validation():
    with pytest.raises(ValueError):
        strassen.StrassenParams(n=24, cutoff=8)
    with pytest.raises(ValueError):
        strassen.StrassenParams(n=16, cutoff=32)


def test_serial_is_exact_integer_product():
    params = strassen.StrassenParams(n=8, cutoff=8)
    a, b = strassen._inputs(params)
    assert np.array_equal(strassen.serial(params), a @ b)


@pytest.mark.parametrize("n,cutoff", [(8, 8), (16, 8), (16, 4), (32, 8)])
def test_parallel_exact_at_various_depths(n, cutoff):
    params = strassen.StrassenParams(n=n, cutoff=cutoff)
    run = run_instrumented(
        lambda rt: strassen.run_future(rt, params), detect=False
    )
    strassen.verify(params, run.result)


def test_race_free_under_detection():
    params = strassen.default_params("tiny")
    run = run_instrumented(
        lambda rt: strassen.run_future(rt, params), detect=True
    )
    strassen.verify(params, run.result)
    assert not run.races, run.detector.report.summary()


def test_task_structure_single_level():
    params = strassen.StrassenParams(n=16, cutoff=8)
    run = run_instrumented(
        lambda rt: strassen.run_future(rt, params), detect=False
    )
    # one level: 7 product futures + 4 combine futures
    assert run.metrics.num_tasks == 11
    # combine tasks join products: 4+2+2+4 sibling gets = 12 non-tree joins
    assert run.metrics.num_nt_joins == 12
    # parent joins its 4 combine futures: tree joins
    assert run.metrics.num_gets == 12 + 4


def test_task_structure_two_levels():
    params = strassen.StrassenParams(n=32, cutoff=8)
    run = run_instrumented(
        lambda rt: strassen.run_future(rt, params), detect=False
    )
    # 11 top-level + 7 children each spawning 11 more
    assert run.metrics.num_tasks == 11 + 7 * 11


def test_instrumented_matrix_records_per_element():
    from repro import Runtime
    from repro.core.events import ExecutionObserver

    class Count(ExecutionObserver):
        def __init__(self):
            self.reads = 0
            self.writes = 0

        def on_read(self, task, loc):
            self.reads += 1

        def on_write(self, task, loc):
            self.writes += 1

    counter = Count()
    rt = Runtime(observers=[counter])

    def prog(_rt):
        m = strassen.InstrumentedMatrix(rt, 4, name="t")
        m.store(np.ones((4, 4), dtype=np.int64))
        out = m.load()
        assert out.sum() == 16

    rt.run(prog)
    assert counter.writes == 16
    assert counter.reads == 16
