"""Unit tests for the blocked-LU extension workload."""

import numpy as np
import pytest

from repro.workloads import lufact
from repro.workloads.common import run_instrumented


def test_params_validation():
    with pytest.raises(ValueError):
        lufact.LUParams(n=20, tile=8)


def test_input_is_diagonally_dominant():
    params = lufact.default_params("tiny")
    a = lufact._input_matrix(params)
    for i in range(params.n):
        off = np.abs(a[i]).sum() - abs(a[i, i])
        assert abs(a[i, i]) > off


def test_tile_lu_kernel():
    rng = np.random.default_rng(1)
    a = rng.random((6, 6)) + 6 * np.eye(6)
    packed = lufact._lu_inplace(a.copy())
    l, u = lufact._split_lu(packed)
    assert np.allclose(l @ u, a)


def test_panel_solves():
    rng = np.random.default_rng(2)
    kk = lufact._lu_inplace(rng.random((4, 4)) + 4 * np.eye(4))
    l, u = lufact._split_lu(kk)
    b = rng.random((4, 4))
    x = lufact._lower_solve(kk, b)
    assert np.allclose(l @ x, b)
    y = lufact._upper_solve(kk, b)
    assert np.allclose(y @ u, b)


def test_serial_factorization_reconstructs():
    params = lufact.default_params("small")
    packed = lufact.serial(params)
    l, u = lufact._split_lu(packed)
    assert np.allclose(l @ u, lufact._input_matrix(params), rtol=1e-8)


@pytest.mark.parametrize("scale", ["tiny", "small"])
def test_parallel_matches_serial_and_race_free(scale):
    params = lufact.default_params(scale)
    run = run_instrumented(
        lambda rt: lufact.run_future(rt, params), detect=True
    )
    lufact.verify(params, run.result)
    assert not run.races, run.detector.report.summary()


def test_task_graph_shape():
    params = lufact.LUParams(n=32, tile=8)  # 4x4 tiles
    run = run_instrumented(
        lambda rt: lufact.run_future(rt, params), detect=False
    )
    t = params.tiles
    expected_tasks = sum(
        1 + 2 * (t - 1 - k) + (t - 1 - k) ** 2 for k in range(t)
    )
    assert run.metrics.num_tasks == expected_tasks
    assert run.metrics.num_nt_joins > 0


def test_missing_update_dependence_is_caught():
    """Drop the in-deps of the trailing updates: the panels race."""
    from repro.runtime.depends import DependsTaskGroup
    from repro.workloads.strassen import InstrumentedMatrix

    params = lufact.default_params("tiny")

    def broken(rt):
        a = lufact._input_matrix(params)
        t, b = params.tiles, params.tile
        tiles = {}
        for i in range(t):
            for j in range(t):
                tiles[i, j] = InstrumentedMatrix(
                    rt, b, a[i * b:(i + 1) * b, j * b:(j + 1) * b].copy(),
                    name=f"B{i}{j}",
                )
        group = DependsTaskGroup(rt)
        for k in range(t):
            group.task(
                lambda k=k: tiles[k, k].store(
                    lufact._lu_inplace(tiles[k, k].load())
                ),
                inout=[("T", k, k)],
            )
            for j in range(k + 1, t):
                # BUG: no in-dep on the diagonal tile
                group.task(
                    lambda k=k, j=j: tiles[k, j].store(
                        lufact._lower_solve(
                            tiles[k, k].load(), tiles[k, j].load()
                        )
                    ),
                    inout=[("T", k, j)],
                )
        group.wait_all()

    run = run_instrumented(broken, detect=True)
    assert run.races
