"""Unit tests for the SOR extension workload."""

import numpy as np
import pytest

from repro.workloads import sor
from repro.workloads.common import run_instrumented


def test_params_validation():
    with pytest.raises(ValueError):
        sor.SORParams(interior=10, rows_per_task=4)


def test_serial_red_black_reference():
    """Cross-check one red update against the formula by hand."""
    params = sor.SORParams(interior=4, rows_per_task=4, sweeps=1)
    g0 = sor._initial_grid(params)
    result = sor.serial(params)
    # cell (1,2) is red ((i+j) even offset per our coloring with color=0 ->
    # start = 1 + (i & 1)); recompute it from the initial grid: it's the
    # first updated cell of row 1, so neighbors are still initial values.
    i, j = 1, 2
    expected = (1 - params.omega) * g0[i, j] + 0.25 * params.omega * (
        g0[i - 1, j] + g0[i + 1, j] + g0[i, j - 1] + g0[i, j + 1]
    )
    assert result[i, j] != g0[i, j]
    # (the serial sweep may have updated neighbors afterwards, but (1,2) is
    # written exactly once per color pass; first pass value must match)
    params1 = sor.SORParams(interior=4, rows_per_task=4, sweeps=1)
    partial = sor._initial_grid(params1)
    sorted_once = sor.serial(params1)
    assert np.isclose(sorted_once[i, j], expected) or True  # documented below
    # NOTE: with omega relaxation, red cells only read black cells, which
    # are untouched during the red pass — so the check is exact:
    assert np.isclose(sorted_once[i, j], expected)


def test_red_and_black_partition_interior():
    params = sor.SORParams(interior=6, rows_per_task=6, sweeps=1)
    n = params.n
    covered = set()
    for color in (0, 1):
        for i in range(1, n - 1):
            start = 1 + ((i + color) & 1)
            for j in range(start, n - 1, 2):
                assert (i, j) not in covered
                covered.add((i, j))
    assert len(covered) == params.interior * params.interior


@pytest.mark.parametrize("entry", ["run_af", "run_future"])
def test_parallel_variants_correct_and_race_free(entry):
    params = sor.default_params("tiny")
    run = run_instrumented(
        lambda rt: getattr(sor, entry)(rt, params), detect=True
    )
    sor.verify(params, run.result)
    assert not run.races, run.detector.report.summary()


def test_future_variant_uses_non_tree_joins():
    params = sor.default_params("small")
    af = run_instrumented(lambda rt: sor.run_af(rt, params), detect=False)
    fut = run_instrumented(lambda rt: sor.run_future(rt, params), detect=False)
    assert af.metrics.num_nt_joins == 0
    assert fut.metrics.num_nt_joins > 0
    assert af.metrics.num_finish_scopes == 2 * params.sweeps
    assert fut.metrics.num_finish_scopes == 0  # point-to-point only


def test_unsynchronized_version_races():
    params = sor.default_params("tiny")
    run = run_instrumented(
        lambda rt: sor.run_unsynchronized(rt, params), detect=True
    )
    assert run.races
    # races appear on boundary rows between color phases
    assert all(loc[0] == "G" for loc in run.detector.racy_locations)


def test_detector_verdict_matches_oracle_on_buggy_sor():
    from repro.baselines import BruteForceDetector
    from repro.core.detector import DeterminacyRaceDetector
    from repro.runtime.runtime import Runtime

    params = sor.default_params("tiny")
    det = DeterminacyRaceDetector()
    oracle = BruteForceDetector()
    rt = Runtime(observers=[det, oracle])
    rt.run(lambda r: sor.run_unsynchronized(r, params))
    assert det.racy_locations == oracle.racy_locations


def test_color_blind_dependences_serialize_but_stay_race_free():
    """Cautionary measurement promised in ``run_future``'s docstring: with
    color-blind per-block keys, write-after-read anti-dependences chain
    same-phase blocks, multiplying the critical path — while remaining
    perfectly race-free.  Dependence *precision* is a performance concern
    even when correctness is assured."""
    from repro.graph import GraphBuilder
    from repro.runtime.depends import DependsTaskGroup
    from repro.runtime.runtime import Runtime
    from repro.runtime.workstealing import greedy_schedule
    from repro.memory.shared import SharedNDArray

    params = sor.SORParams(interior=16, rows_per_task=4, sweeps=2)

    def color_blind(rt):
        g = SharedNDArray(rt, "G", sor._initial_grid(params))
        group = DependsTaskGroup(rt)
        blocks = sor._row_blocks(params)
        nblocks = len(blocks)
        for sweep in range(params.sweeps):
            for color in (0, 1):
                for b, (r0, r1) in enumerate(blocks):
                    deps = [("blk", nb) for nb in (b - 1, b, b + 1)
                            if 0 <= nb < nblocks]
                    group.task(
                        sor._relax_rows, g, params.omega, params.n,
                        r0, r1, color, in_=deps, out=[("blk", b)],
                    )
        group.wait_all()
        return g

    def graph_of(entry):
        gb = GraphBuilder()
        rt = Runtime(observers=[gb])
        rt.run(entry)
        return gb.graph

    blind = graph_of(color_blind)
    aware = graph_of(lambda rt: sor.run_future(rt, params))

    run = run_instrumented(color_blind, detect=True)
    sor.verify(params, run.result)
    assert not run.races  # conservative deps are still correct...

    s_blind = greedy_schedule(blind, 1)
    s_aware = greedy_schedule(aware, 1)
    # ...but cost ~2x+ the critical path of the color-aware declaration.
    assert s_blind.span > 1.5 * s_aware.span
