"""Unit tests for the IDEA implementation and the Crypt workload."""

import pytest

from repro.workloads import crypt_idea as ci
from repro.workloads.common import run_instrumented


def test_mul_is_group_operation():
    """IDEA multiplication forms a group on {1..65536} (0 encodes 65536)."""
    assert ci._mul(1, 1) == 1
    assert ci._mul(0, 1) == 0        # 65536 * 1 = 65536 -> encoded 0
    assert ci._mul(0, 0) == 1        # 65536^2 mod 65537 = (-1)^2 = 1
    for a in (1, 2, 3, 255, 4097, 65535, 0):
        inv = ci._mul_inv(a)
        assert ci._mul(a, inv) == 1, a


def test_add_inverse():
    for a in (0, 1, 77, 65535):
        assert (a + ci._add_inv(a)) & 0xFFFF == 0


def test_key_schedule_produces_52_subkeys():
    keys = ci.key_schedule(0x0123456789ABCDEF0123456789ABCDEF)
    assert len(keys) == 52
    assert all(0 <= k <= 0xFFFF for k in keys)
    # first eight are the key words verbatim
    assert keys[0] == 0x0123 and keys[7] == 0xCDEF


def test_key_schedule_rotation():
    # key = 1 (LSB set): after one 25-bit rotation the bit appears at
    # position 25 from the bottom -> word index (127-25)//16 from the top.
    keys = ci.key_schedule(1)
    assert keys[:8] == [0, 0, 0, 0, 0, 0, 0, 1]
    second_block = keys[8:16]
    assert sum(1 for k in second_block if k) == 1


def test_block_roundtrip_many_keys():
    for key in (0, 1, 0x2B7E151628AED2A6FFEEDDCCBBAA9988, (1 << 128) - 1):
        enc = ci.key_schedule(key)
        dec = ci.inverse_key_schedule(enc)
        for block in [(0, 0, 0, 0), (1, 2, 3, 4), (0xFFFF,) * 4,
                      (0x0123, 0x4567, 0x89AB, 0xCDEF)]:
            cipher = ci.encrypt_block(block, enc)
            assert ci.encrypt_block(cipher, dec) == block, (key, block)


def test_encryption_is_not_identity():
    enc = ci.key_schedule(0xDEADBEEF)
    assert ci.encrypt_block((1, 2, 3, 4), enc) != (1, 2, 3, 4)


def test_serial_roundtrip():
    params = ci.default_params("tiny")
    result = ci.serial(params)
    assert result.roundtrip == result.plaintext
    assert result.ciphertext != result.plaintext
    assert len(result.ciphertext) == params.num_bytes


def test_chunk_partition_covers_blocks():
    ranges = ci._chunks(10, 4)
    covered = []
    for lo, hi in ranges:
        covered.extend(range(lo, hi))
    assert covered == list(range(10))


@pytest.mark.parametrize("entry", ["run_af", "run_future"])
def test_parallel_variants_correct_and_race_free(entry):
    params = ci.default_params("tiny")
    run = run_instrumented(
        lambda rt: getattr(ci, entry)(rt, params), detect=True
    )
    ci.verify(params, run.result)
    assert not run.races
    assert run.metrics.num_nt_joins == 0  # Table 2: all joins are tree joins


def test_future_variant_access_delta_is_two_per_task():
    params = ci.default_params("tiny")
    af = run_instrumented(lambda rt: ci.run_af(rt, params), detect=False)
    fut = run_instrumented(lambda rt: ci.run_future(rt, params), detect=False)
    delta = fut.metrics.num_shared_accesses - af.metrics.num_shared_accesses
    assert delta == 2 * fut.metrics.num_tasks


def test_future_variant_has_more_stored_readers():
    params = ci.default_params("tiny")
    af = run_instrumented(lambda rt: ci.run_af(rt, params), detect=True)
    fut = run_instrumented(lambda rt: ci.run_future(rt, params), detect=True)
    assert 0.0 <= af.avg_readers <= 1.0
    assert fut.avg_readers > af.avg_readers
