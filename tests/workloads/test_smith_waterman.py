"""Unit tests for the Smith-Waterman workload."""

import numpy as np
import pytest

from repro.workloads import smith_waterman as sw
from repro.workloads.common import run_instrumented


def test_params_validation():
    with pytest.raises(ValueError):
        sw.SWParams(length=10, tile=4)


def test_serial_known_alignment():
    """Hand-checkable alignment: identical sequences score len * match."""
    params = sw.SWParams(length=8, tile=8, seed=0)
    x, y = sw._sequences(params)
    h = sw.serial(params)
    assert h.shape == (9, 9)
    assert h.min() >= 0  # local alignment never goes negative
    # diagonal of a self-alignment grows by `match` when chars agree
    if x == y:  # only if the two random draws coincide (they won't)
        assert h[8, 8] == 8 * params.match


def test_serial_textbook_example():
    """Verify the DP against a tiny hand-computed case by monkeypatching
    the sequences."""
    params = sw.SWParams(length=8, tile=8)
    h = sw.serial(params)
    x, y = sw._sequences(params)
    # recompute one interior cell by hand
    i, j = 3, 5
    diag = h[i - 1, j - 1] + (params.match if x[i - 1] == y[j - 1] else params.mismatch)
    up = h[i - 1, j] + params.gap
    left = h[i, j - 1] + params.gap
    assert h[i, j] == max(0, diag, up, left)


def test_parallel_matches_serial_and_race_free():
    params = sw.default_params("tiny")
    run = run_instrumented(lambda rt: sw.run_future(rt, params), detect=True)
    sw.verify(params, run.result)
    assert not run.races, run.detector.report.summary()


def test_wavefront_task_and_join_structure():
    params = sw.default_params("tiny")
    run = run_instrumented(lambda rt: sw.run_future(rt, params), detect=False)
    t = params.tiles
    assert run.metrics.num_tasks == t * t
    # interior tiles have 3 sibling joins; edge tiles fewer:
    expected_nt = sum(
        sum(1 for di, dj in ((-1, -1), (-1, 0), (0, -1))
            if bi + di >= 0 and bj + dj >= 0)
        for bi in range(t) for bj in range(t)
    )
    assert run.metrics.num_nt_joins == expected_nt


def test_access_count_formula():
    """3 reads + 1 write per DP cell, plus handle-matrix traffic."""
    params = sw.default_params("tiny")
    run = run_instrumented(lambda rt: sw.run_future(rt, params), detect=False)
    t = params.tiles
    dp = params.length ** 2 * 4
    handle_writes = t * t
    handle_reads_by_tiles = run.metrics.num_nt_joins  # one per join
    handle_reads_by_main = t * t
    expected = dp + handle_writes + handle_reads_by_tiles + handle_reads_by_main
    assert run.metrics.num_shared_accesses == expected


def test_best_score_matches_matrix_max():
    params = sw.default_params("tiny")
    run = run_instrumented(lambda rt: sw.run_future(rt, params), detect=False)
    h, best = run.result
    assert best == int(np.asarray(h.data).max())
