"""Unit tests for the Series (Fourier coefficients) workload."""

import math

import pytest
from scipy import integrate

from repro.workloads import series
from repro.workloads.common import run_instrumented


def test_integrand_modes():
    assert series._f(0.0, 0, 0) == 1.0  # (0+1)^0
    assert series._f(1.0, 0, 0) == 2.0  # (1+1)^1
    # cosine mode at x=0: cos(0) = 1 -> same as base
    assert series._f(0.0, 1, 3) == series._f(0.0, 0, 0)
    # sine mode at x=0: sin(0) = 0
    assert series._f(0.0, 2, 3) == 0.0


def test_trapezoid_matches_scipy_on_base_function():
    params = series.SeriesParams(n=4, intervals=400)
    ours = series._trapezoid(0, 0, params.intervals)
    xs = [2.0 * i / params.intervals for i in range(params.intervals + 1)]
    ys = [(x + 1.0) ** x for x in xs]
    reference = integrate.trapezoid(ys, xs)
    assert math.isclose(ours, reference, rel_tol=1e-9)


def test_pair_zero_is_halved_a0():
    params = series.SeriesParams(n=2, intervals=64)
    a0, b0 = series._pair(0, params.intervals)
    assert b0 == 0.0
    assert math.isclose(
        a0, series._trapezoid(0, 0, params.intervals) / 2.0, rel_tol=1e-12
    )


def test_serial_shape_and_decay():
    params = series.SeriesParams(n=8, intervals=200)
    coeffs = series.serial(params)
    assert len(coeffs) == 8
    # Fourier coefficients of a smooth function decay: |a_7| < |a_1|
    assert abs(coeffs[7][0]) < abs(coeffs[1][0])


@pytest.mark.parametrize("entry", ["run_af", "run_future"])
def test_parallel_variants_correct_and_race_free(entry):
    params = series.default_params("tiny")
    run = run_instrumented(
        lambda rt: getattr(series, entry)(rt, params), detect=True
    )
    series.verify(params, run.result)
    assert not run.races
    assert run.metrics.num_nt_joins == 0
    assert run.metrics.num_tasks == params.n


def test_future_variant_access_delta():
    params = series.default_params("tiny")
    af = run_instrumented(lambda rt: series.run_af(rt, params), detect=False)
    fut = run_instrumented(
        lambda rt: series.run_future(rt, params), detect=False
    )
    delta = fut.metrics.num_shared_accesses - af.metrics.num_shared_accesses
    assert delta == 2 * params.n


def test_af_avg_readers_in_unit_interval():
    params = series.default_params("tiny")
    run = run_instrumented(lambda rt: series.run_af(rt, params), detect=True)
    assert 0.0 <= run.avg_readers <= 1.0
