"""Unit tests for the live telemetry plane (progress, sampler, server)."""

import io
import json
import urllib.request

import pytest

from repro.obs.exposition import parse_exposition
from repro.obs.live import (
    APPROX_SHADOW_CELL_BYTES,
    LiveTelemetry,
    ProgressCounter,
    RuntimeSampler,
    detector_source,
    thread_runtime_source,
    tracer_source,
)


class FakeClock:
    """A monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestProgressCounter:
    def test_counters_accumulate(self):
        p = ProgressCounter()
        p.add()
        p.add(9)
        p.add_races()
        p.add_races(2)
        snap = p.snapshot()
        assert snap["events"] == 10
        assert snap["races"] == 3

    def test_phase_and_total(self):
        p = ProgressCounter()
        p.set_phase("check")
        p.set_total(50)
        snap = p.snapshot()
        assert snap["phase"] == "check"
        assert snap["total"] == 50

    def test_rate_and_eta_from_injected_clock(self):
        clock = FakeClock()
        p = ProgressCounter(clock=clock)
        p.set_total(100)
        p.add(25)
        clock.advance(5.0)
        snap = p.snapshot()
        assert snap["elapsed_seconds"] == pytest.approx(5.0)
        assert snap["events_per_second"] == pytest.approx(5.0)
        # 75 events remain at 5 ev/s.
        assert snap["eta_seconds"] == pytest.approx(15.0)

    def test_eta_absent_without_total_or_when_done(self):
        clock = FakeClock()
        p = ProgressCounter(clock=clock)
        p.add(10)
        clock.advance(1.0)
        assert p.snapshot()["eta_seconds"] is None
        p.set_total(10)  # already reached
        assert p.snapshot()["eta_seconds"] is None


class TestRuntimeSampler:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            RuntimeSampler(0)
        with pytest.raises(ValueError):
            RuntimeSampler(-1)

    def test_sources_merge_in_registration_order(self):
        s = RuntimeSampler()
        s.add_source(lambda: {"a": 1, "shared": "first"})
        s.add_source(lambda: {"b": 2, "shared": "second"})
        merged = s.sample_once()
        assert merged["a"] == 1
        assert merged["b"] == 2
        assert merged["shared"] == "second"
        assert merged["sampler_samples_total"] == 1

    def test_raising_source_dropped_for_that_tick_only(self):
        s = RuntimeSampler()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("mid-teardown")
            return {"flaky": calls["n"]}

        s.add_source(flaky)
        s.add_source(lambda: {"steady": 1})
        first = s.sample_once()
        assert "flaky" not in first
        assert first["steady"] == 1
        second = s.sample_once()
        assert second["flaky"] == 2

    def test_gauges_property_returns_copy(self):
        s = RuntimeSampler()
        s.add_source(lambda: {"x": 1})
        s.sample_once()
        g = s.gauges
        g["x"] = 999
        assert s.gauges["x"] == 1

    def test_event_rate_ewma_from_progress_deltas(self):
        clock = FakeClock()
        s = RuntimeSampler(clock=clock)
        events = {"n": 0}
        s.add_source(lambda: {"progress_events": events["n"]})
        s.sample_once()  # establishes the baseline; no rate yet
        assert "events_per_second_ewma" not in s.gauges

        events["n"] = 100
        clock.advance(1.0)
        g = s.sample_once()
        assert g["events_per_second_ewma"] == pytest.approx(100.0)

        # Next window at 200 ev/s: EWMA = 0.3*200 + 0.7*100.
        events["n"] = 300
        clock.advance(1.0)
        g = s.sample_once()
        assert g["events_per_second_ewma"] == pytest.approx(130.0)

    def test_cache_hit_rate_ewma(self):
        clock = FakeClock()
        s = RuntimeSampler(clock=clock)
        state = {"hits": 0, "misses": 0}
        s.add_source(
            lambda: {
                "precede_cache_hits": state["hits"],
                "precede_cache_misses": state["misses"],
            }
        )
        s.sample_once()
        state.update(hits=75, misses=25)
        clock.advance(1.0)
        g = s.sample_once()
        assert g["precede_cache_hit_rate_ewma"] == pytest.approx(0.75)

    def test_start_stop_thread(self):
        s = RuntimeSampler(interval=0.01)
        s.add_source(lambda: {"x": 1})
        assert not s.running
        s.start()
        try:
            assert s.running
        finally:
            s.stop()
        assert not s.running
        assert s.samples_total >= 1


class TestSamplerSources:
    def test_detector_source_skips_missing_attributes(self):
        g = detector_source(object())()
        assert g == {}

    def test_detector_source_shadow_and_races(self):
        class Shadow:
            num_locations = 10
            num_accesses = 123

        class Det:
            shadow = Shadow()
            races = [1, 2]

        g = detector_source(Det())()
        assert g["shadow_cells"] == 10
        assert g["shadow_approx_bytes"] == 10 * APPROX_SHADOW_CELL_BYTES
        assert g["detector_accesses"] == 123
        assert g["races_detected"] == 2

    def test_thread_runtime_source(self):
        class RT:
            steals = 7
            failed_steals = 3
            blocked = 0
            pool_size = 2
            stripe_acquisitions = [4, 0, 6]

            def deque_depths(self):
                return [2, 5]

        g = thread_runtime_source(RT())()
        assert g["exec_steals_total"] == 7
        assert g["exec_failed_steals_total"] == 3
        assert g["worker_deque_depths"] == [2, 5]
        assert g["worker_deque_depth_sum"] == 7
        assert g["worker_deque_depth_max"] == 5
        assert g["stripe_lock_acquisitions_total"] == 10
        assert g["stripe_lock_max_acquisitions"] == 6
        assert g["stripe_locks_touched"] == 2

    def test_tracer_source_pins_drop_counter_name(self):
        class Tracer:
            dropped = 4
            capacity = 1024

        g = tracer_source(Tracer())()
        assert g == {
            "obs_trace_dropped_total": 4,
            "obs_trace_capacity": 1024,
        }


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.read()


class TestLiveTelemetry:
    def test_no_server_by_default(self):
        lt = LiveTelemetry()
        assert lt.server is None
        assert lt.url is None

    def test_render_metrics_is_valid_exposition(self):
        lt = LiveTelemetry()
        lt.add_source(lambda: {"shadow_cells": 3})
        lt.progress.add(5)
        text = lt.render_metrics()
        samples = parse_exposition(text)
        assert samples[("repro_shadow_cells", "")] == 3
        assert samples[("repro_progress_events_total", "")] == 5

    def test_render_metrics_filters_non_scalar_gauges(self):
        lt = LiveTelemetry()
        lt.add_source(lambda: {"worker_deque_depths": [1, 2], "ok": 1})
        text = lt.render_metrics()
        assert "worker_deque_depths" not in text
        samples = parse_exposition(text)
        assert samples[("repro_ok", "")] == 1
        # ... but the vector still reaches /snapshot.
        assert lt.snapshot()["gauges"]["worker_deque_depths"] == [1, 2]

    def test_attach_runtime_guard(self):
        lt = LiveTelemetry()
        before = len(lt.sampler._sources)
        lt.attach_runtime(object())  # no deque_depths/steals: not attached
        assert len(lt.sampler._sources) == before

        class RT:
            steals = 1

        lt.attach_runtime(RT())
        assert len(lt.sampler._sources) == before + 1

    def test_attach_detector_and_tracer(self):
        class Tracer:
            dropped = 0
            capacity = 8

        lt = LiveTelemetry(tracer=Tracer())
        assert lt.snapshot()["gauges"]["obs_trace_capacity"] == 8

    def test_from_observability(self):
        from repro.obs.metrics import MetricsRegistry

        class Obs:
            registry = MetricsRegistry()
            tracer = None

        Obs.registry.counter("precede_queries").inc(2)
        lt = LiveTelemetry.from_observability(Obs())
        assert lt.registry is Obs.registry
        text = lt.render_metrics()
        assert "repro_precede_queries_total 2" in text

    def test_http_endpoints(self):
        with LiveTelemetry(port=0) as lt:
            assert lt.url is not None
            lt.progress.add(3)
            lt.progress.set_phase("check")

            assert _get(f"{lt.url}/healthz") == b"ok\n"

            text = _get(f"{lt.url}/metrics").decode()
            samples = parse_exposition(text)
            assert samples[("repro_progress_events_total", "")] == 3

            snap = json.loads(_get(f"{lt.url}/snapshot"))
            assert snap["progress"]["events"] == 3
            assert snap["progress"]["phase"] == "check"
            assert "gauges" in snap

            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(f"{lt.url}/nope")
            assert exc.value.code == 404

    def test_heartbeat_writes_to_stream(self):
        stream = io.StringIO()
        lt = LiveTelemetry(heartbeat=0.001, heartbeat_stream=stream)
        lt.progress.add(7)
        lt.progress.add_races(1)
        lt.progress.set_total(10)
        lt.progress.set_phase("check")
        lt.start()
        lt.stop()  # emits at least the final heartbeat line
        out = stream.getvalue()
        assert "[live]" in out
        assert "events=7/10 (70.0%)" in out
        assert "races=1" in out
        assert "phase=check" in out

    def test_stop_is_idempotent(self):
        lt = LiveTelemetry(port=0)
        lt.start()
        lt.stop()
        lt.stop()
