"""Unit tests for the Prometheus text exposition renderer/validator."""

import pytest

from repro.obs.exposition import (
    DEFAULT_PREFIX,
    ExpositionError,
    main,
    parse_exposition,
    render_exposition,
)
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("precede_queries").inc(42)
    h = reg.histogram("batch_events", (10, 100))
    for v in (5, 50, 500):
        h.observe(v)
    return reg


class TestRender:
    def test_counter_gets_total_suffix_and_type(self):
        text = render_exposition(registry=_registry())
        assert "# TYPE repro_precede_queries_total counter" in text
        assert "repro_precede_queries_total 42" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_exposition(registry=_registry())
        samples = parse_exposition(text)
        assert samples[("repro_batch_events_bucket", 'le="10"')] == 1
        assert samples[("repro_batch_events_bucket", 'le="100"')] == 2
        assert samples[("repro_batch_events_bucket", 'le="+Inf"')] == 3
        assert samples[("repro_batch_events_count", "")] == 3
        assert samples[("repro_batch_events_sum", "")] == 555

    def test_histogram_quantiles_are_separate_gauge_families(self):
        text = render_exposition(registry=_registry())
        assert "# TYPE repro_batch_events_p50 gauge" in text
        assert "# TYPE repro_batch_events_p95 gauge" in text
        assert "# TYPE repro_batch_events_p99 gauge" in text
        # and never inside the histogram family itself
        assert 'repro_batch_events{quantile="' not in text

    def test_gauges_and_progress(self):
        text = render_exposition(
            gauges={"shadow_cells": 7, "exec_steals_total": 3},
            progress={"events": 10, "races": 1, "total": 20, "phase": "check"},
        )
        samples = parse_exposition(text)
        assert samples[("repro_shadow_cells", "")] == 7
        # *_total gauges are typed as counters
        assert "# TYPE repro_exec_steals_total counter" in text
        assert samples[("repro_progress_events_total", "")] == 10
        assert samples[("repro_progress_races_total", "")] == 1
        assert samples[("repro_progress_expected_events", "")] == 20
        assert samples[("repro_progress_phase_info", 'phase="check"')] == 1

    def test_obs_prefixed_gauge_kept_verbatim(self):
        # The satellite-pinned drop counter must keep its exact name.
        text = render_exposition(gauges={"obs_trace_dropped_total": 4})
        samples = parse_exposition(text)
        assert samples[("obs_trace_dropped_total", "")] == 4
        assert ("repro_obs_trace_dropped_total", "") not in samples

    def test_none_gauges_skipped_and_empty_renders_empty(self):
        assert render_exposition() == ""
        text = render_exposition(gauges={"a": None})
        assert text == ""

    def test_custom_prefix(self):
        text = render_exposition(
            registry=_registry(), prefix="x_"
        )
        assert "x_precede_queries_total 42" in text
        assert DEFAULT_PREFIX not in text

    def test_round_trip_is_strictly_valid(self):
        text = render_exposition(
            registry=_registry(),
            gauges={"shadow_cells": 1, "obs_trace_dropped_total": 0},
            progress={"events": 5, "races": 0, "total": 10, "phase": "p"},
        )
        parse_exposition(text)  # must not raise


class TestParseStrictness:
    def test_sample_before_type_rejected(self):
        with pytest.raises(ExpositionError, match="no preceding # TYPE"):
            parse_exposition("repro_x 1\n")

    def test_counter_without_total_suffix_rejected(self):
        with pytest.raises(ExpositionError, match="_total"):
            parse_exposition("# TYPE repro_x counter\nrepro_x 1\n")

    def test_duplicate_series_rejected(self):
        text = "# TYPE repro_x gauge\nrepro_x 1\nrepro_x 2\n"
        with pytest.raises(ExpositionError, match="duplicate series"):
            parse_exposition(text)

    def test_duplicate_type_rejected(self):
        text = "# TYPE repro_x gauge\n# TYPE repro_x gauge\n"
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            parse_exposition(text)

    def test_malformed_value_rejected(self):
        with pytest.raises(ExpositionError, match="malformed sample value"):
            parse_exposition("# TYPE repro_x gauge\nrepro_x pony\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ExpositionError, match="malformed labels"):
            parse_exposition('# TYPE repro_x gauge\nrepro_x{oops} 1\n')

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ExpositionError, match="not cumulative"):
            parse_exposition(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            "repro_h_sum 1\n"
            "repro_h_count 1\n"
        )
        with pytest.raises(ExpositionError, match=r"\+Inf"):
            parse_exposition(text)

    def test_count_disagreeing_with_inf_bucket_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="_count"):
            parse_exposition(text)

    def test_inf_and_nan_values_accepted(self):
        samples = parse_exposition(
            "# TYPE repro_x gauge\nrepro_x +Inf\n# TYPE repro_y gauge\n"
            "repro_y NaN\n"
        )
        assert samples[("repro_x", "")] == float("inf")


class TestCli:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        path.write_text(render_exposition(registry=_registry()))
        assert main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("repro_x 1\n")
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_usage_error_exits_two(self):
        assert main([]) == 2
        assert main(["/nonexistent/path/metrics.txt"]) == 2
