"""Unit tests for the observability metrics primitives."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    EpochWindowRatio,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments():
    c = Counter()
    assert c.value == 0
    c.inc()
    c.inc(5)
    assert c.value == 6
    assert c.as_dict() == 6


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_bounds(self):
        h = Histogram((10, 20, 40))
        for v in (0, 10, 11, 20, 39, 40, 41, 1000):
            h.observe(v)
        # (-inf,10]=0,10 ; (10,20]=11,20 ; (20,40]=39,40 ; overflow=41,1000
        assert h.counts == [2, 2, 2, 2]
        assert h.count == 8
        assert h.min == 0 and h.max == 1000
        assert h.total == sum((0, 10, 11, 20, 39, 40, 41, 1000))

    def test_mean_and_percentiles(self):
        h = Histogram((1, 2, 4, 8))
        for v in (1, 1, 1, 2, 8):
            h.observe(v)
        assert h.mean == pytest.approx(13 / 5)
        assert h.percentile(50) == 1
        assert h.percentile(99) == 8
        assert h.percentile(100) == 8

    def test_empty_histogram(self):
        h = Histogram((1, 2))
        assert h.mean == 0.0
        assert h.percentile(99) == 0.0
        d = h.as_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None

    def test_overflow_percentile_uses_observed_max(self):
        h = Histogram((1,))
        h.observe(500)
        assert h.percentile(50) == 500

    def test_as_dict_shape(self):
        h = Histogram((5, 10))
        h.observe(3)
        d = h.as_dict()
        assert [b["le"] for b in d["buckets"]] == [5, 10, "+Inf"]
        assert sum(b["count"] for b in d["buckets"]) == d["count"] == 1
        assert set(d) == {
            "count", "sum", "min", "max", "mean", "p50", "p99", "buckets",
        }

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((5, 1))


class TestEpochWindowRatio:
    def test_windows_key_by_epoch_div_window(self):
        r = EpochWindowRatio(window=10)
        r.observe(0, True)
        r.observe(9, False)
        r.observe(10, True)
        d = r.as_dict()
        assert d["window"] == 10
        assert [w["epoch_start"] for w in d["windows"]] == [0, 10]
        assert d["windows"][0]["rate"] == pytest.approx(0.5)
        assert d["windows"][1]["rate"] == pytest.approx(1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            EpochWindowRatio(window=0)


class TestMetricsRegistry:
    def test_create_on_first_use_and_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", (1, 2)) is reg.histogram("h")
        assert reg.epoch_ratio("r") is reg.epoch_ratio("r")

    def test_as_dict_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", (1,)).observe(1)
        reg.epoch_ratio("r").observe(0, True)
        d = reg.as_dict()
        assert d["counters"] == {"c": 1}
        assert d["histograms"]["h"]["count"] == 1
        assert d["epoch_windows"]["r"]["windows"][0]["total"] == 1

    def test_write_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert json.loads(path.read_text()) == reg.as_dict()
