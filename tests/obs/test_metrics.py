"""Unit tests for the observability metrics primitives."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    EpochWindowRatio,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments():
    c = Counter()
    assert c.value == 0
    c.inc()
    c.inc(5)
    assert c.value == 6
    assert c.as_dict() == 6


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_bounds(self):
        h = Histogram((10, 20, 40))
        for v in (0, 10, 11, 20, 39, 40, 41, 1000):
            h.observe(v)
        # (-inf,10]=0,10 ; (10,20]=11,20 ; (20,40]=39,40 ; overflow=41,1000
        assert h.counts == [2, 2, 2, 2]
        assert h.count == 8
        assert h.min == 0 and h.max == 1000
        assert h.total == sum((0, 10, 11, 20, 39, 40, 41, 1000))

    def test_mean_and_percentiles(self):
        h = Histogram((1, 2, 4, 8))
        for v in (1, 1, 1, 2, 8):
            h.observe(v)
        assert h.mean == pytest.approx(13 / 5)
        assert h.percentile(50) == 1
        assert h.percentile(99) == 8
        assert h.percentile(100) == 8

    def test_empty_histogram(self):
        h = Histogram((1, 2))
        assert h.mean == 0.0
        assert h.percentile(99) == 0.0
        d = h.as_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None

    def test_overflow_percentile_uses_observed_max(self):
        h = Histogram((1,))
        h.observe(500)
        assert h.percentile(50) == 500

    def test_as_dict_shape(self):
        h = Histogram((5, 10))
        h.observe(3)
        d = h.as_dict()
        assert [b["le"] for b in d["buckets"]] == [5, 10, "+Inf"]
        assert sum(b["count"] for b in d["buckets"]) == d["count"] == 1
        assert set(d) == {
            "count", "sum", "min", "max", "mean", "p50", "p99", "buckets",
            "quantiles",
        }
        assert set(d["quantiles"]) == {"p50", "p95", "p99"}

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((5, 1))


class TestInterpolatedQuantiles:
    """The PR 9 linear-interpolation estimator (distinct from the pinned
    bucket-upper-bound ``percentile``)."""

    def test_empty(self):
        assert Histogram((1, 2)).quantile(0.5) == 0.0

    def test_interior_bucket_interpolates_linearly(self):
        # 10 obs in (-inf,10] and 10 in (10,20]: the cumulative fraction
        # crosses q=0.75 halfway through the second bucket -> 15.0.
        h = Histogram((10, 20, 40))
        h.observe(0)            # pins min=0 so clamping stays out of play
        for _ in range(9):
            h.observe(5)
        for _ in range(10):
            h.observe(15)
        h.observe(40)           # pins max=40 (interior estimates < 40)
        # 21 observations: rank q*21 at q=0.75 lands mid second bucket.
        est = h.quantile(0.75)
        assert 10.0 < est < 20.0
        assert est == pytest.approx(15.75, abs=0.01)

    def test_exact_cumulative_boundary_returns_bucket_upper_bound(self):
        # Second bucket's cumulative fraction is exactly 0.5 -> le=20,
        # with observations beyond so the [min,max] clamp can't bite.
        h = Histogram((10, 20, 40))
        for v in (5, 15, 25, 35):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(20.0)

    def test_estimate_clamped_to_observed_range(self):
        # A single observation sits mid-bucket; naive interpolation would
        # report the bucket midpoint band, but no estimate may escape
        # [min, max] = [50, 50].
        h = Histogram((100,))
        h.observe(50)
        assert h.quantile(0.5) == 50
        assert h.quantile(0.99) == 50

    def test_overflow_bucket_uses_observed_max(self):
        h = Histogram((10,))
        h.observe(5)
        h.observe(500)
        assert h.quantile(1.0) == 500
        assert h.quantile(0.25) <= 10

    def test_quantile_from_dump_matches_live_histogram(self):
        from repro.obs.metrics import quantile_from_dump

        h = Histogram((1, 2, 4, 8))
        for v in (1, 1, 2, 3, 5, 8, 13):
            h.observe(v)
        dump = json.loads(json.dumps(h.as_dict()))  # via-JSON round trip
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            assert quantile_from_dump(dump, q) == pytest.approx(
                h.quantile(q)
            )

    def test_quantile_rejects_bad_q(self):
        h = Histogram((1,))
        h.observe(1)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestEpochWindowRatio:
    def test_windows_key_by_epoch_div_window(self):
        r = EpochWindowRatio(window=10)
        r.observe(0, True)
        r.observe(9, False)
        r.observe(10, True)
        d = r.as_dict()
        assert d["window"] == 10
        assert [w["epoch_start"] for w in d["windows"]] == [0, 10]
        assert d["windows"][0]["rate"] == pytest.approx(0.5)
        assert d["windows"][1]["rate"] == pytest.approx(1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            EpochWindowRatio(window=0)


class TestMetricsRegistry:
    def test_create_on_first_use_and_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", (1, 2)) is reg.histogram("h")
        assert reg.epoch_ratio("r") is reg.epoch_ratio("r")

    def test_as_dict_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", (1,)).observe(1)
        reg.epoch_ratio("r").observe(0, True)
        d = reg.as_dict()
        assert d["counters"] == {"c": 1}
        assert d["histograms"]["h"]["count"] == 1
        assert d["epoch_windows"]["r"]["windows"][0]["total"] == 1

    def test_write_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert json.loads(path.read_text()) == reg.as_dict()
