"""Tests for the Observability hook bundle and the null-object protocol."""

from repro.core.detector import DeterminacyRaceDetector
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.obs import NULL_OBSERVABILITY, Observability, RingTracer


def enabled_obs():
    return Observability(tracer=RingTracer())


class TestNullObjectProtocol:
    def test_null_observability_is_disabled(self):
        assert NULL_OBSERVABILITY.enabled is False
        assert NULL_OBSERVABILITY.tracer is None

    def test_attach_null_is_a_true_no_op(self):
        g = DynamicTaskReachabilityGraph()
        g.attach_observability(None)
        g.attach_observability(NULL_OBSERVABILITY)
        # No instance-attribute shadowing: the class methods stay bound.
        assert "precede" not in vars(g)
        assert "add_task" not in vars(g)

    def test_detector_normalizes_disabled_obs_to_none(self):
        det = DeterminacyRaceDetector(obs=NULL_OBSERVABILITY)
        assert det.obs is None
        assert "precede" not in vars(det.dtrg)

    def test_attach_enabled_rebinds_query_and_mutators(self):
        g = DynamicTaskReachabilityGraph()
        g.attach_observability(enabled_obs())
        for name in (
            "precede", "add_task", "record_join", "merge", "on_terminate",
        ):
            assert name in vars(g)


class TestRuntimeSpans:
    def test_task_spans_pair_up(self):
        obs = enabled_obs()
        obs.task_begin(3, "worker", True)
        obs.task_end(3)
        events = obs.tracer.events()
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "worker"
        assert spans[0]["tid"] == 3
        assert spans[0]["args"]["future"] is True
        assert obs.registry.counter("tasks_spawned").value == 1

    def test_unmatched_end_is_ignored(self):
        obs = enabled_obs()
        obs.task_end(99)
        obs.finish_end(99)
        assert obs.tracer.events() == []

    def test_finish_spans_land_on_owner_track(self):
        obs = enabled_obs()
        obs.finish_begin(7, owner_tid=2)
        obs.finish_end(7)
        span = obs.tracer.events()[0]
        assert span["name"] == "finish#7"
        assert span["tid"] == 2

    def test_get_join_instant(self):
        obs = enabled_obs()
        obs.on_get(5, 4)
        inst = obs.tracer.events()[0]
        assert inst["cat"] == "join"
        assert inst["tid"] == 5
        assert inst["args"]["producer"] == 4


class TestDtrgHooks:
    def test_on_precede_records_metrics_and_instant(self):
        obs = enabled_obs()
        obs.on_precede("A", "B", True, 1500, 2, "miss", epoch=7)
        obs.on_precede("A", "B", True, 300, 0, "hit", epoch=8)
        obs.on_precede("A", "C", False, 100, 0, "level0", epoch=8)
        reg = obs.registry
        assert reg.counter("precede_miss").value == 1
        assert reg.counter("precede_hit").value == 1
        assert reg.counter("precede_level0").value == 1
        assert reg.histogram("precede_latency_ns").count == 3
        assert reg.histogram("explore_frontier").count == 3
        timeline = reg.epoch_ratio("cache_hit_by_epoch_window").as_dict()
        # level0 outcomes stay out of the cache timeline.
        assert timeline["windows"][0]["total"] == 2
        instants = [
            e for e in obs.tracer.events() if e["name"] == "precede"
        ]
        assert instants[0]["args"]["outcome"] == "miss"
        assert instants[0]["args"]["visited"] == 2

    def test_on_mutation_counts_by_kind(self):
        obs = enabled_obs()
        obs.on_mutation("add_task", 1, "T1")
        obs.on_mutation("merge", 2)
        assert obs.registry.counter("dtrg_add_task").value == 1
        assert obs.registry.counter("dtrg_merge").value == 1
        names = [e["name"] for e in obs.tracer.events()]
        assert names == ["dtrg.add_task", "dtrg.merge"]

    def test_metrics_only_mode_needs_no_tracer(self):
        obs = Observability(tracer=None)
        obs.task_begin(1, "t", False)
        obs.task_end(1)
        obs.on_precede("A", "B", True, 10, 0, "level0", epoch=0)
        obs.on_shadow_access("read", 1, ("x", 0), 2, 50)
        obs.on_race("read-write", 0, 1, ("x", 0))
        obs.ws_step(0, 3, 0, 2)
        obs.ws_steal(1, 0, 4, hit=False, victim_depth=0)
        assert obs.registry.counter("races_reported").value == 1


class TestShadowAndRaceHooks:
    def test_shadow_access_populations(self):
        obs = enabled_obs()
        obs.on_shadow_access("read", 2, ("x", 0), 3, 100)
        obs.on_shadow_access("write", 2, ("x", 0), 1, 100)
        assert obs.registry.counter("shadow_reads").value == 1
        assert obs.registry.counter("shadow_writes").value == 1
        assert obs.registry.histogram("cell_readers").count == 2

    def test_race_instant(self):
        obs = enabled_obs()
        obs.on_race("write-read", 1, 2, ("x", 3))
        inst = obs.tracer.events()[0]
        assert inst["cat"] == "race"
        assert inst["args"]["kind"] == "write-read"


class TestWorkStealingHooks:
    def test_virtual_cycle_timestamps(self):
        obs = enabled_obs()
        obs.ws_step(0, 11, start_cycle=4, weight=3)
        obs.ws_steal(1, 0, cycle=4, hit=True, victim_depth=2)
        step, steal = obs.tracer.events()
        assert step["ph"] == "X"
        assert step["ts"] == 4.0 and step["dur"] == 3.0
        assert steal["name"] == "steal"
        assert steal["ts"] == 4.0
        assert obs.registry.counter("ws_steals").value == 1
        assert obs.registry.histogram("ws_victim_depth").count == 1


def test_write_trace_requires_tracer(tmp_path):
    import pytest

    obs = Observability(tracer=None)
    with pytest.raises(ValueError):
        obs.write_trace(tmp_path / "t.json")
    obs.write_metrics(tmp_path / "m.json")  # metrics always available
    assert (tmp_path / "m.json").exists()
