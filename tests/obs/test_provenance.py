"""Unit tests for the race provenance layer (flight recorder + witnesses)."""

import json

from repro.core.detector import DeterminacyRaceDetector
from repro.graph import GraphBuilder, ReachabilityClosure
from repro.memory.shared import SharedArray
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.obs.provenance import (
    SITE_UNKNOWN,
    RaceProvenance,
    RaceWitness,
    SiteTable,
    confirm_witness,
    render_witness_text,
    witness_report_data,
)
from repro.obs.validate import validate_witness, validate_witness_report
from repro.runtime.runtime import Runtime


class TestSiteTable:
    def test_interns_and_dedupes(self):
        table = SiteTable(capacity=8)
        a = table.intern("prog.py", 3, "worker")
        assert a != SITE_UNKNOWN
        assert table.intern("prog.py", 3, "worker") == a
        assert table.intern("prog.py", 4, "worker") != a
        assert table.label(a) == "prog.py:3 (worker)"
        assert len(table) == 2
        assert table.num_dropped == 0

    def test_overflow_collapses_to_unknown_and_counts(self):
        table = SiteTable(capacity=2)
        a = table.intern("p.py", 1, "f")
        b = table.intern("p.py", 2, "f")
        c = table.intern("p.py", 3, "f")
        assert a != SITE_UNKNOWN and b != SITE_UNKNOWN
        assert c == SITE_UNKNOWN
        assert table.num_dropped == 1
        assert table.label(c) == "<unknown>"
        # existing sites still intern to their ids after overflow
        assert table.intern("p.py", 1, "f") == a

    def test_intern_label_replay_path(self):
        table = SiteTable(capacity=4)
        sid = table.intern_label("prog.py:9 (main)")
        assert table.label(sid) == "prog.py:9 (main)"
        assert table.intern_label("prog.py:9 (main)") == sid
        assert table.intern_label(None) == SITE_UNKNOWN
        assert table.intern_label("") == SITE_UNKNOWN

    def test_out_of_range_sid_is_unknown(self):
        table = SiteTable()
        assert table.label(999) == "<unknown>"
        assert table.label(-1) == "<unknown>"


def run_racy(provenance=None, extra_observers=()):
    """One future-read race, accesses performed directly in this file so
    the captured sites point here (past the runtime/shared skip list)."""
    det = DeterminacyRaceDetector(provenance=provenance)
    rt = Runtime(observers=[det, *extra_observers], provenance=provenance)

    def program(rt):
        data = SharedArray(rt, "data", 2)
        f = rt.future(lambda: data.write(0, 1), name="producer")
        data.read(0)
        f.get()

    rt.run(program)
    return det


class TestFlightRecorder:
    def test_sites_point_at_user_code(self):
        prov = RaceProvenance()
        det = run_racy(prov)
        (race,) = list(det.report)
        assert race.prev_site and "test_provenance.py" in race.prev_site
        assert "(<lambda>)" in race.prev_site
        assert race.current_site and "(program)" in race.current_site
        assert race.witness_id == "w0"

    def test_spawn_sites_and_ring(self):
        prov = RaceProvenance()
        run_racy(prov)
        # tid 1 = the producer future, spawned from program()
        assert prov.spawn_site_label(1) and "(program)" in prov.spawn_site_label(1)
        kinds = [entry[0] for entry in prov.recent()]
        assert kinds == ["spawn", "write", "read", "get"]
        assert prov.num_events == 4

    def test_ring_is_bounded(self):
        prov = RaceProvenance(ring_capacity=2)
        run_racy(prov)
        assert len(prov.recent()) == 2
        assert prov.num_events == 4
        assert prov.recent(1)[0][0] == "get"

    def test_site_capacity_bounds_memory(self):
        prov = RaceProvenance(site_capacity=1)
        run_racy(prov)
        assert len(prov.sites) == 1
        assert prov.sites.num_dropped > 0

    def test_disabled_path_installs_nothing(self):
        det = DeterminacyRaceDetector()
        rt = Runtime(observers=[det])
        assert len(rt._observers) == 1  # no provenance adapter injected
        assert det.provenance is None
        assert det.witnesses == []


class TestWitnesses:
    def test_witness_built_per_deduplicated_race(self):
        prov = RaceProvenance()
        det = run_racy(prov)
        assert len(det.witnesses) == len(list(det.report)) == 1
        (w,) = det.witnesses
        assert w.kind == "write-read"
        assert w.loc == ("data", 0)
        assert w.certificate["verdict"] is False

    def test_witness_confirmed_and_schema_valid(self):
        prov = RaceProvenance()
        gb = GraphBuilder()
        det = run_racy(prov, extra_observers=[gb])
        (w,) = det.witnesses
        assert confirm_witness(w, gb.graph,
                               closure=ReachabilityClosure(gb.graph))
        assert validate_witness(w.to_data()) == []
        report = witness_report_data(det.witnesses, program="prog.py",
                                     verified=True)
        assert validate_witness_report(report) == []
        json.dumps(report)  # JSON-serializable end to end

    def test_render_witness_text(self):
        prov = RaceProvenance()
        det = run_racy(prov)
        text = render_witness_text(det.witnesses[0])
        assert "witness w0" in text
        assert "PRECEDE(1, 0) = False" in text
        assert "producer" in text
        assert "reverse direction" in text

    def test_render_without_certificate(self):
        w = RaceWitness(witness_id="w9", loc="x", kind="write-write",
                        prev_task=1, current_task=2)
        assert "(no certificate recorded)" in render_witness_text(w)


class TestReplayProvenance:
    def test_sites_survive_record_replay(self):
        recording_prov = RaceProvenance()
        recorder = TraceRecorder(provenance=recording_prov)
        run_racy(recording_prov, extra_observers=[recorder])

        replay_prov = RaceProvenance()
        det = DeterminacyRaceDetector(provenance=replay_prov)
        replay_trace(recorder.trace, [det], provenance=replay_prov)
        (race,) = list(det.report)
        assert race.prev_site and "test_provenance.py" in race.prev_site
        assert race.current_site and "(program)" in race.current_site
        assert det.witnesses and det.witnesses[0].certificate["verdict"] is False

    def test_replay_without_provenance_still_detects(self):
        recorder = TraceRecorder()
        run_racy(extra_observers=[recorder])
        det = DeterminacyRaceDetector()
        replay_trace(recorder.trace, [det])
        assert det.report.racy_locations == {("data", 0)}
        (race,) = list(det.report)
        assert race.prev_site is None and race.witness_id is None
