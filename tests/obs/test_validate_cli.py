"""CLI robustness tests for ``python -m repro.obs.validate``.

The contract: exit 0 on valid documents, exit 1 on *any* invalid input —
including truncated/malformed JSON — with a pointed one-line message and
never a traceback, and exit 2 only for usage errors / unreadable files.
"""

import json

from repro.obs.validate import main as validate_main


def test_truncated_json_exits_one_with_pointed_message(tmp_path, capsys):
    bad = tmp_path / "truncated.json"
    bad.write_text('{"traceEvents": [{"ph": "X", "name"')
    assert validate_main([str(bad)]) == 1
    err = capsys.readouterr().err
    assert "not valid JSON" in err
    assert str(bad) in err
    assert "Traceback" not in err


def test_empty_file_exits_one(tmp_path, capsys):
    bad = tmp_path / "empty.json"
    bad.write_text("")
    assert validate_main([str(bad)]) == 1
    assert "not valid JSON" in capsys.readouterr().err


def test_unknown_phase_exits_one(tmp_path, capsys):
    bad = tmp_path / "phase.json"
    bad.write_text(json.dumps({"traceEvents": [
        {"ph": "B", "name": "span", "pid": 1, "tid": 1, "ts": 0, "cat": "c"},
    ]}))
    assert validate_main([str(bad)]) == 1
    err = capsys.readouterr().err
    assert "bad phase 'B'" in err


def test_non_monotonic_instant_ts_exits_one(tmp_path, capsys):
    bad = tmp_path / "backwards.json"
    bad.write_text(json.dumps({"traceEvents": [
        {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 10.0,
         "cat": "c", "s": "t"},
        {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 5.0,
         "cat": "c", "s": "t"},
    ]}))
    assert validate_main([str(bad)]) == 1
    assert "goes backwards" in capsys.readouterr().err


def test_instants_on_different_tracks_may_interleave(tmp_path, capsys):
    ok = tmp_path / "tracks.json"
    ok.write_text(json.dumps({"traceEvents": [
        {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 10.0,
         "cat": "c", "s": "t"},
        {"ph": "i", "name": "b", "pid": 1, "tid": 2, "ts": 5.0,
         "cat": "c", "s": "t"},
    ]}))
    assert validate_main([str(ok)]) == 0


def test_nested_complete_spans_are_ts_exempt(tmp_path, capsys):
    """X spans close inner-first, so emission order is not ts order."""
    ok = tmp_path / "spans.json"
    ok.write_text(json.dumps({"traceEvents": [
        {"ph": "X", "name": "inner", "pid": 1, "tid": 1, "ts": 8.0,
         "cat": "c", "dur": 1.0},
        {"ph": "X", "name": "outer", "pid": 1, "tid": 1, "ts": 0.0,
         "cat": "c", "dur": 10.0},
    ]}))
    assert validate_main([str(ok)]) == 0


def test_valid_witness_report_exits_zero(tmp_path, capsys):
    from repro.obs.provenance import RaceProvenance, witness_report_data
    from repro.core.detector import DeterminacyRaceDetector
    from repro.memory.shared import SharedArray
    from repro.runtime.runtime import Runtime

    prov = RaceProvenance()
    det = DeterminacyRaceDetector(provenance=prov)
    rt = Runtime(observers=[det], provenance=prov)

    def program(rt):
        data = SharedArray(rt, "d", 1)
        f = rt.future(lambda: data.write(0, 1))
        data.read(0)
        f.get()

    rt.run(program)
    path = tmp_path / "witness.json"
    path.write_text(json.dumps(witness_report_data(det.witnesses)))
    assert validate_main([str(path)]) == 0
    assert "valid witness report" in capsys.readouterr().out


def test_witness_with_true_verdict_exits_one(tmp_path, capsys):
    doc = {
        "schema": "repro.race-witness-report/1",
        "witnesses": [{
            "schema": "repro.race-witness/1",
            "witness_id": "w0",
            "race": {"loc": ["x", 0], "kind": "write-read",
                     "prev_task": 1, "current_task": 0},
            "certificate": {
                "verdict": True,  # an *ordering* is not a race witness
                "a_label": {"pre": 1, "post": 2},
                "b_label": {"pre": 0, "post": 3},
                "a_set": {"rep": 1, "nt": [], "members": [1]},
                "b_set": {"rep": 0, "nt": [], "members": [0]},
                "level0": {"same_task": False},
                "search": None,
            },
        }],
    }
    path = tmp_path / "bad_witness.json"
    path.write_text(json.dumps(doc))
    assert validate_main([str(path)]) == 1
    assert "'verdict' must be false" in capsys.readouterr().err


def test_witness_missing_certificate_exits_one(tmp_path, capsys):
    doc = {"schema": "repro.race-witness/1", "witness_id": "w0",
           "race": {"loc": 0, "kind": "write-write",
                    "prev_task": 1, "current_task": 2}}
    path = tmp_path / "no_cert.json"
    path.write_text(json.dumps(doc))
    assert validate_main([str(path)]) == 1
    assert "certificate" in capsys.readouterr().err


def test_dropped_events_warn_but_still_exit_zero(tmp_path, capsys):
    """A wrapped ring buffer is a *warning* — the trace stays valid."""
    from repro.obs.trace import RingTracer

    ticks = iter(range(0, 1_000_000, 1000))
    t = RingTracer(capacity=2, clock=lambda: next(ticks))
    for n in range(6):
        t.instant(f"e{n}", "c", 0)
    path = tmp_path / "wrapped.json"
    t.write(path)
    assert validate_main([str(path)]) == 0
    captured = capsys.readouterr()
    assert "warning: ring buffer dropped 4 event(s)" in captured.err
    assert "valid Chrome trace" in captured.out


def test_complete_trace_emits_no_drop_warning(tmp_path, capsys):
    bare = tmp_path / "ok.json"
    bare.write_text(json.dumps({"traceEvents": []}))
    assert validate_main([str(bare)]) == 0
    assert "dropped" not in capsys.readouterr().err


def test_trace_dropped_events_helper():
    from repro.obs.validate import trace_dropped_events

    assert trace_dropped_events({"traceEvents": []}) == 0
    assert trace_dropped_events(
        {"traceEvents": [], "otherData": {"dropped": 7}}) == 7
    # Falls back to the metadata record when otherData is absent.
    assert trace_dropped_events({"traceEvents": [
        {"ph": "M", "name": "trace_buffer_stats", "pid": 1, "tid": 0,
         "args": {"dropped": 3}},
    ]}) == 3
    assert trace_dropped_events(None) == 0


def test_missing_file_still_exits_two(tmp_path, capsys):
    assert validate_main([str(tmp_path / "nope.json")]) == 2
    assert validate_main([]) == 2
