"""Unit tests for the ring-buffer tracer and the trace-schema validator."""

import json

import pytest

from repro.obs.trace import RingTracer
from repro.obs.validate import main as validate_main, validate_chrome_trace


def make_tracer(**kw):
    # Deterministic clock: each call advances 1000ns = 1us.
    ticks = iter(range(0, 10_000_000, 1000))
    return RingTracer(clock=lambda: next(ticks), **kw)


class TestRingTracer:
    def test_complete_and_instant_events(self):
        t = make_tracer()
        t.complete("task", "task", 3, 0.0, 5.0, args={"tid": 3})
        t.instant("precede", "dtrg", 3, args={"verdict": True})
        x, i = t.events()
        assert x["ph"] == "X" and x["dur"] == 5.0 and x["tid"] == 3
        assert i["ph"] == "i" and i["s"] == "t" and i["args"]["verdict"]

    def test_synthetic_track_ids_are_stable_and_disjoint(self):
        t = make_tracer()
        a = t.track_id("dtrg")
        b = t.track_id("shadow")
        assert t.track_id("dtrg") == a
        assert a != b
        assert a >= 1_000_000  # never collides with task ids
        assert t.track_id(7) == 7

    def test_ring_overwrites_oldest_and_counts_dropped(self):
        t = make_tracer(capacity=3)
        for n in range(5):
            t.instant(f"e{n}", "c", 0)
        assert len(t) == 3
        assert t.dropped == 2
        assert [e["name"] for e in t.events()] == ["e2", "e3", "e4"]
        chrome = t.to_chrome()
        assert chrome["otherData"]["dropped"] == 2

    def test_track_name_metadata(self):
        t = make_tracer()
        t.set_track_name(4, "task worker")
        meta = [e for e in t.to_chrome()["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "task worker"
        assert meta[0]["tid"] == 4

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_drop_metadata_record_emitted_when_ring_wrapped(self):
        t = make_tracer(capacity=2)
        for n in range(5):
            t.instant(f"e{n}", "c", 0)
        chrome = t.to_chrome()
        stats = [e for e in chrome["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "trace_buffer_stats"]
        assert len(stats) == 1
        assert stats[0]["args"] == {
            "dropped": 3, "capacity": 2, "complete": False,
        }
        # The stats record is still schema-valid Chrome metadata.
        from repro.obs.validate import validate_chrome_trace
        assert validate_chrome_trace(chrome) == []

    def test_no_drop_metadata_record_without_drops(self):
        t = make_tracer(capacity=8)
        t.instant("only", "c", 0)
        chrome = t.to_chrome()
        assert not any(e.get("name") == "trace_buffer_stats"
                       for e in chrome["traceEvents"])
        assert chrome["otherData"]["dropped"] == 0

    def test_write_produces_valid_schema(self, tmp_path):
        t = make_tracer()
        t.set_track_name("dtrg", "DTRG")
        t.complete("main", "task", 0, 0.0, 2.5)
        t.instant("mut", "dtrg", "dtrg")
        path = tmp_path / "trace.json"
        t.write(path)
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"foo": 1}) != []

    def test_flags_bad_events(self):
        bad = {"traceEvents": [
            {"ph": "Q", "name": "x", "pid": 1, "tid": 1},
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0.0,
             "cat": "c", "dur": -1},
            {"ph": "i", "name": "x", "pid": 1, "tid": 1, "ts": 0.0,
             "cat": "c", "s": "z"},
            {"ph": "X", "name": 3, "pid": "one", "tid": 1, "ts": "zero",
             "cat": 9, "dur": 1},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) >= 4

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"traceEvents": []}))
        assert validate_main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Q"}]}))
        assert validate_main([str(bad)]) == 1
        assert validate_main([str(tmp_path / "missing.json")]) == 2
        assert validate_main([]) == 2
