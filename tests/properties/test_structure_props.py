"""Property tests of the DTRG's building blocks: interval labels and
disjoint sets."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.disjoint_set import DisjointSets
from repro.core.labels import LabelAllocator
from repro.graph import GraphBuilder
from repro.testing.generator import program_strategy, run_program


# ---------------------------------------------------------------------- #
# Interval labels driven by random spawn trees                           #
# ---------------------------------------------------------------------- #
@st.composite
def spawn_trees(draw, max_nodes=24):
    """A random tree as a parent vector: parent[i] < i."""
    n = draw(st.integers(1, max_nodes))
    parents = [None] + [draw(st.integers(0, i - 1)) for i in range(1, n)]
    return parents


def _labels_for_tree(parents):
    """Assign labels by simulating the depth-first spawn/terminate order."""
    children = {i: [] for i in range(len(parents))}
    for i, p in enumerate(parents):
        if p is not None:
            children[p].append(i)
    alloc = LabelAllocator()
    labels = {}

    def walk(node):
        labels[node] = alloc.on_spawn()
        for child in children[node]:
            walk(child)
        alloc.on_terminate(labels[node])

    walk(0)
    return labels


def _is_ancestor(parents, a, b):
    node = parents[b]
    while node is not None:
        if node == a:
            return True
        node = parents[node]
    return False


@given(parents=spawn_trees())
@settings(max_examples=200, deadline=None)
def test_containment_iff_ancestry(parents):
    labels = _labels_for_tree(parents)
    n = len(parents)
    for a in range(n):
        for b in range(n):
            expected = a == b or _is_ancestor(parents, a, b)
            assert labels[a].contains(labels[b]) == expected, (a, b)


@given(parents=spawn_trees())
@settings(max_examples=100, deadline=None)
def test_preorders_are_dense_and_unique(parents):
    labels = _labels_for_tree(parents)
    pres = sorted(label.pre for label in labels.values())
    assert pres == list(range(0, 2 * len(parents), 2)) or len(set(pres)) == len(
        parents
    )


# ---------------------------------------------------------------------- #
# Disjoint sets vs a naive model                                         #
# ---------------------------------------------------------------------- #
@given(
    n=st.integers(1, 30),
    ops=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
)
@settings(max_examples=150, deadline=None)
def test_union_find_matches_naive_partition(n, ops):
    ds = DisjointSets()
    model = {i: {i} for i in range(n)}
    for i in range(n):
        ds.make_set(i)
    for a, b in ops:
        a, b = a % n, b % n
        ds.union(a, b)
        sa, sb = None, None
        for group in model.values():
            if a in group:
                sa = group
            if b in group:
                sb = group
        if sa is not sb:
            sa |= sb
            for member in sb:
                model[member] = sa
    for a in range(n):
        for b in range(n):
            assert ds.same_set(a, b) == (model[a] is model[b]), (a, b)
    assert ds.num_sets == len({id(g) for g in model.values()})


# ---------------------------------------------------------------------- #
# DTRG structural invariants on generated programs                       #
# ---------------------------------------------------------------------- #
@given(program=program_strategy(num_locs=2, max_leaves=25))
@settings(max_examples=80, deadline=None)
def test_dtrg_invariants_after_execution(program):
    from repro import DeterminacyRaceDetector

    det = DeterminacyRaceDetector()
    gb = GraphBuilder()
    run_program(program, [gb, det])
    graph = gb.graph
    dtrg = det.dtrg

    for tid in graph.task_parent:
        node = dtrg.node(tid)
        # 1. labels are finalized and nest along the spawn tree
        assert node.label.final
        parent = graph.task_parent[tid]
        if parent is not None:
            assert dtrg.node(parent).label.contains(node.label)
        # 2. the set's lsa, if any, is a proper ancestor of the set's
        #    root-most member (the invariant the LSA walk termination uses)
        data = dtrg.set_data(tid)
        if data.lsa is not None:
            assert data.lsa.label.pre < data.label.pre
            assert data.lsa.label.contains(data.label)
        # 3. max_pre dominates the set label's pre
        assert data.max_pre >= data.label.pre
        # 4. every recorded non-tree predecessor was spawned before the
        #    getter could exist (sources predate some member)
        for pred in data.nt:
            assert pred.label.pre <= data.max_pre


@given(program=program_strategy(num_locs=2, max_leaves=25))
@settings(max_examples=80, deadline=None)
def test_counters_match_graph(program):
    """DTRG tree-merge + non-tree counters tie out against the graph's
    join-edge classification under Algorithm 4's merge condition."""
    from repro import DeterminacyRaceDetector
    from repro.graph import EdgeKind

    det = DeterminacyRaceDetector()
    gb = GraphBuilder()
    run_program(program, [gb, det])
    nt_edges = gb.graph.edge_counts()[EdgeKind.JOIN_NON_TREE]
    # Algorithm 4 merges only when the producer's parent is already in the
    # consumer's set, which implies the consumer is an ancestor — so every
    # algorithmic tree join is a definitional tree join.  The converse can
    # fail (ancestor join with an unjoined intermediate is recorded as a
    # non-tree edge), hence >= rather than ==.
    assert det.dtrg.num_non_tree_edges >= nt_edges
