"""Flat-array engine ≡ object-graph engine, under fuzzing.

Four properties over 200 generated programs (ALGORITHM.md §13):

1. **Query equivalence** — ``ArrayDTRG.precede()`` (driven as the
   detector's ``engine="array"``) is bit-equivalent to the object DTRG
   on *every* task pair of the finished graph.
2. **Freeze equivalence** — ``DTRGSnapshot.freeze`` of the array graph
   (the ``snapshot_state`` near-memcpy path) answers every pair exactly
   like the snapshot frozen from the object graph.
3. **Fast-path equivalence** — ``check_trace_fast`` over the batched
   ``EncodedTrace`` reproduces the sequential replay byte-for-byte:
   same ``summary()``, same race list in the same order, same racy
   locations, same invariant ``DetectorPerf`` counters, same
   ``#AvgReaders``.
4. **Sharded replay on the batched build** — ``check_trace_parallel``
   at jobs ∈ {1, 2, 4} (exercising the list-batched decoder) stays
   byte-identical to the sequential replay.

The internal verdict memo in ``ArrayDTRG`` and the inlined shadow loops
in ``fastcheck`` are exactly the machinery these sweeps exist to keep
honest: any verdict or counter drift shows up as a seed-numbered
counterexample.
"""

import random

import pytest

from repro.core.detector import DeterminacyRaceDetector
from repro.core.events import encode_trace
from repro.core.fastcheck import check_trace_fast
from repro.core.parallel_check import check_trace_parallel
from repro.core.snapshot import DTRGSnapshot
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.testing.generator import random_program, run_program

NUM_SEEDS = 200
BAND = 40
JOBS = (1, 2, 4)
INVARIANT_PERF = (
    "precede_queries", "mutation_epoch", "shadow_fast_hits",
    "precede_calls_saved",
)


def _replay(trace, **options):
    det = DeterminacyRaceDetector(**options)
    replay_trace(trace, [det])
    return det


@pytest.mark.parametrize("band", range(0, NUM_SEEDS, BAND))
def test_array_engine_equivalence_fuzz(band):
    racy_seeds = 0
    for seed in range(band, band + BAND):
        rec = TraceRecorder()
        run_program(random_program(random.Random(seed)), [rec])
        trace = rec.trace

        golden = _replay(trace)
        # Capture before the all-pairs sweeps below: every live-graph
        # precede() bumps the query counters.
        golden_summary = golden.report.summary()
        golden_order = [r.pair_key for r in golden.races]
        golden_perf = golden.perf_stats
        racy_seeds += bool(golden_order)

        arr = _replay(trace, engine="array")
        assert arr.report.summary() == golden_summary, (
            f"seed {seed}: array-engine summary diverges"
        )
        assert [r.pair_key for r in arr.races] == golden_order, (
            f"seed {seed}: array-engine race order diverges"
        )
        assert arr.racy_locations == golden.racy_locations
        arr_perf = arr.perf_stats
        for key in INVARIANT_PERF:
            assert arr_perf[key] == golden_perf[key], (
                f"seed {seed}: array-engine counter {key} diverges "
                f"({arr_perf[key]} vs {golden_perf[key]})"
            )

        fast = check_trace_fast(encode_trace(trace))
        assert fast.summary() == golden_summary, (
            f"seed {seed}: fastcheck summary diverges"
        )
        assert [r.pair_key for r in fast.races] == golden_order, (
            f"seed {seed}: fastcheck race order diverges"
        )
        assert fast.racy_locations == golden.racy_locations
        fast_perf = fast.perf_stats
        for key in INVARIANT_PERF:
            assert fast_perf[key] == golden_perf[key], (
                f"seed {seed}: fastcheck counter {key} diverges "
                f"({fast_perf[key]} vs {golden_perf[key]})"
            )
        assert abs(fast.avg_readers - golden.shadow.avg_readers) < 1e-12

        # All-pairs: live array graph vs live object graph, and the two
        # freeze paths (near-memcpy vs object walk) against each other.
        snap_obj = DTRGSnapshot.freeze(golden.dtrg)
        snap_arr = DTRGSnapshot.freeze(arr.dtrg)
        for a in snap_obj.keys:
            for b in snap_obj.keys:
                want = golden.dtrg.precede(a, b)
                assert arr.dtrg.precede(a, b) == want, (
                    f"seed {seed}: ArrayDTRG diverges on ({a}, {b})"
                )
                assert snap_arr.precede(a, b) == want, (
                    f"seed {seed}: array-frozen snapshot diverges "
                    f"on ({a}, {b})"
                )
                assert snap_obj.precede(a, b) == want, (
                    f"seed {seed}: object-frozen snapshot diverges "
                    f"on ({a}, {b})"
                )

        for jobs in JOBS:
            result = check_trace_parallel(trace, jobs=jobs,
                                          backend="inline")
            assert result.summary() == golden_summary, (
                f"seed {seed} jobs={jobs}: summary diverges"
            )
            assert [r.pair_key for r in result.races] == golden_order, (
                f"seed {seed} jobs={jobs}: race order diverges"
            )
            perf = result.perf_stats
            for key in INVARIANT_PERF:
                assert perf[key] == golden_perf[key], (
                    f"seed {seed} jobs={jobs}: counter {key} diverges"
                )
    # A sweep where nothing races would vacuously pass the report
    # comparisons; every band is expected to surface racy programs.
    assert racy_seeds > 0
