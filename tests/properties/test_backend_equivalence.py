"""Cross-backend PRECEDE equivalence under fuzzing (ALGORITHM.md §14).

The serial checker only ever asks ``precede(a, b)`` while ``b`` is the
currently executing task — that calling contract is what lets the DePa
labels and the vector clocks answer with no graph at hand.  A post-mortem
all-pairs sweep would be degenerate (after the final joins the DTRG
answers ``True`` almost universally, and a frozen clock cannot witness a
task that was live when the query mattered), so the sweep here replays
the contract: an observer forwards every structural event to all four
backends exactly the way the detector does, and at every boundary diffs
``precede(a, current)`` for every task seen so far.

Three properties over 200 generated programs:

1. **Fork-join equivalence** — on the fork-join projection of each
   program (futures demoted to asyncs, gets dropped) all four engines
   (object, array, depa, vc) agree on every in-contract query.
2. **General equivalence** — on the original program (futures and gets
   included) the three general engines (object, array, vc) agree.
3. **DePa's decline boundary** — ``engine="depa"`` raises
   ``UnsupportedConstructError`` on a program *iff* it executes at least
   one ``get``; the fragment boundary is exact, never silent.

Verdict-level equivalence (race lists through the full detector) is the
fuzzer's job (``repro-fuzz`` rows ``depa``/``vc``); this sweep pins the
query layer underneath it.
"""

import random

import pytest

from repro.core.array_dtrg import ArrayDTRG
from repro.core.depa import DePaBackend
from repro.core.detector import DeterminacyRaceDetector
from repro.core.events import ExecutionObserver
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.core.vc_backend import VectorClockBackend
from repro.runtime.errors import UnsupportedConstructError
from repro.testing.generator import (
    Async,
    Finish,
    Future,
    Get,
    Program,
    random_program,
    run_program,
)

NUM_SEEDS = 200
BAND = 40


def _forkjoinify(body):
    """Project a program onto the fork-join fragment: futures become
    plain asyncs and gets are dropped (their only semantic content is
    the join edge DePa declines to witness)."""
    out = []
    for node in body:
        if isinstance(node, Get):
            continue
        if isinstance(node, (Async, Future)):
            out.append(Async(_forkjoinify(node.body)))
        elif isinstance(node, Finish):
            out.append(Finish(_forkjoinify(node.body)))
        else:
            out.append(node)
    return out


class _Harness(ExecutionObserver):
    """Forward structure to raw backends the way the detector does and
    diff ``precede(a, current)`` across them at every boundary."""

    def __init__(self, backends):
        self.backends = backends  # [(name, backend)]; first is golden
        self.known = []
        self.stack = []
        self.divergences = []
        self.queries = 0

    def _each(self, fn):
        for _, backend in self.backends:
            fn(backend)

    def _diff(self, point):
        if not self.stack:
            return
        cur = self.stack[-1]
        golden_name, golden = self.backends[0]
        for a in self.known:
            want = golden.precede(a, cur)
            for name, backend in self.backends[1:]:
                self.queries += 1
                got = backend.precede(a, cur)
                if got != want:
                    self.divergences.append(
                        f"{point}: precede({a}, {cur}) "
                        f"{name}={got} vs {golden_name}={want}"
                    )

    # Structural callbacks, mirrored from the detector's wiring.
    def on_init(self, main):
        self._each(lambda b: b.add_root(main.tid, name=main.name))
        self.known.append(main.tid)
        self.stack.append(main.tid)
        self._diff("init")

    def on_task_create(self, parent, child):
        self._each(lambda b: b.add_task(
            parent.tid, child.tid,
            is_future=child.is_future, name=child.name,
        ))
        self.known.append(child.tid)
        self.stack.append(child.tid)
        self._diff("task-create")

    def on_task_end(self, task):
        self._diff("task-end")
        self._each(lambda b: b.on_terminate(task.tid))
        if self.stack and self.stack[-1] == task.tid:
            self.stack.pop()

    def on_get(self, consumer, producer):
        self._each(lambda b: b.record_join(consumer.tid, producer.tid))
        self._diff("get")

    def on_finish_start(self, scope):
        self._each(lambda b: b.begin_finish(scope.owner.tid))
        self._diff("finish-start")

    def on_finish_end(self, scope):
        owner = scope.owner.tid
        for task in scope.joins:
            self._each(lambda b: b.merge(owner, task.tid))
        self._each(lambda b: b.end_finish(owner))
        self._diff("finish-end")


def _sweep(seed, *, forkjoin):
    prog = random_program(random.Random(seed))
    if forkjoin:
        prog = Program(num_locs=prog.num_locs,
                       body=_forkjoinify(prog.body))
    rows = [
        ("object", DynamicTaskReachabilityGraph()),
        ("array", ArrayDTRG()),
        ("vc", VectorClockBackend()),
    ]
    if forkjoin:
        rows.insert(2, ("depa", DePaBackend()))
    harness = _Harness(rows)
    run_program(prog, [harness])
    return harness


@pytest.mark.parametrize("band", range(0, NUM_SEEDS, BAND))
def test_forkjoin_all_backends_agree_in_contract(band):
    queries = 0
    for seed in range(band, band + BAND):
        harness = _sweep(seed, forkjoin=True)
        assert not harness.divergences, (
            f"seed {seed}: {harness.divergences[:5]}"
        )
        queries += harness.queries
    assert queries > 0  # a sweep that never queried proves nothing


@pytest.mark.parametrize("band", range(0, NUM_SEEDS, BAND))
def test_general_backends_agree_in_contract(band):
    queries = 0
    for seed in range(band, band + BAND):
        harness = _sweep(seed, forkjoin=False)
        assert not harness.divergences, (
            f"seed {seed}: {harness.divergences[:5]}"
        )
        queries += harness.queries
    assert queries > 0


class _GetCounter(ExecutionObserver):
    def __init__(self):
        self.gets = 0

    def on_get(self, consumer, producer):
        self.gets += 1


@pytest.mark.parametrize("band", range(0, NUM_SEEDS, BAND))
def test_depa_declines_exactly_on_executed_gets(band):
    declined = 0
    for seed in range(band, band + BAND):
        prog = random_program(random.Random(seed))
        # The counter runs *before* the detector so the triggering get is
        # already counted when DePa raises.
        counter = _GetCounter()
        det = DeterminacyRaceDetector(engine="depa")
        try:
            run_program(prog, [counter, det])
            refused = False
        except UnsupportedConstructError:
            refused = True
        assert refused == (counter.gets > 0), (
            f"seed {seed}: depa {'refused' if refused else 'accepted'} "
            f"a program with {counter.gets} executed get(s)"
        )
        declined += refused
    # Generated programs are future-heavy; every band must exercise the
    # refusal path (acceptance is exercised by the fork-join sweep).
    assert declined > 0
