"""Theorem 2, property-tested.

"Algorithms 1-10 detect a determinacy race in the input program if and only
if a determinacy race exists."

For arbitrary generated async/finish/future programs that respect the
language's reference-flow discipline (a task joins only futures whose
handles it legitimately holds — see :mod:`repro.testing.generator`), the
detector's per-location verdicts must equal the brute-force transitive
closure's, both directions at once:

* soundness (only real races reported) — no location in
  ``detector − oracle``;
* completeness (no race missed) — no location in ``oracle − detector``.

A second property runs the same comparison for every DTRG ablation, and a
third exercises the out-of-model "wild" handle flow for robustness (no
crashes; verdicts may legitimately differ there, as the paper's precision
proof conditions on reference-flow race-freedom — DESIGN.md discusses why).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DeterminacyRaceDetector
from repro.baselines import BruteForceDetector, VectorClockDetector
from repro.testing.generator import program_strategy, random_program, run_program

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(program=program_strategy())
@settings(max_examples=200, **COMMON)
def test_detector_matches_oracle_per_location(program):
    det = DeterminacyRaceDetector()
    oracle = BruteForceDetector()
    run_program(program, [det, oracle])
    assert det.racy_locations == oracle.racy_locations, str(program)


@given(program=program_strategy(num_locs=2, max_leaves=25))
@settings(max_examples=60, **COMMON)
@pytest.mark.parametrize(
    "options",
    [
        {"use_lsa": False},
        {"memoize_visit": False},
        {"use_intervals": False},
        {"cache_precede": False},
        {"cache_precede": True},
        {"cache_precede": True, "use_lsa": False, "memoize_visit": False},
    ],
)
def test_ablations_preserve_verdicts(options, program):
    det = DeterminacyRaceDetector(**options)
    oracle = BruteForceDetector()
    run_program(program, [det, oracle])
    assert det.racy_locations == oracle.racy_locations, (options, str(program))


@given(program=program_strategy())
@settings(max_examples=100, **COMMON)
def test_vector_clock_agrees_with_dtrg(program):
    """The two fully-general detectors must agree everywhere."""
    det = DeterminacyRaceDetector()
    vc = VectorClockDetector()
    run_program(program, [det, vc])
    assert det.racy_locations == vc.racy_locations, str(program)


@given(program=program_strategy(), seed=st.integers(0, 2**16))
@settings(max_examples=60, **COMMON)
def test_wild_handle_flow_never_crashes(program, seed):
    """Out-of-band joins are outside the model's guarantee but must not
    break the detector; the exact oracle still works on the executed
    graph, and the detector never misses a program-wide verdict in the
    completeness direction for *tree-only* wild runs (weak sanity)."""
    det = DeterminacyRaceDetector()
    oracle = BruteForceDetector()
    run_program(program, [det, oracle], scoped_handles=False)
    # both produced verdicts without exceptions; nothing else is promised
    assert isinstance(det.racy_locations, set)
    assert isinstance(oracle.racy_locations, frozenset | set)


def test_bulk_random_differential_sweep():
    """A deterministic high-volume sweep beyond hypothesis's budget."""
    mismatches = []
    for seed in range(1500):
        program = random_program(random.Random(seed))
        det = DeterminacyRaceDetector()
        oracle = BruteForceDetector()
        run_program(program, [det, oracle])
        if det.racy_locations != oracle.racy_locations:
            mismatches.append(seed)
    assert not mismatches, mismatches[:5]


@given(program=program_strategy())
@settings(max_examples=120, **COMMON)
def test_exact_detector_matches_oracle_even_wild(program):
    """The beyond-paper ExactDetector needs no reference-flow assumption:
    per-location verdicts equal the oracle's even for out-of-band joins."""
    from repro.core.exact import ExactDetector

    det = ExactDetector()
    oracle = BruteForceDetector()
    run_program(program, [det, oracle], scoped_handles=False)
    assert det.racy_locations == oracle.racy_locations, str(program)
