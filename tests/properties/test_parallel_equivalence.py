"""Sharded parallel checking ≡ sequential replay, under fuzzing.

Three properties over ≥200 generated programs (ALGORITHM.md §12):

1. **Snapshot fidelity** — ``DTRGSnapshot.freeze`` of the finished DTRG
   answers ``precede`` exactly like the live graph on *every* task pair.
2. **Sharded equivalence** — ``check_trace_parallel`` at jobs ∈ {1, 2, 4}
   reproduces the sequential replay detector byte-for-byte: same race
   list in the same order, same ``summary()`` text, same racy locations,
   same job-count-invariant ``DetectorPerf`` counters.
3. **Encoded-input equivalence** — feeding the same trace as an
   :class:`~repro.core.events.EncodedTrace` reproduces the event-list
   build byte-for-byte at every job count.

Shard assignment is by location hash and workers replay the structure
log independently, so any soundness slip (e.g. answering from the
post-merge final state — the masked-race trap) or any ordering slip in
the merge shows up as a seed-numbered counterexample here.
"""

import random

import pytest

from repro.core.detector import DeterminacyRaceDetector
from repro.core.parallel_check import check_trace_parallel
from repro.core.snapshot import DTRGSnapshot
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.testing.generator import random_program, run_program

NUM_SEEDS = 240
JOBS = (1, 2, 4)
INVARIANT_PERF = (
    "precede_queries", "mutation_epoch", "shadow_fast_hits",
    "precede_calls_saved",
)


def _sequential(trace):
    det = DeterminacyRaceDetector()
    replay_trace(trace, [det])
    return det


@pytest.mark.parametrize("band", range(0, NUM_SEEDS, 40))
def test_parallel_equivalence_fuzz(band):
    racy_seeds = 0
    for seed in range(band, band + 40):
        rec = TraceRecorder()
        run_program(random_program(random.Random(seed)), [rec])
        trace = rec.trace
        det = _sequential(trace)
        # Capture the golden counters *before* the all-pairs sweep below:
        # each live-graph precede() bumps the detector's query counters.
        golden_summary = det.report.summary()
        golden_order = [r.pair_key for r in det.races]
        golden_perf = det.perf_stats

        snap = DTRGSnapshot.freeze(det.dtrg)
        for a in snap.keys:
            for b in snap.keys:
                assert snap.precede(a, b) == det.dtrg.precede(a, b), (
                    f"seed {seed}: snapshot diverges on ({a}, {b})"
                )
        racy_seeds += bool(golden_order)
        for jobs in JOBS:
            result = check_trace_parallel(trace, jobs=jobs,
                                          backend="inline")
            assert result.summary() == golden_summary, (
                f"seed {seed} jobs={jobs}: summary diverges"
            )
            assert [r.pair_key for r in result.races] == golden_order, (
                f"seed {seed} jobs={jobs}: race order diverges"
            )
            assert result.racy_locations == det.racy_locations, (
                f"seed {seed} jobs={jobs}: racy locations diverge"
            )
            perf = result.perf_stats
            for key in INVARIANT_PERF:
                assert perf[key] == golden_perf[key], (
                    f"seed {seed} jobs={jobs}: counter {key} diverges "
                    f"({perf[key]} vs {golden_perf[key]})"
                )
    # The generator must actually exercise the racy path in every band,
    # or the equivalence above is vacuous.
    assert racy_seeds > 0


@pytest.mark.parametrize("band", range(0, NUM_SEEDS, 40))
def test_encoded_trace_input_equivalence_fuzz(band):
    """``check_trace_parallel`` consumes :class:`EncodedTrace` blocks
    directly (no per-event object decode in the build phase) and must
    stay byte-identical to the event-list path at every job count: same
    ``summary()`` text, same ordered race list, same racy locations, the
    *whole* ``perf_stats`` dict, and the same event totals.  The encoded
    build stores task *keys* in shard buckets — a dense-index slip there
    shows up as a post-remap divergence here."""
    from repro.core.events import encode_trace

    racy_seeds = 0
    for seed in range(band, band + 40):
        rec = TraceRecorder()
        run_program(random_program(random.Random(seed)), [rec])
        trace = rec.trace
        encoded = encode_trace(trace)
        for jobs in JOBS:
            want = check_trace_parallel(trace, jobs=jobs, backend="inline")
            got = check_trace_parallel(encoded, jobs=jobs, backend="inline")
            assert got.summary() == want.summary(), (
                f"seed {seed} jobs={jobs}: encoded summary diverges"
            )
            assert ([r.pair_key for r in got.races]
                    == [r.pair_key for r in want.races]), (
                f"seed {seed} jobs={jobs}: encoded race order diverges"
            )
            assert got.racy_locations == want.racy_locations
            assert got.perf_stats == want.perf_stats, (
                f"seed {seed} jobs={jobs}: encoded perf counters diverge"
            )
            assert got.num_events == want.num_events
            assert got.num_access_events == want.num_access_events
            racy_seeds += bool(got.races)
    assert racy_seeds > 0


def test_fork_backend_equivalence_sample():
    """A smaller sweep through real worker processes (fork), so the
    pickle-free inherit path is fuzzed too, not just the inline one."""
    checked = 0
    for seed in range(30):
        rec = TraceRecorder()
        run_program(random_program(random.Random(seed)), [rec])
        det = _sequential(rec.trace)
        result = check_trace_parallel(rec.trace, jobs=2, backend="fork")
        assert result.summary() == det.report.summary(), f"seed {seed}"
        checked += 1
    assert checked == 30
