"""Property tests for the multiprocessor scheduling simulators."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import GraphBuilder
from repro.runtime.workstealing import WorkStealingSimulator, greedy_schedule
from repro.testing.generator import program_strategy, run_program

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def graph_of(program):
    gb = GraphBuilder()
    run_program(program, [gb])
    return gb.graph


@given(
    program=program_strategy(num_locs=2, max_leaves=25),
    workers=st.integers(1, 12),
)
@settings(max_examples=100, **COMMON)
def test_greedy_brent_bound(program, workers):
    """T_p <= ceil(T_1 / p) + T_inf for every graph and worker count."""
    graph = graph_of(program)
    stats = greedy_schedule(graph, workers)
    assert stats.satisfies_brent_bound(), str(program)
    assert stats.makespan >= stats.span
    assert stats.makespan * workers >= stats.work  # can't beat perfect


@given(
    program=program_strategy(num_locs=2, max_leaves=25),
    workers=st.integers(1, 8),
    seed=st.integers(0, 100),
)
@settings(max_examples=80, **COMMON)
def test_work_stealing_is_a_legal_schedule(program, workers, seed):
    """Work stealing executes every step exactly once, respects the span
    lower bound, and burns exactly the graph's work in busy time."""
    graph = graph_of(program)
    stats = WorkStealingSimulator(graph, workers, seed=seed).run()
    assert stats.busy == stats.work
    assert stats.makespan >= stats.span
    assert stats.makespan >= (stats.work + workers - 1) // workers


@given(program=program_strategy(num_locs=2, max_leaves=25))
@settings(max_examples=60, **COMMON)
def test_parallel_never_slower_than_serial(program):
    """Greedy with any worker count beats one worker: some worker is busy
    whenever steps remain, so the makespan never exceeds the total work.
    (Strict monotonicity in p is *not* asserted — Graham's scheduling
    anomalies make it false in general for weighted steps.)"""
    graph = graph_of(program)
    t1 = greedy_schedule(graph, 1).makespan
    for p in (2, 4, 8):
        assert greedy_schedule(graph, p).makespan <= t1
