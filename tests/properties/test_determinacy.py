"""The Determinism Property (Appendix A.3), property-tested.

"If a parallel program is written using only async, finish and future
constructs, and is guaranteed to never exhibit a data race, then it must be
determinate" — and, constructively, every detected race on a location can
be turned into two schedules whose observable behaviour differs there.
"""

from hypothesis import HealthCheck, given, settings

from repro import DeterminacyRaceDetector
from repro.graph import GraphBuilder, ReachabilityClosure
from repro.runtime.parallel import (
    demonstrate_nondeterminism,
    is_determinate,
    sample_outcomes,
)
from repro.testing.generator import program_strategy, run_program

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(program=program_strategy(num_locs=3, max_leaves=25))
@settings(max_examples=80, **COMMON)
def test_race_free_programs_are_determinate(program):
    det = DeterminacyRaceDetector()
    gb = GraphBuilder()
    run_program(program, [gb, det])
    if det.report.has_races:
        return
    assert is_determinate(gb.graph, samples=15, seed=3)


@given(program=program_strategy(num_locs=3, max_leaves=25))
@settings(max_examples=80, **COMMON)
def test_race_witnesses_are_real_or_race_is_masked(program):
    """For each racy location, either two concrete linear extensions with
    different observable outcomes on it exist, or the race is *masked*
    (the paper's "racy, yet determinate" case, e.g. racing writes both
    overwritten by an ordered final write and never read) — in which case
    sampled schedules must agree on that location."""
    det = DeterminacyRaceDetector()
    gb = GraphBuilder()
    run_program(program, [gb, det])
    closure = ReachabilityClosure(gb.graph)
    samples = None
    for loc in det.racy_locations:
        witness = demonstrate_nondeterminism(gb.graph, loc, closure)
        if witness is not None:
            a, b = witness
            assert any(str(loc) in diff for diff in a.differs_from(b))
        else:
            if samples is None:
                samples = sample_outcomes(gb.graph, samples=10, seed=5)
            for outcome in samples[1:]:
                fw0 = dict(samples[0].final_writer)
                fw = dict(outcome.final_writer)
                assert fw0.get(loc) == fw.get(loc), (loc, str(program))


@given(program=program_strategy(num_locs=2, max_leaves=20))
@settings(max_examples=50, **COMMON)
def test_depth_first_schedule_is_among_sampled_behaviours(program):
    """The serial elision (step-id order) is itself a legal schedule; for
    race-free programs its outcome equals every sampled outcome."""
    det = DeterminacyRaceDetector()
    gb = GraphBuilder()
    run_program(program, [gb, det])
    if det.report.has_races:
        return
    from repro.runtime.parallel import schedule_outcome

    dfs = schedule_outcome(gb.graph, list(range(gb.graph.num_steps)))
    for outcome in sample_outcomes(gb.graph, samples=8, seed=1):
        assert outcome == dfs
