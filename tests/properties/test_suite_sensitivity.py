"""Does the verification methodology actually have teeth?

Each test here *breaks* the detector in a way a plausible implementation
bug would, and asserts that the differential corpus catches it.  If one of
these ever passes silently, the ground-truth suite has gone vacuous — the
meta-failure mode of differential testing.
"""

from repro.baselines import BruteForceDetector
from repro.core.detector import DeterminacyRaceDetector
from repro.testing.programs import CORPUS, run_corpus_program


def corpus_disagrees_with(detector_factory) -> bool:
    """True if any corpus program exposes the broken detector."""
    for program in CORPUS:
        det = detector_factory()
        oracle = BruteForceDetector()
        try:
            run_corpus_program(program, [det, oracle])
        except Exception:
            return True  # crashing counts as caught
        if det.racy_locations != oracle.racy_locations:
            return True
    return False


class _NoNonTreeEdges(DeterminacyRaceDetector):
    """Bug: forget to record non-tree joins (Algorithm 4 else-branch)."""

    def on_get(self, consumer, producer) -> None:
        dtrg = self.dtrg
        c, p = dtrg._nodes[consumer.tid], dtrg._nodes[producer.tid]
        if p.parent is not None and dtrg._sets.same_set(c, p.parent):
            dtrg.merge(consumer.tid, producer.tid)
        # else: silently dropped


class _NoFinishMerges(DeterminacyRaceDetector):
    """Bug: forget Algorithm 6 (end-finish merges)."""

    def on_finish_end(self, scope) -> None:
        pass


class _NoReaderSet(DeterminacyRaceDetector):
    """Bug: never store readers (write-after-read races vanish)."""

    def on_read(self, task, loc) -> None:
        pass


class _AlwaysOrdered(DeterminacyRaceDetector):
    """Bug: precede() returns True unconditionally."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.shadow._precede = lambda a, b: True


class _NeverOrderedAcrossTasks(DeterminacyRaceDetector):
    """Bug: precede() is just identity (pure per-task program order)."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.shadow._precede = lambda a, b: a == b


def test_dropped_non_tree_edges_caught():
    assert corpus_disagrees_with(_NoNonTreeEdges)


def test_dropped_finish_merges_caught():
    assert corpus_disagrees_with(_NoFinishMerges)


def test_dropped_reader_set_caught():
    assert corpus_disagrees_with(_NoReaderSet)


def test_always_ordered_caught():
    assert corpus_disagrees_with(_AlwaysOrdered)


def test_never_ordered_caught():
    assert corpus_disagrees_with(_NeverOrderedAcrossTasks)


def test_unbroken_detector_passes_the_same_gauntlet():
    assert not corpus_disagrees_with(DeterminacyRaceDetector)
