"""Property tests for the paper's supporting lemmas (Appendices A & B)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BruteForceDetector
from repro.graph import EdgeKind, GraphBuilder, ReachabilityClosure
from repro.testing.generator import (
    Async,
    Finish,
    Program,
    Read,
    Write,
    program_strategy,
    run_program,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def build_graph(program, extra=()):
    gb = GraphBuilder()
    observers = [gb, *extra]
    run_program(program, observers)
    return gb.graph


@given(program=program_strategy(num_locs=2, max_leaves=20))
@settings(max_examples=100, **COMMON)
def test_lemma3_pseudo_transitivity(program):
    """Lemma 3: s1, s2, s3 in depth-first order with s1 ≺ s2 and s1 ∥ s3
    implies s2 ∥ s3 (holds for *any* of our computation graphs)."""
    graph = build_graph(program)
    cl = ReachabilityClosure(graph)
    n = graph.num_steps
    if n > 22:
        return  # cubic check; keep it cheap
    for s1 in range(n):
        for s2 in range(s1 + 1, n):
            if not cl.precedes(s1, s2):
                continue
            for s3 in range(s2 + 1, n):
                if cl.parallel(s1, s3):
                    assert cl.parallel(s2, s3), (s1, s2, s3)


@st.composite
def async_finish_programs(draw):
    """Programs using only async/finish (no futures) for Lemma 4."""

    def wrap(children):
        block = st.lists(children, min_size=0, max_size=3).map(tuple)
        return st.one_of(
            st.builds(Async, body=block), st.builds(Finish, body=block)
        )

    leaf = st.one_of(
        st.builds(Read, loc=st.integers(0, 1)),
        st.builds(Write, loc=st.integers(0, 1)),
    )
    stmt = st.recursive(leaf, wrap, max_leaves=20)
    body = st.lists(stmt, min_size=0, max_size=5).map(tuple)
    return Program(body=draw(body), num_locs=2)


@given(program=async_finish_programs())
@settings(max_examples=100, **COMMON)
def test_lemma4_async_transitive_parallelism(program):
    """Lemma 4: for async tasks, s1 ∥ s2 and s2 ∥ s3 (in DFS order)
    implies s1 ∥ s3 — the fact that lets the shadow memory keep a single
    async reader."""
    graph = build_graph(program)
    cl = ReachabilityClosure(graph)
    n = graph.num_steps
    if n > 22:
        return
    for s1 in range(n):
        for s2 in range(s1 + 1, n):
            if not cl.parallel(s1, s2):
                continue
            for s3 in range(s2 + 1, n):
                if cl.parallel(s2, s3):
                    assert cl.parallel(s1, s3), (s1, s2, s3)


@given(program=program_strategy(num_locs=2, max_leaves=25))
@settings(max_examples=100, **COMMON)
def test_lemma1_spawn_continuation_precedes_joiners(program):
    """Lemma 1 (Appendix A): in a race-free program, the step holding a
    future's reference (the spawner's continuation) precedes every step
    that follows a join on that future."""
    oracle = BruteForceDetector()
    gb = GraphBuilder()
    run_program(program, [gb, oracle])
    if oracle.report.has_races:
        return  # the lemma is conditioned on race freedom
    graph = gb.graph
    cl = ReachabilityClosure(graph)
    spawn_cont = {}  # first step of task T -> spawner's continuation step
    for src, dst, kind in graph.edges:
        if kind is EdgeKind.SPAWN:
            # the continuation is src's continue-successor
            conts = [
                d for s, d, k in graph.edges
                if s == src and k is EdgeKind.CONTINUE
            ]
            if conts:
                spawn_cont[dst] = conts[0]
    for src, dst, kind in graph.edges:
        if kind not in (EdgeKind.JOIN_TREE, EdgeKind.JOIN_NON_TREE):
            continue
        producer_task = graph.steps[src].task
        first = graph.first_step[producer_task]
        s_m = spawn_cont.get(first)
        if s_m is None:
            continue
        assert cl.precedes(s_m, dst) or s_m == dst, (s_m, dst)


@given(program=program_strategy(num_locs=2, max_leaves=25))
@settings(max_examples=100, **COMMON)
def test_lemma2_graph_is_acyclic_and_dfs_compatible(program):
    """Lemma 2's consequence: the computation graph of any execution is a
    DAG whose edges all point forward in depth-first order."""
    graph = build_graph(program)
    assert all(src < dst for src, dst, _ in graph.edges)
