"""Property tests: every detector agrees with the oracle on its own model.

The paper's Section 6 taxonomy, made executable: each related-work
algorithm is exact *within* its computation-graph class —

* SPD3 and ESP-bags on async-finish (terminally strict) programs,
* SP-bags and Offset-Span labeling on fully-strict / nested fork-join
  programs,
* the DTRG detector and vector clocks on everything —

and each restricted detector *refuses* (rather than silently mis-answers)
anything outside its class.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DeterminacyRaceDetector
from repro.baselines import (
    BruteForceDetector,
    ESPBagsDetector,
    OffsetSpanDetector,
    SPBagsDetector,
    SPD3Detector,
)
from repro.runtime.errors import UnsupportedConstructError
from repro.testing.generator import (
    Async,
    Finish,
    Program,
    Read,
    Write,
    program_strategy,
    run_program,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def async_finish_programs(draw, num_locs=2, max_leaves=25):
    """Terminally strict: async/finish only, asyncs may escape."""

    def wrap(children):
        block = st.lists(children, min_size=0, max_size=3).map(tuple)
        return st.one_of(
            st.builds(Async, body=block), st.builds(Finish, body=block)
        )

    leaf = st.one_of(
        st.builds(Read, loc=st.integers(0, num_locs - 1)),
        st.builds(Write, loc=st.integers(0, num_locs - 1)),
    )
    stmt = st.recursive(leaf, wrap, max_leaves=max_leaves)
    body = st.lists(stmt, min_size=0, max_size=5).map(tuple)
    return Program(body=draw(body), num_locs=num_locs)


@st.composite
def fork_join_programs(draw, num_locs=2, depth=3):
    """Strict nested fork-join: every async wrapped in its spawner's
    finish, owner silent between fork and join."""

    def region(level):
        # a finish whose direct children are asyncs; each async body is
        # accesses (+ nested regions when depth remains)
        n_children = draw(st.integers(1, 3))
        children = []
        for _ in range(n_children):
            body = list(
                draw(
                    st.lists(
                        st.one_of(
                            st.builds(Read, loc=st.integers(0, num_locs - 1)),
                            st.builds(Write, loc=st.integers(0, num_locs - 1)),
                        ),
                        max_size=3,
                    )
                )
            )
            if level > 0 and draw(st.booleans()):
                body.append(region(level - 1))
            children.append(Async(body=tuple(body)))
        return Finish(body=tuple(children))

    n_regions = draw(st.integers(0, 3))
    body = []
    for _ in range(n_regions):
        body.append(
            draw(
                st.one_of(
                    st.builds(Read, loc=st.integers(0, num_locs - 1)),
                    st.builds(Write, loc=st.integers(0, num_locs - 1)),
                )
            )
        )
        body.append(region(depth - 1))
    return Program(body=tuple(body), num_locs=num_locs)


@given(program=async_finish_programs())
@settings(max_examples=120, **COMMON)
def test_spd3_and_espbags_match_oracle_on_async_finish(program):
    spd3 = SPD3Detector()
    esp = ESPBagsDetector()
    dtrg = DeterminacyRaceDetector()
    oracle = BruteForceDetector()
    run_program(program, [spd3, esp, dtrg, oracle])
    assert spd3.racy_locations == oracle.racy_locations, str(program)
    assert esp.racy_locations == oracle.racy_locations, str(program)
    assert dtrg.racy_locations == oracle.racy_locations, str(program)


@given(program=fork_join_programs())
@settings(max_examples=100, **COMMON)
def test_offset_span_and_spbags_match_oracle_on_fork_join(program):
    os_det = OffsetSpanDetector()
    sp = SPBagsDetector()
    oracle = BruteForceDetector()
    run_program(program, [os_det, sp, oracle])
    assert os_det.racy_locations == oracle.racy_locations, str(program)
    assert sp.racy_locations == oracle.racy_locations, str(program)


@given(program=program_strategy(num_locs=2, max_leaves=20))
@settings(max_examples=80, **COMMON)
def test_restricted_detectors_never_silently_wrong(program):
    """Outside their model they raise; inside it they match the oracle."""
    for cls in (SPD3Detector, ESPBagsDetector, SPBagsDetector,
                OffsetSpanDetector):
        det = cls()
        oracle = BruteForceDetector()
        try:
            run_program(program, [det, oracle])
        except UnsupportedConstructError:
            continue
        assert det.racy_locations == oracle.racy_locations, (
            cls.__name__,
            str(program),
        )
