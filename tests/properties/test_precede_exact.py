"""Lemma 6, property-tested: every PRECEDE answer is exact.

"PRECEDE(T_A, T_B) = true during the execution of s_j … if and only if
s_i ≺ s_j for all s_i such that Task(s_i) = T_A and s_i executes before
s_j in the depth-first execution."

We instrument the detector to log every reachability query it issues from
the shadow-memory checks, together with the current step (taken from a
co-attached graph builder), then check each answer against the exact
transitive closure: the answer must be True iff *every* step of the
queried task with a smaller step id (= executed earlier) precedes the
current step.
"""

from hypothesis import HealthCheck, given, settings

from repro.core.detector import DeterminacyRaceDetector
from repro.graph import GraphBuilder, ReachabilityClosure
from repro.testing.generator import program_strategy, run_program


class LoggingDetector(DeterminacyRaceDetector):
    """Detector that logs (queried_task, current_task, current_step, answer)
    for every shadow-memory PRECEDE call."""

    def __init__(self, graph_builder: GraphBuilder):
        super().__init__()
        self._gb = graph_builder
        self.queries = []
        inner = self.dtrg.precede

        def logged(a_tid, b_tid):
            answer = inner(a_tid, b_tid)
            step = self._gb._step(b_tid)  # the current step of the querier
            self.queries.append((a_tid, b_tid, step.sid, answer))
            return answer

        # The shadow memory holds a reference to the bound method taken at
        # detector construction; rebind both.
        self.dtrg.precede = logged
        self.shadow._precede = logged


@given(program=program_strategy(num_locs=3, max_leaves=30))
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_precede_answer_is_exact(program):
    gb = GraphBuilder()
    det = LoggingDetector(gb)
    # graph builder first so its current step is up to date when queried
    run_program(program, [gb, det])
    closure = ReachabilityClosure(gb.graph)
    graph = gb.graph
    steps_by_task = {}
    for step in graph.steps:
        steps_by_task.setdefault(step.task, []).append(step.sid)

    for a_tid, b_tid, cur_sid, answer in det.queries:
        if a_tid == b_tid:
            assert answer, "a task precedes itself"
            continue
        earlier = [s for s in steps_by_task.get(a_tid, []) if s < cur_sid]
        truth = all(closure.precedes(s, cur_sid) for s in earlier)
        assert answer == truth, (
            f"precede({a_tid}, {b_tid}) at step {cur_sid}: "
            f"got {answer}, truth {truth}\n{program}"
        )


@given(program=program_strategy(num_locs=2, max_leaves=20))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_postmortem_precede_matches_closure(program):
    """After the run, PRECEDE(A, main) for any completed task A must equal
    whole-task reachability to main's final step."""
    gb = GraphBuilder()
    det = DeterminacyRaceDetector()
    run_program(program, [gb, det])
    closure = ReachabilityClosure(gb.graph)
    graph = gb.graph
    main_last = graph.last_step[0]
    for tid in graph.task_parent:
        if tid == 0:
            continue
        expected = all(
            closure.precedes(s.sid, main_last)
            for s in graph.steps_of_task(tid)
        )
        assert det.precede(tid, 0) == expected, (tid, str(program))
