"""Witness soundness: every emitted certificate describes a real race.

Theorem 2 makes the DTRG detector's *verdicts* exact; this suite pins the
same property for the new provenance layer's *explanations*:

* every :class:`~repro.obs.provenance.RaceWitness` the detector emits is
  independently confirmed by the brute-force transitive closure of the
  computation graph (``confirm_witness``) — a pair of accesses with the
  witnessed roles really is logically parallel;
* the certificate's recorded verdict matches a fresh ``precede`` query,
  i.e. ``explain_precede`` is a faithful read-only replay of the decision
  procedure, and every witness passes the JSON schema validator;
* the witnessed location is racy under the exact detector (Theorem 2
  cross-check at location granularity).

Plus one anatomy regression: the checked-in non-tree-join corpus program
whose certificate must contain a walked LSA chain and an exhausted VISIT
frontier (the interesting half of the PRECEDE search).
"""

import json
import random
from pathlib import Path

from repro.core.detector import DeterminacyRaceDetector
from repro.core.exact import ExactDetector
from repro.graph import GraphBuilder, ReachabilityClosure
from repro.obs.provenance import RaceProvenance, confirm_witness
from repro.obs.validate import validate_witness
from repro.testing.codec import entry_from_data
from repro.testing.generator import random_program, run_program

CORPUS = Path(__file__).resolve().parents[1] / "corpus"

#: Seed budget for the sweep; each seed is one full program execution with
#: dtrg + graph builder + exact detector attached.
NUM_SEEDS = 200


def detect_with_witnesses(program):
    """Run once with provenance-enabled dtrg + graph builder + exact."""
    prov = RaceProvenance()
    det = DeterminacyRaceDetector(provenance=prov)
    gb = GraphBuilder()
    exact = ExactDetector()
    run_program(program, [det, gb, exact], scoped_handles=True,
                provenance=prov)
    return det, gb, exact


def test_generated_program_witnesses_are_sound():
    confirmed = 0
    for seed in range(NUM_SEEDS):
        program = random_program(random.Random(seed))
        det, gb, exact = detect_with_witnesses(program)
        assert len(det.witnesses) == len(list(det.report))
        if not det.witnesses:
            continue
        closure = ReachabilityClosure(gb.graph)
        for w in det.witnesses:
            # (1) brute-force graph confirms the pair is unordered
            assert confirm_witness(w, gb.graph, closure=closure), (
                f"seed {seed}: witness {w.witness_id} for {w.loc!r} "
                f"({w.kind}, tasks {w.prev_task}/{w.current_task}) refuted "
                f"by the transitive closure\n{program}"
            )
            # (2) the detection-time certificate says unordered, and a
            # fresh explain replay agrees with a fresh precede query on
            # the *final* DTRG (joins after the race may have ordered the
            # pair since, so both are re-queried on the same state).
            cert = w.certificate
            assert cert["verdict"] is False
            replayed = det.dtrg.explain_precede(
                w.prev_task, w.current_task
            )
            assert replayed["verdict"] == det.dtrg.precede(
                w.prev_task, w.current_task
            ), f"seed {seed}: explain_precede disagrees with precede"
            # (3) schema-valid and JSON-serializable
            assert validate_witness(w.to_data()) == []
            json.dumps(w.to_data())
            # (4) the location is racy under the exact detector too
            assert w.loc in set(exact.racy_locations), (
                f"seed {seed}: witnessed loc {w.loc!r} not racy per exact"
            )
            confirmed += 1
    # the generator must actually exercise the property
    assert confirmed > 50, f"only {confirmed} witnesses over {NUM_SEEDS} seeds"


def test_corpus_lsa_chain_witness_anatomy():
    """The checked-in non-tree-join race must be explained *through* the
    LSA chain: the backward search climbs from the reader's set via its
    lowest significant ancestor, scans the non-tree predecessor acquired
    by the ``get``, and exhausts the frontier without reaching the
    writer's set."""
    entry = entry_from_data(json.loads(
        (CORPUS / "future_nt_join_lsa_witness.json").read_text()
    ))
    det, gb, exact = detect_with_witnesses(entry.program)
    assert set(det.racy_locations) == {("x", 0)}
    (w,) = det.witnesses
    assert w.kind == "write-read"
    search = w.certificate["search"]
    assert search is not None, "race must not be level-0/prune resolvable"
    assert search["lsa_chain"], "certificate must walk the LSA chain"
    assert search["frontier_exhausted"] is True
    assert any(rec["via"] == "lsa" for rec in search["expanded"])
    assert any(rec["via"] == "nt" for rec in search["expanded"])
    assert confirm_witness(w, gb.graph,
                           closure=ReachabilityClosure(gb.graph))
    assert validate_witness(w.to_data()) == []
