"""Runtime-parity property sweep (PR 8, satellite 4).

For 200 generated programs, execute the same program on every substrate —
serial depth-first elision, ThreadRuntime at 1/2/4 workers, AsyncioRuntime
— each with a fresh :class:`ParallelRaceDetector`, and require:

* **race-free programs**: identical final memory on every runtime (the
  Determinism Property made executable — every DSL statement runs exactly
  once, so statement-path write tokens are a schedule-independent
  fingerprint) and an empty race report everywhere;
* **racy programs**: the same *racy-location set* on every runtime, equal
  to the brute-force oracle's.  Individual race pairs and their order may
  legitimately differ across schedules (DESIGN.md "Race order under
  parallel runtimes"): which unordered access lands second is a property
  of the schedule, but the per-location verdict — the quantity the paper's
  detector answers (races.py) — is schedule-independent.

The sweep runs in scoped-handles mode: wild-mode registry publication is
itself racy by construction, so cross-schedule memory comparison is only
meaningful for the scoped fragment.
"""

import random

import pytest

from repro.baselines.brute_force import BruteForceDetector
from repro.core.parallel_detector import ParallelRaceDetector
from repro.testing.generator import (
    random_program,
    run_program_asyncio,
    run_program_threads,
    run_program_values,
)

SEEDS = 200
CHUNK = 25


def _check_seed(seed: int) -> bool:
    """Run one generated program on all five substrates; return racy?"""
    program = random_program(random.Random(seed), max_depth=3, max_block=4)

    oracle = BruteForceDetector()
    serial_det = ParallelRaceDetector()
    _rt, serial_mem = run_program_values(program, [oracle, serial_det])
    want = set(oracle.racy_locations)
    assert set(serial_det.racy_locations) == want, (
        f"seed {seed}: serial ParallelRaceDetector disagrees with oracle"
    )

    for workers in (1, 2, 4):
        det = ParallelRaceDetector()
        _trt, mem = run_program_threads(
            program, [det], workers=workers, steal_seed=seed
        )
        assert set(det.racy_locations) == want, (
            f"seed {seed}: threads x{workers} racy set "
            f"{set(det.racy_locations)} != {want}"
        )
        if not want:
            assert mem == serial_mem, (
                f"seed {seed}: threads x{workers} final memory diverged "
                "on a race-free program"
            )

    det = ParallelRaceDetector()
    _art, mem = run_program_asyncio(program, [det])
    assert set(det.racy_locations) == want, (
        f"seed {seed}: asyncio racy set {set(det.racy_locations)} != {want}"
    )
    if not want:
        assert mem == serial_mem, (
            f"seed {seed}: asyncio final memory diverged on a race-free "
            "program"
        )
    return bool(want)


@pytest.mark.parametrize("chunk", range(SEEDS // CHUNK))
def test_runtime_parity_sweep(chunk):
    racy = sum(
        _check_seed(seed)
        for seed in range(chunk * CHUNK, (chunk + 1) * CHUNK)
    )
    # The generator mixes racy and race-free programs; both classes must
    # be represented for the chunk to exercise both halves of the bar.
    assert 0 < racy < CHUNK
