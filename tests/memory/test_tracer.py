"""Unit tests for trace recording and replay."""

import random

from repro import DeterminacyRaceDetector, Runtime, SharedArray
from repro.baselines import BruteForceDetector
from repro.core.events import GetEvent, ReadEvent, TaskCreateEvent, WriteEvent
from repro.harness.metrics import MetricsCollector
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.testing.generator import random_program, run_program
from repro.testing.programs import CORPUS, run_corpus_program


def record(builder):
    recorder = TraceRecorder()
    rt = Runtime(observers=[recorder])
    mem = SharedArray(rt, "x", 4)
    rt.run(lambda _rt: builder(rt, mem))
    return recorder.trace


def test_trace_event_sequence():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1))
        f.get()
        mem.read(0)

    trace = record(prog)
    kinds = [type(e).__name__ for e in trace]
    assert kinds == [
        "TaskCreateEvent",
        "WriteEvent",
        "TaskEndEvent",
        "GetEvent",
        "ReadEvent",
    ]
    create = trace.events[0]
    assert isinstance(create, TaskCreateEvent)
    assert create.parent == 0 and create.child == 1 and create.is_future
    assert trace.counts() == (1, 1, 2)


def test_replay_reproduces_detector_verdict():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.read(0))

    trace = record(prog)
    det = DeterminacyRaceDetector()
    replay_trace(trace, [det])
    assert det.report.racy_locations == {("x", 0)}


def test_replay_matches_live_run_on_corpus():
    for program in CORPUS:
        recorder = TraceRecorder()
        live = DeterminacyRaceDetector()
        run_corpus_program(program, [recorder, live])
        replayed = DeterminacyRaceDetector()
        replay_trace(recorder.trace, [replayed])
        assert replayed.racy_locations == live.racy_locations, program.name


def test_replay_matches_live_run_on_random_programs():
    for seed in range(30):
        prog = random_program(random.Random(seed))
        recorder = TraceRecorder()
        live = DeterminacyRaceDetector()
        run_program(prog, [recorder, live])
        replayed = DeterminacyRaceDetector()
        oracle = BruteForceDetector()
        replay_trace(recorder.trace, [replayed, oracle])
        assert replayed.racy_locations == live.racy_locations, seed
        assert oracle.racy_locations == live.racy_locations, seed


def test_replay_preserves_metrics():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1), name="p")
        g = rt.future(lambda: (f.get(), mem.read(0)), name="c")
        g.get()

    recorder = TraceRecorder()
    live = MetricsCollector()
    rt = Runtime(observers=[recorder, live])
    mem = SharedArray(rt, "x", 4)
    rt.run(lambda _rt: prog(rt, mem))

    replayed = MetricsCollector()
    replay_trace(recorder.trace, [replayed])
    assert replayed.snapshot() == live.snapshot()


def test_trace_is_value_like():
    def prog(rt, mem):
        mem.write(1, 2)

    t1, t2 = record(prog), record(prog)
    assert t1.events == t2.events
    assert len(t1) == 1
    assert isinstance(t1.events[0], WriteEvent)
