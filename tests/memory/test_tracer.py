"""Unit tests for trace recording and replay."""

import random

from repro import DeterminacyRaceDetector, Runtime, SharedArray
from repro.baselines import BruteForceDetector
from repro.core.events import GetEvent, ReadEvent, TaskCreateEvent, WriteEvent
from repro.harness.metrics import MetricsCollector
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.testing.generator import random_program, run_program
from repro.testing.programs import CORPUS, run_corpus_program


def record(builder):
    recorder = TraceRecorder()
    rt = Runtime(observers=[recorder])
    mem = SharedArray(rt, "x", 4)
    rt.run(lambda _rt: builder(rt, mem))
    return recorder.trace


def test_trace_event_sequence():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1))
        f.get()
        mem.read(0)

    trace = record(prog)
    kinds = [type(e).__name__ for e in trace]
    assert kinds == [
        "TaskCreateEvent",
        "WriteEvent",
        "TaskEndEvent",
        "GetEvent",
        "ReadEvent",
    ]
    create = trace.events[0]
    assert isinstance(create, TaskCreateEvent)
    assert create.parent == 0 and create.child == 1 and create.is_future
    assert trace.counts() == (1, 1, 2)


def test_replay_reproduces_detector_verdict():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.read(0))

    trace = record(prog)
    det = DeterminacyRaceDetector()
    replay_trace(trace, [det])
    assert det.report.racy_locations == {("x", 0)}


def test_replay_matches_live_run_on_corpus():
    for program in CORPUS:
        recorder = TraceRecorder()
        live = DeterminacyRaceDetector()
        run_corpus_program(program, [recorder, live])
        replayed = DeterminacyRaceDetector()
        replay_trace(recorder.trace, [replayed])
        assert replayed.racy_locations == live.racy_locations, program.name


def test_replay_matches_live_run_on_random_programs():
    for seed in range(30):
        prog = random_program(random.Random(seed))
        recorder = TraceRecorder()
        live = DeterminacyRaceDetector()
        run_program(prog, [recorder, live])
        replayed = DeterminacyRaceDetector()
        oracle = BruteForceDetector()
        replay_trace(recorder.trace, [replayed, oracle])
        assert replayed.racy_locations == live.racy_locations, seed
        assert oracle.racy_locations == live.racy_locations, seed


def test_replay_preserves_metrics():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1), name="p")
        g = rt.future(lambda: (f.get(), mem.read(0)), name="c")
        g.get()

    recorder = TraceRecorder()
    live = MetricsCollector()
    rt = Runtime(observers=[recorder, live])
    mem = SharedArray(rt, "x", 4)
    rt.run(lambda _rt: prog(rt, mem))

    replayed = MetricsCollector()
    replay_trace(recorder.trace, [replayed])
    assert replayed.snapshot() == live.snapshot()


def test_trace_is_value_like():
    def prog(rt, mem):
        mem.write(1, 2)

    t1, t2 = record(prog), record(prog)
    assert t1.events == t2.events
    assert len(t1) == 1
    assert isinstance(t1.events[0], WriteEvent)


# ---------------------------------------------------------------------- #
# Replay edge cases                                                      #
# ---------------------------------------------------------------------- #
class CallLog:
    """Observer that logs every hook invocation (names + key identifiers)."""

    def __init__(self):
        self.calls = []

    def on_init(self, main):
        self.calls.append(("init", main.tid))

    def on_task_create(self, parent, child):
        self.calls.append(("task_create", parent.tid, child.tid))

    def on_task_end(self, task):
        self.calls.append(("task_end", task.tid))

    def on_get(self, consumer, producer):
        self.calls.append(("get", consumer.tid, producer.tid))

    def on_finish_start(self, scope):
        self.calls.append(("finish_start", scope.fid))

    def on_finish_end(self, scope):
        self.calls.append(("finish_end", scope.fid))

    def on_read(self, task, loc):
        self.calls.append(("read", task.tid, loc))

    def on_write(self, task, loc):
        self.calls.append(("write", task.tid, loc))

    def on_shutdown(self, main):
        self.calls.append(("shutdown", main.tid))


def test_replay_empty_trace_emits_exactly_the_implicit_bracket():
    """An empty trace replays as an empty program: the synthesized
    init/root-finish bracket and nothing else, and no detector state
    leaks out of it."""
    from repro.core.events import Trace
    from repro.testing.generator import Program

    log = CallLog()
    det = DeterminacyRaceDetector()
    replay_trace(Trace(), [log, det])
    assert det.racy_locations == set()
    assert log.calls == [
        ("init", 0),
        ("finish_start", 0),
        ("finish_end", 0),
        ("task_end", 0),
        ("shutdown", 0),
    ]

    # Observer-call parity: a live run of the empty program produces the
    # same hook sequence the replay synthesizes.
    live = CallLog()
    run_program(Program(body=(), num_locs=1), [live])
    assert live.calls == log.calls


def test_replay_trace_ending_mid_finish():
    """A trace truncated inside an open finish scope must still replay:
    races already witnessed in the prefix are reported, and the
    synthesized root finish-end does not trip over the unclosed scope."""
    from repro.core.events import FinishEndEvent, Trace
    from repro.testing.generator import Async, Finish, Program, Read, Write

    program = Program(
        body=(Finish((Async((Write(0),)), Async((Read(0),)))),), num_locs=1
    )
    recorder = TraceRecorder()
    run_program(program, [recorder])
    full = recorder.trace.events
    assert isinstance(full[-1], FinishEndEvent)

    truncated = Trace()
    for event in full[:-1]:  # drop the finish-end: scope never closes
        truncated.append(event)

    det = DeterminacyRaceDetector()
    oracle = BruteForceDetector()
    replay_trace(truncated, [det, oracle])
    assert det.racy_locations == {("x", 0)}
    assert oracle.racy_locations == {("x", 0)}


def test_replay_repeated_get_on_same_producer():
    """Multiple gets on one future (same and different consumers) record
    one GetEvent each and replay to the live verdict."""
    from repro.core.events import GetEvent

    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1))
        f.get()
        mem.read(0)
        f.get()  # idempotent re-join by the same consumer
        g = rt.future(lambda: (f.get(), mem.read(0)))
        g.get()
        mem.write(0, 2)

    recorder = TraceRecorder()
    live = DeterminacyRaceDetector()
    rt = Runtime(observers=[recorder, live])
    mem = SharedArray(rt, "x", 1)
    rt.run(lambda _rt: prog(rt, mem))

    gets = [e for e in recorder.trace if isinstance(e, GetEvent)]
    assert len(gets) == 4
    assert len({(e.consumer, e.producer) for e in gets}) == 3

    replayed = DeterminacyRaceDetector()
    oracle = BruteForceDetector()
    replay_trace(recorder.trace, [replayed, oracle])
    assert replayed.racy_locations == live.racy_locations == set()
    assert oracle.racy_locations == set()
