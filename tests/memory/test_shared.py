"""Unit tests for the instrumented shared-memory wrappers."""

import numpy as np
import pytest

from repro import Runtime
from repro.core.events import ExecutionObserver
from repro.memory.shared import (
    SharedArray,
    SharedFutureCell,
    SharedMatrix,
    SharedNDArray,
    SharedVar,
)


class AccessLog(ExecutionObserver):
    def __init__(self):
        self.reads = []
        self.writes = []

    def on_read(self, task, loc):
        self.reads.append(loc)

    def on_write(self, task, loc):
        self.writes.append(loc)


def with_runtime(builder):
    log = AccessLog()
    rt = Runtime(observers=[log])
    result = {}
    rt.run(lambda _rt: result.setdefault("v", builder(rt)))
    return log, result["v"]


def test_shared_var_read_write_logged():
    def prog(rt):
        v = SharedVar(rt, "counter", 0)
        v.write(5)
        assert v.read() == 5
        assert v.peek() == 5  # peek is uninstrumented
        return v

    log, _ = with_runtime(prog)
    assert log.writes == [("counter",)]
    assert log.reads == [("counter",)]


def test_shared_array_element_locations():
    def prog(rt):
        a = SharedArray(rt, "a", 3)
        a.write(0, "x")
        a.write(2, "z")
        assert a.read(2) == "z"
        return a

    log, arr = with_runtime(prog)
    assert log.writes == [("a", 0), ("a", 2)]
    assert log.reads == [("a", 2)]
    assert arr.to_list() == ["x", None, "z"]
    assert len(arr) == 3


def test_shared_array_from_iterable():
    def prog(rt):
        return SharedArray(rt, "a", [1, 2, 3])

    _, arr = with_runtime(prog)
    assert arr.to_list() == [1, 2, 3]


def test_shared_matrix_row_col_keys():
    def prog(rt):
        m = SharedMatrix(rt, "m", 2, 3)
        m.write(1, 2, "v")
        assert m.read(1, 2) == "v"
        assert m.peek(0, 0) is None
        return m

    log, _ = with_runtime(prog)
    assert log.writes == [("m", 1, 2)]
    assert log.reads == [("m", 1, 2)]


def test_shared_ndarray_indexing_and_blocks():
    def prog(rt):
        nd = SharedNDArray(rt, "grid", (4, 4))
        nd.write((1, 1), 2.5)
        assert nd.read((1, 1)) == 2.5
        assert nd.peek((0, 0)) == 0.0
        block = nd.read_block((slice(0, 2), slice(0, 2)))
        assert block.shape == (2, 2)
        return nd

    log, nd = with_runtime(prog)
    assert ("grid", (1, 1)) in log.writes
    assert ("grid", (1, 1)) in log.reads
    # block read records one access per element
    assert len(log.reads) == 1 + 4
    assert nd.shape == (4, 4)


def test_shared_ndarray_wraps_existing_array():
    backing = np.arange(6, dtype=np.int64).reshape(2, 3)

    def prog(rt):
        return SharedNDArray(rt, "w", backing)

    _, nd = with_runtime(prog)
    assert nd.data is backing


def test_future_cell_put_take():
    def prog(rt):
        cell = SharedFutureCell(rt, "slot")
        assert cell.take() is None
        f = rt.future(lambda: 5)
        cell.put(f)
        return cell.take().get()

    log, value = with_runtime(prog)
    assert value == 5
    assert log.writes == [("slot",)]
    assert log.reads == [("slot",), ("slot",)]


def test_access_outside_run_rejected():
    rt = Runtime()
    var = SharedVar(rt, "v", 0)
    from repro.runtime.errors import RuntimeStateError

    with pytest.raises(RuntimeStateError):
        var.read()
    with pytest.raises(RuntimeStateError):
        var.write(1)
