"""Unit tests for the multiprocessor scheduling simulators."""

import pytest

from repro import Runtime, SharedArray
from repro.graph import GraphBuilder
from repro.runtime.workstealing import (
    WorkStealingSimulator,
    greedy_schedule,
    speedup_curve,
    step_weights,
)


def record(builder, locs=32):
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return gb.graph


def wide_graph(tasks=12, work=4):
    def prog(rt, mem):
        with rt.finish():
            for i in range(tasks):
                rt.async_(lambda i=i: [mem.write(i, j) for j in range(work)])

    return record(prog)


def chain_graph(length=10):
    def prog(rt, mem):
        prev = None
        for i in range(length):
            f = rt.future(lambda i=i: mem.write(0, i))
            f.get()

    return record(prog)


def test_one_worker_equals_work():
    graph = wide_graph()
    stats = greedy_schedule(graph, 1)
    assert stats.makespan == stats.work
    assert stats.speedup == pytest.approx(1.0)
    assert stats.utilization == pytest.approx(1.0)


def test_many_workers_bounded_by_span():
    graph = wide_graph()
    stats = greedy_schedule(graph, 64)
    assert stats.makespan >= stats.span
    assert stats.makespan < stats.work


def test_greedy_satisfies_brent_bound():
    graph = wide_graph(tasks=16, work=7)
    for p in (1, 2, 3, 5, 8):
        assert greedy_schedule(graph, p).satisfies_brent_bound(), p


def test_serial_chain_gets_almost_no_speedup():
    # spawn-then-get is *almost* a chain: between the spawn and the get the
    # parent has one (empty, weight-1) step that overlaps the future, so
    # the width is 2 for one unit per link — speedup stays marginal.
    graph = chain_graph()
    s1 = greedy_schedule(graph, 1)
    s8 = greedy_schedule(graph, 8)
    assert s8.makespan == s8.span  # enough workers: span-limited
    assert s8.span >= 0.75 * s1.work
    assert s8.speedup < 1.5


def test_unit_weights_option():
    graph = wide_graph(work=9)
    weighted = step_weights(graph)
    unit = step_weights(graph, unit_weights=True)
    assert sum(unit) == graph.num_steps
    assert sum(weighted) > sum(unit)
    stats = greedy_schedule(graph, 2, unit_weights=True)
    assert stats.work == graph.num_steps


def test_work_stealing_executes_everything():
    graph = wide_graph()
    stats = WorkStealingSimulator(graph, 4, seed=7).run()
    assert stats.busy == stats.work
    assert stats.makespan >= stats.span
    assert stats.steals > 0  # roots start on worker 0; others must steal


def test_work_stealing_single_worker_no_steals():
    graph = wide_graph()
    stats = WorkStealingSimulator(graph, 1, seed=7).run()
    assert stats.steals == 0
    assert stats.makespan == stats.work


def test_work_stealing_deterministic_per_seed():
    graph = wide_graph()
    a = WorkStealingSimulator(graph, 3, seed=42).run()
    b = WorkStealingSimulator(graph, 3, seed=42).run()
    assert a == b


def test_speedup_curve_monotone_for_wide_graph():
    graph = wide_graph(tasks=24, work=6)
    curve = speedup_curve(graph, (1, 2, 4, 8))
    speedups = [curve[p].speedup for p in (1, 2, 4, 8)]
    assert speedups[0] == pytest.approx(1.0)
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
    curve_ws = speedup_curve(graph, (1, 4), scheduler="work-stealing")
    assert curve_ws[4].makespan <= curve_ws[1].makespan


def test_invalid_inputs():
    graph = wide_graph()
    with pytest.raises(ValueError):
        greedy_schedule(graph, 0)
    with pytest.raises(ValueError):
        speedup_curve(graph, (1,), scheduler="nope")


def test_future_pipeline_speedup_beats_barrier():
    """The §5 claim made quantitative: dependence-driven futures expose
    strictly more parallelism than barrier-per-phase async-finish on the
    same computation."""
    from repro.workloads import jacobi

    params = jacobi.default_params("tiny")

    def graph_of(entry):
        gb = GraphBuilder()
        rt = Runtime(observers=[gb])
        rt.run(lambda r: entry(r, params))
        return gb.graph

    af = graph_of(jacobi.run_af)
    fut = graph_of(jacobi.run_future)
    p = 8
    af_stats = greedy_schedule(af, p)
    fut_stats = greedy_schedule(fut, p)
    # same work modulo handle traffic; futures shorten the critical path
    assert fut_stats.span <= af_stats.span


# ---------------------------------------------------------------------- #
# Corrected Blumofe-Leiserson steal accounting                           #
# ---------------------------------------------------------------------- #
def test_successful_steal_costs_one_cycle():
    """A stolen step begins executing the cycle *after* the steal."""
    graph = wide_graph(tasks=2, work=0)  # small: exact accounting tractable
    stats2 = WorkStealingSimulator(graph, 2, seed=0, unit_weights=True).run()
    stats1 = WorkStealingSimulator(graph, 1, seed=0, unit_weights=True).run()
    # Every stolen unit step costs its thief one extra (non-busy) cycle,
    # so with steals > 0 the 2-worker makespan cannot collapse to the
    # perfect work/2 split on this root-heavy graph.
    assert stats2.steals > 0
    assert stats2.busy == stats2.work == stats1.makespan
    assert stats2.makespan > stats2.work // 2


def test_steal_accounting_pinned_deterministic_seed():
    """Exact (makespan, steals, failed) for a pinned seed and graph."""
    graph = wide_graph(tasks=3, work=2)
    stats = WorkStealingSimulator(graph, 2, seed=42).run()
    again = WorkStealingSimulator(graph, 2, seed=42).run()
    assert stats == again
    assert stats.busy == stats.work
    # Steal latency is visible: busy time plus idle/steal cycles fills the
    # makespan exactly on both workers.
    assert stats.makespan * stats.workers >= stats.busy + stats.steals


def test_failed_steals_require_an_attempt():
    """One long step, two workers: the idle worker's probes against the
    busy worker's empty deque are failed steals; a single worker never
    attempts (no victim) so it records none."""

    def prog(rt, mem):
        for j in range(5):
            mem.write(j, j)

    graph = record(prog)
    assert graph.num_steps == 2  # the access step, then main's final step
    stats = WorkStealingSimulator(graph, 2, seed=3).run()
    assert stats.steals == 0
    # w0 executes the chain alone; w1 probes w0's (always empty by the
    # time it looks) deque every cycle: one failed attempt per cycle.
    assert stats.failed_steals == stats.makespan
    solo = WorkStealingSimulator(graph, 1, seed=3).run()
    assert solo.steals == 0 and solo.failed_steals == 0


# ---------------------------------------------------------------------- #
# greedy_schedule deque migration parity                                 #
# ---------------------------------------------------------------------- #
def _greedy_schedule_listpop(graph, workers, *, unit_weights=False):
    """The pre-deque implementation (list.pop(0) ready queue), kept as the
    parity reference for the O(1) popleft version."""
    weights = step_weights(graph, unit_weights)
    n = graph.num_steps
    indeg = [len(p) for p in graph.predecessors]
    ready = [i for i, d in enumerate(indeg) if d == 0]
    remaining = {}
    time = done = busy = 0
    while done < n:
        while ready and len(remaining) < workers:
            step = ready.pop(0)
            remaining[step] = weights[step]
        delta = min(remaining.values())
        time += delta
        busy += delta * len(remaining)
        finished = [s for s, r in remaining.items() if r == delta]
        for step in list(remaining):
            remaining[step] -= delta
            if remaining[step] == 0:
                del remaining[step]
        for step in finished:
            done += 1
            for succ in graph.successors[step]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
    from repro.runtime.workstealing import ScheduleStats, _critical_path

    return ScheduleStats(
        workers=workers, makespan=time, work=sum(weights),
        span=_critical_path(graph, weights), busy=busy,
    )


def test_greedy_deque_matches_old_list_implementation():
    import random as _random

    from repro.testing.generator import random_program, run_program

    graphs = [wide_graph(tasks=9, work=3), chain_graph(6)]
    for seed in range(6):
        gb = GraphBuilder()
        run_program(random_program(_random.Random(seed)), [gb])
        graphs.append(gb.graph)
    for graph in graphs:
        for p in (1, 2, 4, 7):
            assert greedy_schedule(graph, p) == _greedy_schedule_listpop(
                graph, p
            )
