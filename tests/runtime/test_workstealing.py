"""Unit tests for the multiprocessor scheduling simulators."""

import pytest

from repro import Runtime, SharedArray
from repro.graph import GraphBuilder
from repro.runtime.workstealing import (
    WorkStealingSimulator,
    greedy_schedule,
    speedup_curve,
    step_weights,
)


def record(builder, locs=32):
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return gb.graph


def wide_graph(tasks=12, work=4):
    def prog(rt, mem):
        with rt.finish():
            for i in range(tasks):
                rt.async_(lambda i=i: [mem.write(i, j) for j in range(work)])

    return record(prog)


def chain_graph(length=10):
    def prog(rt, mem):
        prev = None
        for i in range(length):
            f = rt.future(lambda i=i: mem.write(0, i))
            f.get()

    return record(prog)


def test_one_worker_equals_work():
    graph = wide_graph()
    stats = greedy_schedule(graph, 1)
    assert stats.makespan == stats.work
    assert stats.speedup == pytest.approx(1.0)
    assert stats.utilization == pytest.approx(1.0)


def test_many_workers_bounded_by_span():
    graph = wide_graph()
    stats = greedy_schedule(graph, 64)
    assert stats.makespan >= stats.span
    assert stats.makespan < stats.work


def test_greedy_satisfies_brent_bound():
    graph = wide_graph(tasks=16, work=7)
    for p in (1, 2, 3, 5, 8):
        assert greedy_schedule(graph, p).satisfies_brent_bound(), p


def test_serial_chain_gets_almost_no_speedup():
    # spawn-then-get is *almost* a chain: between the spawn and the get the
    # parent has one (empty, weight-1) step that overlaps the future, so
    # the width is 2 for one unit per link — speedup stays marginal.
    graph = chain_graph()
    s1 = greedy_schedule(graph, 1)
    s8 = greedy_schedule(graph, 8)
    assert s8.makespan == s8.span  # enough workers: span-limited
    assert s8.span >= 0.75 * s1.work
    assert s8.speedup < 1.5


def test_unit_weights_option():
    graph = wide_graph(work=9)
    weighted = step_weights(graph)
    unit = step_weights(graph, unit_weights=True)
    assert sum(unit) == graph.num_steps
    assert sum(weighted) > sum(unit)
    stats = greedy_schedule(graph, 2, unit_weights=True)
    assert stats.work == graph.num_steps


def test_work_stealing_executes_everything():
    graph = wide_graph()
    stats = WorkStealingSimulator(graph, 4, seed=7).run()
    assert stats.busy == stats.work
    assert stats.makespan >= stats.span
    assert stats.steals > 0  # roots start on worker 0; others must steal


def test_work_stealing_single_worker_no_steals():
    graph = wide_graph()
    stats = WorkStealingSimulator(graph, 1, seed=7).run()
    assert stats.steals == 0
    assert stats.makespan == stats.work


def test_work_stealing_deterministic_per_seed():
    graph = wide_graph()
    a = WorkStealingSimulator(graph, 3, seed=42).run()
    b = WorkStealingSimulator(graph, 3, seed=42).run()
    assert a == b


def test_speedup_curve_monotone_for_wide_graph():
    graph = wide_graph(tasks=24, work=6)
    curve = speedup_curve(graph, (1, 2, 4, 8))
    speedups = [curve[p].speedup for p in (1, 2, 4, 8)]
    assert speedups[0] == pytest.approx(1.0)
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
    curve_ws = speedup_curve(graph, (1, 4), scheduler="work-stealing")
    assert curve_ws[4].makespan <= curve_ws[1].makespan


def test_invalid_inputs():
    graph = wide_graph()
    with pytest.raises(ValueError):
        greedy_schedule(graph, 0)
    with pytest.raises(ValueError):
        speedup_curve(graph, (1,), scheduler="nope")


def test_future_pipeline_speedup_beats_barrier():
    """The §5 claim made quantitative: dependence-driven futures expose
    strictly more parallelism than barrier-per-phase async-finish on the
    same computation."""
    from repro.workloads import jacobi

    params = jacobi.default_params("tiny")

    def graph_of(entry):
        gb = GraphBuilder()
        rt = Runtime(observers=[gb])
        rt.run(lambda r: entry(r, params))
        return gb.graph

    af = graph_of(jacobi.run_af)
    fut = graph_of(jacobi.run_future)
    p = 8
    af_stats = greedy_schedule(af, p)
    fut_stats = greedy_schedule(fut, p)
    # same work modulo handle traffic; futures shorten the critical path
    assert fut_stats.span <= af_stats.span
