"""Unit tests for future handles and get() semantics."""

import pytest

from repro import NullFutureError, Runtime
from repro.core.events import ExecutionObserver


class GetCounter(ExecutionObserver):
    def __init__(self):
        self.gets = []

    def on_get(self, consumer, producer):
        self.gets.append((consumer.tid, producer.tid))


def test_get_returns_value():
    rt = Runtime()
    out = {}

    def prog(rt):
        f = rt.future(lambda: 7)
        out["v"] = f.get()

    rt.run(prog)
    assert out["v"] == 7


def test_get_is_observable_every_call():
    counter = GetCounter()
    rt = Runtime(observers=[counter])

    def prog(rt):
        f = rt.future(lambda: 1)
        f.get()
        f.get()

    rt.run(prog)
    assert counter.gets == [(0, 1), (0, 1)]


def test_multiple_consumers_join_same_future():
    counter = GetCounter()
    rt = Runtime(observers=[counter])

    def prog(rt):
        f = rt.future(lambda: 1, name="shared")

        def consumer():
            return f.get()

        g1 = rt.future(consumer)
        g2 = rt.future(consumer)
        assert g1.get() == 1 and g2.get() == 1

    rt.run(prog)
    producers = [p for (_, p) in counter.gets]
    assert producers.count(1) == 2  # both siblings joined the future


def test_done_flag():
    rt = Runtime()

    def prog(rt):
        f = rt.future(lambda: None)
        assert f.done  # depth-first: complete at creation

    rt.run(prog)


def test_null_checked_get_helper():
    rt = Runtime()

    def prog(rt):
        with pytest.raises(NullFutureError):
            rt.get(None)
        return rt.get(rt.future(lambda: 3))

    assert rt.run(prog) == 3


def test_future_of_future_value():
    rt = Runtime()

    def prog(rt):
        inner = rt.future(lambda: 10)
        outer = rt.future(lambda: inner)  # future returning a handle
        return outer.get().get()

    assert rt.run(prog) == 10


def test_repr_mentions_task():
    rt = Runtime()

    def prog(rt):
        f = rt.future(lambda: None, name="named")
        assert "named" in repr(f)

    rt.run(prog)
