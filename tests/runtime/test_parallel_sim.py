"""Unit tests for the parallel-schedule simulator (Appendix A.3 machinery)."""

import random

import pytest

from repro import Runtime, SharedArray
from repro.graph import GraphBuilder
from repro.runtime.parallel import (
    demonstrate_nondeterminism,
    extension_preferring,
    is_determinate,
    random_linear_extension,
    sample_outcomes,
    schedule_outcome,
)


def record(builder):
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    mem = SharedArray(rt, "x", 4)
    rt.run(lambda _rt: builder(rt, mem))
    return gb.graph


def racy_graph():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))

    return record(prog)


def ordered_graph():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1))
        f.get()
        mem.write(0, 2)
        mem.read(0)

    return record(prog)


def test_random_extension_is_topological():
    graph = racy_graph()
    rng = random.Random(1)
    for _ in range(10):
        order = random_linear_extension(graph, rng)
        pos = {s: i for i, s in enumerate(order)}
        assert len(order) == graph.num_steps
        for src, dst, _ in graph.edges:
            assert pos[src] < pos[dst]


def test_schedule_outcome_validates_order():
    graph = ordered_graph()
    order = list(range(graph.num_steps))
    schedule_outcome(graph, order)  # DFS order is always valid
    bad = list(reversed(order))
    with pytest.raises(ValueError):
        schedule_outcome(graph, bad)


def test_race_free_program_is_determinate():
    graph = ordered_graph()
    assert is_determinate(graph, samples=30)
    outcomes = sample_outcomes(graph, samples=5)
    final = dict(outcomes[0].final_writer)
    # the second write is the unique final writer in every schedule
    assert all(dict(o.final_writer) == final for o in outcomes)


def test_racy_program_witnessed_nondeterminate():
    graph = racy_graph()
    witness = demonstrate_nondeterminism(graph, ("x", 0))
    assert witness is not None
    a, b = witness
    diffs = a.differs_from(b)
    assert diffs and any("final value" in d for d in diffs)


def test_demonstrate_nondeterminism_none_for_clean_location():
    graph = ordered_graph()
    assert demonstrate_nondeterminism(graph, ("x", 0)) is None


def test_extension_preferring_orders_parallel_steps_both_ways():
    graph = racy_graph()
    accesses = graph.accesses_by_loc[("x", 0)]
    s1, s2 = accesses[0].step, accesses[1].step
    order12 = extension_preferring(graph, s1, s2)
    order21 = extension_preferring(graph, s2, s1)
    assert order12.index(s1) < order12.index(s2)
    assert order21.index(s2) < order21.index(s1)


def test_extension_preferring_rejects_impossible_order():
    graph = ordered_graph()
    accesses = graph.accesses_by_loc[("x", 0)]
    writes = [a.step for a in accesses if a.is_write]
    first, second = writes[0], writes[1]
    with pytest.raises(ValueError):
        extension_preferring(graph, second, first)  # second ≺ ... is forced


def test_read_sees_write_tracking():
    graph = ordered_graph()
    outcome = schedule_outcome(graph, list(range(graph.num_steps)))
    reads = [entry for entry in outcome.read_sees if entry[0] == ("x", 0)]
    assert len(reads) == 1
    _, _, seen = reads[0]
    writes = [a.step for a in graph.accesses_by_loc[("x", 0)] if a.is_write]
    assert seen == writes[-1]
