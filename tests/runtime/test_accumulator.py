"""Unit tests for accumulators and the forall sugar."""

import operator

import pytest

from repro import DeterminacyRaceDetector, Runtime, RuntimeStateError
from repro.runtime.accumulator import Accumulator


def test_parallel_sum_is_race_free_and_correct():
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    out = {}

    def prog(rt):
        with rt.finish() as scope:
            acc = Accumulator(rt, scope, op=operator.add, identity=0)
            for i in range(10):
                rt.async_(lambda i=i: acc.put(i))
        out["total"] = acc.get()

    rt.run(prog)
    assert out["total"] == sum(range(10))
    assert not det.report.has_races  # puts are synchronization, not memory


def test_multiple_puts_per_task_combine():
    rt = Runtime()
    out = {}

    def prog(rt):
        with rt.finish() as scope:
            acc = Accumulator(rt, scope, op=operator.add, identity=0)

            def worker():
                acc.put(1)
                acc.put(2)

            rt.async_(worker)
            rt.async_(worker)
            assert acc.num_contributors <= 2
        out["v"] = acc.get()

    rt.run(prog)
    assert out["v"] == 6


def test_owner_may_also_put():
    rt = Runtime()
    out = {}

    def prog(rt):
        with rt.finish() as scope:
            acc = Accumulator(rt, scope, op=operator.add, identity=0)
            acc.put(100)
            rt.async_(lambda: acc.put(1))
        out["v"] = acc.get()

    rt.run(prog)
    assert out["v"] == 101


def test_get_before_finish_closes_rejected():
    rt = Runtime()

    def prog(rt):
        with rt.finish() as scope:
            acc = Accumulator(rt, scope, op=operator.add, identity=0)
            rt.async_(lambda: acc.put(1))
            with pytest.raises(RuntimeStateError):
                acc.get()

    rt.run(prog)


def test_put_after_finish_closes_rejected():
    rt = Runtime()

    def prog(rt):
        with rt.finish() as scope:
            acc = Accumulator(rt, scope, op=operator.add, identity=0)
        with pytest.raises(RuntimeStateError):
            acc.put(1)

    rt.run(prog)


def test_registering_on_closed_scope_rejected():
    rt = Runtime()

    def prog(rt):
        with rt.finish() as scope:
            pass
        with pytest.raises(RuntimeStateError):
            Accumulator(rt, scope, op=operator.add, identity=0)

    rt.run(prog)


def test_deterministic_fold_order_for_associative_op():
    """Fold order is task-id order, not completion order: string concat
    (associative, non-commutative) stays deterministic."""
    rt = Runtime()
    out = {}

    def prog(rt):
        with rt.finish() as scope:
            acc = Accumulator(rt, scope, op=operator.add, identity="")
            for ch in "abcde":
                rt.async_(lambda ch=ch: acc.put(ch))
        out["v"] = acc.get()

    rt.run(prog)
    assert out["v"] == "abcde"


def test_nqueens_with_accumulator_fixes_the_racy_counter():
    """The principled fix for workloads.nqueens.run_racy_counter."""
    from repro.workloads import nqueens

    params = nqueens.default_params("tiny")
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    out = {}

    def prog(rt):
        n, cutoff = params.n, params.cutoff
        with rt.finish() as scope:
            acc = Accumulator(rt, scope, op=operator.add, identity=0)

            def explore(placement):
                if len(placement) >= cutoff:
                    acc.put(nqueens._count_sequential(placement, n))
                    return
                with rt.finish():
                    for col in range(n):
                        if nqueens._safe(placement, col):
                            rt.async_(explore, placement + (col,))

            explore(())
        out["count"] = acc.get()

    rt.run(prog)
    nqueens.verify(params, out["count"])
    assert not det.report.has_races


def test_forall_sugar():
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    from repro import SharedArray

    results = SharedArray(rt, "r", 8)

    def prog(rt):
        rt.forall(range(8), lambda i: results.write(i, i * i))
        return [results.read(i) for i in range(8)]

    values = rt.run(prog)
    assert values == [i * i for i in range(8)]
    assert not det.report.has_races


def test_forall_racy_body_detected():
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    from repro import SharedVar

    cell = SharedVar(rt, "c", 0)
    rt.run(lambda rt: rt.forall(range(4), lambda i: cell.write(i)))
    assert det.report.racy_locations == {("c",)}
