"""Unit tests for ThreadRuntime — the work-stealing threaded executor."""

import threading

import pytest

from repro import (
    NullFutureError,
    ParallelRaceDetector,
    Runtime,
    RuntimeStateError,
    SharedArray,
    SharedVar,
    ThreadRuntime,
)
from repro.runtime.base import RuntimeBase


def test_satisfies_runtime_protocol():
    assert isinstance(ThreadRuntime(workers=1), RuntimeBase)
    assert isinstance(Runtime(), RuntimeBase)


def test_future_value_propagation():
    rt = ThreadRuntime(workers=2)

    def program(rt):
        f = rt.future(lambda: 21)
        g = rt.future(lambda: f.get() * 2)
        return g.get()

    assert rt.run(program) == 42
    assert rt.num_tasks == 3  # main + 2 futures


def test_finish_waits_for_transitive_children():
    rt = ThreadRuntime(workers=4)
    seen = []
    lock = threading.Lock()

    def leaf(i):
        with lock:
            seen.append(i)

    def mid(rt, i):
        rt.async_(leaf, i)

    def program(rt):
        with rt.finish():
            for i in range(8):
                rt.async_(mid, rt, i)
        # finish drained: every transitively spawned leaf ran
        assert sorted(seen) == list(range(8))

    rt.run(program)


def test_child_exception_raised_at_finish_exit():
    rt = ThreadRuntime(workers=2)

    def program(rt):
        with rt.finish():
            rt.async_(lambda: 1 / 0)

    with pytest.raises(ZeroDivisionError):
        rt.run(program)


def test_future_exception_raised_at_get():
    rt = ThreadRuntime(workers=2)

    def program(rt):
        f = rt.future(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            f.get()
        return "survived"

    assert rt.run(program) == "survived"


def test_get_on_none_raises_null_future_error():
    rt = ThreadRuntime(workers=1)

    def program(rt):
        with pytest.raises(NullFutureError):
            rt.get(None)

    rt.run(program)


def test_single_use_and_construct_outside_task():
    rt = ThreadRuntime(workers=1)
    rt.run(lambda rt: None)
    with pytest.raises(RuntimeStateError):
        rt.run(lambda rt: None)
    with pytest.raises(RuntimeStateError):
        rt.async_(lambda: None)  # no running task on this thread


def test_invalid_workers_and_provenance_rejected():
    with pytest.raises(ValueError):
        ThreadRuntime(workers=0)

    class _Prov:
        enabled = True

    with pytest.raises(ValueError, match="provenance"):
        ThreadRuntime(provenance=_Prov())
    # disabled provenance objects are fine (null-object protocol)
    ThreadRuntime(workers=1, provenance=None)


def test_compensation_thread_unblocks_single_worker_pool():
    """workers=1: a pool task blocking on get() must spawn a spare so the
    producer can run — otherwise this test deadlocks."""
    rt = ThreadRuntime(workers=1)

    def outer(rt):
        inner = rt.future(lambda: 7)
        return inner.get() + 1

    def program(rt):
        f = rt.future(outer, rt)
        return f.get()

    assert rt.run(program) == 8
    assert rt.compensation_threads >= 1
    assert rt.pool_size >= 2  # initial worker + at least one spare


def test_online_detection_racy_writes():
    det = ParallelRaceDetector()
    rt = ThreadRuntime(observers=[det], workers=2)
    data = SharedArray(rt, "data", 2)

    def program(rt):
        with rt.finish():
            rt.async_(lambda: data.write(0, 1))
            rt.async_(lambda: data.write(0, 2))

    rt.run(program)
    assert set(det.racy_locations) == {("data", 0)}


def test_online_detection_race_free_future_chain():
    det = ParallelRaceDetector()
    rt = ThreadRuntime(observers=[det], workers=4)
    v = SharedVar(rt, "v")

    def program(rt):
        f = rt.future(lambda: v.write(1))
        g = rt.future(lambda: (f.get(), v.read())[1])
        g.get()
        v.write(2)

    rt.run(program)
    assert det.races == []
    assert det.num_accesses == 3


def test_many_tasks_stress_all_execute():
    rt = ThreadRuntime(workers=4, steal_seed=3)
    counter = [0]
    lock = threading.Lock()

    def bump():
        with lock:
            counter[0] += 1

    def spawner(rt, n):
        for _ in range(n):
            rt.async_(bump)

    def program(rt):
        with rt.finish():
            for _ in range(8):
                rt.async_(spawner, rt, 25)

    rt.run(program)
    assert counter[0] == 200
    assert rt.num_tasks == 1 + 8 + 200
    assert rt.steals >= 0 and rt.failed_steals >= 0


def test_current_task_is_thread_local():
    rt = ThreadRuntime(workers=2)
    tids = []
    lock = threading.Lock()

    def body(rt):
        with lock:
            tids.append(rt.current_task.tid)

    def program(rt):
        assert rt.current_task is rt.main_task
        with rt.finish():
            for _ in range(4):
                rt.async_(body, rt)

    rt.run(program)
    assert sorted(tids) == [1, 2, 3, 4]


def test_serial_parity_on_deterministic_pipeline():
    """The same program yields the same final memory on both runtimes."""

    def make_program(mem):
        def program(rt):
            stages = []
            f = rt.future(lambda: mem.write(0, 1))
            for i in range(1, 6):
                prev = stages[-1] if stages else f
                stages.append(
                    rt.future(
                        lambda p=prev, i=i: (p.get(), mem.write(i, i + 1))
                    )
                )
            stages[-1].get()
            return mem.to_list()

        return program

    serial_rt = Runtime()
    serial_mem = SharedArray(serial_rt, "m", 6)
    want = serial_rt.run(make_program(serial_mem))

    thread_rt = ThreadRuntime(workers=3)
    thread_mem = SharedArray(thread_rt, "m", 6)
    got = thread_rt.run(make_program(thread_mem))
    assert got == want == [1, 2, 3, 4, 5, 6]
