"""Regression tests for MemoryOutcome.differs_from key-aligned diffing.

The pre-PR-8 implementation zipped ``final_writer``/``read_sees`` tuples
positionally, so two outcomes that enumerate locations in different orders
mis-paired entries (phantom diffs on identical outcomes, masked diffs on
different ones) and ``zip`` silently dropped whichever outcome had more
entries.  These tests pin the fixed key-aligned behaviour.
"""

from repro.runtime.parallel import MemoryOutcome


def test_identical_outcomes_no_diffs():
    a = MemoryOutcome(
        final_writer=(("x", 1), ("y", 2)),
        read_sees=(("x", 0, 1), ("y", 0, None)),
    )
    assert a.differs_from(a) == []


def test_reordered_locations_are_not_diffs():
    """Same mapping, different enumeration order: positional zip reported
    two phantom diffs here; key alignment reports none."""
    a = MemoryOutcome(
        final_writer=(("x", 1), ("y", 2)),
        read_sees=(("x", 0, 1), ("y", 0, 2)),
    )
    b = MemoryOutcome(
        final_writer=(("y", 2), ("x", 1)),
        read_sees=(("y", 0, 2), ("x", 0, 1)),
    )
    assert a.differs_from(b) == []
    assert b.differs_from(a) == []


def test_real_diff_survives_reordering():
    a = MemoryOutcome(final_writer=(("x", 1), ("y", 2)), read_sees=())
    b = MemoryOutcome(final_writer=(("y", 3), ("x", 1)), read_sees=())
    diffs = a.differs_from(b)
    assert len(diffs) == 1
    assert "'y'" in diffs[0] and "2" in diffs[0] and "3" in diffs[0]


def test_one_sided_locations_reported_not_dropped():
    """zip() used to truncate to the shorter tuple — the extra location
    vanished from the report entirely."""
    a = MemoryOutcome(final_writer=(("x", 1),), read_sees=())
    b = MemoryOutcome(final_writer=(("x", 1), ("extra", 9)), read_sees=())
    diffs = a.differs_from(b)
    assert diffs == ["location 'extra' only in other outcome"]
    assert b.differs_from(a) == ["location 'extra' only in this outcome"]


def test_one_sided_reads_reported():
    a = MemoryOutcome(final_writer=(), read_sees=(("x", 0, 1),))
    b = MemoryOutcome(
        final_writer=(), read_sees=(("x", 0, 1), ("x", 1, 2))
    )
    assert a.differs_from(b) == ["read #1 of 'x' only in other outcome"]
    assert b.differs_from(a) == ["read #1 of 'x' only in this outcome"]


def test_read_diff_aligned_by_location_and_index():
    a = MemoryOutcome(
        final_writer=(),
        read_sees=(("x", 0, 1), ("x", 1, 1), ("y", 0, None)),
    )
    b = MemoryOutcome(
        final_writer=(),
        read_sees=(("y", 0, None), ("x", 1, 7), ("x", 0, 1)),
    )
    diffs = a.differs_from(b)
    assert diffs == ["read #1 of 'x' sees write 1 vs 7"]


def test_heterogeneous_location_keys():
    """Tuple and string locations coexist; sorting uses repr, not <."""
    a = MemoryOutcome(
        final_writer=((("arr", 0), 5), ("v", 1)), read_sees=()
    )
    b = MemoryOutcome(
        final_writer=(("v", 1), (("arr", 0), 6)), read_sees=()
    )
    diffs = a.differs_from(b)
    assert len(diffs) == 1 and "('arr', 0)" in diffs[0]
