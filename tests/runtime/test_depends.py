"""Unit tests for the OpenMP-style depends layer."""

from repro import DeterminacyRaceDetector, Runtime, SharedArray
from repro.harness.metrics import MetricsCollector
from repro.runtime.depends import DependsTaskGroup


def run(builder):
    det = DeterminacyRaceDetector()
    metrics = MetricsCollector()
    rt = Runtime(observers=[det, metrics])
    mem = SharedArray(rt, "x", 8)
    rt.run(lambda _rt: builder(rt, mem))
    return det, metrics


def test_out_then_in_serializes():
    def prog(rt, mem):
        group = DependsTaskGroup(rt)
        group.task(lambda: mem.write(0, 1), out=["d0"])
        group.task(lambda: mem.read(0), in_=["d0"])
        group.wait_all()

    det, _ = run(prog)
    assert not det.report.has_races


def test_missing_dependence_races():
    def prog(rt, mem):
        group = DependsTaskGroup(rt)
        group.task(lambda: mem.write(0, 1), out=["d0"])
        group.task(lambda: mem.read(0))  # forgot in_: real race
        group.wait_all()

    det, _ = run(prog)
    assert det.report.racy_locations == {("x", 0)}


def test_inout_chains_serialize_writers():
    def prog(rt, mem):
        group = DependsTaskGroup(rt)
        for v in range(4):
            group.task(lambda v=v: mem.write(1, v), inout=["acc"])
        group.wait_all()
        assert mem.read(1) == 3

    det, _ = run(prog)
    assert not det.report.has_races


def test_write_after_read_waits_for_all_readers():
    def prog(rt, mem):
        group = DependsTaskGroup(rt)
        group.task(lambda: mem.write(2, 5), out=["d"])
        group.task(lambda: mem.read(2), in_=["d"])
        group.task(lambda: mem.read(2), in_=["d"])
        group.task(lambda: mem.write(2, 6), out=["d"])  # waits both readers
        group.wait_all()

    det, _ = run(prog)
    assert not det.report.has_races


def test_independent_tasks_have_no_joins_between_them():
    def prog(rt, mem):
        group = DependsTaskGroup(rt)
        group.task(lambda: mem.write(0, 1), out=["a"])
        group.task(lambda: mem.write(1, 2), out=["b"])
        group.wait_all()

    det, metrics = run(prog)
    assert not det.report.has_races
    # Only the two wait_all tree joins; no sibling (non-tree) joins.
    assert metrics.num_nt_joins == 0
    assert metrics.num_gets == 2


def test_sibling_dependences_are_non_tree_joins():
    def prog(rt, mem):
        group = DependsTaskGroup(rt)
        group.task(lambda: mem.write(0, 1), out=["d"])
        group.task(lambda: mem.read(0), in_=["d"])
        group.wait_all()

    _, metrics = run(prog)
    assert metrics.num_nt_joins == 1  # the in-task get of the sibling


def test_dedup_of_repeated_dependences():
    def prog(rt, mem):
        group = DependsTaskGroup(rt)
        group.task(lambda: mem.write(0, 1), out=["a", "b"])
        # depends on the same producer through two locations: one get
        group.task(lambda: mem.read(0), in_=["a", "b"])
        group.wait_all()

    _, metrics = run(prog)
    assert metrics.num_nt_joins == 1


def test_group_len_counts_tasks():
    def prog(rt, mem):
        group = DependsTaskGroup(rt)
        for _ in range(5):
            group.task(lambda: None)
        assert len(group) == 5
        group.wait_all()

    run(prog)


def test_task_returns_handle_with_value():
    rt = Runtime()

    def prog(rt):
        group = DependsTaskGroup(rt)
        h = group.task(lambda: 99, out=["r"])
        return h.get()

    assert rt.run(prog) == 99
