"""Focused unit tests for FinishScope, Task, and error types."""

import pytest

from repro import (
    NullFutureError,
    RaceError,
    ReproError,
    Runtime,
    RuntimeStateError,
    Task,
    TaskKind,
    UnsupportedConstructError,
)
from repro.core.races import AccessKind, Race
from repro.runtime.finish import FinishScope


def make_task(tid=0, kind=TaskKind.MAIN, parent=None):
    return Task(tid, kind, parent=parent, ief=None)


# ---------------------------------------------------------------------- #
# Task                                                                   #
# ---------------------------------------------------------------------- #
def test_task_kinds_and_flags():
    main = make_task()
    assert main.is_main and not main.is_future
    fut = make_task(1, TaskKind.FUTURE, parent=main)
    assert fut.is_future and not fut.is_main
    asy = make_task(2, TaskKind.ASYNC, parent=fut)
    assert not asy.is_future


def test_task_depth_and_ancestry():
    a = make_task(0)
    b = make_task(1, TaskKind.ASYNC, parent=a)
    c = make_task(2, TaskKind.FUTURE, parent=b)
    assert (a.depth, b.depth, c.depth) == (0, 1, 2)
    assert a.is_ancestor_of(c)
    assert b.is_ancestor_of(c)
    assert not c.is_ancestor_of(a)
    assert not a.is_ancestor_of(a)  # proper ancestry
    assert list(c.ancestors()) == [b, a]


def test_task_default_names():
    t = make_task(7, TaskKind.ASYNC, parent=make_task())
    assert t.name == "async#7"
    named = Task(8, TaskKind.FUTURE, parent=None, ief=None, name="worker")
    assert named.name == "worker"
    assert "worker" in repr(named)


# ---------------------------------------------------------------------- #
# FinishScope                                                            #
# ---------------------------------------------------------------------- #
def test_scope_registration_and_close():
    owner = make_task()
    scope = FinishScope(0, owner, enclosing=None)
    child = make_task(1, TaskKind.ASYNC, parent=owner)
    scope.register(child)
    assert scope.joins == [child]
    scope.closed = True
    with pytest.raises(ValueError):
        scope.register(child)


def test_scope_depth_chain():
    owner = make_task()
    root = FinishScope(0, owner, enclosing=None)
    mid = FinishScope(1, owner, enclosing=root)
    leaf = FinishScope(2, owner, enclosing=mid)
    assert (root.depth, mid.depth, leaf.depth) == (0, 1, 2)
    assert "owner=main#0" in repr(root)


# ---------------------------------------------------------------------- #
# Errors                                                                 #
# ---------------------------------------------------------------------- #
def test_error_hierarchy():
    for cls in (RuntimeStateError, NullFutureError, UnsupportedConstructError):
        assert issubclass(cls, ReproError)
    race = Race(loc=("x",), kind=AccessKind.WRITE_WRITE,
                prev_task=1, current_task=2)
    err = RaceError(race)
    assert err.race is race
    assert "write-write" in str(err)


# ---------------------------------------------------------------------- #
# Exception hygiene in the runtime                                       #
# ---------------------------------------------------------------------- #
def test_exception_inside_nested_finish_unwinds_cleanly():
    rt = Runtime()

    def prog(rt):
        with pytest.raises(ValueError):
            with rt.finish():
                with rt.finish():
                    raise ValueError("boom")
        # the stack is restored: further scopes work
        with rt.finish():
            rt.async_(lambda: None)
        return "done"

    assert rt.run(prog) == "done"


def test_exception_inside_task_restores_current_task():
    rt = Runtime()

    def prog(rt):
        main = rt.current_task
        with pytest.raises(RuntimeError):
            rt.async_(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        assert rt.current_task is main
        return True

    assert rt.run(prog)


def test_task_exception_recorded_on_task_object():
    rt = Runtime()
    holder = {}

    def prog(rt):
        def boom():
            raise KeyError("k")

        try:
            rt.async_(boom)
        except KeyError:
            pass
        # spawn another to find the failed one's record
        holder["count"] = rt.num_tasks

    rt.run(prog)
    assert holder["count"] == 2
