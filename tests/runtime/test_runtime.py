"""Unit tests for the serial depth-first runtime semantics (Section 2)."""

import pytest

from repro import Runtime, RuntimeStateError, TaskKind
from repro.core.events import ExecutionObserver


class Recorder(ExecutionObserver):
    """Flat log of every hook invocation, for order assertions."""

    def __init__(self):
        self.log = []

    def on_init(self, main):
        self.log.append(("init", main.tid))

    def on_task_create(self, parent, child):
        self.log.append(("create", parent.tid, child.tid))

    def on_task_end(self, task):
        self.log.append(("end", task.tid))

    def on_get(self, consumer, producer):
        self.log.append(("get", consumer.tid, producer.tid))

    def on_finish_start(self, scope):
        self.log.append(("fstart", scope.fid))

    def on_finish_end(self, scope):
        self.log.append(("fend", scope.fid))

    def on_read(self, task, loc):
        self.log.append(("read", task.tid, loc))

    def on_write(self, task, loc):
        self.log.append(("write", task.tid, loc))

    def on_shutdown(self, main):
        self.log.append(("shutdown", main.tid))


def test_run_returns_program_result():
    rt = Runtime()
    assert rt.run(lambda _rt: 42) == 42


def test_main_task_identity():
    rt = Runtime()
    seen = {}

    def prog(rt):
        task = rt.current_task
        seen["tid"] = task.tid
        seen["kind"] = task.kind
        seen["ief"] = task.ief

    rt.run(prog)
    assert seen["tid"] == 0
    assert seen["kind"] is TaskKind.MAIN
    assert seen["ief"] is None
    assert rt.current_task is None  # cleared after the run


def test_depth_first_execution_order():
    order = []
    rt = Runtime()

    def prog(rt):
        order.append("pre")
        rt.async_(lambda: order.append("child"))
        order.append("post")

    rt.run(prog)
    assert order == ["pre", "child", "post"]


def test_nested_spawns_depth_first():
    order = []
    rt = Runtime()

    def prog(rt):
        def outer():
            order.append("outer-start")
            rt.async_(lambda: order.append("inner"))
            order.append("outer-end")

        rt.async_(outer)
        order.append("main")

    rt.run(prog)
    assert order == ["outer-start", "inner", "outer-end", "main"]


def test_task_ids_are_spawn_order():
    rt = Runtime()
    tids = []

    def prog(rt):
        tids.append(rt.async_(lambda: None).tid)
        tids.append(rt.future(lambda: None).task.tid)
        tids.append(rt.async_(lambda: None).tid)

    rt.run(prog)
    assert tids == [1, 2, 3]
    assert rt.num_tasks == 4  # + main


def test_event_bracket_order():
    rec = Recorder()
    rt = Runtime(observers=[rec])

    def prog(rt):
        with rt.finish():
            rt.async_(lambda: None)

    rt.run(prog)
    assert rec.log == [
        ("init", 0),
        ("fstart", 0),   # implicit root finish
        ("fstart", 1),
        ("create", 0, 1),
        ("end", 1),
        ("fend", 1),
        ("fend", 0),
        ("end", 0),
        ("shutdown", 0),
    ]


def test_ief_assignment_follows_dynamic_scope():
    rt = Runtime()
    iefs = {}

    def prog(rt):
        with rt.finish() as outer:
            def parent():
                # no finish in between: child escapes to `outer`
                child = rt.async_(lambda: None)
                iefs["escaping"] = child.ief.fid
                with rt.finish() as inner:
                    child2 = rt.async_(lambda: None)
                    iefs["inner"] = child2.ief.fid
                iefs["inner_fid"] = inner.fid

            rt.async_(parent)
            iefs["outer_fid"] = outer.fid

    rt.run(prog)
    assert iefs["escaping"] == iefs["outer_fid"]
    assert iefs["inner"] == iefs["inner_fid"]


def test_finish_joins_record_registered_tasks():
    rt = Runtime()
    joined = {}

    def prog(rt):
        with rt.finish() as scope:
            rt.async_(lambda: None, name="a")
            rt.async_(lambda: None, name="b")
        joined["names"] = [t.name for t in scope.joins]

    rt.run(prog)
    assert joined["names"] == ["a", "b"]


def test_spawn_outside_run_rejected():
    rt = Runtime()
    with pytest.raises(RuntimeStateError):
        rt.async_(lambda: None)


def test_finish_outside_run_rejected():
    rt = Runtime()
    with pytest.raises(RuntimeStateError):
        with rt.finish():
            pass


def test_runtime_is_single_use():
    rt = Runtime()
    rt.run(lambda _rt: None)
    with pytest.raises(RuntimeStateError):
        rt.run(lambda _rt: None)


def test_add_observer_after_start_rejected():
    rt = Runtime()

    def prog(rt):
        with pytest.raises(RuntimeStateError):
            rt.add_observer(Recorder())

    rt.run(prog)


def test_child_exception_propagates_and_marks_task():
    rt = Runtime()
    tasks = {}

    def prog(rt):
        def boom():
            raise ValueError("boom")

        try:
            rt.async_(boom)
        except ValueError:
            tasks["raised"] = True

    rt.run(prog)
    assert tasks.get("raised")


def test_args_and_kwargs_forwarded():
    rt = Runtime()
    out = {}

    def prog(rt):
        f = rt.future(lambda a, b=0: a + b, 40, b=2)
        out["v"] = f.get()

    rt.run(prog)
    assert out["v"] == 42


def test_task_value_and_completed_flags():
    rt = Runtime()
    info = {}

    def prog(rt):
        t = rt.async_(lambda: "ret")
        info["completed"] = t.completed
        info["value"] = t.value

    rt.run(prog)
    assert info == {"completed": True, "value": "ret"}


def test_depth_tracking():
    rt = Runtime()
    depths = []

    def prog(rt):
        def level(d):
            depths.append(rt.current_task.depth)
            if d:
                rt.async_(level, d - 1)

        rt.async_(level, 2)

    rt.run(prog)
    assert depths == [1, 2, 3]
