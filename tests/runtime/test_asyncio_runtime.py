"""Unit tests for AsyncioRuntime — the cooperative asyncio executor."""

import asyncio

import pytest

from repro import (
    AsyncioRuntime,
    NullFutureError,
    ParallelRaceDetector,
    RuntimeStateError,
    SharedArray,
    SharedVar,
)
from repro.runtime.base import RuntimeBase


def test_satisfies_runtime_protocol():
    assert isinstance(AsyncioRuntime(), RuntimeBase)


def test_rejects_synchronous_program():
    rt = AsyncioRuntime()
    with pytest.raises(TypeError, match="async def program"):
        rt.run(lambda rt: None)


def test_future_value_propagation_with_await():
    rt = AsyncioRuntime()

    async def program(rt):
        f = rt.future(lambda: 21)
        g = rt.future(lambda: 2)
        return await f.get() * await g.get()

    assert rt.run(program) == 42
    assert rt.num_tasks == 3


def test_coroutine_bodies_supported():
    rt = AsyncioRuntime()

    async def producer():
        await asyncio.sleep(0)
        return 7

    async def program(rt):
        f = rt.future(producer)
        return await f.get()

    assert rt.run(program) == 7


def test_finish_scope_drains_transitive_spawns():
    rt = AsyncioRuntime()
    seen = []

    def leaf(i):
        seen.append(i)

    async def mid(rt, i):
        await asyncio.sleep(0)
        rt.async_(leaf, i)

    async def program(rt):
        async with rt.finish():
            for i in range(6):
                rt.async_(mid, rt, i)
        assert sorted(seen) == list(range(6))

    rt.run(program)


def test_child_exception_raised_at_finish_exit():
    rt = AsyncioRuntime()

    async def program(rt):
        async with rt.finish():
            rt.async_(lambda: 1 / 0)

    with pytest.raises(ZeroDivisionError):
        rt.run(program)


def test_future_exception_delivered_at_get_not_finish():
    rt = AsyncioRuntime()

    async def program(rt):
        f = rt.future(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            await f.get()
        return "survived"

    assert rt.run(program) == "survived"


def test_get_on_none_raises_null_future_error():
    rt = AsyncioRuntime()

    async def program(rt):
        with pytest.raises(NullFutureError):
            rt.get(None)

    rt.run(program)


def test_single_use():
    rt = AsyncioRuntime()

    async def program(rt):
        return 1

    rt.run(program)
    with pytest.raises(RuntimeStateError):
        rt.run(program)


def test_provenance_rejected():
    class _Prov:
        enabled = True

    with pytest.raises(ValueError, match="provenance"):
        AsyncioRuntime(provenance=_Prov())


def test_online_detection_racy_siblings():
    det = ParallelRaceDetector()
    rt = AsyncioRuntime(observers=[det])
    data = SharedArray(rt, "data", 1)

    async def program(rt):
        async with rt.finish():
            rt.async_(lambda: data.write(0, 1))
            rt.async_(lambda: data.write(0, 2))

    rt.run(program)
    assert set(det.racy_locations) == {("data", 0)}


def test_online_detection_race_free_chain():
    det = ParallelRaceDetector()
    rt = AsyncioRuntime(observers=[det])
    v = SharedVar(rt, "v")

    async def program(rt):
        f = rt.future(lambda: v.write(1))

        async def consumer():
            await f.get()
            return v.read()

        g = rt.future(consumer)
        assert await g.get() == 1
        v.write(2)

    rt.run(program)
    assert det.races == []


def test_siblings_genuinely_interleave():
    """The event order is not depth-first: a sleeping sibling yields."""
    rt = AsyncioRuntime()
    order = []

    async def a():
        order.append("a1")
        await asyncio.sleep(0)
        order.append("a2")

    async def b():
        order.append("b1")
        await asyncio.sleep(0)
        order.append("b2")

    async def program(rt):
        async with rt.finish():
            rt.async_(a)
            rt.async_(b)

    rt.run(program)
    assert order == ["a1", "b1", "a2", "b2"]
