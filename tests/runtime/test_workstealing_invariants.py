"""Stress/invariant tests pinning the WorkStealingSimulator discipline.

PR 8 audited the simulator against the Blumofe-Leiserson model it claims
to implement; the audit found the documented discipline *is* what the code
does, so these tests pin it against regression rather than fix a bug:

* a worker never probes itself as a steal victim;
* thieves steal from the *oldest* end of the victim deque (FIFO) while
  owners pop their *newest* entry (LIFO);
* a failed steal is recorded exactly when the probed deque was empty
  (``victim_depth == 0``), a hit exactly when it was not;
* every steal attempt is stamped strictly inside ``[0, makespan)`` and
  burns the thief's cycle (stolen steps start the next cycle);
* ``busy == work`` — each weight unit of each step is executed once.
"""

import random

import pytest

from repro.graph import GraphBuilder
from repro.graph.computation_graph import ComputationGraph
from repro.runtime.workstealing import WorkStealingSimulator
from repro.testing.generator import random_program, run_program


class _Probe:
    """Minimal Observability stand-in recording every simulator event."""

    enabled = True

    def __init__(self):
        self.steals = []   # (worker, victim, cycle, hit, victim_depth)
        self.steps = []    # (worker, step, start_cycle, weight)

    def ws_steal(self, worker, victim, cycle, *, hit, victim_depth):
        self.steals.append((worker, victim, cycle, hit, victim_depth))

    def ws_step(self, worker, step, start_cycle, weight):
        self.steps.append((worker, step, start_cycle, weight))


def _independent_steps(n: int) -> ComputationGraph:
    """n mutually independent unit steps — all roots, all on worker 0."""
    g = ComputationGraph()
    for _ in range(n):
        g.new_step(0)
    return g


def _recorded_graphs(seeds):
    graphs = []
    for seed in seeds:
        gb = GraphBuilder()
        run_program(random_program(random.Random(seed), max_depth=3), [gb])
        graphs.append(gb.graph)
    return graphs


def test_stress_invariants_random_graphs():
    """Fuzz the simulator and check every recorded event against the model."""
    for graph in _recorded_graphs(range(12)):
        for workers in (2, 3, 5):
            probe = _Probe()
            sim = WorkStealingSimulator(
                graph, workers, seed=workers * 31 + 7, obs=probe
            )
            stats = sim.run()

            hits = [s for s in probe.steals if s[3]]
            misses = [s for s in probe.steals if not s[3]]
            assert len(hits) == stats.steals
            assert len(misses) == stats.failed_steals
            for worker, victim, cycle, hit, depth in probe.steals:
                assert worker != victim, "self-probe is forbidden"
                assert 0 <= worker < workers and 0 <= victim < workers
                assert 0 <= cycle < stats.makespan
                # hit <=> the probed deque held work
                assert hit == (depth > 0)

            # every step executed exactly once, inside the makespan
            assert sorted(s[1] for s in probe.steps) == list(
                range(graph.num_steps)
            )
            for _w, step, start, weight in probe.steps:
                assert weight == sim.weights[step]
                assert 0 <= start and start + weight <= stats.makespan

            assert stats.busy == stats.work
            assert stats.makespan >= stats.span
            assert stats.makespan * workers >= stats.work


def test_thief_takes_oldest_owner_takes_newest():
    """Deque ends: owner LIFO (newest), thief FIFO (oldest).

    Five independent unit steps all start on worker 0's deque in id order
    [0..4].  Cycle 0: the owner pops step 4 (its newest); the thief steals
    step 0 (the victim's oldest) and pays the steal cycle, so its stolen
    step starts at cycle 1.
    """
    graph = _independent_steps(5)
    probe = _Probe()
    WorkStealingSimulator(graph, 2, seed=0, obs=probe).run()

    first_steal = probe.steals[0]
    assert first_steal[:2] == (1, 0) and first_steal[3] is True
    # phase 1 scans workers in order: w0 pops step 4 first, then w1 probes
    # the remaining 4-deep deque.
    assert first_steal[4] == 4

    by_worker = {}
    for worker, step, start, _weight in sorted(probe.steps, key=lambda s: s[2]):
        by_worker.setdefault(worker, []).append((step, start))
    # Owner's first executed step is the newest root; it runs cycle 0.
    assert by_worker[0][0] == (4, 0)
    # Thief's first executed step is the oldest root, delayed by the steal.
    assert by_worker[1][0] == (0, 1)


def test_owner_runs_continuations_lifo():
    """Successors are pushed onto the finishing worker's deque and the
    owner consumes them newest-first (continuation-first discipline)."""
    # step 0 enables steps 1 and 2 (pushed in that order); a lone worker
    # must then run 2 (newest) before 1.
    g = ComputationGraph()
    for _ in range(3):
        g.new_step(0)
    from repro.graph.computation_graph import EdgeKind

    g.add_edge(0, 1, EdgeKind.SPAWN)
    g.add_edge(0, 2, EdgeKind.CONTINUE)
    probe = _Probe()
    WorkStealingSimulator(g, 1, seed=0, obs=probe).run()
    order = [s[1] for s in sorted(probe.steps, key=lambda s: s[2])]
    assert order == [0, 2, 1]


def test_single_worker_never_probes():
    graph = _independent_steps(8)
    probe = _Probe()
    stats = WorkStealingSimulator(graph, 1, seed=9, obs=probe).run()
    assert probe.steals == []
    assert stats.steals == 0 and stats.failed_steals == 0
    assert stats.makespan == stats.work


def test_failed_steal_records_empty_victim_and_burns_cycle():
    """A chain on worker 0 leaves worker 1 probing an empty deque every
    cycle: each attempt is a miss with depth 0 against victim 0, and the
    thief stays idle (busy never exceeds work)."""
    g = ComputationGraph()
    for _ in range(4):
        g.new_step(0)
    from repro.graph.computation_graph import EdgeKind

    for i in range(3):
        g.add_edge(i, i + 1, EdgeKind.CONTINUE)
    probe = _Probe()
    stats = WorkStealingSimulator(g, 2, seed=5, obs=probe).run()
    assert stats.steals == 0
    assert stats.failed_steals == stats.makespan == 4
    for worker, victim, _cycle, hit, depth in probe.steals:
        assert (worker, victim, hit, depth) == (1, 0, False, 0)
    assert stats.busy == stats.work == 4


def test_stolen_step_never_runs_in_steal_cycle():
    """With unit weights, any stolen step's start cycle is strictly after
    the cycle of some hit by its thief (the steal latency is real)."""
    for seed in range(6):
        graph = _independent_steps(10)
        probe = _Probe()
        WorkStealingSimulator(graph, 3, seed=seed, obs=probe).run()
        hit_cycles = {}
        for worker, _victim, cycle, hit, _d in probe.steals:
            if hit:
                hit_cycles.setdefault(worker, []).append(cycle)
        started = {}
        for worker, step, start, _w in probe.steps:
            started.setdefault(worker, []).append(start)
        for worker, cycles in hit_cycles.items():
            for c in cycles:
                # the step acquired at cycle c starts at c+1 or later:
                # no step on this worker both starts at c and was stolen.
                assert any(s >= c + 1 for s in started[worker])
                # Stronger: thief executes nothing in the steal cycle.
                # (unit weights: a step running during cycle c has
                # start <= c < start + 1 => start == c)
                stolen_busy = [s for s in started[worker] if s == c]
                assert not stolen_busy or worker == 0  # w0 never steals here


def test_seed_determinism_with_events():
    graph = _recorded_graphs([3])[0]
    pa, pb = _Probe(), _Probe()
    sa = WorkStealingSimulator(graph, 4, seed=11, obs=pa).run()
    sb = WorkStealingSimulator(graph, 4, seed=11, obs=pb).run()
    assert sa == sb
    assert pa.steals == pb.steals
    assert pa.steps == pb.steps
