"""End-to-end observability: instrumentation must observe, never perturb.

The load-bearing guarantee of :mod:`repro.obs` is two-sided:

* **off** — no hook point installs anything; executed code is identical
  to the pre-observability paths (unit-tested in ``tests/obs``);
* **on** — every structural number the harness reports (the Table 2
  columns, detector counters, race verdicts) is bit-identical to the
  uninstrumented run, while the trace/metrics sinks fill up on the side.
"""

import json

from repro.core.detector import DeterminacyRaceDetector
from repro.graph import GraphBuilder
from repro.obs import (
    NULL_OBSERVABILITY,
    Observability,
    RingTracer,
    validate_chrome_trace,
)
from repro.runtime.runtime import Runtime
from repro.runtime.workstealing import WorkStealingSimulator
from repro.memory.shared import SharedArray
from repro.workloads import jacobi, smith_waterman
from repro.workloads.common import run_instrumented


def structural_columns(run):
    m = run.metrics
    d = run.detector
    return {
        "#Tasks": m.num_tasks,
        "#NTJoins": m.num_nt_joins,
        "#SharedMem": m.num_shared_accesses,
        "#AvgReaders": run.avg_readers,
        "precede_queries": d.dtrg.num_precede_queries,
        "num_visits": d.dtrg.num_visits,
        "mutation_epoch": d.dtrg.mutation_epoch,
        "cache_hits": d.perf_stats["cache_hits"],
        "cache_misses": d.perf_stats["cache_misses"],
        "shadow_fast_hits": d.perf_stats["shadow_fast_hits"],
        "races": sorted(d.racy_locations, key=repr),
    }


def test_table2_columns_bit_identical_with_tracing_on():
    for module, entry in (
        (jacobi, jacobi.run_future),
        (smith_waterman, smith_waterman.run_future),
    ):
        params = module.default_params("tiny")
        plain = run_instrumented(lambda rt: entry(rt, params), detect=True)
        obs = Observability(tracer=RingTracer())
        traced = run_instrumented(
            lambda rt: entry(rt, params), detect=True, obs=obs
        )
        assert structural_columns(plain) == structural_columns(traced)
        # ... and the trace actually recorded the run.
        events = obs.tracer.events()
        assert any(e["ph"] == "X" and e["cat"] == "task" for e in events)
        assert validate_chrome_trace(obs.tracer.to_chrome()) == []


def test_null_observability_equals_no_observability():
    params = jacobi.default_params("tiny")
    plain = run_instrumented(
        lambda rt: jacobi.run_future(rt, params), detect=True
    )
    null = run_instrumented(
        lambda rt: jacobi.run_future(rt, params), detect=True,
        obs=NULL_OBSERVABILITY,
    )
    assert structural_columns(plain) == structural_columns(null)


def racy_run(obs=None):
    det = DeterminacyRaceDetector(obs=obs)
    rt = Runtime(observers=[det], obs=obs)
    mem = SharedArray(rt, "d", 2)

    def program(rt_):
        f = rt_.future(lambda: mem.write(0, 1), name="producer")
        mem.read(0)  # race: no get() yet
        f.get()

    rt.run(program)
    return det


def test_race_verdicts_and_instants():
    plain = racy_run()
    obs = Observability(tracer=RingTracer())
    traced = racy_run(obs)
    assert plain.racy_locations == traced.racy_locations == {("d", 0)}
    races = [e for e in obs.tracer.events() if e["cat"] == "race"]
    assert len(races) == 1
    assert races[0]["args"]["kind"] == "write-read"
    assert obs.registry.counter("races_reported").value == 1
    # The PRECEDE instants carry the cache-outcome args.
    precedes = [e for e in obs.tracer.events() if e["name"] == "precede"]
    assert precedes, "expected PRECEDE instants in the trace"
    assert all(
        e["args"]["outcome"] in ("level0", "hit", "miss", "search")
        for e in precedes
    )


def test_finish_and_get_events_in_trace():
    obs = Observability(tracer=RingTracer())
    rt = Runtime(obs=obs)

    def program(rt_):
        with rt_.finish():
            f = rt_.future(lambda: 42, name="prod")
        return f.get()

    assert rt.run(program) == 42
    events = obs.tracer.events()
    finishes = [e for e in events if e["cat"] == "finish"]
    # Explicit scope + implicit root scope.
    assert len(finishes) == 2
    joins = [e for e in events if e["cat"] == "join"]
    assert len(joins) == 1
    spans = {e["name"] for e in events if e["cat"] == "task"}
    assert "prod" in spans


def test_workstealing_stats_unperturbed_and_traced():
    obs = Observability(tracer=RingTracer())
    builder = GraphBuilder()
    rt = Runtime(observers=[builder])

    def program(rt_):
        with rt_.finish():
            for i in range(6):
                rt_.async_(lambda: None, name=f"t{i}")

    rt.run(program)
    graph = builder.graph
    plain = WorkStealingSimulator(graph, 3, seed=7).run()
    traced = WorkStealingSimulator(graph, 3, seed=7, obs=obs).run()
    assert (plain.makespan, plain.steals, plain.failed_steals, plain.busy) \
        == (traced.makespan, traced.steals, traced.failed_steals, traced.busy)
    events = obs.tracer.events()
    steps = [e for e in events if e["ph"] == "X" and e["cat"] == "ws"]
    assert len(steps) == graph.num_steps
    # Virtual clock: span endpoints stay within the simulated makespan.
    assert all(e["ts"] + e["dur"] <= traced.makespan for e in steps)
    assert obs.registry.counter("ws_steals").value == traced.steals
    assert (obs.registry.counter("ws_failed_steals").value
            == traced.failed_steals)
    assert validate_chrome_trace(obs.tracer.to_chrome()) == []


def test_metrics_json_dump_shape(tmp_path):
    params = jacobi.default_params("tiny")
    obs = Observability()
    run_instrumented(
        lambda rt: jacobi.run_future(rt, params), detect=True, obs=obs
    )
    path = tmp_path / "metrics.json"
    obs.write_metrics(path)
    data = json.loads(path.read_text())
    assert set(data) == {"counters", "histograms", "epoch_windows"}
    assert data["counters"]["tasks_spawned"] > 0
    assert data["histograms"]["precede_latency_ns"]["count"] \
        == (data["counters"]["precede_level0"]
            + data["counters"]["precede_hit"]
            + data["counters"]["precede_miss"]
            + data["counters"]["precede_search"])
    assert data["histograms"]["cell_readers"]["count"] \
        == data["counters"]["shadow_reads"] + data["counters"]["shadow_writes"]
