"""The checked-in fuzz regression corpus must replay green forever.

Each ``tests/corpus/*.json`` entry is a (usually minimized) program with
the oracle's verdict frozen in.  Every general detector must reproduce
that verdict exactly; restricted detectors must refuse or agree; and each
run must survive the record-replay round trip.  A red test here means a
previously-fixed detector bug has come back.
"""

from pathlib import Path

import pytest

from repro.memory.tracer import TraceRecorder, replay_trace
from repro.runtime.errors import UnsupportedConstructError
from repro.testing.codec import entry_from_data
from repro.testing.generator import Future, count_stmts, run_program
from repro.tools.fuzz import GENERAL, ORACLE, RESTRICTED, load_corpus
from repro.tools.racecheck import DETECTORS

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_nonempty_and_named_uniquely():
    assert len(ENTRIES) >= 4
    names = [e.name for e in ENTRIES]
    assert len(set(names)) == len(names)
    assert "dtrg_future_covered_reader" in names


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_general_detectors_reproduce_the_frozen_verdict(entry):
    for name in (ORACLE,) + GENERAL:
        det = DETECTORS[name]()
        run_program(entry.program, [det])
        assert det.racy_locations == entry.racy_locations, name


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_restricted_detectors_refuse_or_agree(entry):
    for name in RESTRICTED:
        det = DETECTORS[name]()
        try:
            run_program(entry.program, [det])
        except UnsupportedConstructError:
            continue
        assert det.racy_locations == entry.racy_locations, name


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_record_replay_parity_on_corpus(entry):
    recorder = TraceRecorder()
    live = DETECTORS["dtrg"]()
    run_program(entry.program, [recorder, live])
    replayed = DETECTORS["dtrg"]()
    replay_trace(recorder.trace, [replayed])
    assert replayed.racy_locations == live.racy_locations


def test_future_covered_reader_entry_shape():
    """The Lemma-4 soundness regression: a minimized program whose race is
    missed if future-coverage is not propagated to spawn-tree descendants."""
    entry = next(e for e in ENTRIES if e.name == "dtrg_future_covered_reader")
    assert entry.racy_locs == (0,)
    assert count_stmts(entry.program.body) <= 9
    assert any(isinstance(s, Future) for s in entry.program.body)


def test_entries_round_trip_through_raw_json():
    import json

    for path in sorted(CORPUS_DIR.glob("*.json")):
        with open(path) as fh:
            data = json.load(fh)
        entry = entry_from_data(data)
        assert entry.name == path.stem
