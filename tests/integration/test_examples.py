"""Every example script must run clean — examples are executable docs.

Each example exposes ``main()`` and asserts its own claims internally, so
simply invoking it is a meaningful test.  Output is captured (pytest's
capsys) to keep the suite quiet.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_module(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 10
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, capsys):
    module = load_module(name)
    assert hasattr(module, "main"), f"{name} must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
