"""Integration tests for the repro-graphstats CLI."""

import pytest

from repro.tools.graphstats import GRAPH_WORKLOADS, main, record_graph


def test_cli_prints_profile(capsys):
    assert main(["--workload", "ReduceTree", "--scale", "tiny",
                 "--workers", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "work T1" in out and "span Tinf" in out
    assert "greedy speedup" in out
    assert "non-tree join" in out


def test_cli_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["--workload", "Nope"])


@pytest.mark.parametrize("name", sorted(GRAPH_WORKLOADS))
def test_every_registered_workload_records_a_graph(name):
    graph = record_graph(name, "tiny")
    assert graph.num_steps > 0
    assert graph.num_tasks >= 1
    # step ids are a topological order everywhere
    assert all(src < dst for src, dst, _ in graph.edges)


def test_af_variants_have_zero_non_tree_edges():
    from repro.graph import EdgeKind

    for name in ("Series-af", "Crypt-af", "Jacobi-af", "SOR-af", "NQueens"):
        graph = record_graph(name, "tiny")
        assert graph.edge_counts()[EdgeKind.JOIN_NON_TREE] == 0, name


def test_future_variants_have_non_tree_edges():
    from repro.graph import EdgeKind

    for name in ("Jacobi", "Smith-Waterman", "Strassen", "SOR", "LUFact"):
        graph = record_graph(name, "tiny")
        assert graph.edge_counts()[EdgeKind.JOIN_NON_TREE] > 0, name
