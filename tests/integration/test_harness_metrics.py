"""Unit/integration tests for the metrics collector and report rendering
corners not covered elsewhere."""

from repro import Runtime, SharedArray
from repro.core.detector import DeterminacyRaceDetector
from repro.harness.metrics import DetectorPerf, Metrics, MetricsCollector
from repro.harness.report import render_metrics, render_table


def collect(builder):
    metrics = MetricsCollector()
    rt = Runtime(observers=[metrics])
    mem = SharedArray(rt, "x", 8)
    rt.run(lambda _rt: builder(rt, mem))
    return metrics.snapshot()


def test_task_kind_counters():
    def prog(rt, mem):
        rt.async_(lambda: None)
        rt.future(lambda: None).get()
        rt.async_(lambda: rt.future(lambda: None))

    snap = collect(prog)
    assert snap.num_tasks == 4
    assert snap.num_async_tasks == 2
    assert snap.num_future_tasks == 2
    assert snap.num_gets == 1
    assert snap.max_live_depth == 2


def test_nt_join_classification_uses_ancestry():
    def prog(rt, mem):
        f = rt.future(lambda: None, name="p")
        f.get()  # parent join: tree

        def consumer():
            f.get()  # sibling: non-tree

        rt.future(consumer).get()

    snap = collect(prog)
    assert snap.num_gets == 3
    assert snap.num_nt_joins == 1


def test_finish_scope_counter_excludes_root():
    def prog(rt, mem):
        with rt.finish():
            with rt.finish():
                pass

    snap = collect(prog)
    assert snap.num_finish_scopes == 2


def test_metrics_as_row():
    snap = Metrics(num_tasks=3, num_nt_joins=1, num_reads=4, num_writes=6)
    row = snap.as_row()
    assert row == {"#Tasks": 3, "#NTJoins": 1, "#SharedMem": 10}
    assert snap.num_shared_accesses == 10


def test_render_table_empty_and_mixed_types():
    assert render_table([]) == "(no rows)"
    table = render_table([{"name": "x", "v": 1.5}, {"name": "longer", "v": 2}])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert "1.50" in table
    assert len({len(line) for line in lines}) == 1


def test_render_table_union_of_heterogeneous_rows():
    """Columns are the ordered union across *all* rows — taking them from
    rows[0] alone silently dropped every column the first row lacked
    (e.g. detector-perf columns when the first row ran without a
    detector)."""
    rows = [
        {"Benchmark": "a", "#Tasks": 1},
        {"Benchmark": "b", "#Tasks": 2, "CacheHit%": 93.3},
        {"Benchmark": "c", "races": 1},
    ]
    table = render_table(rows)
    header = table.splitlines()[0]
    assert header.split("|")[0].strip() == "Benchmark"
    assert "CacheHit%" in header
    assert "races" in header
    # First-seen order: rows[0]'s keys first, then each new key in turn.
    assert header.index("#Tasks") < header.index("CacheHit%") < \
        header.index("races")
    assert "93.30" in table
    # Missing cells render empty, and every line stays aligned.
    assert len({len(line) for line in table.splitlines()}) == 1


def test_metrics_collector_depth_is_memoized_not_quadratic():
    """on_task_create must not re-walk the whole parent chain per spawn: a
    depth-N spawn chain used to cost O(N^2) parent-map lookups.  Drive the
    collector directly (the serial runtime would exhaust the recursion
    limit long before 10k) with a counting parent map."""

    class Stub:
        def __init__(self, tid, is_future=False):
            self.tid = tid
            self.is_future = is_future

    class CountingDict(dict):
        gets = 0

        def get(self, *a):
            CountingDict.gets += 1
            return dict.get(self, *a)

    metrics = MetricsCollector()
    metrics._parent = CountingDict(metrics._parent)
    metrics._depth = CountingDict(metrics._depth)
    CountingDict.gets = 0

    n = 10_000
    main = Stub(0)
    metrics.on_init(main)
    prev = main
    for tid in range(1, n + 1):
        child = Stub(tid)
        metrics.on_task_create(prev, child)
        prev = child
    assert metrics.max_live_depth == n
    # One depth lookup per spawn (plus change), never O(depth) walks.
    assert CountingDict.gets <= 5 * n


def test_is_ancestor_still_correct_with_memoized_depths():
    def prog(rt, mem):
        f = rt.future(lambda: None, name="p")

        def mid():
            def inner():
                f.get()  # great-grandparent holds the handle: non-tree

            rt.future(inner).get()

        rt.future(mid).get()
        f.get()  # parent join: tree

    snap = collect(prog)
    assert snap.num_gets == 4
    assert snap.num_nt_joins == 1


def test_detector_perf_tolerates_missing_stats_keys():
    """Duck-typed detectors may omit counters from perf_stats; building
    the report row from them must not raise (regression: KeyError took
    down the whole Table-2 render)."""

    class Partial:
        perf_stats = {"precede_queries": 7}

    perf = DetectorPerf.from_detector(Partial())
    assert perf.precede_queries == 7
    assert perf.cache_hits == 0
    assert perf.cache_hit_rate == 0.0
    assert perf.as_row()["#PrecedeQ"] == 7
    assert DetectorPerf.from_detector(None).precede_queries == 0


def test_detector_perf_from_no_cache_ablation():
    """cache_precede=False leaves cache counters at zero but the row must
    still build and render."""
    det = DeterminacyRaceDetector(cache_precede=False)
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", 2)

    def prog(rt_):
        f = rt_.future(lambda: mem.write(0, 1))
        f.get()
        mem.read(0)

    rt.run(prog)
    perf = DetectorPerf.from_detector(det)
    assert perf.cache_hits == 0 and perf.cache_misses == 0
    assert perf.cache_hit_rate == 0.0
    assert "CacheHit%" in render_table([perf.as_row()])


def test_render_metrics_blocks():
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("shadow_reads").inc(3)
    reg.histogram("precede_latency_ns", (100, 200)).observe(150)
    reg.epoch_ratio("cache_hit_by_epoch_window", 4).observe(0, True)
    text = render_metrics(reg.as_dict())
    assert "shadow_reads" in text
    assert "precede_latency_ns" in text
    assert "cache_hit_by_epoch_window" in text
    assert render_metrics({}) == "(no metrics)"
