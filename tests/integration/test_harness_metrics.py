"""Unit/integration tests for the metrics collector and report rendering
corners not covered elsewhere."""

from repro import Runtime, SharedArray
from repro.harness.metrics import Metrics, MetricsCollector
from repro.harness.report import render_table


def collect(builder):
    metrics = MetricsCollector()
    rt = Runtime(observers=[metrics])
    mem = SharedArray(rt, "x", 8)
    rt.run(lambda _rt: builder(rt, mem))
    return metrics.snapshot()


def test_task_kind_counters():
    def prog(rt, mem):
        rt.async_(lambda: None)
        rt.future(lambda: None).get()
        rt.async_(lambda: rt.future(lambda: None))

    snap = collect(prog)
    assert snap.num_tasks == 4
    assert snap.num_async_tasks == 2
    assert snap.num_future_tasks == 2
    assert snap.num_gets == 1
    assert snap.max_live_depth == 2


def test_nt_join_classification_uses_ancestry():
    def prog(rt, mem):
        f = rt.future(lambda: None, name="p")
        f.get()  # parent join: tree

        def consumer():
            f.get()  # sibling: non-tree

        rt.future(consumer).get()

    snap = collect(prog)
    assert snap.num_gets == 3
    assert snap.num_nt_joins == 1


def test_finish_scope_counter_excludes_root():
    def prog(rt, mem):
        with rt.finish():
            with rt.finish():
                pass

    snap = collect(prog)
    assert snap.num_finish_scopes == 2


def test_metrics_as_row():
    snap = Metrics(num_tasks=3, num_nt_joins=1, num_reads=4, num_writes=6)
    row = snap.as_row()
    assert row == {"#Tasks": 3, "#NTJoins": 1, "#SharedMem": 10}
    assert snap.num_shared_accesses == 10


def test_render_table_empty_and_mixed_types():
    assert render_table([]) == "(no rows)"
    table = render_table([{"name": "x", "v": 1.5}, {"name": "longer", "v": 2}])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert "1.50" in table
    assert len({len(line) for line in lines}) == 1
