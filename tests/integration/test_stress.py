"""Stress tests: larger random programs and deep recursion.

These run one order of magnitude beyond the property suite's program
sizes to catch scaling-dependent bugs (recursion limits, quadratic
cliffs, memo-set growth) while staying in CI-friendly time.
"""

import random

from repro import DeterminacyRaceDetector, Runtime, SharedArray
from repro.baselines import BruteForceDetector
from repro.core.exact import ExactDetector
from repro.testing.generator import count_stmts, random_program, run_program


def test_large_random_programs_detector_vs_oracle():
    rng = random.Random(987)
    total_stmts = 0
    for _ in range(12):
        program = random_program(
            rng, num_locs=6, max_depth=6, max_block=8, p_task=0.4
        )
        total_stmts += count_stmts(program.body)
        det = DeterminacyRaceDetector()
        oracle = BruteForceDetector()
        run_program(program, [det, oracle])
        assert det.racy_locations == oracle.racy_locations
    assert total_stmts > 500  # actually exercised something sizeable


def test_large_wild_programs_exact_vs_oracle():
    rng = random.Random(5150)
    for _ in range(8):
        program = random_program(
            rng, num_locs=5, max_depth=5, max_block=8, p_task=0.4
        )
        det = ExactDetector()
        oracle = BruteForceDetector()
        run_program(program, [det, oracle], scoped_handles=False)
        assert det.racy_locations == oracle.racy_locations


def test_thousand_task_flat_fanout():
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", 1000)

    def prog(rt):
        with rt.finish():
            for i in range(1000):
                rt.async_(lambda i=i: mem.write(i, i))
        return sum(mem.read(i) for i in range(1000))

    total = rt.run(prog)
    assert total == sum(range(1000))
    assert not det.report.has_races
    assert det.dtrg.num_tree_merges == 1000


def test_thousand_future_chain():
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", 1)

    def prog(rt):
        for i in range(1000):
            rt.future(lambda i=i: mem.write(0, i)).get()
        return mem.read(0)

    assert rt.run(prog) == 999
    assert not det.report.has_races


def test_deep_future_nesting_within_recursion_limit():
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    out = {}

    def prog(rt):
        def level(d):
            if d == 0:
                return 0
            return rt.future(level, d - 1).get() + 1

        out["depth"] = level(60)

    rt.run(prog)
    assert out["depth"] == 60
    assert not det.report.has_races


def test_many_readers_single_location():
    """500 parallel future readers of one cell, then an ordered write."""
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", 1)

    def prog(rt):
        mem.write(0, 1)
        handles = [rt.future(lambda: mem.read(0)) for _ in range(500)]
        for h in handles:
            h.get()
        mem.write(0, 2)

    rt.run(prog)
    assert not det.report.has_races
    # the reader set actually populated (multi-reader regime)
    assert det.shadow.avg_readers > 10
