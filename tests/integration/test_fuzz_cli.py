"""End-to-end tests for the ``repro-fuzz`` differential fuzzer."""

import json
from pathlib import Path

import pytest

import repro.core.detector as detector_mod
import repro.tools.fuzz as fuzz
from repro.testing.codec import entry_from_data
from repro.testing.generator import (
    Async,
    Finish,
    Future,
    Get,
    Program,
    Read,
    Write,
    count_stmts,
)
from repro.tools.racecheck import DETECTORS

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"

#: Minimal reproducer for the Lemma-4 future-covered-reader soundness bug.
FUTURE_COVERED_REPRO = Program(
    body=(
        Future((Finish((Async((Read(0),)),)),)),
        Async((Read(0),)),
        Async((Get(0.0), Write(0))),
    ),
    num_locs=1,
)


def plant_future_covered_bug(monkeypatch):
    """Revert the detector to its pre-fix semantics: only the future task
    itself counts as future-covered, not its spawn-tree descendants."""

    def broken_on_task_create(self, parent, child):
        self._names[child.tid] = child.name
        self._future_covered[child.tid] = child.is_future
        self.dtrg.add_task(
            parent.tid, child.tid, is_future=child.is_future, name=child.name
        )

    monkeypatch.setattr(
        detector_mod.DeterminacyRaceDetector,
        "on_task_create",
        broken_on_task_create,
    )


# ---------------------------------------------------------------------- #
# Clean runs                                                             #
# ---------------------------------------------------------------------- #
def test_small_fuzz_run_is_clean(capsys):
    assert fuzz.main(["--seeds", "0:6"]) == 0
    out = capsys.readouterr().out
    assert "no divergences" in out
    assert "brute-force" in out and "dtrg" in out
    assert "fuzz run summary" in out


def test_scoped_only_mode(capsys):
    assert fuzz.main(["--seeds", "0:4", "--mode", "scoped"]) == 0
    out = capsys.readouterr().out
    # restricted detectors only run in scoped mode, so they must appear
    assert "spd3" in out and "offset-span" in out


def test_replay_corpus_cli(capsys):
    assert fuzz.main(["--replay-corpus", str(CORPUS_DIR)]) == 0
    out = capsys.readouterr().out
    assert "corpus replay clean" in out
    assert "dtrg_future_covered_reader: ok" in out


@pytest.mark.parametrize("bad", ["5", "3:3", "4:1", "a:b"])
def test_bad_seed_range_is_a_usage_error(bad):
    with pytest.raises(SystemExit) as excinfo:
        fuzz.main(["--seeds", bad])
    assert excinfo.value.code == 2


# ---------------------------------------------------------------------- #
# Planted bugs must be caught, minimized, and gated by the corpus        #
# ---------------------------------------------------------------------- #
def test_planted_soundness_bug_is_flagged_and_minimized(monkeypatch, tmp_path):
    plant_future_covered_bug(monkeypatch)
    failures = fuzz.check_seed(0, FUTURE_COVERED_REPRO, modes=("scoped",))
    sigs = [f.signature for f in failures]
    assert "scoped:divergence:dtrg:missing" in sigs
    # The ablated configs share the detector frontend, so the planted
    # frontend bug is flagged for each of them as well.
    assert "scoped:divergence:dtrg[no-lsa]:missing" in sigs

    failure = next(f for f in failures if f.detector == "dtrg")
    fuzz._shrink_failure(failure, budget=600)
    assert failure.minimized is not None
    assert count_stmts(failure.minimized.body) <= count_stmts(
        FUTURE_COVERED_REPRO.body
    )

    fuzz.write_corpus_entries([failure], tmp_path)
    paths = list(tmp_path.glob("*.json"))
    assert len(paths) == 1
    with open(paths[0]) as fh:
        entry = entry_from_data(json.load(fh))
    assert entry.racy_locs == (0,)  # the oracle's (correct) verdict

    # The regression gate now fails while the bug is planted...
    assert fuzz.main(["--replay-corpus", str(tmp_path)]) == 1


def test_corpus_gate_catches_the_planted_bug(monkeypatch, capsys):
    """With the pre-fix detector planted, the checked-in corpus goes red —
    exactly the regression the corpus exists to catch."""
    plant_future_covered_bug(monkeypatch)
    assert fuzz.main(["--replay-corpus", str(CORPUS_DIR)]) == 1
    out = capsys.readouterr().out
    assert "dtrg_future_covered_reader: FAIL" in out


def test_planted_verdict_divergence_in_fuzz_range(monkeypatch):
    """A detector that drops one racy location diverges on racy seeds."""
    exact_cls = DETECTORS["exact"]

    class MissingOneExact(exact_cls):
        @property
        def racy_locations(self):
            full = set(exact_cls.racy_locations.fget(self))
            if full:
                full.discard(min(full))
            return full

    monkeypatch.setitem(fuzz.DETECTORS, "exact", MissingOneExact)
    stats, failures = fuzz.fuzz_range(
        range(0, 8), modes=("scoped",), shrink=False
    )
    signatures = {f.signature for f in failures}
    assert "scoped:divergence:exact:missing" in signatures
    assert stats.failures > 0


def test_planted_crash_is_flagged(monkeypatch):
    class CrashingExact(DETECTORS["exact"]):
        def on_write(self, task, loc):
            raise RuntimeError("injected fault")

    monkeypatch.setitem(fuzz.DETECTORS, "exact", CrashingExact)
    stats, failures = fuzz.fuzz_range(
        range(0, 2), modes=("scoped",), shrink=False
    )
    assert any(
        f.kind == "crash" and f.detector == "exact"
        and "RuntimeError" in f.signature
        for f in failures
    )


def test_fuzz_range_dedupes_signatures(monkeypatch):
    class CrashingExact(DETECTORS["exact"]):
        def on_write(self, task, loc):
            raise RuntimeError("injected fault")

    monkeypatch.setitem(fuzz.DETECTORS, "exact", CrashingExact)
    stats, failures = fuzz.fuzz_range(
        range(0, 6), modes=("scoped",), shrink=False
    )
    crash_sigs = [f.signature for f in failures if f.detector == "exact"]
    assert len(crash_sigs) == len(set(crash_sigs))  # deduplicated
    assert stats.failures >= len(crash_sigs)  # raw count keeps every hit


# ---------------------------------------------------------------------- #
# Optimization-flag ablations are cross-checked like any other detector  #
# ---------------------------------------------------------------------- #
def test_ablation_rows_in_scoped_summary(capsys):
    assert fuzz.main(["--seeds", "0:4", "--mode", "scoped"]) == 0
    out = capsys.readouterr().out
    for name in fuzz.ABLATIONS:
        assert name in out


def test_make_detector_applies_ablation_options():
    assert fuzz._make_detector("dtrg[no-lsa]").dtrg.use_lsa is False
    assert fuzz._make_detector("dtrg[no-memo]").dtrg.memoize_visit is False
    assert (fuzz._make_detector("dtrg[no-intervals]").dtrg.use_intervals
            is False)
    # Full-featured config untouched by the ablation table.
    full = fuzz._make_detector("dtrg")
    assert full.dtrg.use_lsa and full.dtrg.memoize_visit \
        and full.dtrg.use_intervals


def test_planted_lsa_ablation_bug_is_flagged(monkeypatch):
    """Break the backward search *only when use_lsa=False*: the stock dtrg
    stays green, so only the ablation sweep can catch the regression."""
    from repro.core.reachability import DynamicTaskReachabilityGraph

    orig = DynamicTaskReachabilityGraph._explore

    def broken_explore(self, *a, **kw):
        if not self.use_lsa:
            return False  # never finds a backward path
        return orig(self, *a, **kw)

    monkeypatch.setattr(
        DynamicTaskReachabilityGraph, "_explore", broken_explore
    )
    # Sibling future join: the write is ordered before the read *only*
    # through the non-tree get edge, which the broken search can't find.
    program = Program(
        body=(Future((Write(0),)), Async((Get(0.0), Read(0)))),
        num_locs=1,
    )
    failures = fuzz.check_seed(0, program, modes=("scoped",))
    sigs = {f.signature for f in failures}
    assert "scoped:divergence:dtrg[no-lsa]:extra" in sigs
    # The full-featured config must NOT diverge from the oracle.
    assert not any(
        f.detector == "dtrg" and f.kind == "divergence" for f in failures
    )


def test_corpus_gate_covers_ablations(monkeypatch, capsys):
    """The checked-in corpus replays through the ablated configs too."""
    from repro.core.reachability import DynamicTaskReachabilityGraph

    orig = DynamicTaskReachabilityGraph._explore

    def broken_explore(self, *a, **kw):
        if not self.use_lsa:
            return False
        return orig(self, *a, **kw)

    monkeypatch.setattr(
        DynamicTaskReachabilityGraph, "_explore", broken_explore
    )
    assert fuzz.main(["--replay-corpus", str(CORPUS_DIR)]) == 1
    assert "dtrg[no-lsa]" in capsys.readouterr().out


def test_fuzz_obs_artifacts(tmp_path, capsys):
    from repro.obs.validate import validate_chrome_trace

    trace = tmp_path / "fuzz-trace.json"
    metrics = tmp_path / "fuzz-metrics.json"
    assert fuzz.main([
        "--seeds", "0:3", "--mode", "scoped",
        "--perfetto", str(trace), "--metrics-json", str(metrics),
    ]) == 0
    data = json.loads(trace.read_text())
    assert validate_chrome_trace(data) == []
    stats = json.loads(metrics.read_text())
    assert stats["counters"]["tasks_spawned"] > 0


# ---------------------------------------------------------------------- #
# Parallel-parity leg (--jobs)                                           #
# ---------------------------------------------------------------------- #
def test_fuzz_with_jobs_is_clean(capsys):
    assert fuzz.main(["--seeds", "0:6", "--mode", "scoped",
                      "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "no divergences" in out
    assert "dtrg[parallel]" in out


def test_planted_parallel_divergence_is_flagged(monkeypatch):
    """A sharded checker that loses races must surface as a
    parallel-divergence failure, not pass silently."""
    from io import StringIO

    from repro.core import parallel_check as parallel_mod

    class _LyingResult:
        racy_locations = frozenset()

        def summary(self):
            return "no determinacy races detected"

    monkeypatch.setattr(
        parallel_mod, "check_trace_parallel",
        lambda trace, **kwargs: _LyingResult(),
    )
    stats, failures = fuzz.fuzz_range(
        range(0, 8), modes=("scoped",), shrink=False, jobs=2,
        out=StringIO(),
    )
    assert any(f.kind == "parallel-divergence" for f in failures)
    row = stats.per_detector[fuzz.PARALLEL_NAME]
    assert row["divergences"] > 0
