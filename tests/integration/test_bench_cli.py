"""Integration tests for the ``repro-bench`` JSON artifact entry point."""

import json

from repro.harness.bench import BENCH_SCHEMA, bench_data, main


def test_bench_writes_schema_tagged_json(tmp_path, capsys):
    out = tmp_path / "BENCH_PR4.json"
    code = main(["--scale", "tiny", "--repeats", "1",
                 "--only", "Series-af", "--only", "Jacobi",
                 "--output", str(out), "--tag", "unit-test"])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["schema"] == BENCH_SCHEMA
    assert data["tag"] == "unit-test"
    assert data["scale"] == "tiny" and data["repeats"] == 1
    names = [w["name"] for w in data["workloads"]]
    assert names == ["Series-af", "Jacobi"]
    for w in data["workloads"]:
        assert w["seq_seconds"] > 0
        assert w["racedet_seconds"] > 0
        assert w["races"] == 0
        assert w["structural"]["num_tasks"] > 0
        assert "cache_hit_rate" in w["detector_perf"]
    # Jacobi's wavefront of future joins produces non-tree edges and
    # therefore a meaningful PRECEDE cache hit rate.
    jacobi = data["workloads"][1]
    assert jacobi["structural"]["num_nt_joins"] > 0
    assert jacobi["detector_perf"]["precede_queries"] > 0


def test_bench_unknown_workload_exits_two(tmp_path, capsys):
    assert main(["--only", "NoSuchBench",
                 "--output", str(tmp_path / "x.json")]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_bench_data_records_failures_without_aborting(monkeypatch, capsys):
    import repro.harness.bench as bench_mod

    def boom(name, scale, repeats, verify):
        raise RuntimeError("exploded")

    monkeypatch.setattr(bench_mod, "run_benchmark", boom)
    data = bench_data(["Series-af"])
    assert data["workloads"] == [
        {"name": "Series-af", "error": "RuntimeError: exploded"}
    ]


def test_parallel_bench_writes_pr5_schema(tmp_path, capsys):
    from repro.harness.bench import PARALLEL_BENCH_SCHEMA

    out = tmp_path / "BENCH_PR5.json"
    code = main(["--parallel", "--scale", "tiny", "--jobs", "1,2",
                 "--only", "Jacobi", "--output", str(out),
                 "--tag", "unit-test"])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["schema"] == PARALLEL_BENCH_SCHEMA
    assert data["tag"] == "unit-test"
    assert data["cpu_count"] >= 1
    (w,) = data["workloads"]
    assert w["name"] == "Jacobi"
    assert w["identical_across_jobs"] is True
    assert w["num_access_events"] > 0
    assert w["snapshot_bytes"] > 0 and w["bytes_per_task"] > 0
    assert w["freeze_seconds"] > 0
    rows = {r["jobs"]: r for r in w["jobs"]}
    assert set(rows) == {1, 2}
    assert rows[1]["speedup"] == 1.0
    assert rows[2]["seconds"] > 0 and rows[2]["speedup"] > 0


def test_parallel_bench_jobs_parsing(tmp_path):
    import pytest

    for bad in ("0,2", "nope"):
        with pytest.raises(SystemExit) as excinfo:
            main(["--parallel", "--jobs", bad,
                  "--output", str(tmp_path / "x.json")])
        assert excinfo.value.code == 2
