"""Operation-count checks for Theorem 1's complexity claims.

Wall-clock benchmarks live in ``benchmarks/``; these tests pin the
*counted* behaviour, which is deterministic:

* structured (async-finish) programs never leave the PRECEDE fast path —
  zero VISIT expansions, zero non-tree edges, one merge per task;
* the number of PRECEDE queries per access is bounded by the stored
  readers + writer (Algorithms 8-9);
* with memoization, VISIT expansions per query are bounded by the number
  of disjoint sets.
"""

from repro.core.detector import DeterminacyRaceDetector
from repro.workloads import crypt_idea, series, smith_waterman
from repro.workloads.common import run_instrumented


def detector_of(entry):
    run = run_instrumented(entry, detect=True)
    assert not run.races
    return run.detector, run.metrics


def test_structured_program_stays_on_fast_path():
    params = series.default_params("tiny")
    det, metrics = detector_of(lambda rt: series.run_af(rt, params))
    dtrg = det.dtrg
    assert dtrg.num_non_tree_edges == 0
    # every task merges exactly once (at its IEF's end)
    assert dtrg.num_tree_merges == metrics.num_tasks
    # fast path: precede() answers at level 0 — num_visits counts VISIT
    # *expansions* only (see DynamicTaskReachabilityGraph.__init__), so a
    # structured program performs zero backward-search work.
    assert dtrg.num_visits == 0


def test_crypt_af_query_count_tracks_accesses():
    params = crypt_idea.default_params("tiny")
    det, metrics = detector_of(lambda rt: crypt_idea.run_af(rt, params))
    q = det.dtrg.num_precede_queries
    # At most ~2 queries per access (reader + writer checks), never less
    # than the number of write checks with a prior writer.
    assert q <= 2 * metrics.num_shared_accesses
    assert q >= metrics.num_writes // 2


def test_wavefront_visits_bounded_by_sets_per_query():
    params = smith_waterman.default_params("tiny")
    det, metrics = detector_of(
        lambda rt: smith_waterman.run_future(rt, params)
    )
    dtrg = det.dtrg
    assert dtrg.num_non_tree_edges == metrics.num_nt_joins
    queries = dtrg.num_precede_queries
    # Memoization: average expansions per query stay far below the task
    # count (here: a small constant — the paper's "1-2 hops" observation).
    assert dtrg.num_visits <= 4 * queries


def test_avg_readers_matches_paper_accounting():
    """#AvgReaders is total stored readers seen / total accesses — verify
    the bookkeeping against a recomputation from shadow state sizes."""
    params = crypt_idea.default_params("tiny")
    det, metrics = detector_of(
        lambda rt: crypt_idea.run_future(rt, params)
    )
    shadow = det.shadow
    assert shadow.num_accesses == metrics.num_shared_accesses
    assert shadow.avg_readers == (
        shadow.total_readers_seen / shadow.num_accesses
    )
