"""Integration tests for the repro-racecheck CLI."""

import textwrap

import pytest

from repro.tools.racecheck import main


@pytest.fixture()
def racy_program(tmp_path):
    path = tmp_path / "racy.py"
    path.write_text(textwrap.dedent("""
        from repro import SharedArray

        def setup(rt):
            return SharedArray(rt, "data", 4)

        def program(rt, data):
            f = rt.future(lambda: data.write(0, 1), name="producer")
            data.read(0)
            f.get()
    """))
    return str(path)


@pytest.fixture()
def clean_program(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(textwrap.dedent("""
        from repro import SharedArray

        def setup(rt):
            return SharedArray(rt, "data", 4)

        def program(rt, data):
            f = rt.future(lambda: data.write(0, 1))
            f.get()
            assert data.read(0) == 1
    """))
    return str(path)


def test_racy_program_exit_one(racy_program, capsys):
    assert main([racy_program]) == 1
    out = capsys.readouterr().out
    assert "determinacy race" in out
    assert "producer" in out


def test_clean_program_exit_zero(clean_program, capsys):
    assert main([clean_program]) == 0
    assert "no determinacy races" in capsys.readouterr().out


def test_metrics_flag(clean_program, capsys):
    main([clean_program, "--metrics"])
    out = capsys.readouterr().out
    assert "tasks: 1 (1 futures)" in out
    assert "shared accesses: 2" in out


def test_dot_and_trace_outputs(racy_program, tmp_path, capsys):
    dot = tmp_path / "g.dot"
    trace = tmp_path / "t.pkl"
    main([racy_program, "--dot", str(dot), "--trace", str(trace)])
    assert dot.read_text().startswith("digraph")
    from repro.core.events import Trace
    from repro.core.detector import DeterminacyRaceDetector
    from repro.memory.tracer import replay_trace

    loaded = Trace.load(str(trace))
    det = DeterminacyRaceDetector()
    replay_trace(loaded, [det])
    assert det.report.racy_locations == {("data", 0)}


def test_witness_flag(racy_program, capsys):
    main([racy_program, "--witness"])
    out = capsys.readouterr().out
    assert "schedule witnesses" in out
    assert "('data', 0)" in out


def test_raise_policy(racy_program, capsys):
    assert main([racy_program, "--policy", "raise"]) == 1
    assert "aborted at first" in capsys.readouterr().out


def test_unsupported_detector_exit_two(racy_program, capsys):
    assert main([racy_program, "--detector", "espbags"]) == 2
    assert "unsupported construct" in capsys.readouterr().err


def test_baseline_detector_on_clean_af_program(tmp_path, capsys):
    path = tmp_path / "af.py"
    path.write_text(textwrap.dedent("""
        from repro import SharedArray

        def setup(rt):
            return SharedArray(rt, "d", 2)

        def program(rt, d):
            with rt.finish():
                rt.async_(lambda: d.write(0, 1))
                rt.async_(lambda: d.write(1, 2))
    """))
    assert main([str(path), "--detector", "spd3"]) == 0


def test_missing_entry_point(tmp_path, capsys):
    path = tmp_path / "empty.py"
    path.write_text("x = 1\n")
    assert main([str(path)]) == 2
    assert "does not define" in capsys.readouterr().err


def test_raise_policy_still_writes_artifacts(racy_program, tmp_path, capsys):
    """--policy raise aborts at the first race, but the artifacts recorded
    up to the abort must still be written (regression: they were dropped)."""
    dot = tmp_path / "g.dot"
    trace = tmp_path / "t.pkl"
    code = main([racy_program, "--policy", "raise", "--dot", str(dot),
                 "--trace", str(trace), "--metrics"])
    assert code == 1
    out = capsys.readouterr().out
    assert "aborted at first" in out
    assert "shared accesses:" in out  # --metrics no longer silently dropped
    assert dot.exists() and dot.read_text().startswith("digraph")
    from repro.core.events import Trace

    loaded = Trace.load(str(trace))
    assert len(loaded) > 0  # the prefix up to the aborting access


def test_user_program_exception_exits_two(tmp_path, capsys):
    path = tmp_path / "boom.py"
    path.write_text("def program(rt):\n    raise ValueError('boom')\n")
    assert main([str(path)]) == 2
    err = capsys.readouterr().err
    assert "ValueError" in err and "boom" in err


def test_user_program_exception_still_writes_trace(tmp_path, capsys):
    path = tmp_path / "boom2.py"
    path.write_text(
        "from repro import SharedArray\n"
        "def setup(rt):\n    return SharedArray(rt, 'd', 2)\n"
        "def program(rt, d):\n"
        "    d.write(0, 1)\n"
        "    raise RuntimeError('late crash')\n"
    )
    trace = tmp_path / "t.pkl"
    assert main([str(path), "--trace", str(trace)]) == 2
    from repro.core.events import Trace

    assert len(Trace.load(str(trace))) == 1  # the write before the crash


def test_import_time_error_exits_two(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("1 / 0\n")
    assert main([str(path)]) == 2
    assert "ZeroDivisionError" in capsys.readouterr().err


def test_perfetto_and_metrics_json_outputs(racy_program, tmp_path, capsys):
    """--perfetto emits a schema-valid Chrome trace carrying task spans,
    finish spans, and PRECEDE instants with cache-outcome args;
    --metrics-json dumps the registry."""
    import json

    from repro.obs.validate import validate_chrome_trace

    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    code = main([racy_program, "--perfetto", str(trace),
                 "--metrics-json", str(metrics)])
    assert code == 1  # still reports the race
    data = json.loads(trace.read_text())
    assert validate_chrome_trace(data) == []
    events = data["traceEvents"]
    task_spans = [e for e in events
                  if e["ph"] == "X" and e.get("cat") == "task"]
    assert any(e["name"] == "producer" for e in task_spans)
    assert any(e["ph"] == "X" and e.get("cat") == "finish" for e in events)
    precedes = [e for e in events
                if e["ph"] == "i" and e["name"] == "precede"]
    assert precedes
    assert all(e["args"]["outcome"] in ("level0", "hit", "miss", "search")
               for e in precedes)
    assert any(e["ph"] == "i" and e.get("cat") == "race" for e in events)

    stats = json.loads(metrics.read_text())
    assert set(stats) == {"counters", "histograms", "epoch_windows"}
    assert stats["counters"]["races_reported"] == 1
    assert stats["counters"]["tasks_spawned"] >= 1


def test_perfetto_written_even_when_program_crashes(tmp_path, capsys):
    import json

    path = tmp_path / "boom3.py"
    path.write_text(
        "from repro import SharedArray\n"
        "def setup(rt):\n    return SharedArray(rt, 'd', 2)\n"
        "def program(rt, d):\n"
        "    d.write(0, 1)\n"
        "    raise RuntimeError('late crash')\n"
    )
    trace = tmp_path / "t.json"
    assert main([str(path), "--perfetto", str(trace)]) == 2
    data = json.loads(trace.read_text())
    assert any(e.get("cat") == "shadow" for e in data["traceEvents"])


def test_explain_prints_sites_and_witness(racy_program, capsys):
    assert main([racy_program, "--explain"]) == 1
    out = capsys.readouterr().out
    assert "prev access at" in out and "racy.py" in out
    assert "race witnesses (non-ordering certificates):" in out
    assert "witness w0: write-read race on ('data', 0)" in out
    assert "PRECEDE(1, 0) = False" in out
    assert "reverse direction" in out


def test_explain_requires_dtrg(racy_program, capsys):
    assert main([racy_program, "--explain", "--detector", "exact"]) == 2
    assert "require --detector dtrg" in capsys.readouterr().err


def test_witness_json_html_and_verification(racy_program, tmp_path, capsys):
    import json

    from repro.obs.validate import validate_witness_report

    wjson = tmp_path / "witness.json"
    html = tmp_path / "report.html"
    dot = tmp_path / "g.dot"
    code = main([racy_program, "--verify-witness",
                 "--witness-json", str(wjson), "--html", str(html),
                 "--dot", str(dot)])
    assert code == 1  # races found, every witness confirmed
    out = capsys.readouterr().out
    assert "witness w0: confirmed against brute-force closure" in out

    data = json.loads(wjson.read_text())
    assert validate_witness_report(data) == []
    assert data["schema"] == "repro.race-witness-report/1"
    assert len(data["witnesses"]) == 1
    assert data["witnesses"][0]["race"]["kind"] == "write-read"

    page = html.read_text()
    assert page.startswith("<!DOCTYPE html>")
    assert "witness <code>w0</code>" in page
    assert "Flight recorder" in page
    assert "digraph" in page  # DOT source embedded

    graph = dot.read_text()
    assert "(racing)" in graph and "salmon" in graph


def test_explain_off_dot_is_unchanged(racy_program, tmp_path):
    """Without --explain the DOT output carries no witness overlay —
    byte-identical to the pre-provenance renderer."""
    plain = tmp_path / "plain.dot"
    main([racy_program, "--dot", str(plain)])
    assert "racing" not in plain.read_text()


def test_html_report_on_clean_program(clean_program, tmp_path, capsys):
    html = tmp_path / "clean.html"
    assert main([clean_program, "--html", str(html)]) == 0
    page = html.read_text()
    assert "no determinacy races detected" in page


def test_html_written_even_on_raise_abort(racy_program, tmp_path, capsys):
    html = tmp_path / "abort.html"
    wjson = tmp_path / "abort.json"
    code = main([racy_program, "--policy", "raise", "--html", str(html),
                 "--witness-json", str(wjson)])
    assert code == 1
    assert "aborted at first" in capsys.readouterr().out
    assert html.exists() and "witness" in html.read_text()
    import json

    from repro.obs.validate import validate_witness_report

    assert validate_witness_report(json.loads(wjson.read_text())) == []


def test_metrics_json_without_detector_has_runtime_counters(
        clean_program, tmp_path, capsys):
    """Obs works with the baseline detectors too: runtime spans and
    shadow counters flow even when the dtrg-specific hooks never fire."""
    import json

    metrics = tmp_path / "m.json"
    code = main([clean_program, "--detector", "brute-force",
                 "--metrics-json", str(metrics)])
    assert code == 0
    stats = json.loads(metrics.read_text())
    # main + the producer future both get spans.
    assert stats["counters"]["tasks_spawned"] == 2
    # The dtrg-specific hooks never fire under a baseline detector.
    assert stats["counters"]["precede_search"] == 0
    assert stats["histograms"]["precede_latency_ns"]["count"] == 0


# ---------------------------------------------------------------------- #
# Two-phase parallel checking (--jobs)                                   #
# ---------------------------------------------------------------------- #
def test_jobs_output_identical_to_sequential(racy_program, capsys):
    assert main([racy_program]) == 1
    sequential = capsys.readouterr().out
    assert main([racy_program, "--jobs", "2"]) == 1
    parallel = capsys.readouterr().out
    assert parallel == sequential
    assert "producer" in parallel  # live task names survive the replay


def test_jobs_clean_program_exit_zero(clean_program, capsys):
    assert main([clean_program, "--jobs", "4"]) == 0
    assert "no determinacy races" in capsys.readouterr().out


def test_jobs_metrics_prints_parallel_stats(racy_program, capsys):
    assert main([racy_program, "--jobs", "2", "--metrics"]) == 1
    out = capsys.readouterr().out
    assert "parallel check: jobs=2" in out
    assert "freeze=" in out


def test_jobs_rejects_raise_policy(racy_program, capsys):
    assert main([racy_program, "--jobs", "2", "--policy", "raise"]) == 2
    assert "cannot abort" in capsys.readouterr().err


def test_jobs_rejects_explain_family(racy_program, tmp_path, capsys):
    assert main([racy_program, "--jobs", "2", "--explain"]) == 2
    assert "witness" in capsys.readouterr().err
    assert main([racy_program, "--jobs", "2",
                 "--html", str(tmp_path / "r.html")]) == 2


def test_jobs_rejects_non_dtrg_detector(racy_program, capsys):
    assert main([racy_program, "--jobs", "2",
                 "--detector", "vector-clock"]) == 2
    assert "--detector dtrg" in capsys.readouterr().err


def test_jobs_rejects_zero(racy_program, capsys):
    assert main([racy_program, "--jobs", "0"]) == 2


def test_jobs_writes_trace_and_obs_artifacts(racy_program, tmp_path, capsys):
    import json

    trace = tmp_path / "out.trace"
    metrics = tmp_path / "metrics.json"
    assert main([racy_program, "--jobs", "2", "--trace", str(trace),
                 "--metrics-json", str(metrics)]) == 1
    assert trace.exists()
    dump = json.loads(metrics.read_text())
    assert dump["counters"]["parallel_checks"] == 1


# ---------------------------------------------------------------------- #
# Batched single-thread checking (--fast)                                #
# ---------------------------------------------------------------------- #
def test_fast_output_identical_to_sequential(racy_program, capsys):
    assert main([racy_program]) == 1
    sequential = capsys.readouterr().out
    assert main([racy_program, "--fast"]) == 1
    fast = capsys.readouterr().out
    assert fast == sequential
    assert "producer" in fast  # live task names survive the replay


def test_fast_clean_program_exit_zero(clean_program, capsys):
    assert main([clean_program, "--fast"]) == 0
    assert "no determinacy races" in capsys.readouterr().out


def test_fast_metrics_prints_fast_stats(racy_program, capsys):
    assert main([racy_program, "--fast", "--metrics"]) == 1
    out = capsys.readouterr().out
    assert "fast check:" in out
    assert "access-checks/s" in out


def test_fast_rejects_jobs(racy_program, capsys):
    assert main([racy_program, "--fast", "--jobs", "2"]) == 2
    assert "either --fast or --jobs" in capsys.readouterr().err


def test_fast_rejects_raise_policy_and_explain(racy_program, capsys):
    assert main([racy_program, "--fast", "--policy", "raise"]) == 2
    assert "cannot abort" in capsys.readouterr().err
    assert main([racy_program, "--fast", "--explain"]) == 2


def test_fast_rejects_non_dtrg_detector(racy_program, capsys):
    assert main([racy_program, "--fast", "--detector", "vector-clock"]) == 2
    assert "--detector dtrg" in capsys.readouterr().err


def test_fast_abort_still_writes_artifacts_and_exits_two(tmp_path, capsys):
    """A user-program abort during --fast recording must write the trace
    and obs artifacts gathered so far and exit 2, exactly like the replay
    path (the fast path used to drop them on the floor)."""
    import json

    path = tmp_path / "boom_fast.py"
    path.write_text(
        "from repro import SharedArray\n"
        "def setup(rt):\n    return SharedArray(rt, 'd', 2)\n"
        "def program(rt, d):\n"
        "    d.write(0, 1)\n"
        "    raise RuntimeError('late crash')\n"
    )
    trace = tmp_path / "t.pkl"
    metrics = tmp_path / "m.json"
    assert main([str(path), "--fast", "--trace", str(trace),
                 "--metrics-json", str(metrics)]) == 2
    err = capsys.readouterr().err
    assert "RuntimeError" in err and "late crash" in err
    from repro.core.events import Trace

    assert len(Trace.load(str(trace))) == 1  # the write before the crash
    dump = json.loads(metrics.read_text())
    assert "counters" in dump
