"""Integration tests for the harness: runner, table generator, CLI."""

import pytest

from repro.harness.report import render_table
from repro.harness.runner import BENCHMARKS, run_benchmark
from repro.harness.table2 import PAPER_TABLE2, main, qualitative_checks


def test_benchmark_registry_matches_paper_rows():
    assert list(BENCHMARKS) == [r["Benchmark"] for r in PAPER_TABLE2]


def test_run_benchmark_produces_complete_row():
    res = run_benchmark("Series-af", "tiny")
    row = res.row()
    for column in ("#Tasks", "#NTJoins", "#SharedMem", "#AvgReaders",
                   "Seq (ms)", "Racedet (ms)", "Slowdown"):
        assert column in row
    assert res.metrics.num_tasks > 0
    assert res.races == 0


def test_run_benchmark_unknown_name():
    with pytest.raises(KeyError):
        run_benchmark("NoSuch", "tiny")


def test_qualitative_checks_pass_on_tiny_subset():
    results = {
        name: run_benchmark(name, "tiny")
        for name in ("Series-af", "Series-future", "Jacobi")
    }
    lines = qualitative_checks(results)
    assert lines
    assert all(line.startswith("[PASS]") for line in lines), "\n".join(lines)


def test_render_table_alignment():
    table = render_table(
        [{"A": 1, "B": "xy"}, {"A": 1234567, "B": "z"}]
    )
    lines = table.splitlines()
    assert len(lines) == 4
    assert len({len(line) for line in lines}) == 1  # all rows same width
    assert "1,234,567" in table


def test_cli_runs_single_benchmark(capsys):
    rc = main(["--scale", "tiny", "--bench", "Series-af", "--no-verify"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 2 reproduction" in out
    assert "Series-af" in out
    assert "Qualitative checks" in out


def test_cli_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["--bench", "Nope"])
