"""Integration tests for --serve-metrics / --heartbeat on the CLI tools.

Two layers: in-process ``main([...])`` calls check that the telemetry
flags compose with the existing exit-code contracts, and one subprocess
test drives a real ``repro-racecheck --serve-metrics 0`` and scrapes it
mid-run (the same loop the CI ``obs-live`` job runs against
``examples/longrun_demo.py``, just smaller).
"""

import json
import os
import re
import subprocess
import sys
import textwrap
import time
import urllib.request

import pytest

from repro.harness.bench import main as bench_main
from repro.obs.exposition import parse_exposition
from repro.tools.fuzz import main as fuzz_main
from repro.tools.racecheck import main as racecheck_main

URL_RE = re.compile(r"serving live metrics at (http://127\.0\.0\.1:\d+)")


@pytest.fixture()
def clean_program(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(textwrap.dedent("""
        from repro import SharedArray

        def setup(rt):
            return SharedArray(rt, "data", 4)

        def program(rt, data):
            f = rt.future(lambda: data.write(0, 1))
            f.get()
            assert data.read(0) == 1
    """))
    return str(path)


@pytest.fixture()
def racy_program(tmp_path):
    path = tmp_path / "racy.py"
    path.write_text(textwrap.dedent("""
        from repro import SharedArray

        def setup(rt):
            return SharedArray(rt, "data", 4)

        def program(rt, data):
            f = rt.future(lambda: data.write(0, 1), name="producer")
            data.read(0)
            f.get()
    """))
    return str(path)


# ---------------------------------------------------------------------- #
# racecheck
# ---------------------------------------------------------------------- #
def test_racecheck_serve_metrics_prints_url_and_keeps_exit_zero(
        clean_program, capsys):
    assert racecheck_main([clean_program, "--serve-metrics", "0"]) == 0
    captured = capsys.readouterr()
    assert URL_RE.search(captured.err)
    assert "/snapshot" in captured.err
    assert "no determinacy races" in captured.out


def test_racecheck_serve_metrics_keeps_racy_exit_one(racy_program, capsys):
    assert racecheck_main([racy_program, "--serve-metrics", "0"]) == 1
    assert "determinacy race" in capsys.readouterr().out


def test_racecheck_fast_composes_with_telemetry(clean_program, capsys):
    assert racecheck_main(
        [clean_program, "--fast", "--serve-metrics", "0"]) == 0
    assert URL_RE.search(capsys.readouterr().err)


def test_racecheck_heartbeat_emits_final_line(clean_program, capsys):
    assert racecheck_main([clean_program, "--heartbeat", "60"]) == 0
    err = capsys.readouterr().err
    # The run is far shorter than the cadence; the stop() flush still
    # guarantees one line carrying the final state.
    assert "[live]" in err
    assert "events=" in err and "races=0" in err


def test_racecheck_rejects_bad_heartbeat_and_interval(clean_program, capsys):
    assert racecheck_main([clean_program, "--heartbeat", "-1"]) == 2
    assert "--heartbeat" in capsys.readouterr().err
    assert racecheck_main([clean_program, "--sample-interval", "0"]) == 2
    assert "--sample-interval" in capsys.readouterr().err


def test_racecheck_scrape_midrun_subprocess(tmp_path):
    """Drive a real subprocess and scrape /metrics + /snapshot while the
    check is still running; the exposition must parse strictly and the
    detector counters must be live."""
    prog = tmp_path / "slow.py"
    prog.write_text(textwrap.dedent("""
        import time
        from repro import SharedArray

        def setup(rt):
            return SharedArray(rt, "d", 64)

        def program(rt, d):
            for sweep in range(40):
                with rt.finish():
                    for i in range(64):
                        rt.async_(lambda i=i: d.write(i, i))
                time.sleep(0.02)
    """))
    env = dict(os.environ)
    src = os.path.join(os.getcwd(), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.racecheck", str(prog),
         "--serve-metrics", "0", "--sample-interval", "0.05"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        match = None
        deadline = time.monotonic() + 10.0
        line = ""
        while time.monotonic() < deadline and match is None:
            line = proc.stderr.readline()
            match = URL_RE.search(line)
        assert match, f"no URL line on stderr (last: {line!r})"
        url = match.group(1)

        samples = None
        accesses = 0.0
        while proc.poll() is None and time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                        f"{url}/metrics", timeout=2.0) as resp:
                    samples = parse_exposition(resp.read().decode())
                with urllib.request.urlopen(
                        f"{url}/snapshot", timeout=2.0) as resp:
                    snap = json.loads(resp.read())
            except OSError:
                break  # server already torn down
            accesses = max(
                accesses, samples.get(("repro_detector_accesses", ""), 0))
            assert "progress" in snap and "gauges" in snap
            time.sleep(0.05)

        out, err = proc.communicate(timeout=30.0)
        assert proc.returncode == 0, err
        assert samples is not None, "never scraped a full exposition"
        assert accesses > 0, "detector counters never went live"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


# ---------------------------------------------------------------------- #
# fuzz
# ---------------------------------------------------------------------- #
def test_fuzz_serve_metrics_and_heartbeat(capsys):
    code = fuzz_main(["--seeds", "0:3", "--mode", "scoped",
                      "--serve-metrics", "0", "--heartbeat", "60"])
    assert code == 0
    captured = capsys.readouterr()
    assert URL_RE.search(captured.err)
    assert "[live]" in captured.err
    assert "events=3/3" in captured.err  # one progress tick per seed
    assert "fuzz run summary" in captured.out


# ---------------------------------------------------------------------- #
# bench
# ---------------------------------------------------------------------- #
def test_bench_serve_metrics_and_heartbeat(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = bench_main(["--scale", "tiny", "--only", "Jacobi",
                       "--repeats", "1", "--output", str(out),
                       "--serve-metrics", "0", "--heartbeat", "60"])
    assert code == 0
    captured = capsys.readouterr()
    assert URL_RE.search(captured.err)
    assert "[live]" in captured.err
    data = json.loads(out.read_text())
    assert data["workloads"][0]["name"] == "Jacobi"


def test_bench_rejects_bad_heartbeat(capsys):
    assert bench_main(["--heartbeat", "-2"]) == 2
    assert "--heartbeat" in capsys.readouterr().err
