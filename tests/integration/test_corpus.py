"""Integration: every corpus program, every applicable detector, one
ground truth."""

import pytest

from repro import DeterminacyRaceDetector, ReportPolicy
from repro.baselines import (
    BruteForceDetector,
    ESPBagsDetector,
    SPBagsDetector,
    VectorClockDetector,
)
from repro.runtime.errors import RaceError, UnsupportedConstructError
from repro.testing.programs import CORPUS, run_corpus_program

GENERAL_DETECTORS = [
    DeterminacyRaceDetector,
    BruteForceDetector,
    VectorClockDetector,
]


@pytest.mark.parametrize("program", CORPUS, ids=lambda p: p.name)
def test_declared_verdicts(program):
    det = DeterminacyRaceDetector()
    run_corpus_program(program, [det])
    assert det.racy_locations == program.racy, program.description


@pytest.mark.parametrize("program", CORPUS, ids=lambda p: p.name)
@pytest.mark.parametrize(
    "detector_cls", GENERAL_DETECTORS, ids=lambda c: c.__name__
)
def test_all_general_detectors_agree(program, detector_cls):
    det = detector_cls()
    run_corpus_program(program, [det])
    assert det.racy_locations == program.racy


@pytest.mark.parametrize("program", CORPUS, ids=lambda p: p.name)
def test_restricted_detectors_agree_or_reject(program):
    """ESP-bags/SP-bags either agree (within their model) or refuse with
    UnsupportedConstructError — never silently wrong."""
    for cls in (ESPBagsDetector, SPBagsDetector):
        det = cls()
        try:
            run_corpus_program(program, [det])
        except UnsupportedConstructError:
            continue
        assert det.racy_locations == program.racy, (program.name, cls)


@pytest.mark.parametrize(
    "program", [p for p in CORPUS if p.racy], ids=lambda p: p.name
)
def test_raise_policy_fires_on_racy_programs(program):
    det = DeterminacyRaceDetector(policy=ReportPolicy.RAISE)
    with pytest.raises(RaceError):
        run_corpus_program(program, [det])


@pytest.mark.parametrize(
    "program", [p for p in CORPUS if not p.racy], ids=lambda p: p.name
)
def test_race_free_corpus_is_determinate(program):
    from repro.graph import GraphBuilder
    from repro.runtime.parallel import is_determinate

    gb = GraphBuilder()
    run_corpus_program(program, [gb])
    assert is_determinate(gb.graph, samples=12, seed=2)
