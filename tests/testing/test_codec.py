"""Tests for the program/corpus JSON codec."""

import json
import random

import pytest

from repro.baselines import BruteForceDetector
from repro.testing.codec import (
    CorpusEntry,
    dumps_program,
    entry_from_data,
    entry_to_data,
    loads_program,
    program_from_data,
    program_to_data,
)
from repro.testing.generator import (
    Async,
    Finish,
    Future,
    Get,
    Program,
    Read,
    Write,
    random_program,
    run_program,
)

NESTED_PROGRAM = Program(
    body=(
        Future((Finish((Async((Read(0),)),)),)),
        Async((Read(0),)),
        Async((Get(0.0), Write(0))),
    ),
    num_locs=1,
)


def test_round_trip_identity_on_random_programs():
    for seed in range(50):
        program = random_program(random.Random(seed))
        assert program_from_data(program_to_data(program)) == program


def test_round_trip_identity_on_nested_program():
    assert loads_program(dumps_program(NESTED_PROGRAM)) == NESTED_PROGRAM


def test_dumps_is_deterministic():
    a = dumps_program(NESTED_PROGRAM)
    b = dumps_program(loads_program(a))
    assert a == b


def test_round_trip_preserves_semantics():
    """A decoded program must execute to the identical oracle verdict."""
    for seed in (0, 4, 5):  # racy seeds
        program = random_program(random.Random(seed))
        copy = loads_program(dumps_program(program))
        original, decoded = BruteForceDetector(), BruteForceDetector()
        run_program(program, [original])
        run_program(copy, [decoded])
        assert original.racy_locations == decoded.racy_locations
        assert original.racy_locations  # seeds chosen to be racy


def test_rejects_unknown_version():
    data = program_to_data(NESTED_PROGRAM)
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        program_from_data(data)


def test_rejects_unknown_statement_tag():
    data = program_to_data(NESTED_PROGRAM)
    data["body"].append(["explode", 0])
    with pytest.raises(ValueError, match="tag"):
        program_from_data(data)


def test_rejects_malformed_statement():
    with pytest.raises(ValueError, match="malformed"):
        program_from_data(
            {"version": 1, "num_locs": 1, "body": [["read", 0, "extra"]]}
        )


def test_corpus_entry_round_trip():
    entry = CorpusEntry(
        name="example",
        description="a racy program",
        program=NESTED_PROGRAM,
        racy_locs=(0,),
    )
    data = entry_to_data(entry)
    text = json.dumps(data, sort_keys=True)  # must be JSON-serializable
    restored = entry_from_data(json.loads(text))
    assert restored == entry
    assert restored.racy_locations == {("x", 0)}


def test_corpus_entry_rejects_unknown_version():
    entry = CorpusEntry("e", "", NESTED_PROGRAM, ())
    data = entry_to_data(entry)
    data["version"] = 2
    with pytest.raises(ValueError, match="version"):
        entry_from_data(data)
