"""Tests for the hypothesis-free ddmin shrinker."""

import random

from repro.baselines import BruteForceDetector
from repro.testing.generator import (
    Async,
    Program,
    Read,
    Write,
    count_stmts,
    random_program,
    run_program,
)
from repro.testing.shrinker import ddmin, shrink_program


# ---------------------------------------------------------------------- #
# ddmin                                                                  #
# ---------------------------------------------------------------------- #
def test_ddmin_single_needle():
    assert ddmin(list(range(20)), lambda xs: 7 in xs) == [7]


def test_ddmin_two_needles_preserves_order():
    result = ddmin(list(range(20)), lambda xs: 3 in xs and 11 in xs)
    assert result == [3, 11]


def test_ddmin_empty_when_predicate_vacuous():
    assert ddmin(list(range(10)), lambda xs: True) == []


def test_ddmin_keeps_everything_when_all_needed():
    items = [1, 2, 3]
    assert ddmin(items, lambda xs: xs == items) == items


def test_ddmin_result_is_one_minimal():
    needles = {2, 9, 15}
    result = ddmin(list(range(20)), lambda xs: needles <= set(xs))
    assert set(result) == needles
    for i in range(len(result)):  # removing any single element breaks it
        assert not needles <= set(result[:i] + result[i + 1:])


# ---------------------------------------------------------------------- #
# shrink_program                                                         #
# ---------------------------------------------------------------------- #
def _has_write(body):
    for stmt in body:
        if isinstance(stmt, Write):
            return True
        if hasattr(stmt, "body") and _has_write(stmt.body):
            return True
    return False


def test_shrink_to_structural_predicate():
    """'Contains a write' should shrink to the single-statement program."""
    program = random_program(random.Random(4))
    assert _has_write(program.body)
    small = shrink_program(program, lambda p: _has_write(p.body))
    assert small.body == (Write(0),)
    assert small.num_locs == 1


def test_shrink_racy_program_stays_racy_and_gets_small():
    def is_racy(program):
        det = BruteForceDetector()
        run_program(program, [det])
        return bool(det.racy_locations)

    program = random_program(random.Random(4))
    assert is_racy(program)
    small = shrink_program(program, is_racy)
    assert is_racy(small)
    # Minimal racy programs look like `async { write x0 }; write x0`.
    assert count_stmts(small.body) <= 4
    assert count_stmts(small.body) < count_stmts(program.body)


def test_shrink_returns_original_when_not_reproducing():
    program = random_program(random.Random(1))
    assert shrink_program(program, lambda p: False) is program


def test_shrink_predicate_exception_counts_as_not_reproducing():
    program = random_program(random.Random(1))

    def explode(p):
        raise RuntimeError("boom")

    assert shrink_program(program, explode) is program


def test_shrink_respects_budget():
    calls = 0

    def counting(p):
        nonlocal calls
        calls += 1
        return _has_write(p.body)

    program = random_program(random.Random(4))
    shrink_program(program, counting, budget=5)
    assert calls <= 5


def test_shrink_handles_trivial_program():
    program = Program(body=(Read(0),), num_locs=1)
    small = shrink_program(program, lambda p: True)
    assert small.body == ()


def test_shrink_hoists_nesting():
    """A needle buried three constructs deep surfaces to the top level."""
    program = Program(
        body=(Async((Async((Async((Write(2), Read(1))),)),)),), num_locs=3
    )
    small = shrink_program(program, lambda p: _has_write(p.body))
    assert small.body == (Write(0),)
    assert small.num_locs == 1
