"""Seeded statement-mix invariants of :func:`random_program`.

Regression for the depth==max_depth bug: the nested-construct probability
mass used to fall through the elif chain into ``Get``, so maximally nested
blocks were join-heavy (~55% gets at the defaults) instead of
read/write-heavy as documented.
"""

import random

from repro.testing.generator import (
    Async,
    Finish,
    Future,
    Get,
    Read,
    Write,
    random_program,
)


def depth_counts(body, depth, max_depth, counts):
    """Tally statement kinds appearing in blocks at exactly ``max_depth``."""
    for stmt in body:
        if isinstance(stmt, (Async, Future, Finish)):
            depth_counts(stmt.body, depth + 1, max_depth, counts)
        elif depth == max_depth:
            counts[type(stmt)] = counts.get(type(stmt), 0) + 1


def test_max_depth_blocks_are_access_heavy():
    p_task, p_get = 0.35, 0.2
    counts = {}
    for seed in range(400):
        prog = random_program(
            random.Random(seed), max_depth=2, p_task=p_task, p_get=p_get
        )
        depth_counts(prog.body, 0, 2, counts)
    total = sum(counts.values())
    assert total > 500  # enough samples to make the ratios meaningful
    get_frac = counts.get(Get, 0) / total
    access_frac = (counts.get(Read, 0) + counts.get(Write, 0)) / total
    # The documented mix: p_get gets, the remaining (1 - p_get) mass split
    # between reads and writes once nesting is impossible.
    assert abs(get_frac - p_get) < 0.05, get_frac
    assert access_frac > 0.7, access_frac
    # Reads and writes split the access mass roughly evenly.
    assert abs(counts[Read] - counts[Write]) / total < 0.1


def test_no_nested_constructs_below_max_depth():
    def max_nesting(body, depth=0):
        deepest = depth
        for stmt in body:
            if isinstance(stmt, (Async, Future, Finish)):
                deepest = max(deepest, max_nesting(stmt.body, depth + 1))
        return deepest

    for seed in range(100):
        prog = random_program(random.Random(seed), max_depth=3)
        assert max_nesting(prog.body) <= 3


def test_generation_is_deterministic_per_seed():
    a = random_program(random.Random(7))
    b = random_program(random.Random(7))
    assert a.body == b.body and a.num_locs == b.num_locs
