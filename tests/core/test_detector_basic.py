"""End-to-end unit tests of the determinacy race detector on the runtime."""

import pytest

from repro import (
    AccessKind,
    DeterminacyRaceDetector,
    RaceError,
    ReportPolicy,
    Runtime,
    SharedArray,
    SharedVar,
)


def run(builder, **det_kwargs):
    det = DeterminacyRaceDetector(**det_kwargs)
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", 8)
    rt.run(lambda _rt: builder(rt, mem))
    return det


def test_no_tasks_no_races():
    det = run(lambda rt, mem: (mem.write(0, 1), mem.read(0)))
    assert not det.report.has_races


def test_write_write_race_between_asyncs():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))

    det = run(prog)
    assert det.report.racy_locations == {("x", 0)}
    assert det.races[0].kind is AccessKind.WRITE_WRITE


def test_future_get_prevents_race():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1))
        f.get()
        mem.write(0, 2)

    det = run(prog)
    assert not det.report.has_races


def test_race_kinds_reported_correctly():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.read(0))

    det = run(prog)
    kinds = {race.kind for race in det.races}
    # writer recorded first, reader second -> write-read
    assert kinds == {AccessKind.WRITE_READ}


def test_read_then_parallel_write_is_read_write():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.read(0))
            rt.async_(lambda: mem.write(0, 1))

    det = run(prog)
    assert {race.kind for race in det.races} == {AccessKind.READ_WRITE}


def test_raise_policy_aborts_on_first_race():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))
            rt.async_(lambda: mem.write(1, 3))

    det = DeterminacyRaceDetector(policy=ReportPolicy.RAISE)
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", 8)
    with pytest.raises(RaceError) as excinfo:
        rt.run(lambda _rt: prog(rt, mem))
    assert excinfo.value.race.loc == ("x", 0)
    assert len(det.races) == 1


def test_policy_accepts_string():
    det = DeterminacyRaceDetector(policy="raise")
    assert det.policy is ReportPolicy.RAISE


def test_dedupe_suppresses_repeated_pairs():
    def prog(rt, mem):
        def reader():
            mem.read(0)
            mem.read(0)

        with rt.finish():
            rt.async_(lambda: mem.write(0, 1), name="w")
            rt.async_(reader, name="r")

    det = run(prog)
    assert len(det.races) == 1
    det2 = run(prog, dedupe=False)
    assert len(det2.races) == 2


def test_race_message_names_tasks_and_location():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(3, 1), name="alpha")
            rt.async_(lambda: mem.write(3, 2), name="beta")

    det = run(prog)
    text = str(det.races[0])
    assert "alpha" in text and "beta" in text and "('x', 3)" in text


def test_shared_var_and_array_both_instrumented():
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    var = SharedVar(rt, "v", 0)
    arr = SharedArray(rt, "a", 2)

    def prog(_rt):
        with rt.finish():
            rt.async_(lambda: var.write(1))
            rt.async_(lambda: var.read())
        with rt.finish():
            rt.async_(lambda: arr.write(0, 1))
            rt.async_(lambda: arr.write(0, 2))

    rt.run(prog)
    assert det.report.racy_locations == {("v",), ("a", 0)}


def test_deep_nesting_future_chain_race_free():
    def prog(rt, mem):
        def level(depth):
            if depth == 0:
                mem.write(0, depth)
                return
            f = rt.future(level, depth - 1)
            f.get()
            mem.write(0, depth)

        level(30)

    det = run(prog)
    assert not det.report.has_races


def test_many_parallel_futures_each_own_location():
    def prog(rt, mem):
        handles = [rt.future(lambda i=i: mem.write(i, i)) for i in range(8)]
        for handle in handles:
            handle.get()
        for i in range(8):
            mem.read(i)

    det = run(prog)
    assert not det.report.has_races


def test_ablation_flags_reach_dtrg():
    det = DeterminacyRaceDetector(
        use_lsa=False, memoize_visit=False, use_intervals=False
    )
    assert det.dtrg.use_lsa is False
    assert det.dtrg.memoize_visit is False
    assert det.dtrg.use_intervals is False


def test_future_covered_reader_not_dropped():
    """Soundness regression (found by differential fuzzing, scoped flow).

    The read inside the future's finish is summarized by the future's end,
    so ``g.get()`` orders it before the write while the sibling async's
    read stays parallel.  The single-async-representative policy must not
    let the future-covered reader stand in for the plain async one."""

    def prog(rt, mem):
        def future_body():
            with rt.finish():
                rt.async_(lambda: mem.read(0))

        f = rt.future(future_body)
        rt.async_(lambda: mem.read(0))
        rt.async_(lambda: (f.get(), mem.write(0, 1)))

    det = run(prog)
    assert det.report.racy_locations == {("x", 0)}
    kinds = {race.kind for race in det.races}
    assert AccessKind.READ_WRITE in kinds


def test_future_covered_applies_transitively():
    """A reader nested two asyncs below a future is still future-covered."""

    def prog(rt, mem):
        def future_body():
            with rt.finish():
                rt.async_(lambda: rt.async_(lambda: mem.read(0)))

        f = rt.future(future_body)
        rt.async_(lambda: mem.read(0))
        rt.async_(lambda: (f.get(), mem.write(0, 1)))

    det = run(prog)
    assert det.report.racy_locations == {("x", 0)}
