"""Unit tests for the exact timestamped detector (beyond-paper extension)."""

import pytest

from repro import Runtime, SharedArray
from repro.baselines import BruteForceDetector
from repro.core.detector import DeterminacyRaceDetector
from repro.core.exact import ExactDetector, ExactTaskReachability
from repro.testing.generator import (
    Async,
    Future,
    Get,
    Program,
    Read,
    Write,
    run_program,
)
from repro.testing.programs import CORPUS, run_corpus_program


def run(builder, locs=4):
    det = ExactDetector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return det


# ---------------------------------------------------------------------- #
# Reachability primitive                                                 #
# ---------------------------------------------------------------------- #
def test_program_order():
    r = ExactTaskReachability()
    r.add_task(0, None, False)
    assert r.access_precedes(0, r.tick(), 0)


def test_spawn_prefix_bound():
    r = ExactTaskReachability()
    r.add_task(0, None, False)
    before = r.tick()
    r.add_task(1, 0, True)
    after = r.tick()
    # the parent's access BEFORE the spawn precedes the child...
    assert r.access_precedes(0, before, 1)
    # ...but its access AFTER the spawn does not.
    assert not r.access_precedes(0, after, 1)


def test_join_orders_whole_producer():
    r = ExactTaskReachability()
    r.add_task(0, None, False)
    r.add_task(1, 0, True)
    t_in_child = r.tick()
    r.record_join(0, 1)
    assert r.access_precedes(1, t_in_child, 0)


def test_join_time_bounds_consumer_suffix_only():
    """A join into X at time tau gives paths into X's steps at/after tau,
    which is irrelevant when the target region ends before tau."""
    r = ExactTaskReachability()
    r.add_task(0, None, False)
    r.add_task(1, 0, True)            # producer P
    t_p = r.tick()                    # access inside P
    r.add_task(2, 0, True)            # consumer C (sibling)
    r.record_join(0, 1)               # main joins P *after* spawning C
    # P's access does not precede C: the join into main happened after C's
    # spawn, so the prefix bound (spawn_time of C) excludes it.
    assert not r.access_precedes(1, t_p, 2)
    # but it does precede main's current step
    assert r.access_precedes(1, t_p, 0)


# ---------------------------------------------------------------------- #
# Regressions: the two shrunk wild-mode counterexamples                  #
# ---------------------------------------------------------------------- #
def wild_verdicts(program):
    det = ExactDetector()
    dtrg = DeterminacyRaceDetector()
    oracle = BruteForceDetector()
    run_program(program, [det, dtrg, oracle], scoped_handles=False)
    return det.racy_locations, dtrg.racy_locations, oracle.racy_locations


def test_prefix_escape_false_positive_fixed():
    """DESIGN.md deviation #4, FP case: `async { write x; future{} };
    /*wild*/ get; write x` — ordered through the future's prefix path; the
    task-level DTRG reports a spurious race, the exact detector does not."""
    program = Program(
        body=(
            Async(body=(Write(loc=3), Future(body=()))),
            Get(selector=0.9),
            Write(loc=3),
        ),
        num_locs=4,
    )
    exact, dtrg, oracle = wild_verdicts(program)
    assert oracle == frozenset()
    assert exact == set()          # exact matches ground truth
    assert dtrg == {("x", 3)}      # the documented task-level imprecision


def test_suffix_escape_false_negative_fixed():
    """DESIGN.md deviation #4, FN case: the write after the future spawn
    stays parallel with the wild getter; task-level containment hides it."""
    program = Program(
        body=(
            Async(body=(Future(body=()), Write(loc=2))),
            Future(body=(Get(selector=0.4), Read(loc=2))),
        ),
        num_locs=4,
    )
    exact, dtrg, oracle = wild_verdicts(program)
    assert oracle == {("x", 2)}
    assert exact == {("x", 2)}
    assert dtrg == set()           # the documented task-level miss


def test_lemma4_breakdown_under_wild_flow():
    """Keeping a single async reader is unsound without the discipline:
    a wild get of a future spawned inside async A orders A's *prefix* with
    the getter, so the retained reader can be ordered while the dropped
    one still races."""
    program = Program(
        body=(
            Async(body=(Read(loc=2), Future(body=()))),
            Async(body=(Read(loc=2),)),
            Get(selector=0.6),
            Write(loc=2),
        ),
        num_locs=4,
    )
    exact, _, oracle = wild_verdicts(program)
    assert oracle == {("x", 2)}
    assert exact == {("x", 2)}


# ---------------------------------------------------------------------- #
# Agreement on the in-model corpus                                       #
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("program", CORPUS, ids=lambda p: p.name)
def test_corpus_agreement(program):
    det = ExactDetector()
    run_corpus_program(program, [det])
    assert det.racy_locations == program.racy


def test_basic_detection_and_policies():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))

    det = run(prog)
    assert det.racy_locations == {("x", 0)}
    from repro import RaceError

    strict = ExactDetector(policy="raise")
    rt = Runtime(observers=[strict])
    mem = SharedArray(rt, "x", 2)
    with pytest.raises(RaceError):
        rt.run(lambda _rt: prog(rt, mem))


def test_query_counters_populate():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1))
        f.get()
        mem.read(0)

    det = run(prog)
    assert det.reach.num_queries >= 1
    assert det.reach.num_expansions >= det.reach.num_queries


def test_bound_upgrade_reexpansion():
    """A task first reached with a small prefix bound must be re-expanded
    when a larger bound arrives through another path (the memo keeps the
    max bound, not just visited-ness)."""
    r = ExactTaskReachability()
    r.add_task(0, None, False)   # main
    r.add_task(1, 0, False)      # consumer C
    a = r.tick()                 # main's access AFTER spawning C
    r.add_task(2, 0, True)       # F, spawned after the access
    r.record_join(1, 2)          # C joins F (wild flow)
    # Path: access -> spawn(F) -> F end -> join -> C.  The direct parent
    # edge only covers main's prefix before C's spawn (excludes `a`); the
    # join path covers the prefix before F's spawn (includes `a`).
    assert r.access_precedes(0, a, 1)
    # and an access after F's spawn stays unordered
    later = r.tick()
    assert not r.access_precedes(0, later, 1)
