"""Unit tests for race records and the report container."""

from repro.core.races import AccessKind, Race, RaceReport


def make(loc="x", kind=AccessKind.WRITE_WRITE, prev=1, cur=2):
    return Race(loc=loc, kind=kind, prev_task=prev, current_task=cur,
                prev_name=f"t{prev}", current_name=f"t{cur}")


def test_report_collects_and_tracks_locations():
    report = RaceReport()
    assert not report.has_races
    report.add(make(loc="a"))
    report.add(make(loc="b"))
    assert len(report) == 2
    assert report.racy_locations == {"a", "b"}


def test_dedupe_ignores_task_order():
    report = RaceReport()
    assert report.add(make(prev=1, cur=2))
    assert not report.add(make(prev=2, cur=1))  # same unordered pair
    assert len(report) == 1


def test_dedupe_distinguishes_kind_and_loc():
    report = RaceReport()
    assert report.add(make(kind=AccessKind.WRITE_WRITE))
    assert report.add(make(kind=AccessKind.WRITE_READ))
    assert report.add(make(loc="other"))
    assert len(report) == 3


def test_no_dedupe_mode_keeps_everything():
    report = RaceReport(dedupe=False)
    report.add(make())
    report.add(make())
    assert len(report) == 2


def test_duplicate_still_marks_location():
    report = RaceReport()
    report.add(make(loc="a"))
    report.add(make(loc="a"))
    assert report.racy_locations == {"a"}
    assert len(report) == 1


def test_summary_formats():
    report = RaceReport()
    assert "no determinacy races" in report.summary()
    report.add(make())
    text = report.summary()
    assert "1 determinacy race" in text
    assert "write-write" in text
    assert "t1" in text and "t2" in text


def test_kind_str():
    assert str(AccessKind.READ_WRITE) == "read-write"
    assert str(AccessKind.WRITE_READ) == "write-read"


def test_iteration_order_is_insertion_order():
    report = RaceReport()
    first, second = make(loc="a"), make(loc="b")
    report.add(first)
    report.add(second)
    assert list(report) == [first, second]
