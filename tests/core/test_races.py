"""Unit tests for race records and the report container."""

from repro.core.races import AccessKind, Race, RaceReport


def make(loc="x", kind=AccessKind.WRITE_WRITE, prev=1, cur=2, **extra):
    return Race(loc=loc, kind=kind, prev_task=prev, current_task=cur,
                prev_name=f"t{prev}", current_name=f"t{cur}", **extra)


def test_report_collects_and_tracks_locations():
    report = RaceReport()
    assert not report.has_races
    report.add(make(loc="a"))
    report.add(make(loc="b"))
    assert len(report) == 2
    assert report.racy_locations == {"a", "b"}


def test_dedupe_ignores_task_order():
    report = RaceReport()
    assert report.add(make(prev=1, cur=2))
    assert not report.add(make(prev=2, cur=1))  # same unordered pair
    assert len(report) == 1


def test_dedupe_distinguishes_kind_and_loc():
    report = RaceReport()
    assert report.add(make(kind=AccessKind.WRITE_WRITE))
    assert report.add(make(kind=AccessKind.WRITE_READ))
    assert report.add(make(loc="other"))
    assert len(report) == 3


def test_no_dedupe_mode_keeps_everything():
    report = RaceReport(dedupe=False)
    report.add(make())
    report.add(make())
    assert len(report) == 2


def test_duplicate_still_marks_location():
    report = RaceReport()
    report.add(make(loc="a"))
    report.add(make(loc="a"))
    assert report.racy_locations == {"a"}
    assert len(report) == 1


def test_summary_formats():
    report = RaceReport()
    assert "no determinacy races" in report.summary()
    report.add(make())
    text = report.summary()
    assert "1 determinacy race" in text
    assert "write-write" in text
    assert "t1" in text and "t2" in text


def test_kind_str():
    assert str(AccessKind.READ_WRITE) == "read-write"
    assert str(AccessKind.WRITE_READ) == "write-read"


def test_iteration_order_is_insertion_order():
    report = RaceReport()
    first, second = make(loc="a"), make(loc="b")
    report.add(first)
    report.add(second)
    assert list(report) == [first, second]


def test_provenance_fields_default_inert():
    """The optional site/witness fields change neither equality nor dedup."""
    race = make()
    assert race.prev_site is None
    assert race.current_site is None
    assert race.witness_id is None
    report = RaceReport()
    assert report.add(make())
    with_sites = make(prev_site="prog.py:3 (worker)", witness_id="w0")
    assert not report.add(with_sites)  # same pair → still deduplicated
    assert with_sites == make()        # compare=False on the new fields


def test_summary_is_stable_sorted_and_shows_sites():
    """summary() renders races sorted by (loc, pair, kind) regardless of
    detection order, and appends the site line only when sites exist."""
    report = RaceReport()
    report.add(make(loc="b", prev_site="prog.py:9 (main)"))
    report.add(make(loc="a"))
    text = report.summary()
    assert text.index("'a'") < text.index("'b'")
    assert "prev access at prog.py:9 (main)" in text
    assert "current access at <unknown>" in text
    # insertion order untouched — only the rendering sorts
    assert [r.loc for r in report] == ["b", "a"]
