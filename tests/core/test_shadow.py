"""Unit tests for the shadow memory (Section 4.2, Algorithms 8-9).

These drive :class:`ShadowMemory` directly with a scripted ``precede``
relation, isolating the reader-set policies from the DTRG.
"""

import pytest

from repro.core.shadow import ShadowMemory


class Harness:
    """ShadowMemory wired to an explicit happens-before table."""

    def __init__(self, futures=()):
        self.order = set()  # pairs (a, b) meaning a precedes b
        self.futures = set(futures)
        self.races = []
        self.shadow = ShadowMemory(
            precede=lambda a, b: a == b or (a, b) in self.order,
            is_future=lambda t: t in self.futures,
            report=lambda kind, prev, cur, loc: self.races.append(
                (kind, prev, cur, loc)
            ),
        )

    def let(self, a, b):
        self.order.add((a, b))


def test_first_reader_recorded():
    """DESIGN.md deviation #1: the first reader must enter the (empty)
    reader set or a later parallel write is missed."""
    h = Harness()
    h.shadow.read(1, "x")
    _, readers = h.shadow.state("x")
    assert readers == [1]
    h.shadow.write(2, "x")  # 1 ∥ 2
    assert h.races == [("read-write", 1, 2, "x")]


def test_ordered_write_after_read_retires_reader():
    h = Harness()
    h.shadow.read(1, "x")
    h.let(1, 2)
    h.shadow.write(2, "x")
    assert h.races == []
    writer, readers = h.shadow.state("x")
    assert writer == 2
    assert readers == []


def test_write_write_race_and_update():
    h = Harness()
    h.shadow.write(1, "x")
    h.shadow.write(2, "x")  # parallel
    assert h.races == [("write-write", 1, 2, "x")]
    writer, _ = h.shadow.state("x")
    assert writer == 2  # last writer regardless of the race


def test_write_read_race():
    h = Harness()
    h.shadow.write(1, "x")
    h.shadow.read(2, "x")
    assert h.races == [("write-read", 1, 2, "x")]


def test_ordered_write_then_read_no_race():
    h = Harness()
    h.shadow.write(1, "x")
    h.let(1, 2)
    h.shadow.read(2, "x")
    assert h.races == []


def test_async_reader_not_duplicated_when_parallel():
    """Lemma 4: a second parallel *async* reader is not stored."""
    h = Harness()
    h.shadow.read(1, "x")
    h.shadow.read(2, "x")  # parallel asyncs: keep reader 1 only
    _, readers = h.shadow.state("x")
    assert readers == [1]


def test_parallel_future_readers_all_stored():
    h = Harness(futures={1, 2, 3})
    for t in (1, 2, 3):
        h.shadow.read(t, "x")
    _, readers = h.shadow.state("x")
    assert readers == [1, 2, 3]
    assert h.races == []  # read-read is never a race


def test_future_reader_added_next_to_async_reader():
    h = Harness(futures={2})
    h.shadow.read(1, "x")   # async
    h.shadow.read(2, "x")   # parallel future: both stay
    _, readers = h.shadow.state("x")
    assert readers == [1, 2]


def test_async_reader_replaced_when_ordered():
    h = Harness()
    h.shadow.read(1, "x")
    h.let(1, 2)
    h.shadow.read(2, "x")
    _, readers = h.shadow.state("x")
    assert readers == [2]


def test_write_checks_against_every_stored_reader():
    h = Harness(futures={1, 2, 3})
    for t in (1, 2, 3):
        h.shadow.read(t, "x")
    h.let(1, 9)
    h.let(3, 9)
    h.shadow.write(9, "x")
    # reader 2 is the single unsynchronized one
    assert h.races == [("read-write", 2, 9, "x")]
    _, readers = h.shadow.state("x")
    assert readers == [2]  # the paper keeps racy readers in the set


def test_same_task_reread_and_rewrite_never_race():
    h = Harness()
    h.shadow.write(5, "x")
    h.shadow.read(5, "x")
    h.shadow.write(5, "x")
    assert h.races == []


def test_locations_are_independent():
    h = Harness()
    h.shadow.write(1, "x")
    h.shadow.write(2, "y")
    assert h.races == []
    assert h.shadow.num_locations == 2


def test_avg_readers_accounting():
    h = Harness(futures={1, 2, 3, 4})
    for t in (1, 2, 3):
        h.shadow.read(t, "x")   # sees 0, 1, 2 stored readers
    h.shadow.read(4, "y")        # sees 0
    # (0 + 1 + 2 + 0) / 4 accesses
    assert h.shadow.avg_readers == pytest.approx(0.75)
    assert h.shadow.num_accesses == 4
