"""Unit tests for the epoch-versioned PRECEDE cache (perf layer).

Two levels:

* :class:`~repro.core.precede_cache.PrecedeCache` in isolation — the
  epoch contract (positives permanent, negatives same-epoch-only) and the
  observability counters;
* the cache wired into :class:`DynamicTaskReachabilityGraph` — epoch bumps
  for every mutation kind, verdict stability across merges, and the
  crucial flip: a cached negative must *not* survive a join that adds
  exactly the missing path.

The oracle-equivalence property suite (``tests/properties/test_theorem2``)
covers the cache end-to-end; these tests pin the mechanism.
"""

import pytest

from repro.core.precede_cache import PrecedeCache
from repro.core.reachability import DynamicTaskReachabilityGraph


# ---------------------------------------------------------------------- #
# PrecedeCache in isolation                                              #
# ---------------------------------------------------------------------- #
def test_positive_entries_answer_at_any_epoch():
    cache = PrecedeCache()
    cache.store("ra", "rb", True, epoch=5)
    assert cache.lookup("ra", "rb", epoch=5) is True
    assert cache.lookup("ra", "rb", epoch=999) is True  # monotonicity
    assert cache.hits == 2 and cache.misses == 0
    assert cache.num_positive == 1 and cache.num_negative == 0


def test_negative_entries_are_epoch_scoped():
    cache = PrecedeCache()
    cache.store("ra", "rb", False, epoch=7)
    assert cache.lookup("ra", "rb", epoch=7) is False  # same epoch: hit
    assert cache.lookup("ra", "rb", epoch=8) is None   # stale: dropped
    assert cache.invalidations == 1
    assert cache.num_negative == 0  # the stale entry is gone...
    assert cache.lookup("ra", "rb", epoch=8) is None   # ...so plain miss
    assert cache.invalidations == 1
    assert cache.hits == 1 and cache.misses == 2


def test_unknown_key_is_a_miss():
    cache = PrecedeCache()
    assert cache.lookup("x", "y", epoch=0) is None
    assert cache.misses == 1 and cache.hits == 0
    assert cache.hit_rate == 0.0


def test_keys_are_ordered_pairs():
    cache = PrecedeCache()
    cache.store("ra", "rb", True, epoch=0)
    assert cache.lookup("rb", "ra", epoch=0) is None  # reverse is distinct


def test_hit_rate_and_clear():
    cache = PrecedeCache()
    cache.store("a", "b", True, epoch=0)
    cache.lookup("a", "b", epoch=0)
    cache.lookup("c", "d", epoch=0)
    assert cache.hit_rate == pytest.approx(0.5)
    cache.clear()
    assert cache.num_positive == 0 and cache.num_negative == 0
    assert cache.hits == 1 and cache.misses == 1  # counters survive clear


# ---------------------------------------------------------------------- #
# Wired into the DTRG                                                    #
# ---------------------------------------------------------------------- #
def sibling_join_graph():
    """main spawns futures A, C (terminated), then B; B joins C.

    ``precede(A, B)`` is an expensive *negative* (A was created before B,
    so the preorder prune cannot answer, and B's set has a non-tree edge
    to explore); ``precede(C, B)`` is an expensive *positive*.
    """
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    g.add_task("main", "C", is_future=True, name="C")
    g.on_terminate("C")
    g.add_task("main", "B", is_future=True, name="B")
    g.record_join("B", "C")
    return g


def test_expensive_positive_is_cached():
    g = sibling_join_graph()
    assert g.precede("C", "B")
    assert g.cache.num_positive == 1
    before = g.cache.hits
    assert g.precede("C", "B")
    assert g.cache.hits == before + 1


def test_expensive_negative_is_cached_within_epoch():
    g = sibling_join_graph()
    assert not g.precede("A", "B")
    assert g.cache.num_negative == 1
    before = g.cache.hits
    assert not g.precede("A", "B")
    assert g.cache.hits == before + 1


def test_cached_negative_flips_after_join_adds_the_path():
    """The reason negatives must be epoch-scoped: the missing path can
    appear one mutation later."""
    g = sibling_join_graph()
    assert not g.precede("A", "B")  # cached negative
    g.record_join("B", "A")         # adds exactly the A -> B edge
    assert g.precede("A", "B")      # stale negative must not answer


def test_positive_survives_merge():
    """Tree-join merges change set representatives but never retract a
    positive verdict (monotonicity)."""
    g = sibling_join_graph()
    assert g.precede("C", "B")
    g.on_terminate("B")
    g.record_join("main", "B")  # parent get: merges B into main's set
    assert g.precede("C", "B")  # same verdict through the merged set


@pytest.mark.parametrize(
    "mutate",
    [
        pytest.param(
            lambda g: g.add_task("main", "D", is_future=True, name="D"),
            id="add_task",
        ),
        pytest.param(lambda g: g.record_join("B", "A"), id="record_join-nt"),
        pytest.param(lambda g: g.on_terminate("B"), id="on_terminate"),
        pytest.param(
            lambda g: (g.on_terminate("B"), g.record_join("main", "B")),
            id="merge-via-tree-join",
        ),
    ],
)
def test_every_mutation_kind_bumps_the_epoch(mutate):
    g = sibling_join_graph()
    before = g.mutation_epoch
    mutate(g)
    assert g.mutation_epoch > before


def test_same_set_join_does_not_bump_epoch():
    """A redundant join is a graph no-op and must not invalidate."""
    g = sibling_join_graph()
    g.on_terminate("B")
    g.record_join("main", "B")  # merge
    before = g.mutation_epoch
    g.record_join("main", "B")  # same set now: no-op
    assert g.mutation_epoch == before


def test_negative_invalidated_by_unrelated_mutation_then_recomputed():
    g = sibling_join_graph()
    assert not g.precede("A", "B")
    g.add_task("main", "D", is_future=True, name="D")  # unrelated bump
    before = g.cache.invalidations
    assert not g.precede("A", "B")  # recomputed, same verdict
    assert g.cache.invalidations == before + 1


def test_cache_disabled_leaves_graph_functional():
    g = DynamicTaskReachabilityGraph(cache_precede=False)
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    g.add_task("main", "B", is_future=True, name="B")
    g.record_join("B", "A")
    assert g.cache is None
    assert g.precede("A", "B")
    assert not g.precede("B", "A")


def test_cached_and_uncached_agree_on_query_sequence():
    """Same construction + query interleaving, flag on vs off."""
    def drive(cache_precede):
        g = DynamicTaskReachabilityGraph(cache_precede=cache_precede)
        g.add_root("main")
        verdicts = []
        prev = None
        for i in range(8):
            name = f"F{i}"
            g.add_task("main", name, is_future=True, name=name)
            if prev is not None:
                g.record_join(name, prev)
                verdicts.append(g.precede(prev, name))
                verdicts.append(g.precede(name, prev))
                verdicts.append(g.precede("F0", name))
            g.on_terminate(name)
            prev = name
        return verdicts

    assert drive(True) == drive(False)


# ---------------------------------------------------------------------- #
# partition(): single-pass rewrite                                       #
# ---------------------------------------------------------------------- #
def test_partition_groups_by_set_in_creation_order():
    g = sibling_join_graph()
    assert g.partition() == [["main"], ["A"], ["C"], ["B"]]
    g.on_terminate("B")
    g.record_join("main", "B")  # merge B into main's set
    # Groups keyed by first-created member; members in creation order.
    assert g.partition() == [["main", "B"], ["A"], ["C"]]


def test_partition_is_deterministic_across_repeats():
    g = sibling_join_graph()
    assert g.partition() == g.partition()
