"""Unit tests for the event vocabulary and trace container."""

import pytest

from repro.core.events import (
    GetEvent,
    ReadEvent,
    TaskCreateEvent,
    Trace,
    WriteEvent,
)


def sample_trace():
    trace = Trace()
    trace.append(TaskCreateEvent(parent=0, child=1, is_future=True, ief=0))
    trace.append(WriteEvent(task=1, loc=("x", 0)))
    trace.append(GetEvent(consumer=0, producer=1))
    trace.append(ReadEvent(task=0, loc=("x", 0)))
    return trace


def test_counts_fingerprint():
    assert sample_trace().counts() == (1, 1, 2)


def test_events_are_value_objects():
    a = WriteEvent(task=1, loc=("x", 0))
    b = WriteEvent(task=1, loc=("x", 0))
    assert a == b
    assert hash(a) == hash(b)
    with pytest.raises(Exception):
        a.task = 2  # frozen


def test_len_and_iter():
    trace = sample_trace()
    assert len(trace) == 4
    assert [type(e).__name__ for e in trace] == [
        "TaskCreateEvent", "WriteEvent", "GetEvent", "ReadEvent",
    ]


def test_save_load_roundtrip(tmp_path):
    trace = sample_trace()
    path = tmp_path / "trace.pkl"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.events == trace.events


def test_load_rejects_non_trace(tmp_path):
    import pickle

    path = tmp_path / "junk.pkl"
    with open(path, "wb") as fh:
        pickle.dump([1, 2, 3], fh)
    with pytest.raises(TypeError):
        Trace.load(path)
