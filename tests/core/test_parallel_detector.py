"""Unit tests for ParallelRaceDetector — schedule-robust online detection.

The detector's location-level verdict must agree with the serial DTRG
detector under the serial elision (where both are well-defined); its
scheduling-robustness under real parallelism is covered by
tests/properties/test_runtime_parity.py.
"""

import random

import pytest

from repro import (
    AccessKind,
    DeterminacyRaceDetector,
    ParallelRaceDetector,
    RaceError,
    ReportPolicy,
    Runtime,
    SharedArray,
    SharedVar,
)
from repro.runtime.task import Task, TaskKind


def _run(program, det):
    rt = Runtime(observers=[det])
    data = SharedArray(rt, "data", 4)
    rt.run(lambda r: program(r, data))
    return det


def test_sibling_write_write_race():
    det = _run(_sibling_writes, ParallelRaceDetector())
    assert set(det.racy_locations) == {("data", 0)}
    assert det.races[0].kind is AccessKind.WRITE_WRITE


def _sibling_writes(rt, d):
    with rt.finish():
        rt.async_(lambda: d.write(0, 1))
        rt.async_(lambda: d.write(0, 2))


def test_write_read_and_read_write_kinds():
    def prog_wr(rt, d):
        with rt.finish():
            rt.async_(lambda: d.write(0, 1))
            rt.async_(lambda: d.read(0))

    det = _run(prog_wr, ParallelRaceDetector())
    kinds = {r.kind for r in det.races}
    assert kinds == {AccessKind.WRITE_READ}

    def prog_rw(rt, d):
        with rt.finish():
            rt.async_(lambda: d.read(0))
            rt.async_(lambda: d.write(0, 1))

    det = _run(prog_rw, ParallelRaceDetector())
    kinds = {r.kind for r in det.races}
    assert kinds == {AccessKind.READ_WRITE}


def test_future_join_orders_accesses():
    def prog(rt, d):
        f = rt.future(lambda: d.write(0, 1))
        f.get()
        d.read(0)
        d.write(0, 2)

    det = _run(prog, ParallelRaceDetector())
    assert det.races == []


def test_finish_join_orders_accesses():
    def prog(rt, d):
        with rt.finish():
            rt.async_(lambda: d.write(0, 1))
        d.write(0, 2)  # ordered by the finish join

    det = _run(prog, ParallelRaceDetector())
    assert det.races == []


def test_raise_policy_raises_race_error():
    det = ParallelRaceDetector(policy=ReportPolicy.RAISE)
    with pytest.raises(RaceError):
        _run(_sibling_writes, det)


def test_string_policy_accepted():
    det = ParallelRaceDetector(policy="collect")
    assert det.policy is ReportPolicy.COLLECT


def test_dedupe_collapses_repeated_pairs():
    # Each racy read re-checks the stored writer, so the same
    # (loc, pair, kind) triple reports once per read without dedupe.
    def prog(rt, d):
        with rt.finish():
            rt.async_(lambda: d.write(0, 1))
            rt.async_(lambda: [d.read(0) for _ in range(3)])

    det = _run(prog, ParallelRaceDetector(dedupe=True))
    assert len(det.races) == 1
    det = _run(prog, ParallelRaceDetector(dedupe=False))
    assert len(det.races) == 3


def test_precede_query_and_live_task_guard():
    det = ParallelRaceDetector()

    def prog(rt, d):
        f = rt.future(lambda: d.write(0, 1))
        f.get()
        # f (tid 1) has ended and was joined: it precedes main now.
        assert det.precede(1, 0)
        with pytest.raises(RuntimeError, match="live"):
            det.precede(0, 1)  # main is still live

    _run(prog, det)
    assert det.precede(0, 0)  # reflexive


def test_join_before_task_end_violates_contract():
    """A runtime that delivers on_get before the producer's on_task_end
    breaks the RuntimeBase ordering contract — loudly."""
    det = ParallelRaceDetector()
    main = Task(0, TaskKind.MAIN, parent=None, ief=None)
    det.on_init(main)
    child = Task(1, TaskKind.FUTURE, parent=main, ief=None)
    det.on_task_create(main, child)
    with pytest.raises(RuntimeError, match="on_task_end"):
        det.on_get(main, child)


def test_mutation_epoch_and_perf_stats():
    det = ParallelRaceDetector()
    before = det.mutation_epoch
    _run(_sibling_writes, det)
    stats = det.perf_stats
    assert det.mutation_epoch > before
    assert stats["num_accesses"] == 2
    assert stats["num_locations"] == 1
    assert stats["num_tasks"] == 3


def test_agrees_with_dtrg_detector_on_random_programs():
    from repro.testing.generator import random_program, run_program

    for seed in range(30):
        program = random_program(random.Random(seed), max_depth=3)
        dtrg = DeterminacyRaceDetector()
        par = ParallelRaceDetector()
        run_program(program, [dtrg, par])
        assert set(par.racy_locations) == set(dtrg.report.racy_locations), (
            f"seed {seed}"
        )
