"""DTRGSnapshot: the frozen array-backed DTRG (ALGORITHM.md §12.1).

``freeze`` compacts a *finished* graph into flat ``array('q')`` columns;
``precede`` on the snapshot must answer exactly like the live graph on
every task pair, allocation-free, and the whole object must pickle
cheaply (that pickle is the per-worker payload of the spawn backend).
"""

import pickle
import random

import pytest

from repro.core.detector import DeterminacyRaceDetector
from repro.core.snapshot import DTRGSnapshot
from repro.runtime.runtime import Runtime
from repro.testing.generator import random_program, run_program


def finished_detector(seed: int) -> DeterminacyRaceDetector:
    det = DeterminacyRaceDetector()
    run_program(random_program(random.Random(seed)), [det])
    return det


def test_freeze_preserves_every_precede_answer():
    for seed in range(30):
        det = finished_detector(seed)
        snap = DTRGSnapshot.freeze(det.dtrg)
        for a in snap.keys:
            for b in snap.keys:
                assert snap.precede(a, b) == det.dtrg.precede(a, b), (
                    f"seed {seed}: snapshot diverges on ({a}, {b})"
                )


def test_freeze_preserves_is_ancestor():
    for seed in range(10):
        det = finished_detector(seed)
        snap = DTRGSnapshot.freeze(det.dtrg)
        index = snap.index
        for a in snap.keys:
            for b in snap.keys:
                assert (snap.is_ancestor_idx(index[a], index[b])
                        == det.dtrg.is_ancestor(a, b))


def test_future_chain_snapshot_is_final_state():
    """The paper's Figure 1 shape: a future chain joined by main.

    After the end-finish merge (Algorithm 6) every task sits in one set,
    so the *final*-state PRECEDE is all-True — the snapshot must
    reproduce exactly that, demonstrating why sound parallel checking
    replays the structure log instead of querying the snapshot directly
    (ALGORITHM.md §12.2's masked-race argument).
    """
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])

    def program(rt_):
        with rt.finish():
            f1 = rt.future(lambda: 1, name="f1")
            f2 = rt.future(lambda: rt.get(f1) + 1, name="f2")
            assert rt.get(f2) == 2

    rt.run(program)
    snap = DTRGSnapshot.freeze(det.dtrg)
    keys = snap.keys
    assert len(keys) == 3
    for a in keys:
        for b in keys:
            assert snap.precede(a, b) == det.dtrg.precede(a, b) is True


def test_snapshot_counts_queries():
    det = finished_detector(3)
    snap = DTRGSnapshot.freeze(det.dtrg)
    before = snap.num_precede_queries
    snap.precede(snap.keys[0], snap.keys[-1])
    assert snap.num_precede_queries == before + 1


def test_pickle_round_trip():
    for seed in (0, 7, 11):
        det = finished_detector(seed)
        snap = DTRGSnapshot.freeze(det.dtrg)
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.keys == snap.keys
        assert clone.index == snap.index
        for a in snap.keys:
            for b in snap.keys:
                assert clone.precede(a, b) == snap.precede(a, b)


def test_pickle_is_compact():
    det = finished_detector(5)
    snap = DTRGSnapshot.freeze(det.dtrg)
    n = len(snap.keys)
    blob = pickle.dumps(snap)
    # Flat arrays, not per-node objects: a loose linear bound holds with
    # lots of headroom (the live graph costs ~1 KB/task in objects).
    assert len(blob) < 400 * n + 2000
    assert snap.nbytes < 200 * n + 500


def test_freeze_requires_finished_graph():
    """Freezing mid-run is a contract violation the class must detect:
    a temporary postorder would make containment checks meaningless."""
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    captured = {}

    def program(rt):
        with rt.finish():
            rt.async_(lambda: None, name="child")
            # Freeze while the child (and main) are unterminated.
            try:
                DTRGSnapshot.freeze(det.dtrg)
            except ValueError as exc:
                captured["error"] = exc

    rt.run(program)
    assert "error" in captured


def test_num_non_tree_edges_matches_live():
    for seed in range(10):
        det = finished_detector(seed)
        snap = DTRGSnapshot.freeze(det.dtrg)
        assert snap.num_non_tree_edges == det.dtrg.num_non_tree_edges
