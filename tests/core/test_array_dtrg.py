"""Unit tests for the flat-array live DTRG (``core/array_dtrg.py``)."""

import pytest

from repro.core.array_dtrg import ArrayDTRG
from repro.core.detector import DeterminacyRaceDetector
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.core.snapshot import DTRGSnapshot


def _mirror():
    """A fresh (object graph, array graph) pair driven in lockstep."""
    obj = DynamicTaskReachabilityGraph(cache_precede=False)
    arr = ArrayDTRG()
    return obj, arr


def _drive(pair, op, *args, **kwargs):
    for g in pair:
        getattr(g, op)(*args, **kwargs)


def _assert_all_pairs(obj, arr, keys):
    for a in keys:
        for b in keys:
            assert arr.precede(a, b) == obj.precede(a, b), (a, b)


def test_lockstep_future_scenario():
    """Spawns, terminations, a non-tree join and a tree merge produce the
    same verdicts and the same structural counters as the object graph."""
    pair = _mirror()
    obj, arr = pair
    _drive(pair, "add_root", "m")
    _drive(pair, "add_task", "m", "a", is_future=True)
    _drive(pair, "add_task", "a", "b", is_future=True)
    _drive(pair, "add_task", "m", "c", is_future=False)
    _drive(pair, "on_terminate", "b")
    _drive(pair, "on_terminate", "a")
    # c.get(b): b's parent (a) is not in c's set -> non-tree edge.
    _drive(pair, "record_join", "c", "b")
    _drive(pair, "on_terminate", "c")
    # m.get(a): a's parent is m -> tree join (merge).
    _drive(pair, "record_join", "m", "a")
    _drive(pair, "merge", "m", "c")
    _drive(pair, "on_terminate", "m")

    keys = ["m", "a", "b", "c"]
    _assert_all_pairs(obj, arr, keys)
    assert arr.mutation_epoch == obj.mutation_epoch
    assert arr.num_non_tree_edges == obj.num_non_tree_edges
    assert arr.num_tree_merges == obj.num_tree_merges
    assert arr.num_tasks == 4


def test_repeated_get_is_idempotent():
    pair = _mirror()
    obj, arr = pair
    _drive(pair, "add_root", "m")
    _drive(pair, "add_task", "m", "f", is_future=True)
    _drive(pair, "on_terminate", "f")
    for _ in range(3):  # repeated get: only the first mutates
        _drive(pair, "record_join", "m", "f")
    assert arr.mutation_epoch == obj.mutation_epoch
    assert arr.num_tree_merges == obj.num_tree_merges == 1
    assert arr.precede("f", "m") and obj.precede("f", "m")


def test_memo_invalidated_by_mutation():
    """The internal verdict memo must never outlive a mutation: a verdict
    that flips when a join edge arrives is observed flipped."""
    arr = ArrayDTRG()
    arr.add_root("m")
    arr.add_task("m", "f", is_future=True)
    arr.add_task("m", "g", is_future=True)
    arr.on_terminate("f")
    # Repeat queries so the second answer comes from the memo.
    assert not arr.precede("f", "g")
    assert not arr.precede("f", "g")
    arr.record_join("g", "f")  # non-tree edge f -> g's set
    assert arr.precede("f", "g")
    assert arr.precede("f", "g")


def test_counter_discipline_matches_object_graph():
    """precede() bumps num_precede_queries on every call; the memo may
    only suppress duplicate *searches* (num_visits is engine-private)."""
    arr = ArrayDTRG()
    arr.add_root("m")
    arr.add_task("m", "t", is_future=False)
    before = arr.num_precede_queries
    arr.precede("m", "t")
    arr.precede("m", "t")
    assert arr.num_precede_queries == before + 2


def test_terminate_twice_rejected():
    arr = ArrayDTRG()
    arr.add_root("m")
    arr.add_task("m", "t", is_future=False)
    arr.on_terminate("t")
    with pytest.raises(ValueError):
        arr.on_terminate("t")


def test_second_root_rejected():
    arr = ArrayDTRG()
    arr.add_root("m")
    with pytest.raises(ValueError):
        arr.add_root_idx("m2")


def test_growth_past_initial_buffers():
    """Columns grow without bound or reallocation bugs: a deep spawn
    chain keeps ancestor verdicts exact at every size."""
    arr = ArrayDTRG()
    arr.add_root_idx()
    parent = 0
    for _ in range(2000):
        parent = arr.add_task_idx(parent, False)
    assert len(arr) == 2001
    assert arr.precede_idx(0, 2000)       # ancestor chain
    assert arr.precede_idx(1000, 2000)
    assert not arr.precede_idx(2000, 0)   # child never precedes parent


def test_freeze_fast_path_matches_object_freeze():
    pair = _mirror()
    obj, arr = pair
    _drive(pair, "add_root", 0)
    _drive(pair, "add_task", 0, 1, is_future=True)
    _drive(pair, "add_task", 0, 2, is_future=False)
    _drive(pair, "on_terminate", 1)
    _drive(pair, "record_join", 2, 1)
    _drive(pair, "on_terminate", 2)
    _drive(pair, "record_join", 0, 1)
    _drive(pair, "merge", 0, 2)
    _drive(pair, "on_terminate", 0)
    snap_obj = DTRGSnapshot.freeze(obj)
    snap_arr = DTRGSnapshot.freeze(arr)
    assert snap_arr.keys == snap_obj.keys
    assert list(snap_arr.is_future) == list(snap_obj.is_future)
    for a in snap_obj.keys:
        for b in snap_obj.keys:
            assert snap_arr.precede(a, b) == snap_obj.precede(a, b)


def test_detector_engine_gating():
    with pytest.raises(ValueError):
        DeterminacyRaceDetector(engine="bogus")
    with pytest.raises(ValueError):
        DeterminacyRaceDetector(engine="array", use_lsa=False)
    with pytest.raises(ValueError):
        DeterminacyRaceDetector(engine="array", memoize_visit=False)
    with pytest.raises(ValueError):
        DeterminacyRaceDetector(engine="array", use_intervals=False)
    det = DeterminacyRaceDetector(engine="array")
    assert det.perf_stats["cache_hits"] == 0
    assert det.perf_stats["cache_misses"] == 0
