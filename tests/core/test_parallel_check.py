"""Two-phase sharded parallel checking (ALGORITHM.md §12).

The contract under test: for any recorded trace and any job count,
``check_trace_parallel`` reproduces the sequential replay detector's
races (same order), ``RaceReport.summary()`` text (byte-identical) and
structural ``DetectorPerf`` counters — and it streams its input, so a
one-shot generator with no ``__len__`` is a valid trace.
"""

import random

import pytest

from repro.core.detector import DeterminacyRaceDetector
from repro.core.parallel_check import check_trace_parallel
from repro.memory.tracer import (
    TraceRecorder,
    replay_trace,
    replay_trace_parallel,
)
from repro.testing.generator import random_program, run_program

#: Counters that must be job-count-invariant (the cache_* columns read 0
#: in parallel mode by design — workers run cache-less).
INVARIANT_PERF = (
    "precede_queries", "mutation_epoch", "shadow_fast_hits",
    "precede_calls_saved",
)


def recorded(seed: int):
    rec = TraceRecorder()
    run_program(random_program(random.Random(seed)), [rec])
    return rec.trace


def sequential(trace) -> DeterminacyRaceDetector:
    det = DeterminacyRaceDetector()
    replay_trace(trace, [det])
    return det


def first_racy_trace():
    for seed in range(50):
        trace = recorded(seed)
        if sequential(trace).report.has_races:
            return trace
    raise AssertionError("no racy seed in range")  # pragma: no cover


# ---------------------------------------------------------------------- #
# Golden equivalence                                                     #
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_summary_byte_identical_across_jobs(jobs):
    trace = first_racy_trace()
    golden = sequential(trace)
    result = check_trace_parallel(trace, jobs=jobs)
    assert result.summary() == golden.report.summary()
    assert [r.pair_key for r in result.races] == \
        [r.pair_key for r in golden.races]
    assert result.racy_locations == golden.racy_locations


@pytest.mark.parametrize("jobs", [1, 3])
def test_perf_counters_invariant(jobs):
    trace = first_racy_trace()
    golden = sequential(trace).perf_stats
    got = check_trace_parallel(trace, jobs=jobs).perf_stats
    for key in INVARIANT_PERF:
        assert got[key] == golden[key], key
    assert got["cache_hits"] == got["cache_misses"] == 0


def test_race_free_trace():
    for seed in range(50):
        trace = recorded(seed)
        golden = sequential(trace)
        if not golden.report.has_races:
            result = check_trace_parallel(trace, jobs=2)
            assert not result.report.has_races
            assert result.summary() == golden.report.summary()
            return
    raise AssertionError("no race-free seed in range")  # pragma: no cover


# ---------------------------------------------------------------------- #
# Multiprocessing backends (run from a real file, so spawn re-imports    #
# cleanly — pytest's __main__ is importable)                             #
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["fork", "spawn"])
def test_process_backends_match_inline(backend):
    trace = first_racy_trace()
    golden = check_trace_parallel(trace, jobs=2, backend="inline")
    result = check_trace_parallel(trace, jobs=2, backend=backend)
    assert result.summary() == golden.summary()
    assert result.perf_stats == golden.perf_stats
    assert result.backend == backend


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        check_trace_parallel(recorded(0), jobs=2, backend="threads")


def test_bad_jobs_rejected():
    with pytest.raises(ValueError):
        check_trace_parallel(recorded(0), jobs=0)


# ---------------------------------------------------------------------- #
# Streaming input (satellite: any iterable, single pass)                 #
# ---------------------------------------------------------------------- #
def test_generator_input_streams():
    trace = first_racy_trace()
    golden = sequential(trace)

    def one_shot():
        for event in trace:
            yield event

    gen = one_shot()
    assert not hasattr(gen, "__len__")
    result = check_trace_parallel(gen, jobs=2)
    assert result.summary() == golden.report.summary()
    # The generator is exhausted: a second pass would see nothing, so a
    # passing check proves single-pass streaming.
    assert next(gen, None) is None


def test_replay_trace_accepts_generator():
    trace = first_racy_trace()
    golden = sequential(trace)
    det = DeterminacyRaceDetector()
    replay_trace((event for event in trace), [det])
    assert det.report.summary() == golden.report.summary()


def test_replay_trace_parallel_entry_point():
    trace = first_racy_trace()
    golden = sequential(trace)
    result = replay_trace_parallel(iter(trace), jobs=3)
    assert result.summary() == golden.report.summary()


# ---------------------------------------------------------------------- #
# Result surface                                                         #
# ---------------------------------------------------------------------- #
def test_names_override():
    trace = first_racy_trace()
    default = check_trace_parallel(trace, jobs=1)
    named = check_trace_parallel(
        trace, jobs=1,
        names={tid: f"T{tid}" for tid in range(200)},
    )
    assert default.racy_locations == named.racy_locations
    assert any(
        r.prev_name.startswith("T") or r.current_name.startswith("T")
        for r in named.races
    )


def test_shard_and_timing_surface():
    trace = first_racy_trace()
    result = check_trace_parallel(trace, jobs=2)
    assert sum(s["events"] for s in result.shards) \
        == result.num_access_events
    for key in ("build_seconds", "freeze_seconds", "check_seconds",
                "merge_seconds", "total_seconds"):
        assert result.timings[key] >= 0.0
    assert result.num_events == len(trace) + 0  # structure + access split
    assert result.num_access_events + result.num_structure_events \
        == result.num_events


def test_obs_hooks_fire():
    from repro.obs import Observability, RingTracer

    obs = Observability(tracer=RingTracer())
    trace = first_racy_trace()
    check_trace_parallel(trace, jobs=2, obs=obs)
    dump = obs.registry.as_dict()
    assert dump["counters"]["parallel_checks"] == 1
    assert dump["histograms"]["parallel_shard_events"]["count"] >= 1
    assert dump["histograms"]["parallel_check_ns"]["count"] == 1
    names = {e["name"] for e in obs.tracer.events()}
    assert {"parallel.plan", "parallel.build", "parallel.freeze",
            "parallel.check", "parallel.merge"} <= names
