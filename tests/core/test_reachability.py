"""Unit tests for the dynamic task reachability graph (Section 4.1)."""

import pytest

from repro.core.reachability import DynamicTaskReachabilityGraph


def build_chain():
    """main -> A (future) -> B (future), fully live."""
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.add_task("A", "B", is_future=True, name="B")
    return g


def test_task_precedes_itself():
    g = build_chain()
    assert g.precede("A", "A")


def test_live_ancestor_precedes_descendant():
    g = build_chain()
    assert g.precede("main", "B")
    assert g.precede("A", "B")


def test_completed_sibling_does_not_precede():
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    g.add_task("main", "B", is_future=True, name="B")
    assert not g.precede("A", "B")
    assert not g.precede("B", "A")


def test_tree_join_via_parent_get_merges():
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    g.record_join("main", "A")  # parent get: tree join
    assert g.same_set("main", "A")
    assert g.num_tree_merges == 1
    assert g.num_non_tree_edges == 0
    g.add_task("main", "B", is_future=True, name="B")
    assert g.precede("A", "B")  # through the merged set's containment


def test_sibling_get_records_non_tree_edge():
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    g.add_task("main", "B", is_future=True, name="B")
    g.record_join("B", "A")  # sibling join: non-tree
    assert g.num_non_tree_edges == 1
    assert g.non_tree_predecessors("B") == ["A"]
    assert g.precede("A", "B")
    assert not g.precede("B", "A")


def test_repeated_join_is_idempotent():
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    g.record_join("main", "A")
    g.record_join("main", "A")  # same set now: no-op
    assert g.num_tree_merges == 1


def test_transitive_path_through_two_non_tree_edges():
    # A -> B (B got A), B -> C (C got B): A must precede C.
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    g.add_task("main", "B", is_future=True, name="B")
    g.record_join("B", "A")
    g.on_terminate("B")
    g.add_task("main", "C", is_future=True, name="C")
    g.record_join("C", "B")
    assert g.precede("A", "C")
    assert g.precede("B", "C")


def test_lsa_assignment_rules():
    """Algorithm 2 lines 7-11: lsa is the parent iff the parent's set has
    non-tree edges, else inherited."""
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "P", is_future=True, name="P")
    g.add_task("P", "C1", is_future=True, name="C1")
    assert g.lsa_of("C1") is None  # no non-tree edges anywhere yet
    g.on_terminate("C1")
    g.add_task("main", "X", is_future=True, name="X")
    g.on_terminate("X")
    # X completed as a sibling subtree of P?  No: X is child of main spawned
    # while P live — allowed in this synthetic driver.  P joins it: non-tree.
    g.record_join("P", "X")
    g.add_task("P", "C2", is_future=True, name="C2")
    assert g.lsa_of("C2") == "P"  # parent's set now has an nt edge
    g.add_task("C2", "D", is_future=True, name="D")
    assert g.lsa_of("D") == "P"  # inherited: C2's set has no nt edges


def test_reachability_through_ancestors_non_tree_edge():
    """A join recorded into an ancestor before the current task's branch
    spawned must order the producer before the current task (the LSA walk)."""
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    g.add_task("main", "W", is_future=True, name="W")
    g.record_join("W", "A")  # non-tree into W
    g.add_task("W", "child", is_future=True, name="child")
    # A's completion reaches W's post-get step, which precedes child's spawn.
    assert g.precede("A", "child")


def test_merged_member_non_tree_edge_not_pruned():
    """Regression for the unsound preorder prune (DESIGN.md §3).

    main spawns F1 and F2; F2 joins F1 (non-tree); main joins F2 (tree
    merge — main's set label has pre 0 while the nt edge source F1 has
    pre 1).  precede(F1, main) must be True via the merged nt list.
    """
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "F1", is_future=True, name="F1")
    g.on_terminate("F1")
    g.add_task("main", "F2", is_future=True, name="F2")
    g.record_join("F2", "F1")  # non-tree
    g.on_terminate("F2")
    g.record_join("main", "F2")  # tree merge into main's set
    assert g.precede("F1", "main")


def test_statistics_counters():
    g = DynamicTaskReachabilityGraph()
    g.add_root("main")
    g.add_task("main", "A", is_future=True, name="A")
    g.on_terminate("A")
    # Pruned at level 0 (A postdates everything in main's set), so the
    # expansion counter does not move: num_visits counts VISIT
    # *expansions* only, never level-0 resolutions.
    g.precede("A", "main")
    assert g.num_precede_queries == 1
    assert g.num_visits == 0
    # A query that must actually search backwards expands at least B's set.
    g.add_task("main", "B", is_future=True, name="B")
    g.record_join("B", "A")  # non-tree edge A -> B's set
    g.precede("A", "B")
    assert g.num_precede_queries == 2
    assert g.num_visits >= 1


@pytest.mark.parametrize(
    "options",
    [
        {"use_lsa": False},
        {"memoize_visit": False},
        {"use_intervals": False},
        {"use_lsa": False, "memoize_visit": False, "use_intervals": False},
    ],
)
def test_ablation_variants_agree_on_small_graph(options):
    def build(**kw):
        g = DynamicTaskReachabilityGraph(**kw)
        g.add_root("m")
        g.add_task("m", "a", is_future=True, name="a")
        g.on_terminate("a")
        g.add_task("m", "b", is_future=True, name="b")
        g.record_join("b", "a")
        g.on_terminate("b")
        g.add_task("m", "c", is_future=True, name="c")
        g.record_join("c", "b")
        g.on_terminate("c")
        g.record_join("m", "c")
        g.add_task("m", "d", is_future=True, name="d")
        return g

    reference = build()
    variant = build(**options)
    tasks = ["m", "a", "b", "c", "d"]
    for x in tasks:
        for y in tasks:
            assert reference.precede(x, y) == variant.precede(x, y), (x, y)
