"""Observability/provenance attachment must happen before execution.

ShadowMemory and DynamicTaskReachabilityGraph cache their obs sinks in
bound method attributes and per-call fast paths; rebinding them after
events have been processed is unsafe once hooks can run concurrently
(PR 8's ThreadRuntime), so late attachment now raises RuntimeStateError
instead of silently racing.
"""

import pytest

from repro import (
    DeterminacyRaceDetector,
    Observability,
    Runtime,
    RuntimeStateError,
    SharedVar,
)
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.core.shadow import ShadowMemory


def _run_one_access(det):
    rt = Runtime(observers=[det])
    v = SharedVar(rt, "v")
    rt.run(lambda r: v.write(1))


def test_shadow_attach_observability_after_access_raises():
    det = DeterminacyRaceDetector()
    _run_one_access(det)
    obs = Observability()
    with pytest.raises(RuntimeStateError, match="attach"):
        det.shadow.attach_observability(obs)


def test_shadow_attach_provenance_after_access_raises():
    det = DeterminacyRaceDetector()
    _run_one_access(det)

    class _Prov:
        enabled = True

        def stored_site(self, loc, task, kind):
            return None

    with pytest.raises(RuntimeStateError, match="attach"):
        det.shadow.attach_provenance(_Prov())


def test_dtrg_attach_observability_after_registration_raises():
    det = DeterminacyRaceDetector()
    _run_one_access(det)
    obs = Observability()
    with pytest.raises(RuntimeStateError, match="attach"):
        det.dtrg.attach_observability(obs)


def test_attach_before_execution_still_works():
    det = DeterminacyRaceDetector()
    obs = Observability()
    det.shadow.attach_observability(obs)
    det.dtrg.attach_observability(obs)
    _run_one_access(det)
    assert det.shadow.num_accesses == 1


def test_fresh_shadow_attach_ok_and_disabled_obs_is_noop():
    shadow = ShadowMemory(
        precede=lambda a, b: True,
        is_future=lambda t: False,
        report=lambda kind, a, b, loc: None,
    )
    from repro.obs.hooks import NULL_OBSERVABILITY

    shadow.attach_observability(NULL_OBSERVABILITY)  # disabled: no-op
    shadow.attach_observability(Observability())


def test_fresh_dtrg_attach_ok():
    g = DynamicTaskReachabilityGraph()
    g.attach_observability(Observability())
