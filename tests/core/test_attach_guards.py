"""Observability/provenance attachment must happen before execution.

ShadowMemory and DynamicTaskReachabilityGraph cache their obs sinks in
bound method attributes and per-call fast paths; rebinding them after
events have been processed is unsafe once hooks can run concurrently
(PR 8's ThreadRuntime), so late attachment now raises RuntimeStateError
instead of silently racing.
"""

import pytest

from repro import (
    DeterminacyRaceDetector,
    Observability,
    Runtime,
    RuntimeStateError,
    SharedVar,
)
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.core.shadow import ShadowMemory


def _run_one_access(det):
    rt = Runtime(observers=[det])
    v = SharedVar(rt, "v")
    rt.run(lambda r: v.write(1))


def test_shadow_attach_observability_after_access_raises():
    det = DeterminacyRaceDetector()
    _run_one_access(det)
    obs = Observability()
    with pytest.raises(RuntimeStateError, match="attach"):
        det.shadow.attach_observability(obs)


def test_shadow_attach_provenance_after_access_raises():
    det = DeterminacyRaceDetector()
    _run_one_access(det)

    class _Prov:
        enabled = True

        def stored_site(self, loc, task, kind):
            return None

    with pytest.raises(RuntimeStateError, match="attach"):
        det.shadow.attach_provenance(_Prov())


def test_dtrg_attach_observability_after_registration_raises():
    det = DeterminacyRaceDetector()
    _run_one_access(det)
    obs = Observability()
    with pytest.raises(RuntimeStateError, match="attach"):
        det.dtrg.attach_observability(obs)


def test_attach_before_execution_still_works():
    det = DeterminacyRaceDetector()
    obs = Observability()
    det.shadow.attach_observability(obs)
    det.dtrg.attach_observability(obs)
    _run_one_access(det)
    assert det.shadow.num_accesses == 1


def test_fresh_shadow_attach_ok_and_disabled_obs_is_noop():
    shadow = ShadowMemory(
        precede=lambda a, b: True,
        is_future=lambda t: False,
        report=lambda kind, a, b, loc: None,
    )
    from repro.obs.hooks import NULL_OBSERVABILITY

    shadow.attach_observability(NULL_OBSERVABILITY)  # disabled: no-op
    shadow.attach_observability(Observability())


def test_fresh_dtrg_attach_ok():
    g = DynamicTaskReachabilityGraph()
    g.attach_observability(Observability())


# ---------------------------------------------------------------------- #
# AsyncioRuntime: the same before-execution contract holds on the
# cooperative path (PR 9 — the live sampler attaches sources up front,
# never observers mid-run).
# ---------------------------------------------------------------------- #
class TestAsyncioRuntimeAttachOrdering:
    def _runtime(self):
        from repro.runtime.asyncio_runtime import AsyncioRuntime

        return AsyncioRuntime()

    def test_add_observer_mid_execution_raises(self):
        rt = self._runtime()
        det = DeterminacyRaceDetector()

        async def program(rt):
            rt.add_observer(det)

        with pytest.raises(RuntimeStateError, match="while running"):
            rt.run(program)

    def test_add_observer_from_spawned_task_raises(self):
        rt = self._runtime()
        failures = []

        async def child():
            try:
                rt.add_observer(DeterminacyRaceDetector())
            except RuntimeStateError:
                failures.append("guarded")

        async def program(rt):
            async with rt.finish():
                rt.async_(child)

        rt.run(program)
        assert failures == ["guarded"]

    def test_add_observer_before_run_still_works(self):
        from repro.core.parallel_detector import ParallelRaceDetector

        rt = self._runtime()
        det = ParallelRaceDetector()
        rt.add_observer(det)

        async def program(rt):
            v = SharedVar(rt, "v")
            v.write(1)

        rt.run(program)
        assert det.perf_stats["num_accesses"] == 1
        assert not det.races
