"""Unit tests for the union-find structure (DTRG partition D)."""

import pytest

from repro.core.disjoint_set import DisjointSets


def test_make_set_and_find_identity():
    ds = DisjointSets()
    ds.make_set("a")
    assert ds.find("a") == "a"
    assert "a" in ds
    assert ds.num_sets == 1


def test_duplicate_make_set_rejected():
    ds = DisjointSets()
    ds.make_set(1)
    with pytest.raises(ValueError):
        ds.make_set(1)


def test_find_unknown_element_raises():
    ds = DisjointSets()
    with pytest.raises(KeyError):
        ds.find("missing")


def test_union_merges_and_counts():
    ds = DisjointSets()
    for x in range(4):
        ds.make_set(x)
    ds.union(0, 1)
    ds.union(2, 3)
    assert ds.num_sets == 2
    assert ds.same_set(0, 1)
    assert ds.same_set(2, 3)
    assert not ds.same_set(1, 2)
    ds.union(0, 3)
    assert ds.num_sets == 1
    assert ds.same_set(1, 2)


def test_union_same_set_is_noop():
    ds = DisjointSets()
    ds.make_set("a", metadata={"tag": 1})
    ds.make_set("b")
    ds.union("a", "b")
    before = ds.num_unions
    ds.union("b", "a")
    assert ds.num_unions == before
    assert ds.get_metadata("a") == {"tag": 1}


def test_metadata_follows_first_operand():
    ds = DisjointSets()
    ds.make_set("anc", metadata="ancestor-meta")
    ds.make_set("desc", metadata="descendant-meta")
    root = ds.union("anc", "desc")
    # Whatever the physical root, the logical metadata is the ancestor's.
    assert ds.get_metadata("anc") == "ancestor-meta"
    assert ds.get_metadata("desc") == "ancestor-meta"
    assert ds.find("desc") == root


def test_metadata_survives_chained_unions():
    ds = DisjointSets()
    for x in "abcdef":
        ds.make_set(x)
    ds.set_metadata("a", "M")
    ds.union("a", "b")
    ds.union("c", "d")
    ds.union("a", "c")  # keeps a's metadata, drops c's (None anyway)
    ds.union("a", "e")
    assert ds.get_metadata("d") == "M"
    assert ds.get_metadata("e") == "M"


def test_members_and_partition():
    ds = DisjointSets()
    for x in range(5):
        ds.make_set(x)
    ds.union(0, 1)
    ds.union(0, 2)
    assert sorted(ds.members(1)) == [0, 1, 2]
    partition = {frozenset(group) for group in ds.as_partition()}
    assert partition == {frozenset({0, 1, 2}), frozenset({3}), frozenset({4})}


def test_long_chain_path_halving_terminates():
    ds = DisjointSets()
    n = 2000
    for x in range(n):
        ds.make_set(x)
    for x in range(1, n):
        ds.union(0, x)
    assert ds.num_sets == 1
    root = ds.find(0)
    assert all(ds.find(x) == root for x in range(n))


def test_operation_counters():
    ds = DisjointSets()
    ds.make_set(1)
    ds.make_set(2)
    before_finds = ds.num_finds
    ds.same_set(1, 2)
    assert ds.num_finds == before_finds + 2
    ds.union(1, 2)
    assert ds.num_unions == 1
