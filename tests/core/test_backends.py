"""Unit tests for the pluggable PRECEDE backends (docs/ALGORITHM.md §14).

Every scenario drives a raw backend the way the detector does under the
serial DFS contract: mutators arrive in execution order and ``precede(a,
b)`` is only queried while ``b`` is the currently executing task.  The
cross-backend *equivalence* sweep lives in
``tests/properties/test_backend_equivalence.py``; these tests pin the
individual label/clock algebra and the protocol plumbing.
"""

import pytest

from repro.core.backend import (
    ENGINE_ALIASES,
    ENGINES,
    PrecedeBackend,
    resolve_engine,
)
from repro.core.depa import DePaBackend
from repro.core.detector import DeterminacyRaceDetector
from repro.core.vc_backend import VectorClockBackend
from repro.runtime.errors import UnsupportedConstructError


# ---------------------------------------------------------------------- #
# Protocol and engine resolution                                         #
# ---------------------------------------------------------------------- #
def test_all_engines_satisfy_the_protocol():
    from repro.core.array_dtrg import ArrayDTRG
    from repro.core.reachability import DynamicTaskReachabilityGraph

    for backend in (DynamicTaskReachabilityGraph(), ArrayDTRG(),
                    DePaBackend(), VectorClockBackend()):
        assert isinstance(backend, PrecedeBackend)


def test_resolve_engine_accepts_names_and_aliases():
    for name in ENGINES:
        assert resolve_engine(name) == name
    for alias, canonical in ENGINE_ALIASES.items():
        assert resolve_engine(alias) == canonical


def test_resolve_engine_rejects_unknown():
    with pytest.raises(ValueError, match="unknown DTRG engine"):
        resolve_engine("hb-tree")


def test_detector_accepts_every_engine():
    for name in ENGINES + tuple(ENGINE_ALIASES):
        det = DeterminacyRaceDetector(engine=name)
        assert det.dtrg is not None


def test_non_default_engines_reject_attachments():
    from repro.obs import Observability

    for name in ("depa", "vc"):
        with pytest.raises(ValueError, match="default query strategy"):
            DeterminacyRaceDetector(engine=name, use_lsa=False)
        with pytest.raises(ValueError, match="observability"):
            DeterminacyRaceDetector(engine=name, obs=Observability())


# ---------------------------------------------------------------------- #
# DePa label algebra                                                     #
# ---------------------------------------------------------------------- #
def test_depa_live_ancestor_chain():
    b = DePaBackend()
    b.add_root(0)
    b.add_task(0, 1)
    b.add_task(1, 2)
    # Under serial DFS, live tasks are exactly the spawn-tree ancestors
    # of the current task — each must precede it.
    assert b.precede(0, 2) and b.precede(1, 2) and b.precede(2, 2)


def test_depa_async_sibling_is_unordered():
    b = DePaBackend()
    b.add_root(0)
    b.add_task(0, 1)
    b.on_terminate(1)
    b.add_task(0, 2)
    # 1 ran to completion before 2 spawned, but without a join nothing
    # orders them: a parallel schedule could interleave their steps.
    assert not b.precede(1, 2)


def test_depa_parent_steps_before_spawn_precede_child():
    b = DePaBackend()
    b.add_root(0)
    b.add_task(0, 1)
    b.on_terminate(1)
    b.add_task(0, 2)
    b.on_terminate(2)
    # The parent continuation after terminating both children is ordered
    # after neither child individually (no join), and each child is
    # ordered before nothing.
    assert not b.precede(1, 0) and not b.precede(2, 0)


def test_depa_finish_join_orders_enclosed_after_scope():
    b = DePaBackend()
    b.add_root(0)
    b.begin_finish(0)
    b.add_task(0, 1)
    b.on_terminate(1)
    b.merge(0, 1)
    b.end_finish(0)
    # After end_finish the owner's continuation is ordered after the
    # joined child; the pop itself realizes the join.
    assert b.precede(1, 0)


def test_depa_nested_finish_orders_only_its_own_scope():
    b = DePaBackend()
    b.add_root(0)
    b.begin_finish(0)
    b.add_task(0, 1)        # joins only at the outer end_finish
    b.begin_finish(0)
    b.add_task(0, 2)
    b.on_terminate(2)
    b.merge(0, 2)
    b.end_finish(0)         # inner scope closed: 2 joined, 1 not yet
    assert b.precede(2, 0)
    assert not b.precede(1, 0)
    b.on_terminate(1)
    b.merge(0, 1)
    b.end_finish(0)
    assert b.precede(1, 0)


def test_depa_declines_future_get_joins():
    b = DePaBackend()
    b.add_root(0)
    b.add_task(0, 1, is_future=True)
    b.on_terminate(1)
    with pytest.raises(UnsupportedConstructError, match="fork-join"):
        b.record_join(0, 1)


def test_depa_every_mutator_bumps_the_epoch():
    b = DePaBackend()
    epoch = b.mutation_epoch
    for mutate in (
        lambda: b.add_root(0),
        lambda: b.add_task(0, 1),
        lambda: b.begin_finish(0),
        lambda: b.on_terminate(1),
        lambda: b.merge(0, 1),
        lambda: b.end_finish(0),
    ):
        mutate()
        assert b.mutation_epoch == epoch + 1
        epoch = b.mutation_epoch


def test_depa_spawn_path_is_stable_across_finish_scopes():
    b = DePaBackend()
    b.add_root(0)
    b.add_task(0, 1)
    inside = b.current_label(1)
    b.begin_finish(1)
    b.add_task(1, 2)
    # 1's label grew a finish pair, but its *spawn path* still prefixes
    # its descendant's label — the liveness query must keep answering.
    assert b.precede(1, 2)
    assert b.current_label(1) != inside


# ---------------------------------------------------------------------- #
# Vector-clock backend algebra                                           #
# ---------------------------------------------------------------------- #
def test_vc_live_ancestor_chain():
    b = VectorClockBackend()
    b.add_root(0)
    b.add_task(0, 1)
    b.add_task(1, 2)
    assert b.precede(0, 2) and b.precede(1, 2) and b.precede(2, 2)


def test_vc_terminated_sibling_is_unordered_until_joined():
    b = VectorClockBackend()
    b.add_root(0)
    b.add_task(0, 1, is_future=True)
    b.on_terminate(1)
    b.add_task(0, 2)
    assert not b.precede(1, 2)


def test_vc_future_get_join_orders_producer():
    b = VectorClockBackend()
    b.add_root(0)
    b.add_task(0, 1, is_future=True)
    b.on_terminate(1)
    b.record_join(0, 1)
    # The get edge is the whole point of the vc engine: after the join,
    # the producer happens-before the consumer's continuation.
    assert b.precede(1, 0)


def test_vc_get_join_propagates_transitively():
    b = VectorClockBackend()
    b.add_root(0)
    b.add_task(0, 1, is_future=True)
    b.add_task(1, 2, is_future=True)
    b.on_terminate(2)
    b.on_terminate(1)
    b.record_join(0, 1)
    b.add_task(0, 3)
    # 1's frozen clock dominates 2's spawn component, so the join pulls
    # 2 into main's past — and every later child inherits it.
    assert b.precede(1, 3)
    b.record_join(0, 2)
    assert b.precede(2, 0)


def test_vc_finish_merge_joins_scope_tasks():
    b = VectorClockBackend()
    b.add_root(0)
    b.begin_finish(0)
    b.add_task(0, 1)
    b.on_terminate(1)
    b.merge(0, 1)
    b.end_finish(0)
    assert b.precede(1, 0)


def test_vc_join_before_task_end_is_a_malformed_stream():
    b = VectorClockBackend()
    b.add_root(0)
    b.add_task(0, 1, is_future=True)
    with pytest.raises(ValueError, match="before its task-end"):
        b.record_join(0, 1)


def test_vc_every_mutator_bumps_the_epoch():
    b = VectorClockBackend()
    epoch = b.mutation_epoch
    for mutate in (
        lambda: b.add_root(0),
        lambda: b.add_task(0, 1, is_future=True),
        lambda: b.begin_finish(0),
        lambda: b.on_terminate(1),
        lambda: b.record_join(0, 1),
        lambda: b.merge(0, 1),
        lambda: b.end_finish(0),
    ):
        mutate()
        assert b.mutation_epoch == epoch + 1
        epoch = b.mutation_epoch


# ---------------------------------------------------------------------- #
# Detector integration                                                   #
# ---------------------------------------------------------------------- #
def _race_pairs(engine):
    """One racy and one race-free access pattern through the detector."""
    from repro.testing.generator import (
        Async, Program, Read, Write, run_program,
    )

    prog = Program(num_locs=2, body=[
        Async([Write(0), Read(1)]),  # write races with the parent's below
        Write(0),
        Read(1),                     # read/read with the child: no race
    ])
    det = DeterminacyRaceDetector(policy="collect", engine=engine)
    run_program(prog, [det])
    return sorted({(repr(r.loc), r.kind.value) for r in det.races})


def test_detector_reports_identical_races_on_every_engine():
    golden = _race_pairs("object")
    assert golden  # the scenario above must actually race
    for engine in ("array", "depa", "vc"):
        assert _race_pairs(engine) == golden


def test_detector_perf_stats_work_for_label_engines():
    for engine in ("depa", "vc"):
        det = DeterminacyRaceDetector(engine=engine)
        stats = det.perf_stats
        assert stats["cache_hits"] == 0 and stats["cache_misses"] == 0
        assert "precede_queries" in stats
