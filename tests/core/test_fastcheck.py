"""Unit tests for the batched encoder + single-pass fast checker."""

import pytest

from repro.core.detector import DeterminacyRaceDetector
from repro.core.events import (
    FinishEndEvent,
    FinishStartEvent,
    GetEvent,
    ReadEvent,
    TaskCreateEvent,
    TaskEndEvent,
    Trace,
    WriteEvent,
    encode_trace,
)
from repro.core.fastcheck import check_trace_fast
from repro.memory.tracer import replay_trace

INVARIANT_PERF = (
    "precede_queries", "mutation_epoch", "shadow_fast_hits",
    "precede_calls_saved",
)


def _async_write_race(sites: bool = False):
    """Main and an unjoined async child both write ``x`` — one race."""
    return Trace(events=[
        TaskCreateEvent(parent=0, child=1, is_future=False, ief=0),
        WriteEvent(task=1, loc="x", site="a.py:1" if sites else None),
        WriteEvent(task=0, loc="x", site="a.py:2" if sites else None),
        TaskEndEvent(task=1),
    ])


def _future_ordered():
    """A joined future: its write is ordered before the parent's — clean."""
    return Trace(events=[
        TaskCreateEvent(parent=0, child=1, is_future=True, ief=0),
        WriteEvent(task=1, loc="x"),
        TaskEndEvent(task=1),
        GetEvent(consumer=0, producer=1),
        WriteEvent(task=0, loc="x"),
        ReadEvent(task=0, loc="x"),
    ])


def _finish_scoped():
    """An async inside an explicit finish: joined at finish-end, so the
    post-finish read is ordered — clean."""
    return Trace(events=[
        FinishStartEvent(fid=1, owner=0, enclosing=0),
        TaskCreateEvent(parent=0, child=1, is_future=False, ief=1),
        WriteEvent(task=1, loc="y"),
        TaskEndEvent(task=1),
        FinishEndEvent(fid=1),
        ReadEvent(task=0, loc="y"),
    ])


def _against_replay(trace):
    det = DeterminacyRaceDetector()
    replay_trace(trace, [det])
    fast = check_trace_fast(trace)
    assert fast.summary() == det.report.summary()
    assert [r.pair_key for r in fast.races] == [
        r.pair_key for r in det.races
    ]
    for key in INVARIANT_PERF:
        assert fast.perf_stats[key] == det.perf_stats[key], key
    return det, fast


def test_async_write_write_race():
    det, fast = _against_replay(_async_write_race())
    assert len(fast.races) == 1
    assert fast.races[0].kind.value == "write-write"


def test_site_attribution_matches_sharded_checker():
    """With sites in the stream, the fast path attributes them exactly
    like the sharded workers do (the plain sequential detector only
    renders sites when a provenance recorder is attached)."""
    from repro.core.parallel_check import check_trace_parallel

    trace = _async_write_race(sites=True)
    fast = check_trace_fast(trace)
    sharded = check_trace_parallel(trace, jobs=1, backend="inline")
    assert fast.summary() == sharded.summary()
    assert len(fast.races) == 1
    race = fast.races[0]
    assert race.prev_site == "a.py:1"
    assert race.current_site == "a.py:2"


def test_future_join_orders_accesses():
    _, fast = _against_replay(_future_ordered())
    assert fast.races == []


def test_finish_scope_orders_accesses():
    _, fast = _against_replay(_finish_scoped())
    assert fast.races == []


def test_encoded_and_raw_inputs_agree():
    trace = _async_write_race()
    from_raw = check_trace_fast(trace)
    from_encoded = check_trace_fast(encode_trace(trace))
    assert from_raw.summary() == from_encoded.summary()
    assert from_raw.perf_stats == from_encoded.perf_stats


def test_encoder_counts_and_runs():
    trace = _future_ordered()
    enc = encode_trace(trace)
    assert enc.num_access_events == 3
    assert enc.num_structure_events == 3
    assert len(enc) == len(trace)
    assert enc.num_tasks == 2          # main + the future
    assert enc.num_locations == 1
    assert bool(enc.is_future[1])
    # Run-length segments alternate and their counts cover the stream.
    runs = list(enc.runs)
    assert sum(runs[1::2]) == len(trace)
    kinds = runs[0::2]
    assert all(kinds[i] != kinds[i + 1] for i in range(len(kinds) - 1))


def test_encoder_rejects_unknown_task():
    with pytest.raises(KeyError):
        encode_trace(Trace(events=[WriteEvent(task=7, loc="x")]))


def test_result_surface():
    fast = check_trace_fast(_async_write_race())
    assert fast.num_events == 4
    assert fast.num_access_events == 2
    assert fast.num_structure_events == 2
    assert fast.racy_locations == [("x", 1)] or fast.racy_locations
    for key in ("structure_seconds", "access_seconds", "total_seconds"):
        assert fast.timings[key] >= 0.0
    assert fast.events_per_second > 0
    assert fast.access_events_per_second > 0
    # cache_* columns are 0 by construction on the array engine.
    assert fast.perf_stats["cache_hits"] == 0
    assert fast.perf_stats["cache_hit_rate"] == 0.0
