"""Unit tests for the online interval labeling (DTRG map L)."""

import pytest

from repro.core.labels import MAXID, IntervalLabel, LabelAllocator


def simulate(spawn_script):
    """Drive an allocator from a nested-tuple spawn script.

    ``("name", [children...])`` spawns in depth-first order, terminating
    each node after its children — the exact discipline of the runtime.
    Returns {name: label}.
    """
    alloc = LabelAllocator()
    labels = {}

    def walk(node):
        name, children = node
        labels[name] = alloc.on_spawn()
        for child in children:
            walk(child)
        alloc.on_terminate(labels[name])

    walk(spawn_script)
    return labels


def test_single_node_interval():
    labels = simulate(("root", []))
    root = labels["root"]
    assert root.pre == 0
    assert root.post == 1
    assert root.final


def test_ancestor_contains_descendant():
    labels = simulate(
        ("r", [("a", [("aa", []), ("ab", [])]), ("b", [("ba", [])])])
    )
    assert labels["r"].contains(labels["a"])
    assert labels["r"].contains(labels["ba"])
    assert labels["a"].contains(labels["ab"])
    assert not labels["a"].contains(labels["b"])
    assert not labels["a"].contains(labels["ba"])
    assert not labels["ab"].contains(labels["a"])


def test_siblings_disjoint():
    labels = simulate(("r", [("a", []), ("b", []), ("c", [])]))
    for x, y in (("a", "b"), ("b", "c"), ("a", "c")):
        assert not labels[x].contains(labels[y])
        assert not labels[y].contains(labels[x])


def test_temporary_postorder_ordering_mid_execution():
    """While tasks are live, ancestors must already contain descendants."""
    alloc = LabelAllocator()
    root = alloc.on_spawn()
    child = alloc.on_spawn()
    grandchild = alloc.on_spawn()
    # All three live: containment must hold with temporary postorders.
    assert root.contains(child)
    assert child.contains(grandchild)
    assert root.contains(grandchild)
    assert not grandchild.contains(child)
    alloc.on_terminate(grandchild)
    assert child.contains(grandchild)
    alloc.on_terminate(child)
    assert root.contains(child)
    alloc.on_terminate(root)


def test_completed_sibling_does_not_contain_later_spawn():
    alloc = LabelAllocator()
    root = alloc.on_spawn()
    first = alloc.on_spawn()
    alloc.on_terminate(first)
    second = alloc.on_spawn()
    assert not first.contains(second)
    assert not second.contains(first)
    assert root.contains(second)
    alloc.on_terminate(second)
    alloc.on_terminate(root)


def test_temporary_values_count_down_from_maxid():
    alloc = LabelAllocator()
    a = alloc.on_spawn()
    b = alloc.on_spawn()
    assert a.post == MAXID
    assert b.post == MAXID - 1
    assert alloc.live_count == 2


def test_tmpid_recycled_on_terminate():
    alloc = LabelAllocator()
    root = alloc.on_spawn()
    child1 = alloc.on_spawn()
    alloc.on_terminate(child1)
    child2 = alloc.on_spawn()
    # child2 reuses the temporary slot child1 released.
    assert child2.post == MAXID - 1
    alloc.on_terminate(child2)
    alloc.on_terminate(root)
    assert alloc.live_count == 0


def test_double_terminate_rejected():
    alloc = LabelAllocator()
    label = alloc.on_spawn()
    alloc.on_terminate(label)
    with pytest.raises(ValueError):
        alloc.on_terminate(label)


def test_final_postorders_use_shared_counter():
    """pre and post values interleave in one DFS counter (CLRS-style)."""
    labels = simulate(("r", [("a", []), ("b", [])]))
    assert labels["r"].pre == 0
    assert labels["a"].pre == 1
    assert labels["a"].post == 2
    assert labels["b"].pre == 3
    assert labels["b"].post == 4
    assert labels["r"].post == 5
