"""Appendix A — the deadlock example and its race diagnosis."""

from repro.core.races import AccessKind
from repro.examples_lib.appendix_deadlock import run_deadlock_example
from repro.graph import GraphBuilder
from repro.runtime.parallel import is_determinate


def test_faithful_mode_raises_null_future():
    outcome = run_deadlock_example(defensive=False)
    assert outcome.deadlock_diagnosed
    assert "deadlock" in str(outcome.null_future_error).lower()


def test_defensive_mode_reports_reference_races():
    outcome = run_deadlock_example(defensive=True)
    assert not outcome.deadlock_diagnosed
    races = outcome.detector.races
    assert {race.loc for race in races} == {("a",), ("b",)}
    kinds = {race.loc: race.kind for race in races}
    # F1 reads b before async2 writes it: read happened first in DFS.
    assert kinds[("b",)] is AccessKind.READ_WRITE
    # async1 writes a before F2 reads it.
    assert kinds[("a",)] is AccessKind.WRITE_READ


def test_defensive_mode_is_structurally_nondeterminate():
    """The reference races mean different schedules see different handle
    values — the root of the possible deadlock."""
    gb = GraphBuilder()
    run_deadlock_example(defensive=True, extra_observers=[gb])
    assert not is_determinate(gb.graph, samples=40)
