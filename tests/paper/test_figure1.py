"""Figure 1 — every ordering claim the paper makes about the example.

"Here Stmt3, Stmt6, and Stmt8 may execute in parallel with task T_A, while
Stmt4, Stmt7, and Stmt9 can execute only after the completion of task T_A
… although the main task did not perform an explicit join on task T_B,
there is a transitive join dependence from T_B to the main task … Stmt10
can execute only after tasks T_A, T_B, and T_C complete."
"""

import pytest

from repro import DeterminacyRaceDetector
from repro.examples_lib.figure1 import (
    run_figure1,
    statement_location,
)
from repro.graph import GraphBuilder, ReachabilityClosure


@pytest.fixture(scope="module")
def figure1():
    gb = GraphBuilder()
    det = DeterminacyRaceDetector()
    result = run_figure1([gb, det])
    closure = ReachabilityClosure(gb.graph)
    return result, gb.graph, closure, det


def step_of(graph, name):
    return graph.accesses_by_loc[statement_location(name)][0].step


def task_steps(graph, tid):
    return [s.sid for s in graph.steps_of_task(tid)]


def test_statements_parallel_with_task_a(figure1):
    result, graph, closure, _ = figure1
    a_steps = task_steps(graph, result.a_tid)
    for stmt in ("Stmt3", "Stmt6", "Stmt8"):
        s = step_of(graph, stmt)
        assert any(closure.parallel(s, a) for a in a_steps), stmt


def test_statements_after_task_a(figure1):
    result, graph, closure, _ = figure1
    a_last = graph.last_step[result.a_tid]
    for stmt in ("Stmt4", "Stmt7", "Stmt9"):
        s = step_of(graph, stmt)
        assert closure.precedes(a_last, s), stmt


def test_stmt10_after_all_three_tasks(figure1):
    result, graph, closure, _ = figure1
    s10 = step_of(graph, "Stmt10")
    for tid in (result.a_tid, result.b_tid, result.c_tid):
        assert closure.precedes(graph.last_step[tid], s10), tid


def test_transitive_dependence_from_b_without_direct_join(figure1):
    result, graph, closure, _ = figure1
    # main never joined B directly: no join edge B -> main steps
    b_last = graph.last_step[result.b_tid]
    main_steps = set(task_steps(graph, result.main_tid))
    direct = [
        (src, dst)
        for src, dst, kind in graph.edges
        if kind.is_join and src == b_last and dst in main_steps
    ]
    # (the only such edge is the implicit-finish join at the very end;
    # Stmt10 must be ordered through C, i.e. before that edge's target)
    s10 = step_of(graph, "Stmt10")
    assert all(dst > s10 for _, dst in direct)
    assert closure.precedes(b_last, s10)


def test_detector_precede_agrees_at_end(figure1):
    result, _, _, det = figure1
    # After the run, every future task has (transitively) joined main.
    for tid in (result.a_tid, result.b_tid, result.c_tid):
        assert det.precede(tid, result.main_tid)


def test_program_is_race_free(figure1):
    *_, det = figure1
    assert not det.report.has_races
