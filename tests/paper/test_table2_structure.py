"""Table 2 — the scale-invariant structural relationships (DESIGN.md §4).

The absolute times in Table 2 belong to the authors' JVM testbed; what
must reproduce *exactly* at any input size are the structural counters and
their relationships, which §5 of the paper derives analytically.  Timing
shape (who is near 1x, who is the slowest) is exercised by the benchmark
suite, not unit-asserted here.
"""

import pytest

from repro.harness.runner import BENCHMARKS, run_benchmark


@pytest.fixture(scope="module")
def results():
    return {
        name: run_benchmark(name, "tiny", verify=True)
        for name in BENCHMARKS
    }


def test_all_rows_present(results):
    assert set(results) == {
        "Series-af", "Series-future", "Crypt-af", "Crypt-future",
        "Jacobi", "Smith-Waterman", "Strassen",
    }


def test_all_benchmarks_race_free(results):
    for name, res in results.items():
        assert res.races == 0, name


@pytest.mark.parametrize(
    "name", ["Series-af", "Series-future", "Crypt-af", "Crypt-future"]
)
def test_structured_rows_have_zero_nt_joins(results, name):
    assert results[name].metrics.num_nt_joins == 0


@pytest.mark.parametrize("name", ["Jacobi", "Smith-Waterman", "Strassen"])
def test_dependence_rows_have_nt_joins(results, name):
    assert results[name].metrics.num_nt_joins > 0


@pytest.mark.parametrize("base", ["Series", "Crypt"])
def test_future_variant_sharedmem_delta(results, base):
    """§5: "the difference in the #SharedMem values … exactly matches the
    lower bound of 2 x #Tasks" (one handle write + one handle read)."""
    af = results[f"{base}-af"].metrics
    fut = results[f"{base}-future"].metrics
    assert fut.num_tasks == af.num_tasks
    delta = fut.num_shared_accesses - af.num_shared_accesses
    assert delta == 2 * fut.num_tasks


@pytest.mark.parametrize("name", ["Series-af", "Crypt-af"])
def test_async_finish_avg_readers_bounded(results, name):
    """§5: "the average must be in the 0…1 range for async-finish
    programs"."""
    assert 0.0 <= results[name].avg_readers <= 1.0


def test_future_rows_can_exceed_af_readers(results):
    """§5: "#AvgReaders can be any value that is >= 0, for programs with
    futures" and is higher for Crypt-future than Crypt-af."""
    assert (
        results["Crypt-future"].avg_readers
        > results["Crypt-af"].avg_readers
    )


def test_timing_fields_populated(results):
    # Only positivity: at tiny scale single-run timings are scheduler
    # noise; relative-timing shape is asserted by the benchmark suite at
    # meaningful scales, never by unit tests.
    for name, res in results.items():
        assert res.seq_seconds > 0, name
        assert res.instrumented_seconds > 0, name
        assert res.racedet_seconds > 0, name


def test_rows_render(results):
    from repro.harness.report import render_table

    table = render_table([res.row() for res in results.values()])
    assert "Series-af" in table and "Slowdown" in table
