"""Figure 2 — the 12-step computation graph and its stated properties.

Caption/text facts verified here: steps number S1-S12 in depth-first
order; "S2 ⊀ S10"; "S2 ≺ S12"; "the join edge from S3 to S5 is a tree
join"; "the edge from S5 to S8 is a non-tree join".
"""

import pytest

from repro import DeterminacyRaceDetector
from repro.examples_lib.figure2 import NUM_STEPS, run_figure2, step_location
from repro.graph import EdgeKind, GraphBuilder, ReachabilityClosure, to_dot


@pytest.fixture(scope="module")
def figure2():
    gb = GraphBuilder()
    det = DeterminacyRaceDetector()
    result = run_figure2([gb, det])
    return result, gb.graph, ReachabilityClosure(gb.graph), det


def step_of(graph, i):
    return graph.accesses_by_loc[step_location(i)][0].step


def test_twelve_labeled_steps_in_dfs_order(figure2):
    _, graph, _, _ = figure2
    ids = [step_of(graph, i) for i in range(1, NUM_STEPS + 1)]
    assert ids == list(range(NUM_STEPS))  # S1..S12 are steps 0..11
    assert graph.num_steps == NUM_STEPS + 1  # + post-implicit-finish step


def test_five_tasks(figure2):
    result, graph, _, _ = figure2
    assert graph.num_tasks == 5
    assert set(result.tids) == {"M", "A", "B", "C", "D"}


def test_s2_does_not_precede_s10(figure2):
    _, graph, closure, _ = figure2
    assert not closure.precedes(step_of(graph, 2), step_of(graph, 10))
    assert closure.parallel(step_of(graph, 2), step_of(graph, 10))


def test_s2_precedes_s12(figure2):
    _, graph, closure, _ = figure2
    assert closure.precedes(step_of(graph, 2), step_of(graph, 12))


def test_s3_to_s5_is_tree_join(figure2):
    _, graph, _, _ = figure2
    s3, s5 = step_of(graph, 3), step_of(graph, 5)
    kinds = [k for src, dst, k in graph.edges if src == s3 and dst == s5]
    assert kinds == [EdgeKind.JOIN_TREE]


def test_s5_to_s8_is_non_tree_join(figure2):
    _, graph, _, _ = figure2
    s5, s8 = step_of(graph, 5), step_of(graph, 8)
    kinds = [k for src, dst, k in graph.edges if src == s5 and dst == s8]
    assert kinds == [EdgeKind.JOIN_NON_TREE]


def test_exactly_one_non_tree_join(figure2):
    _, graph, _, _ = figure2
    assert graph.edge_counts()[EdgeKind.JOIN_NON_TREE] == 1


def test_detector_sees_same_structure(figure2):
    result, _, _, det = figure2
    assert det.dtrg.num_non_tree_edges == 1
    assert not det.report.has_races
    # T_C joined T_A: the non-tree predecessor list of C's set holds A.
    assert det.dtrg.non_tree_predecessors(result.tids["C"]) == [
        result.tids["A"]
    ]


def test_dot_rendering_includes_all_tasks(figure2):
    result, graph, _, _ = figure2
    dot = to_dot(graph, title="Figure 2")
    for name in ("T_A", "T_B", "T_C", "T_D"):
        assert name in dot
