"""Figure 3 / Table 1 — the DTRG snapshots, fact by fact."""

import pytest

from repro.examples_lib.figure3 import run_figure3


@pytest.fixture(scope="module")
def figure3():
    return run_figure3()


def test_snapshot_a_non_tree_predecessors(figure3):
    """Table 1(a): "Task T3 performed join operations on T2 and T1.
    Therefore P(T3) = {T1, T2}"."""
    snap = figure3.after_step_11
    assert set(snap.nt_preds["T3"]) == {"T1", "T2"}
    for other in ("T0", "T1", "T2", "T4", "T5", "T6"):
        assert snap.nt_preds[other] == ()


def test_snapshot_a_lsa(figure3):
    """Table 1(a): "The least significant ancestor of T4, T5 and T6 is T3
    because T3 is their lowest ancestor which performed a non-tree join"."""
    snap = figure3.after_step_11
    assert snap.lsa["T4"] == "T3"
    assert snap.lsa["T5"] == "T3"
    assert snap.lsa["T6"] == "T3"
    assert snap.lsa["T0"] is None
    assert snap.lsa["T1"] is None
    assert snap.lsa["T2"] is None
    assert snap.lsa["T3"] is None


def test_snapshot_a_all_singletons(figure3):
    snap = figure3.after_step_11
    assert sorted(len(group) for group in snap.partition) == [1] * 7


def test_snapshot_b_tree_joined_set(figure3):
    """Table 1(b): "T0, T3, T4, T5 and T6 are all in the same disjoint set
    because they are connected by tree join edges"."""
    snap = figure3.after_step_17
    groups = {frozenset(g) for g in snap.partition}
    assert frozenset({"T0", "T3", "T4", "T5", "T6"}) in groups
    assert frozenset({"T1"}) in groups
    assert frozenset({"T2"}) in groups


def test_snapshot_b_merged_set_keeps_nt_edges(figure3):
    """After merging, the combined set still carries T3's non-tree list
    (Algorithm 7 unions the nt lists)."""
    snap = figure3.after_step_17
    assert set(snap.nt_preds["T0"]) == {"T1", "T2"}
    assert set(snap.nt_preds["T4"]) == {"T1", "T2"}  # same set as T0


def test_labels_nest_by_spawn_tree(figure3):
    snap = figure3.after_step_17
    pre = {name: label[0] for name, label in snap.labels.items()}
    assert pre["T0"] == 0
    assert pre["T1"] < pre["T2"] < pre["T3"] < pre["T4"] < pre["T5"] < pre["T6"]


def test_detector_orders_everything_after_the_joins(figure3):
    det = figure3.detector
    tids = figure3.tids
    for name in ("T1", "T2", "T3", "T4", "T5", "T6"):
        assert det.precede(tids[name], tids["T0"]), name
    assert not det.report.has_races
