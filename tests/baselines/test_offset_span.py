"""Unit tests for Offset-Span labeling (nested fork-join)."""

import pytest

from repro import DeterminacyRaceDetector, Runtime, SharedArray
from repro.baselines.offset_span import (
    WIDE,
    OffsetSpanDetector,
    os_concurrent,
    os_precedes,
)
from repro.runtime.errors import UnsupportedConstructError


def run(builder, locs=4):
    det = OffsetSpanDetector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return det


# ---------------------------------------------------------------------- #
# Label algebra                                                          #
# ---------------------------------------------------------------------- #
def test_prefix_precedes():
    parent = ((0, WIDE),)
    child = ((0, WIDE), (0, WIDE))
    assert os_precedes(parent, child)
    assert not os_precedes(child, parent)


def test_siblings_concurrent():
    a = ((0, WIDE), (0, WIDE))
    b = ((0, WIDE), (1, WIDE))
    assert os_concurrent(a, b)


def test_join_continuation_after_children():
    base = ((0, WIDE),)
    children = [base + ((i, WIDE),) for i in range(3)]
    continuation = ((WIDE, WIDE),)  # (0 + WIDE, WIDE)
    for child in children:
        assert os_precedes(child, continuation)
        assert not os_precedes(continuation, child)


def test_second_fork_children_after_first_fork_children():
    base = ((0, WIDE),)
    first = base + ((0, WIDE),)
    cont = ((WIDE, WIDE),)
    second = cont + ((0, WIDE),)
    assert os_precedes(first, second)
    assert os_precedes(base, second)


def test_nested_fork_labels():
    outer_child = ((0, WIDE), (1, WIDE))
    inner_child = outer_child + ((0, WIDE),)
    other_outer = ((0, WIDE), (0, WIDE))
    assert os_precedes(outer_child, inner_child)
    assert os_concurrent(inner_child, other_outer)


def test_reflexive():
    label = ((0, WIDE), (2, WIDE))
    assert os_precedes(label, label)
    assert not os_concurrent(label, label)


# ---------------------------------------------------------------------- #
# Detector on fork-join programs                                         #
# ---------------------------------------------------------------------- #
def test_fork_join_race():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))

    det = run(prog)
    assert det.racy_locations == {("x", 0)}


def test_sequential_regions_ordered():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
        with rt.finish():
            rt.async_(lambda: mem.write(0, 2))
        mem.read(0)

    det = run(prog)
    assert not det.report.has_races


def test_nested_fork_join():
    def prog(rt, mem):
        def worker():
            with rt.finish():
                rt.async_(lambda: mem.write(1, 1))
                rt.async_(lambda: mem.write(2, 2))
            mem.read(1)

        with rt.finish():
            rt.async_(worker)
            rt.async_(lambda: mem.write(3, 3))

    det = run(prog)
    assert not det.report.has_races
    assert det.max_label_length >= 3


def test_agreement_with_reference_on_forkjoin_program():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.read(0))     # race
            rt.async_(lambda: mem.write(1, 1))
        mem.read(1)                            # ordered

    os_det = OffsetSpanDetector()
    ref = DeterminacyRaceDetector()
    rt = Runtime(observers=[os_det, ref])
    mem = SharedArray(rt, "x", 4)
    rt.run(lambda _rt: prog(rt, mem))
    assert os_det.racy_locations == ref.racy_locations == {("x", 0)}


# ---------------------------------------------------------------------- #
# Model restrictions                                                     #
# ---------------------------------------------------------------------- #
def test_owner_access_between_fork_and_join_rejected():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            mem.read(0)

    with pytest.raises(UnsupportedConstructError):
        run(prog)


def test_owner_nested_region_after_fork_rejected():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            with rt.finish():
                rt.async_(lambda: mem.write(1, 1))

    with pytest.raises(UnsupportedConstructError):
        run(prog)


def test_escaping_async_rejected():
    def prog(rt, mem):
        def parent():
            rt.async_(lambda: None)  # IEF is the outer finish, owner differs

        with rt.finish():
            rt.async_(parent)

    with pytest.raises(UnsupportedConstructError):
        run(prog)


def test_future_rejected():
    def prog(rt, mem):
        rt.future(lambda: 1)

    with pytest.raises(UnsupportedConstructError):
        run(prog)


def test_label_length_tracks_nesting_depth():
    def prog(rt, mem):
        def level(d):
            if d == 0:
                mem.write(0, 1)
                return
            with rt.finish():
                rt.async_(level, d - 1)

        level(4)

    det = run(prog)
    # root pair + one pair per nesting level
    assert det.max_label_length == 5
