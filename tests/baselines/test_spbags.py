"""Unit tests for the SP-bags baseline (fully strict spawn-sync only)."""

import pytest

from repro import Runtime, SharedArray, UnsupportedConstructError
from repro.baselines import SPBagsDetector


def run(builder, locs=4):
    det = SPBagsDetector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return det


def test_spawn_sync_race_detected():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            mem.write(0, 2)

    det = run(prog)
    assert det.racy_locations == {("x", 0)}


def test_sync_orders_accesses():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
        mem.write(0, 2)

    det = run(prog)
    assert not det.report.has_races


def test_nested_fully_strict_ok():
    def prog(rt, mem):
        def worker():
            with rt.finish():
                rt.async_(lambda: mem.write(1, 1))
            mem.read(1)

        with rt.finish():
            rt.async_(worker)

    det = run(prog)
    assert not det.report.has_races


def test_escaping_async_rejected():
    """Terminally-strict escapes are outside Cilk's fully strict model."""

    def prog(rt, mem):
        def parent():
            rt.async_(lambda: mem.write(0, 1))  # escapes to outer finish

        with rt.finish():
            rt.async_(parent)

    with pytest.raises(UnsupportedConstructError):
        run(prog)


def test_future_get_rejected():
    def prog(rt, mem):
        f = rt.future(lambda: 1)
        f.get()

    with pytest.raises(UnsupportedConstructError):
        run(prog)


def test_top_level_asyncs_allowed():
    """Asyncs in main's implicit finish are spawned by the scope owner."""

    def prog(rt, mem):
        rt.async_(lambda: mem.write(0, 1))
        rt.async_(lambda: mem.write(1, 2))

    det = run(prog)
    assert not det.report.has_races
