"""Unit tests for the ESP-bags baseline (async-finish only)."""

import pytest

from repro import Runtime, SharedArray, UnsupportedConstructError
from repro.baselines import ESPBagsDetector


def run(builder, locs=4):
    det = ESPBagsDetector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return det


def test_parallel_writes_race():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))

    det = run(prog)
    assert det.racy_locations == {("x", 0)}


def test_finish_serializes():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
        with rt.finish():
            rt.async_(lambda: mem.write(0, 2))
        mem.read(0)

    det = run(prog)
    assert not det.report.has_races


def test_terminally_strict_escape_supported():
    """ESP-bags handles asyncs escaping into an ancestor's finish."""

    def prog(rt, mem):
        def parent():
            rt.async_(lambda: mem.write(2, 1))  # IEF: the outer finish
            mem.read(2)  # real race

        with rt.finish():
            rt.async_(parent)

    det = run(prog)
    assert det.racy_locations == {("x", 2)}


def test_nested_finish_inside_task():
    def prog(rt, mem):
        def worker():
            with rt.finish():
                rt.async_(lambda: mem.write(1, 5))
            mem.read(1)  # ordered by the inner finish

        with rt.finish():
            rt.async_(worker)
        mem.read(1)

    det = run(prog)
    assert not det.report.has_races


def test_parent_read_vs_child_write_race():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            mem.read(0)  # parallel with the child

    det = run(prog)
    assert det.racy_locations == {("x", 0)}


def test_reader_replacement_keeps_leftmost():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.read(0))
            rt.async_(lambda: mem.read(0))
            rt.async_(lambda: mem.write(0, 1))

    det = run(prog)
    # the write races with the retained reader (one report suffices)
    assert det.racy_locations == {("x", 0)}


def test_future_get_rejected():
    def prog(rt, mem):
        f = rt.future(lambda: 1)
        f.get()

    with pytest.raises(UnsupportedConstructError):
        run(prog)


def test_future_spawn_without_get_tolerated():
    """Future tasks that are never joined behave like asyncs for ESP-bags
    (their IEF join is a tree join); only get() is out of model."""

    def prog(rt, mem):
        with rt.finish():
            rt.future(lambda: mem.write(0, 1))
        mem.read(0)

    det = run(prog)
    assert not det.report.has_races


def test_agreement_with_reference_detector_on_af_corpus():
    from repro import DeterminacyRaceDetector
    from repro.testing.programs import CORPUS, run_corpus_program

    af_only = [
        "race_free_sequential",
        "parallel_writes_race",
        "finish_orders_writes",
        "nested_finish_race_free",
        "escaping_async_race",
        "async_reader_replacement",
        "write_read_same_task",
    ]
    for program in CORPUS:
        if program.name not in af_only:
            continue
        esp = ESPBagsDetector()
        ref = DeterminacyRaceDetector()
        run_corpus_program(program, [esp, ref])
        assert esp.racy_locations == ref.racy_locations == program.racy, (
            program.name
        )
