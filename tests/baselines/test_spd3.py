"""Unit tests for the SPD3 (DPST/LCA) baseline."""

import pytest

from repro import DeterminacyRaceDetector, Runtime, SharedArray
from repro.baselines.spd3 import DpstNodeKind, SPD3Detector
from repro.runtime.errors import UnsupportedConstructError
from repro.testing.programs import CORPUS, run_corpus_program


def run(builder, locs=4):
    det = SPD3Detector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return det


def test_parallel_writes_race():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))

    det = run(prog)
    assert det.racy_locations == {("x", 0)}


def test_finish_orders():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
        mem.read(0)

    det = run(prog)
    assert not det.report.has_races


def test_parent_step_between_spawns_is_parallel():
    """The owner's code between two spawns inside a finish is parallel with
    the earlier child (the DPST's step-leaf placement captures this)."""

    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(1, 1))
            mem.read(1)  # parallel with the child

    det = run(prog)
    assert det.racy_locations == {("x", 1)}


def test_escaping_async_supported():
    def prog(rt, mem):
        def parent():
            rt.async_(lambda: mem.write(2, 1))
            mem.read(2)

        with rt.finish():
            rt.async_(parent)

    det = run(prog)
    assert det.racy_locations == {("x", 2)}


def test_nested_finish_orders_subtree():
    def prog(rt, mem):
        def worker():
            with rt.finish():
                rt.async_(lambda: mem.write(1, 5))
            mem.read(1)

        with rt.finish():
            rt.async_(worker)
        mem.read(1)

    det = run(prog)
    assert not det.report.has_races


def test_dmhp_is_order_insensitive():
    det = SPD3Detector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", 2)
    steps = {}

    def prog(_rt):
        with rt.finish():
            rt.async_(lambda: steps.setdefault("a", det._step(rt.current_task.tid)))
            rt.async_(lambda: steps.setdefault("b", det._step(rt.current_task.tid)))

    rt.run(prog)
    a, b = steps["a"], steps["b"]
    assert det.dmhp(a, b) and det.dmhp(b, a)
    assert not det.dmhp(a, a)


def test_dpst_node_kinds():
    det = SPD3Detector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", 1)

    def prog(_rt):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))

    rt.run(prog)
    assert det.root is not None
    assert det.root.kind is DpstNodeKind.FINISH
    assert det.num_nodes >= 3  # root finish, explicit finish, async, step(s)


def test_future_rejected():
    def prog(rt, mem):
        rt.future(lambda: 1)

    with pytest.raises(UnsupportedConstructError):
        run(prog)


def test_get_rejected_even_if_spawn_slipped_through():
    det = SPD3Detector()
    with pytest.raises(UnsupportedConstructError):
        det.on_get(None, None)


AF_CORPUS = [
    "race_free_sequential",
    "parallel_writes_race",
    "finish_orders_writes",
    "nested_finish_race_free",
    "escaping_async_race",
    "async_reader_replacement",
    "write_read_same_task",
]


@pytest.mark.parametrize(
    "program", [p for p in CORPUS if p.name in AF_CORPUS], ids=lambda p: p.name
)
def test_agreement_with_reference_on_af_corpus(program):
    spd3 = SPD3Detector()
    ref = DeterminacyRaceDetector()
    run_corpus_program(program, [spd3, ref])
    assert spd3.racy_locations == ref.racy_locations == program.racy
