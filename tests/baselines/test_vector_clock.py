"""Unit tests for the vector-clock baseline."""

import random

from repro import DeterminacyRaceDetector, Runtime, SharedArray
from repro.baselines import VectorClockDetector
from repro.testing.generator import random_program, run_program
from repro.testing.programs import CORPUS, run_corpus_program


def run(builder, locs=4):
    det = VectorClockDetector()
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return det


def test_basic_race_and_order():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))
        mem.write(0, 3)  # ordered by the finish

    det = run(prog)
    assert det.racy_locations == {("x", 0)}
    assert len(det.races) == 1


def test_future_joins_supported():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1), name="p")

        def consumer():
            f.get()
            mem.read(0)

        g = rt.future(consumer)
        g.get()
        mem.write(0, 2)

    det = run(prog)
    assert not det.report.has_races


def test_agreement_with_dtrg_on_corpus():
    for program in CORPUS:
        vc = VectorClockDetector()
        ref = DeterminacyRaceDetector()
        run_corpus_program(program, [vc, ref])
        assert vc.racy_locations == ref.racy_locations == program.racy, (
            program.name
        )


def test_agreement_with_dtrg_on_random_programs():
    for seed in range(40):
        prog = random_program(random.Random(seed + 1000))
        vc = VectorClockDetector()
        ref = DeterminacyRaceDetector()
        run_program(prog, [vc, ref])
        assert vc.racy_locations == ref.racy_locations, seed


def test_clock_size_grows_with_live_tasks():
    """The paper's impracticality argument: clock width tracks the number
    of tasks ever live, not the processor count."""

    def prog(rt, mem):
        handles = [rt.future(lambda: None) for _ in range(32)]
        for h in handles:
            h.get()

    det = run(prog)
    # main joined 32 futures: its clock has one entry per task + itself
    assert det.max_clock_size >= 33
    assert det.total_clock_entries_copied >= 32


def test_copy_cost_grows_quadratically_with_joined_spawns():
    def cost(n):
        def prog(rt, mem):
            for _ in range(n):
                rt.future(lambda: None).get()

        det = run(prog)
        return det.total_clock_entries_copied

    c1, c2 = cost(10), cost(20)
    # joining k futures makes main's clock size ~k; each spawn copies it:
    # doubling n should roughly quadruple the copied entries.
    assert c2 > 3 * c1
