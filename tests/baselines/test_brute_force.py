"""Unit tests for the brute-force transitive-closure oracle."""

from repro import Runtime, SharedArray
from repro.baselines import BruteForceDetector
from repro.core.races import AccessKind


def run(builder, locs=4, **kwargs):
    det = BruteForceDetector(**kwargs)
    rt = Runtime(observers=[det])
    mem = SharedArray(rt, "x", locs)
    rt.run(lambda _rt: builder(rt, mem))
    return det


def test_detects_basic_race_post_mortem():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.write(0, 2))

    det = run(prog)
    assert det.racy_locations == {("x", 0)}
    assert det.races[0].kind is AccessKind.WRITE_WRITE
    assert det.closure is not None


def test_graph_and_pairs_exposed():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.write(0, 1))
            rt.async_(lambda: mem.read(0))
            rt.async_(lambda: mem.read(0))

    det = run(prog, max_pairs_per_loc=None)
    # write vs each read: two pairs (read-read is not a race)
    assert len(det.pairs) == 2
    assert det.graph.num_tasks == 4


def test_max_pairs_default_caps_at_one_per_loc():
    def prog(rt, mem):
        with rt.finish():
            for _ in range(4):
                rt.async_(lambda: mem.write(0, 1))
                rt.async_(lambda: mem.write(1, 1))

    det = run(prog)
    assert len(det.pairs) == 2  # one per racy location
    assert det.racy_locations == {("x", 0), ("x", 1)}


def test_race_free_program_clean():
    def prog(rt, mem):
        f = rt.future(lambda: mem.write(0, 1))
        f.get()
        mem.read(0)

    det = run(prog)
    assert not det.report.has_races
    assert det.racy_location_set() == frozenset()


def test_kind_classification_in_pairs():
    def prog(rt, mem):
        with rt.finish():
            rt.async_(lambda: mem.read(0))
            rt.async_(lambda: mem.write(0, 1))

    det = run(prog)
    assert det.races[0].kind is AccessKind.READ_WRITE
