"""NQueens — recursive async-finish search (BOTS-style extension workload).

Counts the solutions of the n-queens problem by spawning one async per
board extension down to a cutoff depth, each subtree reporting into its own
cell of a shared result array (the race-free reduction idiom: the parent
sums after its finish).  Every finish is owned by the task that spawned the
children, so the computation is *fully strict* — this is the workload that
lets SP-bags and Offset-Span labeling (the most restricted baselines) run
on something non-trivial.

``run_racy_counter`` is the textbook bug: all tasks increment one shared
counter instead; the detector (and every baseline) must flag it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.memory.shared import SharedArray, SharedVar
from repro.runtime.runtime import Runtime

__all__ = [
    "NQueensParams",
    "default_params",
    "serial",
    "run_af",
    "run_racy_counter",
    "verify",
    "KNOWN_SOLUTIONS",
]

#: Solution counts for boards 1..10 (OEIS A000170) — verification anchors.
KNOWN_SOLUTIONS = [1, 0, 0, 2, 10, 4, 40, 92, 352, 724]


@dataclass(frozen=True)
class NQueensParams:
    n: int = 6          #: board size
    cutoff: int = 2     #: spawn tasks down to this depth; sequential below


def default_params(scale: str = "small") -> NQueensParams:
    return {
        "tiny": NQueensParams(n=5, cutoff=1),
        "small": NQueensParams(n=6, cutoff=2),
        "table2": NQueensParams(n=8, cutoff=2),
        "large": NQueensParams(n=10, cutoff=3),
    }[scale]


def _safe(placement: Tuple[int, ...], col: int) -> bool:
    row = len(placement)
    for r, c in enumerate(placement):
        if c == col or abs(c - col) == row - r:
            return False
    return True


def _count_sequential(placement: Tuple[int, ...], n: int) -> int:
    if len(placement) == n:
        return 1
    total = 0
    for col in range(n):
        if _safe(placement, col):
            total += _count_sequential(placement + (col,), n)
    return total


def serial(params: NQueensParams) -> int:
    """Serial elision: plain recursive count."""
    return _count_sequential((), params.n)


def _slot_of(placement: Tuple[int, ...], n: int) -> int:
    """Deterministic slot id: position of the node in the full n-ary tree.

    Purely a function of the placement, so parallel tasks never coordinate
    on an allocator (a hidden allocator would itself be a logical race).
    """
    depth = len(placement)
    offset = sum(n ** k for k in range(depth))
    index = 0
    for col in placement:
        index = index * n + col
    return offset + index


def run_af(rt: Runtime, params: NQueensParams) -> int:
    """Fully strict async-finish parallel count.

    Each task owns a finish around the asyncs it spawns and a structurally
    addressed private slot in a shared results array; sums propagate up by
    the parent reading its children's slots after the finish — no shared
    cell is ever written by two parallel tasks.
    """
    n, cutoff = params.n, params.cutoff
    slots = SharedArray(rt, "partial", _max_tasks(n, cutoff))

    def explore(placement: Tuple[int, ...]) -> None:
        depth = len(placement)
        out_slot = _slot_of(placement, n)
        if depth >= cutoff:
            slots.write(out_slot, _count_sequential(placement, n))
            return
        children: List[Tuple[int, ...]] = []
        with rt.finish():
            for col in range(n):
                if _safe(placement, col):
                    child = placement + (col,)
                    children.append(child)
                    rt.async_(explore, child, name=f"nq{child}")
        total = sum(slots.read(_slot_of(c, n)) for c in children)
        slots.write(out_slot, total)

    explore(())
    return slots.read(_slot_of((), n))


def run_racy_counter(rt: Runtime, params: NQueensParams) -> int:
    """The bug everyone writes first: a single shared counter incremented
    by every parallel leaf."""
    n, cutoff = params.n, params.cutoff
    counter = SharedVar(rt, "solutions", 0)

    def explore(placement: Tuple[int, ...]) -> None:
        depth = len(placement)
        if depth >= cutoff:
            found = _count_sequential(placement, n)
            counter.write(counter.read() + found)  # racy read-modify-write
            return
        with rt.finish():
            for col in range(n):
                if _safe(placement, col):
                    rt.async_(explore, placement + (col,))

    explore(())
    return counter.read()


def _max_tasks(n: int, cutoff: int) -> int:
    total = 1
    width = 1
    for _ in range(cutoff):
        width *= n
        total += width
    return total


def verify(params: NQueensParams, result: int) -> None:
    expected = (
        KNOWN_SOLUTIONS[params.n - 1]
        if params.n <= len(KNOWN_SOLUTIONS)
        else serial(params)
    )
    assert result == expected, (result, expected)
