"""Strassen — recursive matrix multiplication with future tasks.

The paper translated the Kastors OpenMP ``strassen`` into futures: each of
the seven recursive products M1..M7 is a future task, and the four output
quadrants are combined by sibling tasks that ``get()`` the products they
need — non-tree joins, 33,612 of them in the paper's 1024×1024/cutoff-32
run.  We keep the identical task and synchronization structure at reduced
size.

Instrumentation granularity: the paper instruments every array-element
access (1.61B for Strassen).  At CPython speed we keep per-element
accounting but batch the arithmetic: an :class:`InstrumentedMatrix` records
one read per element consumed and one write per element produced while the
actual arithmetic runs vectorized in numpy — the detector sees the same
locations in the same order as a scalar implementation visiting elements
row-major.  Integer matrices make verification exact (Strassen over ℤ is
exact, so ``verify`` compares against ``A @ B`` with no tolerance).

Strassen recurrences (quadrant indexing ``[[11, 12], [21, 22]]``)::

    M1 = (A11 + A22)(B11 + B22)     C11 = M1 + M4 - M5 + M7
    M2 = (A21 + A22) B11            C12 = M3 + M5
    M3 = A11 (B12 - B22)            C21 = M2 + M4
    M4 = A22 (B21 - B11)            C22 = M1 - M2 + M3 + M6
    M5 = (A11 + A12) B22
    M6 = (A21 - A11)(B11 + B12)
    M7 = (A12 - A22)(B21 + B22)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.runtime.future import FutureHandle
from repro.runtime.runtime import Runtime

__all__ = [
    "StrassenParams",
    "default_params",
    "InstrumentedMatrix",
    "serial",
    "run_future",
    "verify",
]


@dataclass(frozen=True)
class StrassenParams:
    n: int = 32          #: matrix side, power of two (paper: 1024)
    cutoff: int = 16     #: direct-multiply threshold (paper: 32)
    seed: int = 3

    def __post_init__(self) -> None:
        if self.n & (self.n - 1) or self.cutoff & (self.cutoff - 1):
            raise ValueError("n and cutoff must be powers of two")
        if self.cutoff > self.n:
            raise ValueError("cutoff must not exceed n")


def default_params(scale: str = "small") -> StrassenParams:
    return {
        "tiny": StrassenParams(n=16, cutoff=8),
        "small": StrassenParams(n=32, cutoff=16),
        "table2": StrassenParams(n=64, cutoff=16),
        "large": StrassenParams(n=128, cutoff=16),
    }[scale]


def _inputs(params: StrassenParams) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(params.seed)
    a = rng.integers(-4, 5, size=(params.n, params.n)).astype(np.int64)
    b = rng.integers(-4, 5, size=(params.n, params.n)).astype(np.int64)
    return a, b


class InstrumentedMatrix:
    """A square int64 matrix whose loads/stores are recorded per element.

    ``load()`` records ``n*n`` reads and returns a defensive copy;
    ``store()`` records ``n*n`` writes.  Location keys are
    ``(name, i, j)`` — identical to what a scalar element-wise
    implementation would touch, in row-major order.
    """

    _ids = itertools.count()

    __slots__ = ("name", "data", "_record_read", "_record_write")

    def __init__(self, rt: Runtime, n: int, data: np.ndarray | None = None, name: str | None = None):
        self.name = name or f"mat{next(self._ids)}"
        self.data = np.zeros((n, n), dtype=np.int64) if data is None else data
        self._record_read = rt.record_read
        self._record_write = rt.record_write

    @property
    def n(self) -> int:
        return self.data.shape[0]

    def load(self) -> np.ndarray:
        rec, name = self._record_read, self.name
        n = self.n
        for i in range(n):
            for j in range(n):
                rec((name, i, j))
        return self.data.copy()

    def store(self, values: np.ndarray) -> None:
        rec, name = self._record_write, self.name
        n = self.n
        for i in range(n):
            for j in range(n):
                rec((name, i, j))
        self.data[:, :] = values

def _split(rt: Runtime, m: InstrumentedMatrix) -> List[List[InstrumentedMatrix]]:
    """Read ``m`` once (n*n recorded reads) and materialize its quadrants
    as fresh instrumented temporaries (n*n recorded writes total)."""
    full = m.load()
    h = m.n // 2
    quads = []
    for qi in range(2):
        row = []
        for qj in range(2):
            q = InstrumentedMatrix(rt, h)
            q.store(full[qi * h : (qi + 1) * h, qj * h : (qj + 1) * h])
            row.append(q)
        quads.append(row)
    return quads


def serial(params: StrassenParams) -> np.ndarray:
    """Serial elision: exact integer product via numpy."""
    a, b = _inputs(params)
    return a @ b


def run_future(rt: Runtime, params: StrassenParams) -> InstrumentedMatrix:
    """Future-parallel Strassen (Table 2 row *Strassen*)."""
    a_in, b_in = _inputs(params)
    a = InstrumentedMatrix(rt, params.n, a_in.copy(), name="A")
    b = InstrumentedMatrix(rt, params.n, b_in.copy(), name="B")
    c = InstrumentedMatrix(rt, params.n, name="C")
    _strassen(rt, a, b, c, params.cutoff)
    return c


def _strassen(
    rt: Runtime,
    a: InstrumentedMatrix,
    b: InstrumentedMatrix,
    c: InstrumentedMatrix,
    cutoff: int,
) -> None:
    """Multiply ``a @ b`` into ``c``; spawns futures below the cutoff."""
    n = a.n
    if n <= cutoff:
        c.store(a.load() @ b.load())
        return
    h = n // 2
    aq = _split(rt, a)
    bq = _split(rt, b)

    def product(
        left: Callable[[], np.ndarray], right: Callable[[], np.ndarray]
    ) -> Callable[[], InstrumentedMatrix]:
        """Body for an M_i future: evaluate the operand sums (instrumented
        reads), recurse, and return the result matrix."""

        def body() -> InstrumentedMatrix:
            la = InstrumentedMatrix(rt, h)
            la.store(left())
            rb = InstrumentedMatrix(rt, h)
            rb.store(right())
            out = InstrumentedMatrix(rt, h)
            _strassen(rt, la, rb, out, cutoff)
            return out

        return body

    a11, a12 = aq[0]
    a21, a22 = aq[1]
    b11, b12 = bq[0]
    b21, b22 = bq[1]

    m: List[FutureHandle] = [
        rt.future(product(lambda: a11.load() + a22.load(),
                          lambda: b11.load() + b22.load()), name="M1"),
        rt.future(product(lambda: a21.load() + a22.load(),
                          lambda: b11.load()), name="M2"),
        rt.future(product(lambda: a11.load(),
                          lambda: b12.load() - b22.load()), name="M3"),
        rt.future(product(lambda: a22.load(),
                          lambda: b21.load() - b11.load()), name="M4"),
        rt.future(product(lambda: a11.load() + a12.load(),
                          lambda: b22.load()), name="M5"),
        rt.future(product(lambda: a21.load() - a11.load(),
                          lambda: b11.load() + b12.load()), name="M6"),
        rt.future(product(lambda: a12.load() - a22.load(),
                          lambda: b21.load() + b22.load()), name="M7"),
    ]

    def combine(expr: Callable[[], np.ndarray], deps: Tuple[int, ...]):
        """Body for a C-quadrant future: join the products it consumes
        (sibling gets → non-tree joins), then evaluate."""

        def body() -> np.ndarray:
            for idx in deps:
                m[idx].get()
            return expr()

        return body

    quads = [
        rt.future(
            combine(
                lambda: m[0].task.value.load() + m[3].task.value.load()
                - m[4].task.value.load() + m[6].task.value.load(),
                (0, 3, 4, 6),
            ),
            name="C11",
        ),
        rt.future(
            combine(
                lambda: m[2].task.value.load() + m[4].task.value.load(),
                (2, 4),
            ),
            name="C12",
        ),
        rt.future(
            combine(
                lambda: m[1].task.value.load() + m[3].task.value.load(),
                (1, 3),
            ),
            name="C21",
        ),
        rt.future(
            combine(
                lambda: m[0].task.value.load() - m[1].task.value.load()
                + m[2].task.value.load() + m[5].task.value.load(),
                (0, 1, 2, 5),
            ),
            name="C22",
        ),
    ]
    out = np.zeros((n, n), dtype=np.int64)
    parts = [q.get() for q in quads]  # tree joins by the spawning task
    out[:h, :h] = parts[0]
    out[:h, h:] = parts[1]
    out[h:, :h] = parts[2]
    out[h:, h:] = parts[3]
    c.store(out)


def verify(params: StrassenParams, result: InstrumentedMatrix) -> None:
    expected = serial(params)
    if not np.array_equal(result.data, expected):
        raise AssertionError("Strassen product mismatch")
