"""SOR — red-black successive over-relaxation (JGF section 2 kernel).

An *extension* workload (not a Table 2 row): the classic red-black
Gauss-Seidel sweep is the canonical example of a data-parallel kernel whose
correctness depends on the coloring — all same-color updates are
independent, while touching a neighbor of the same color races.  That makes
it a sharp test for the detector:

* ``run_af`` / ``run_future`` — correct red-black versions (async-finish
  barriers vs. dependence-driven futures over row blocks);
* ``run_unsynchronized`` — the classic bug: both colors in one parallel
  phase, which the detector must flag on the boundary rows.

Update rule (JGF): ``G[i][j] += omega/4 * (up + down + left + right - 4*G[i][j])``
written as ``G[i][j] = (1-omega)*G[i][j] + omega/4 * (neighbors)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.memory.shared import SharedNDArray
from repro.runtime.depends import DependsTaskGroup
from repro.runtime.runtime import Runtime

__all__ = [
    "SORParams",
    "default_params",
    "serial",
    "run_af",
    "run_future",
    "run_unsynchronized",
    "verify",
]


@dataclass(frozen=True)
class SORParams:
    interior: int = 16     #: interior rows/cols (JGF Size C: 2000)
    rows_per_task: int = 4
    sweeps: int = 2
    omega: float = 1.25
    seed: int = 23

    def __post_init__(self) -> None:
        if self.interior % self.rows_per_task:
            raise ValueError("rows_per_task must divide interior")

    @property
    def n(self) -> int:
        return self.interior + 2


def default_params(scale: str = "small") -> SORParams:
    return {
        "tiny": SORParams(interior=8, rows_per_task=4, sweeps=1),
        "small": SORParams(interior=16, rows_per_task=4, sweeps=2),
        "table2": SORParams(interior=32, rows_per_task=8, sweeps=4),
        "large": SORParams(interior=96, rows_per_task=8, sweeps=8),
    }[scale]


def _initial_grid(params: SORParams) -> np.ndarray:
    rng = np.random.default_rng(params.seed)
    return rng.random((params.n, params.n))


def serial(params: SORParams) -> np.ndarray:
    """Serial elision: red phase then black phase per sweep."""
    g = _initial_grid(params)
    omega = params.omega
    for _ in range(params.sweeps):
        for color in (0, 1):
            for i in range(1, params.n - 1):
                start = 1 + ((i + color) & 1)
                for j in range(start, params.n - 1, 2):
                    g[i, j] = (1.0 - omega) * g[i, j] + 0.25 * omega * (
                        g[i - 1, j] + g[i + 1, j] + g[i, j - 1] + g[i, j + 1]
                    )
    return g


def _relax_rows(
    g: SharedNDArray, omega: float, n: int, r0: int, r1: int, color: int
) -> None:
    """One color's updates for rows [r0, r1): 4 reads + 1 read + 1 write
    per updated cell (instrumented)."""
    read, write = g.read, g.write
    for i in range(r0, r1):
        start = 1 + ((i + color) & 1)
        for j in range(start, n - 1, 2):
            old = read((i, j))
            new = (1.0 - omega) * old + 0.25 * omega * (
                read((i - 1, j)) + read((i + 1, j))
                + read((i, j - 1)) + read((i, j + 1))
            )
            write((i, j), new)


def _row_blocks(params: SORParams) -> List[Tuple[int, int]]:
    return [
        (1 + b * params.rows_per_task, 1 + (b + 1) * params.rows_per_task)
        for b in range(params.interior // params.rows_per_task)
    ]


def run_af(rt: Runtime, params: SORParams) -> SharedNDArray:
    """Barrier between colors and sweeps (the JGF structure)."""
    g = SharedNDArray(rt, "G", _initial_grid(params))
    blocks = _row_blocks(params)
    for _ in range(params.sweeps):
        for color in (0, 1):
            with rt.finish():
                for r0, r1 in blocks:
                    rt.async_(_relax_rows, g, params.omega, params.n, r0, r1, color)
    return g


def run_future(rt: Runtime, params: SORParams) -> SharedNDArray:
    """Dependence-driven version: a block's phase waits only for its own
    and neighboring blocks' previous phases (point-to-point, non-tree
    joins) instead of a full barrier.

    Dependence keys are *color-aware* (``("red", b)`` / ``("black", b)``):
    a red update reads only black neighbors plus its own old red values,
    so declaring color-blind per-block keys would manufacture spurious
    same-phase anti-dependences that serialize the blocks — the declared
    dependences, not the detector, would destroy the parallelism.  (The
    color-blind variant is kept in the test suite as a cautionary
    measurement: still race-free, three times the critical path.)
    """
    g = SharedNDArray(rt, "G", _initial_grid(params))
    group = DependsTaskGroup(rt)
    blocks = _row_blocks(params)
    nblocks = len(blocks)
    names = ("red", "black")
    for sweep in range(params.sweeps):
        for color in (0, 1):
            own, other = names[color], names[1 - color]
            for b, (r0, r1) in enumerate(blocks):
                reads = [(other, nb) for nb in (b - 1, b, b + 1)
                         if 0 <= nb < nblocks]
                group.task(
                    _relax_rows, g, params.omega, params.n, r0, r1, color,
                    in_=reads,
                    inout=[(own, b)],
                    name=f"sor[s{sweep}{own}{b}]",
                )
    group.wait_all()
    return g


def run_unsynchronized(rt: Runtime, params: SORParams) -> SharedNDArray:
    """The bug: both colors of a sweep in ONE parallel phase.  Same-color
    blocks are still independent, but red reads black's in-flight writes on
    shared rows — the detector must report races."""
    g = SharedNDArray(rt, "G", _initial_grid(params))
    blocks = _row_blocks(params)
    for _ in range(params.sweeps):
        with rt.finish():
            for color in (0, 1):
                for r0, r1 in blocks:
                    rt.async_(_relax_rows, g, params.omega, params.n, r0, r1, color)
    return g


def verify(params: SORParams, result: SharedNDArray) -> None:
    expected = serial(params)
    if not np.allclose(result.data, expected, rtol=1e-12, atol=1e-12):
        raise AssertionError("SOR mismatch vs serial elision")
