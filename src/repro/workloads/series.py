"""Series — Fourier coefficient analysis (JGF section 2 benchmark).

Computes the first ``n`` pairs of Fourier coefficients of
``f(x) = (x + 1)^x`` on ``[0, 2]`` by composite trapezoidal integration,
exactly as the Java Grande Forum *Series* benchmark does.  The paper runs
JGF Size C (1,000,000 coefficient pairs); we scale ``n`` down but keep the
structure: one task per coefficient pair, each dominated by a
transcendental-heavy integration loop with only a handful of shared-memory
accesses — which is why the paper measures a 1.00× race-detection slowdown
for both variants (huge work per access amortizes the detector).

Variants (Table 2 rows *Series-af* and *Series-future*):

* ``run_af``     — ``finish { for i: async { compute pair i } }``;
* ``run_future`` — one future per pair, the **handle stored into a shared
  array cell and read back** before ``get()``.  Those handle cells are the
  "additional writes and reads of future references … stored in shared
  (heap) locations" that make ``#SharedMem(Series-future) −
  #SharedMem(Series-af) ≈ 2 × #Tasks`` in the paper's Section 5 analysis.

Every get here is performed by the task that created the future, so all
joins are tree joins: ``#NTJoins = 0`` for both variants, as in Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.memory.shared import SharedArray
from repro.runtime.runtime import Runtime

__all__ = ["SeriesParams", "default_params", "serial", "run_af", "run_future", "verify"]


@dataclass(frozen=True)
class SeriesParams:
    n: int = 128            #: number of coefficient pairs (JGF Size C: 1e6)
    intervals: int = 100    #: trapezoid intervals per integration


def default_params(scale: str = "small") -> SeriesParams:
    return {
        "tiny": SeriesParams(n=16, intervals=24),
        "small": SeriesParams(n=128, intervals=100),
        "table2": SeriesParams(n=1000, intervals=200),
        "large": SeriesParams(n=8000, intervals=200),
    }[scale]


def _f(x: float, mode: int, k: int) -> float:
    """JGF ``thefunction``: the integrand for a0 (mode 0), a_k (1), b_k (2)."""
    base = (x + 1.0) ** x
    if mode == 0:
        return base
    omega = math.pi * k * x  # period 2 -> omega_k = k*pi
    if mode == 1:
        return base * math.cos(omega)
    return base * math.sin(omega)


def _trapezoid(mode: int, k: int, intervals: int) -> float:
    """Composite trapezoid integral of the selected integrand over [0, 2]."""
    dx = 2.0 / intervals
    total = 0.5 * (_f(0.0, mode, k) + _f(2.0, mode, k))
    x = dx
    for _ in range(intervals - 1):
        total += _f(x, mode, k)
        x += dx
    return total * dx


def _pair(k: int, intervals: int) -> Tuple[float, float]:
    """The k-th coefficient pair (a_k, b_k); pair 0 is (a_0/2, 0)."""
    if k == 0:
        return _trapezoid(0, 0, intervals) / 2.0, 0.0
    return _trapezoid(1, k, intervals), _trapezoid(2, k, intervals)


# ---------------------------------------------------------------------- #
def serial(params: SeriesParams) -> List[Tuple[float, float]]:
    """Serial elision: plain loop, no instrumentation."""
    return [_pair(k, params.intervals) for k in range(params.n)]


def run_af(rt: Runtime, params: SeriesParams) -> SharedArray:
    """Async-finish variant (Table 2 row *Series-af*)."""
    coeffs = SharedArray(rt, "coeffs", 2 * params.n)
    intervals = params.intervals

    def compute(k: int) -> None:
        a, b = _pair(k, intervals)
        coeffs.write(2 * k, a)
        coeffs.write(2 * k + 1, b)

    with rt.finish():
        for k in range(params.n):
            rt.async_(compute, k)
    return coeffs


def run_future(rt: Runtime, params: SeriesParams) -> SharedArray:
    """Future variant (Table 2 row *Series-future*).

    Handles pass through shared cells (one write at creation + one read at
    join per task — the paper's lower bound on the extra accesses).
    """
    coeffs = SharedArray(rt, "coeffs", 2 * params.n)
    handles = SharedArray(rt, "handles", params.n)
    intervals = params.intervals

    def compute(k: int) -> None:
        a, b = _pair(k, intervals)
        coeffs.write(2 * k, a)
        coeffs.write(2 * k + 1, b)

    for k in range(params.n):
        handles.write(k, rt.future(compute, k))
    for k in range(params.n):
        handles.read(k).get()
    return coeffs


def verify(params: SeriesParams, coeffs: SharedArray) -> None:
    """Check the instrumented result against the serial elision."""
    expected = serial(params)
    for k, (a, b) in enumerate(expected):
        got_a = coeffs.peek(2 * k)
        got_b = coeffs.peek(2 * k + 1)
        assert math.isclose(got_a, a, rel_tol=1e-12, abs_tol=1e-12), (k, got_a, a)
        assert math.isclose(got_b, b, rel_tol=1e-12, abs_tol=1e-12), (k, got_b, b)
