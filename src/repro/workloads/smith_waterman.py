"""Smith-Waterman — local sequence alignment with a future wavefront.

The paper's benchmark ("based on a programming project in COMP322"):
"Sequence alignment of two sequences … The alignment matrix computation is
done by 40×40 future tasks."  Each tile of the dynamic-programming matrix
is one future task that joins its north, west and north-west neighbor
tiles — all sibling joins, so Smith-Waterman is the most non-tree-join
dense row of Table 2 relative to its task count (4,641 NT joins over 1,608
tasks) and shows the largest slowdown (9.92×, driven by its 1.65B shared
accesses: 3 reads + 1 write per DP cell).

Scoring is classic local alignment::

    H[i][j] = max(0,
                  H[i-1][j-1] + (match if x[i]==y[j] else mismatch),
                  H[i-1][j]   + gap,
                  H[i][j-1]   + gap)

Tile handles are published in an instrumented
:class:`~repro.memory.shared.SharedMatrix` by the main task before any
consumer is spawned, so the handle cells themselves are race-free — the
disciplined version of the Appendix A reference-flow pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.memory.shared import SharedMatrix, SharedNDArray
from repro.runtime.runtime import Runtime

__all__ = ["SWParams", "default_params", "serial", "run_future", "verify"]

_ALPHABET = "ACGT"


@dataclass(frozen=True)
class SWParams:
    length: int = 64       #: both sequence lengths (paper: 10,000)
    tile: int = 16         #: tile side (paper: 250 → 40×40 tiles)
    match: int = 2
    mismatch: int = -1
    gap: int = -1
    seed: int = 11

    def __post_init__(self) -> None:
        if self.length % self.tile:
            raise ValueError("tile must divide length")

    @property
    def tiles(self) -> int:
        return self.length // self.tile


def default_params(scale: str = "small") -> SWParams:
    return {
        "tiny": SWParams(length=16, tile=8),
        "small": SWParams(length=64, tile=16),
        "table2": SWParams(length=160, tile=20),
        "large": SWParams(length=480, tile=24),
    }[scale]


def _sequences(params: SWParams) -> Tuple[str, str]:
    rng = np.random.default_rng(params.seed)
    x = "".join(_ALPHABET[i] for i in rng.integers(0, 4, params.length))
    y = "".join(_ALPHABET[i] for i in rng.integers(0, 4, params.length))
    return x, y


def serial(params: SWParams) -> np.ndarray:
    """Serial elision: the full (length+1)^2 DP matrix, uninstrumented."""
    x, y = _sequences(params)
    n = params.length
    h = np.zeros((n + 1, n + 1), dtype=np.int64)
    for i in range(1, n + 1):
        xi = x[i - 1]
        for j in range(1, n + 1):
            diag = h[i - 1, j - 1] + (
                params.match if xi == y[j - 1] else params.mismatch
            )
            best = diag
            up = h[i - 1, j] + params.gap
            if up > best:
                best = up
            left = h[i, j - 1] + params.gap
            if left > best:
                best = left
            h[i, j] = best if best > 0 else 0
    return h


def _compute_tile(
    h: SharedNDArray,
    x: str,
    y: str,
    params: SWParams,
    r0: int,
    c0: int,
) -> int:
    """Fill tile [r0, r0+T) × [c0, c0+T) of the DP matrix (1-based cells).

    3 instrumented reads + 1 instrumented write per cell; returns the tile's
    max score (so futures carry a value, like the course project).
    """
    read, write = h.read, h.write
    match, mismatch, gap = params.match, params.mismatch, params.gap
    t = params.tile
    best_in_tile = 0
    for i in range(r0, r0 + t):
        xi = x[i - 1]
        for j in range(c0, c0 + t):
            diag = read((i - 1, j - 1)) + (match if xi == y[j - 1] else mismatch)
            up = read((i - 1, j)) + gap
            left = read((i, j - 1)) + gap
            best = diag
            if up > best:
                best = up
            if left > best:
                best = left
            if best < 0:
                best = 0
            write((i, j), best)
            if best > best_in_tile:
                best_in_tile = best
    return best_in_tile


def run_future(rt: Runtime, params: SWParams) -> Tuple[SharedNDArray, int]:
    """Wavefront of tile futures (Table 2 row *Smith-Waterman*).

    Main publishes each tile's handle into a shared handle matrix; each
    tile task reads and joins its NW/N/W neighbors — non-tree joins, three
    per interior tile.
    """
    x, y = _sequences(params)
    n = params.length
    h = SharedNDArray(rt, "H", np.zeros((n + 1, n + 1), dtype=np.int64))
    tiles = params.tiles
    handles = SharedMatrix(rt, "tile_handles", tiles, tiles)

    def tile_body(bi: int, bj: int) -> int:
        for di, dj in ((-1, -1), (-1, 0), (0, -1)):
            ni, nj = bi + di, bj + dj
            if 0 <= ni and 0 <= nj:
                handles.read(ni, nj).get()
        return _compute_tile(
            h, x, y, params, 1 + bi * params.tile, 1 + bj * params.tile
        )

    for bi in range(tiles):
        for bj in range(tiles):
            handle = rt.future(tile_body, bi, bj, name=f"sw({bi},{bj})")
            handles.write(bi, bj, handle)
    best = 0
    for bi in range(tiles):
        for bj in range(tiles):
            score = handles.read(bi, bj).get()
            if score > best:
                best = score
    return h, best


def verify(params: SWParams, result: Tuple[SharedNDArray, int]) -> None:
    h, best = result
    expected = serial(params)
    if not np.array_equal(h.data, expected):
        raise AssertionError("Smith-Waterman DP matrix mismatch")
    assert best == int(expected.max()), (best, int(expected.max()))
