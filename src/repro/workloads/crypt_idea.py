"""Crypt — IDEA encryption (JGF section 2 benchmark), implemented in full.

The International Data Encryption Algorithm operates on 64-bit blocks with
a 128-bit key expanded into 52 16-bit subkeys (8.5 rounds of multiply mod
2^16+1, add mod 2^16, xor).  The JGF benchmark encrypts a byte array, then
decrypts it with the inverse key schedule and checks it round-trips; the
parallel versions split the array into chunks, one task per chunk.

This module is a from-scratch IDEA: key schedule (25-bit rotations),
decryption schedule (multiplicative inverses mod 65537, additive inverses
mod 65536), and the block function — validated against the round-trip
property and algebraic identities in ``tests/workloads/test_crypt.py``.

Table 2 characteristics reproduced here:

* one task per chunk, *lots* of instrumented byte accesses per task with
  little arithmetic between them — the low work-per-access ratio that gives
  Crypt the highest slowdowns among the async-finish rows (7.77×/8.26×);
* ``run_future`` stores handles in shared cells (two extra accesses per
  task — the paper's #SharedMem delta "exactly matches the lower bound of
  2 x 12,500,000"), and a shared read-only config cell is read by every
  task: parallel future readers all stay in its shadow reader set while
  async readers keep a single representative (the paper's "#AvgReaders is
  higher, because of the presence of future tasks");
* all joins are parent joins → ``#NTJoins = 0`` for both variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.memory.shared import SharedArray, SharedVar
from repro.runtime.runtime import Runtime

__all__ = [
    "CryptParams",
    "default_params",
    "key_schedule",
    "inverse_key_schedule",
    "encrypt_block",
    "serial",
    "run_af",
    "run_future",
    "verify",
]


@dataclass(frozen=True)
class CryptParams:
    num_blocks: int = 256    #: 8-byte blocks (JGF Size C: 6,250,000)
    num_chunks: int = 32     #: tasks per phase
    key_seed: int = 0x2B7E151628AED2A6

    @property
    def num_bytes(self) -> int:
        return self.num_blocks * 8


def default_params(scale: str = "small") -> CryptParams:
    return {
        "tiny": CryptParams(num_blocks=32, num_chunks=8),
        "small": CryptParams(num_blocks=256, num_chunks=32),
        "table2": CryptParams(num_blocks=2048, num_chunks=128),
        "large": CryptParams(num_blocks=16384, num_chunks=512),
    }[scale]


# ---------------------------------------------------------------------- #
# IDEA primitives                                                        #
# ---------------------------------------------------------------------- #
def _mul(a: int, b: int) -> int:
    """IDEA multiplication: multiply in GF(2^16 + 1) with 0 meaning 2^16."""
    if a == 0:
        a = 0x10000
    if b == 0:
        b = 0x10000
    return (a * b) % 0x10001 & 0xFFFF


def _mul_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^16 + 1), with the 0 ≡ 2^16 encoding."""
    if a == 0:
        a = 0x10000
    return pow(a, 0x10001 - 2, 0x10001) & 0xFFFF


def _add_inv(a: int) -> int:
    """Additive inverse mod 2^16."""
    return (-a) & 0xFFFF


def key_schedule(key128: int) -> List[int]:
    """Expand a 128-bit key into the 52 encryption subkeys.

    Standard IDEA schedule: take the key as eight 16-bit words, then
    repeatedly rotate the whole 128-bit value left by 25 bits and take the
    next eight words, until 52 are produced.
    """
    key128 &= (1 << 128) - 1
    subkeys: List[int] = []
    value = key128
    while len(subkeys) < 52:
        for i in range(8):
            if len(subkeys) == 52:
                break
            shift = 112 - 16 * i
            subkeys.append((value >> shift) & 0xFFFF)
        value = ((value << 25) | (value >> (128 - 25))) & ((1 << 128) - 1)
    return subkeys


def inverse_key_schedule(enc: Sequence[int]) -> List[int]:
    """Derive the 52 decryption subkeys from the encryption subkeys."""
    dec = [0] * 52
    # Output transformation of decryption = inverse of round 9 input.
    dec[0] = _mul_inv(enc[48])
    dec[1] = _add_inv(enc[49])
    dec[2] = _add_inv(enc[50])
    dec[3] = _mul_inv(enc[51])
    dec[4] = enc[46]
    dec[5] = enc[47]
    for r in range(1, 8):
        e = 48 - 6 * r  # start of the source round's keys
        d = 6 * r
        dec[d] = _mul_inv(enc[e])
        # Middle rounds swap the two addition keys.
        dec[d + 1] = _add_inv(enc[e + 2])
        dec[d + 2] = _add_inv(enc[e + 1])
        dec[d + 3] = _mul_inv(enc[e + 3])
        dec[d + 4] = enc[e - 2]
        dec[d + 5] = enc[e - 1]
    dec[48] = _mul_inv(enc[0])
    dec[49] = _add_inv(enc[1])
    dec[50] = _add_inv(enc[2])
    dec[51] = _mul_inv(enc[3])
    return dec


def encrypt_block(block: Tuple[int, int, int, int], keys: Sequence[int]):
    """Encrypt one 64-bit block (four 16-bit words) with 52 subkeys.

    Decryption is the same function with the inverse schedule.
    """
    x1, x2, x3, x4 = block
    k = 0
    for _ in range(8):
        x1 = _mul(x1, keys[k])
        x2 = (x2 + keys[k + 1]) & 0xFFFF
        x3 = (x3 + keys[k + 2]) & 0xFFFF
        x4 = _mul(x4, keys[k + 3])
        t1 = x1 ^ x3
        t2 = x2 ^ x4
        t1 = _mul(t1, keys[k + 4])
        t2 = (t2 + t1) & 0xFFFF
        t2 = _mul(t2, keys[k + 5])
        t1 = (t1 + t2) & 0xFFFF
        x1 ^= t2
        x3 ^= t2
        x2 ^= t1
        x4 ^= t1
        x2, x3 = x3, x2
        k += 6
    y1 = _mul(x1, keys[48])
    y2 = (x3 + keys[49]) & 0xFFFF  # the final swap is undone here
    y3 = (x2 + keys[50]) & 0xFFFF
    y4 = _mul(x4, keys[51])
    return y1, y2, y3, y4


def _make_plaintext(params: CryptParams) -> List[int]:
    """Deterministic pseudo-random plaintext bytes (JGF uses a fixed seed)."""
    out: List[int] = []
    state = params.key_seed & 0xFFFFFFFF or 1
    for _ in range(params.num_bytes):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        out.append(state & 0xFF)
    return out


def _crypt_list(data: Sequence[int], keys: Sequence[int]) -> List[int]:
    """Encrypt/decrypt a byte list block by block (serial helper)."""
    out = [0] * len(data)
    for b in range(len(data) // 8):
        o = 8 * b
        words = tuple(
            (data[o + 2 * w] << 8) | data[o + 2 * w + 1] for w in range(4)
        )
        y = encrypt_block(words, keys)
        for w in range(4):
            out[o + 2 * w] = (y[w] >> 8) & 0xFF
            out[o + 2 * w + 1] = y[w] & 0xFF
    return out


# ---------------------------------------------------------------------- #
@dataclass
class CryptResult:
    plaintext: List[int]
    ciphertext: List[int]
    roundtrip: List[int]


def serial(params: CryptParams) -> CryptResult:
    """Serial elision: encrypt then decrypt, uninstrumented."""
    enc = key_schedule(params.key_seed | (params.key_seed << 64))
    dec = inverse_key_schedule(enc)
    plain = _make_plaintext(params)
    cipher = _crypt_list(plain, enc)
    round_ = _crypt_list(cipher, dec)
    return CryptResult(plaintext=plain, ciphertext=cipher, roundtrip=round_)


def _chunks(num_blocks: int, num_chunks: int) -> List[Tuple[int, int]]:
    """Split block indices into ``num_chunks`` contiguous ranges."""
    per = (num_blocks + num_chunks - 1) // num_chunks
    return [
        (lo, min(lo + per, num_blocks)) for lo in range(0, num_blocks, per)
    ]


def _crypt_chunk(
    src: SharedArray,
    dst: SharedArray,
    keys: Sequence[int],
    rounds_cfg,
    lo: int,
    hi: int,
) -> None:
    """Encrypt blocks [lo, hi) reading/writing through instrumented arrays.

    Key subkeys are task arguments (value semantics) — this matches the
    paper's accounting, where the *only* extra shared accesses of the
    future variant are the two per handle (the measured delta "exactly
    matches the lower bound of 2 x 12,500,000").  One shared read-only
    config cell is read per chunk: with async tasks at most one reader is
    retained for it, while parallel future tasks all stay in its shadow
    reader set — the effect behind the paper's "the average number of
    readers stored in the shadow memory is higher, because of the presence
    of future tasks", at O(chunks) instead of O(tasks x keys) cost.
    """
    local_keys = list(keys)
    rounds_cfg.read()  # shared config: populates the multi-reader cell
    for b in range(lo, hi):
        o = 8 * b
        raw = [src.read(o + i) for i in range(8)]
        words = tuple((raw[2 * w] << 8) | raw[2 * w + 1] for w in range(4))
        y = encrypt_block(words, local_keys)
        for w in range(4):
            dst.write(o + 2 * w, (y[w] >> 8) & 0xFF)
            dst.write(o + 2 * w + 1, y[w] & 0xFF)


def _setup_shared(rt: Runtime, params: CryptParams):
    enc = key_schedule(params.key_seed | (params.key_seed << 64))
    dec = inverse_key_schedule(enc)
    plain_list = _make_plaintext(params)
    plain = SharedArray(rt, "plain", plain_list)
    cipher = SharedArray(rt, "cipher", params.num_bytes)
    round_ = SharedArray(rt, "round", params.num_bytes)
    rounds_cfg = SharedVar(rt, "rounds_cfg", 8)
    return plain, cipher, round_, enc, dec, rounds_cfg


def run_af(rt: Runtime, params: CryptParams) -> CryptResult:
    """Async-finish variant (Table 2 row *Crypt-af*)."""
    plain, cipher, round_, enc, dec, cfg = _setup_shared(rt, params)
    ranges = _chunks(params.num_blocks, params.num_chunks)
    with rt.finish():
        for lo, hi in ranges:
            rt.async_(_crypt_chunk, plain, cipher, enc, cfg, lo, hi)
    with rt.finish():
        for lo, hi in ranges:
            rt.async_(_crypt_chunk, cipher, round_, dec, cfg, lo, hi)
    return CryptResult(
        plaintext=plain.to_list(),
        ciphertext=cipher.to_list(),
        roundtrip=round_.to_list(),
    )


def run_future(rt: Runtime, params: CryptParams) -> CryptResult:
    """Future variant (Table 2 row *Crypt-future*): handles through shared
    cells, joined by the creating task."""
    plain, cipher, round_, enc, dec, cfg = _setup_shared(rt, params)
    ranges = _chunks(params.num_blocks, params.num_chunks)
    handles = SharedArray(rt, "handles", 2 * len(ranges))
    for i, (lo, hi) in enumerate(ranges):
        handles.write(i, rt.future(_crypt_chunk, plain, cipher, enc, cfg, lo, hi))
    for i in range(len(ranges)):
        handles.read(i).get()
    n = len(ranges)
    for i, (lo, hi) in enumerate(ranges):
        handles.write(n + i, rt.future(_crypt_chunk, cipher, round_, dec, cfg, lo, hi))
    for i in range(len(ranges)):
        handles.read(n + i).get()
    return CryptResult(
        plaintext=plain.to_list(),
        ciphertext=cipher.to_list(),
        roundtrip=round_.to_list(),
    )


def verify(params: CryptParams, result: CryptResult) -> None:
    """Round-trip must restore the plaintext and match the serial elision."""
    assert result.roundtrip == result.plaintext, "IDEA round-trip failed"
    expected = serial(params)
    assert result.ciphertext == expected.ciphertext, "ciphertext mismatch"
