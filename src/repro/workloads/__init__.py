"""The Table 2 benchmark workloads (Section 5) plus extension kernels."""

from repro.workloads import (
    crypt_idea,
    jacobi,
    lufact,
    nqueens,
    reduce_tree,
    series,
    smith_waterman,
    sor,
    strassen,
)

__all__ = [
    "series",
    "crypt_idea",
    "jacobi",
    "smith_waterman",
    "strassen",
    "sor",
    "lufact",
    "nqueens",
    "reduce_tree",
]
