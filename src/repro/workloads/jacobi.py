"""Jacobi — 2-D 5-point stencil with dependence-driven tile tasks.

The paper translated the Kastors OpenMP-4.0 ``jacobi`` benchmark (tasks with
``depends`` clauses) into futures: "get() operations used to synchronize
with previously data dependent tasks.  In general, this kind of task
dependences cannot be represented using only async-finish constructs
without loss of parallelism."

We reproduce both sides of that comparison:

* ``run_future`` — the paper's Table 2 row: tiles are tasks submitted
  through :class:`~repro.runtime.depends.DependsTaskGroup`; a tile task for
  sweep ``t`` waits (inside the task, via ``get``) on the sweep ``t-1``
  producers of its own and neighboring tiles → sibling-to-sibling joins,
  i.e. **non-tree joins**, in numbers growing with tiles × sweeps.
* ``run_af`` — the lossy async-finish rendering (a full barrier per sweep),
  used by the detector-comparison benchmark since ESP-bags can handle it.

The grid ping-pongs between two instrumented arrays; every interior element
update performs 4 instrumented reads + 1 instrumented write, matching the
per-element accounting behind the paper's 641M #SharedMem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.memory.shared import SharedNDArray
from repro.runtime.depends import DependsTaskGroup
from repro.runtime.runtime import Runtime

__all__ = ["JacobiParams", "default_params", "serial", "run_af", "run_future", "verify"]


@dataclass(frozen=True)
class JacobiParams:
    interior: int = 32   #: interior cells per side (paper: 2048 total grid)
    tile: int = 8        #: tile side (paper: 64)
    sweeps: int = 4      #: Jacobi iterations
    seed: int = 7

    def __post_init__(self) -> None:
        if self.interior % self.tile:
            raise ValueError("tile must divide interior")

    @property
    def n(self) -> int:
        """Full grid side including the fixed boundary."""
        return self.interior + 2

    @property
    def tiles_per_side(self) -> int:
        return self.interior // self.tile


def default_params(scale: str = "small") -> JacobiParams:
    return {
        "tiny": JacobiParams(interior=8, tile=4, sweeps=2),
        "small": JacobiParams(interior=32, tile=8, sweeps=4),
        "table2": JacobiParams(interior=64, tile=16, sweeps=4),
        # ~1.1M shared accesses — the throughput-benchmark stream.
        "large": JacobiParams(interior=192, tile=32, sweeps=6),
    }[scale]


def _initial_grid(params: JacobiParams) -> np.ndarray:
    rng = np.random.default_rng(params.seed)
    grid = rng.random((params.n, params.n))
    return grid


def serial(params: JacobiParams) -> np.ndarray:
    """Serial elision: vectorized sweeps with the same evaluation order."""
    u = _initial_grid(params)
    v = u.copy()
    for _ in range(params.sweeps):
        v[1:-1, 1:-1] = 0.25 * (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
        )
        u, v = v, u
    return u


def _compute_tile(
    src: SharedNDArray, dst: SharedNDArray, r0: int, r1: int, c0: int, c1: int
) -> None:
    """Per-element instrumented stencil update of one tile."""
    read, write = src.read, dst.write
    for i in range(r0, r1):
        for j in range(c0, c1):
            up = read((i - 1, j))
            down = read((i + 1, j))
            left = read((i, j - 1))
            right = read((i, j + 1))
            write((i, j), 0.25 * (up + down + left + right))


def _tile_ranges(params: JacobiParams) -> List[Tuple[int, int, int, int]]:
    t = params.tile
    out = []
    for bi in range(params.tiles_per_side):
        for bj in range(params.tiles_per_side):
            out.append((1 + bi * t, 1 + (bi + 1) * t, 1 + bj * t, 1 + (bj + 1) * t))
    return out


def _setup(rt: Runtime, params: JacobiParams):
    u = SharedNDArray(rt, "u", _initial_grid(params))
    v = SharedNDArray(rt, "v", _initial_grid(params).copy())
    return u, v


def run_af(rt: Runtime, params: JacobiParams) -> SharedNDArray:
    """Barrier-per-sweep async-finish version (loses wavefront overlap)."""
    u, v = _setup(rt, params)
    ranges = _tile_ranges(params)
    for _ in range(params.sweeps):
        with rt.finish():
            for r0, r1, c0, c1 in ranges:
                rt.async_(_compute_tile, u, v, r0, r1, c0, c1)
        u, v = v, u
    return u


def run_future(rt: Runtime, params: JacobiParams) -> SharedNDArray:
    """Dependence-driven future version (Table 2 row *Jacobi*).

    Tile task for sweep ``t`` declares ``in`` on the source tile and its
    four neighbors and ``out`` on the destination tile; the group turns
    those into sibling ``get()`` calls inside each task.
    """
    u, v = _setup(rt, params)
    group = DependsTaskGroup(rt)
    t = params.tiles_per_side
    names = ["u", "v"]
    src_name, dst_name = names
    for sweep in range(params.sweeps):
        for bi in range(t):
            for bj in range(t):
                r0 = 1 + bi * params.tile
                c0 = 1 + bj * params.tile
                deps_in = [(src_name, bi, bj)]
                for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    ni, nj = bi + di, bj + dj
                    if 0 <= ni < t and 0 <= nj < t:
                        deps_in.append((src_name, ni, nj))
                group.task(
                    _compute_tile,
                    u,
                    v,
                    r0,
                    r0 + params.tile,
                    c0,
                    c0 + params.tile,
                    in_=deps_in,
                    out=[(dst_name, bi, bj)],
                    name=f"jacobi[{sweep}]({bi},{bj})",
                )
        u, v = v, u
        src_name, dst_name = dst_name, src_name
    group.wait_all()
    return u


def verify(params: JacobiParams, result: SharedNDArray) -> None:
    expected = serial(params)
    if not np.allclose(result.data, expected, rtol=1e-12, atol=1e-12):
        worst = np.abs(result.data - expected).max()
        raise AssertionError(f"jacobi mismatch, max abs err {worst}")
