"""Shared plumbing for the Table 2 benchmark workloads.

Every workload module exposes the same surface so the harness and the
pytest-benchmark suites can drive them uniformly:

* ``default_params(scale)`` — a params dataclass; ``scale`` is one of
  ``"tiny"`` (CI tests), ``"small"`` (default benchmarking, seconds per
  run) or ``"table2"`` (the largest configuration we let CPython attempt).
* ``serial(params)`` — the serial elision: pure Python/numpy, no runtime,
  no instrumentation.  This is the paper's ``Seq`` baseline.
* one or more parallel entry points (``run_af(rt, params)`` /
  ``run_future(rt, params)``) — instrumented versions executed on a
  :class:`~repro.runtime.runtime.Runtime`.
* ``verify(params, result)`` — raises ``AssertionError`` unless the result
  matches the serial elision (determinacy in action: a race-free program
  must equal its serial elision).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.detector import DeterminacyRaceDetector
from repro.harness.metrics import Metrics, MetricsCollector
from repro.runtime.runtime import Runtime

__all__ = ["Scale", "WorkloadRun", "run_instrumented", "time_callable"]

Scale = str  # "tiny" | "small" | "table2"


@dataclass
class WorkloadRun:
    """Everything one instrumented execution produced."""

    result: Any
    metrics: Metrics
    detector: Optional[DeterminacyRaceDetector]
    wall_seconds: float

    @property
    def avg_readers(self) -> float:
        if self.detector is None:
            return float("nan")
        return self.detector.shadow.avg_readers

    @property
    def races(self) -> list:
        return [] if self.detector is None else list(self.detector.races)

    @property
    def perf_stats(self) -> Dict[str, Any]:
        """The detector's caching/fast-path counters ({} without one)."""
        return {} if self.detector is None else self.detector.perf_stats


def run_instrumented(
    entry: Callable[[Runtime], Any],
    *,
    detect: bool,
    extra_observers: Sequence = (),
    detector_options: Optional[Dict[str, Any]] = None,
    obs=None,
) -> WorkloadRun:
    """Run a workload entry point, with or without the race detector.

    ``detect=False`` measures instrumentation-only cost (runtime dispatch +
    metrics counters); ``detect=True`` adds the full detector — the paper's
    ``Racedet`` configuration.  ``detector_options`` are forwarded to
    :class:`DeterminacyRaceDetector` (ablation switches, ``cache_precede``).
    ``obs`` is an optional :class:`repro.obs.Observability` sink threaded
    into both the runtime (task/finish spans) and the detector (PRECEDE /
    shadow instrumentation); ``None`` costs nothing.
    """
    metrics = MetricsCollector()
    detector = (
        DeterminacyRaceDetector(obs=obs, **(detector_options or {}))
        if detect
        else None
    )
    observers: List = [metrics]
    if detector is not None:
        observers.append(detector)
    observers.extend(extra_observers)
    rt = Runtime(observers=observers, obs=obs)
    start = time.perf_counter()
    result = rt.run(entry)
    wall = time.perf_counter() - start
    return WorkloadRun(
        result=result,
        metrics=metrics.snapshot(),
        detector=detector,
        wall_seconds=wall,
    )


def time_callable(fn: Callable[[], Any], *, repeats: int = 1) -> tuple:
    """``(best_wall_seconds, last_result)`` over ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result
