"""LUFact — blocked LU factorization with dependence-driven futures.

An extension workload modeled on the JGF *LUFact* kernel and the Kastors
``sparselu``/``plasma``-style task graphs: factorize ``A = L·U`` (no
pivoting; the generator produces strictly diagonally dominant matrices so
pivoting is never needed) over a B×B grid of tiles with the classic
four-kernel task graph per step ``k``:

    diag(k)            : LU-factorize tile (k,k)                in-place
    row(k,j),  j > k   : U-panel solve   A[k][j] = L(k,k)^-1 A[k][j]
    col(i,k),  i > k   : L-panel solve   A[i][k] = A[i][k] U(k,k)^-1
    update(i,j), i,j>k : trailing update A[i][j] -= A[i][k] A[k][j]

Every kernel is a future task submitted through
:class:`~repro.runtime.depends.DependsTaskGroup` with ``in``/``inout``
clauses on tile keys; the resulting graph is the textbook example of
parallelism that barriers throttle (the trailing updates of step ``k``
overlap the panel work of step ``k+1``).  Tile loads/stores are
instrumented per element via the same
:class:`~repro.workloads.strassen.InstrumentedMatrix` accounting.

Verification is exact: integer-free but reproducible float comparison —
``L @ U`` must reconstruct ``A`` to machine precision, and the factors
must match a straightforward serial right-looking elimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.runtime.depends import DependsTaskGroup
from repro.runtime.runtime import Runtime
from repro.workloads.strassen import InstrumentedMatrix

__all__ = ["LUParams", "default_params", "serial", "run_future", "verify"]


@dataclass(frozen=True)
class LUParams:
    n: int = 32        #: matrix side
    tile: int = 8      #: tile side
    seed: int = 9

    def __post_init__(self) -> None:
        if self.n % self.tile:
            raise ValueError("tile must divide n")

    @property
    def tiles(self) -> int:
        return self.n // self.tile


def default_params(scale: str = "small") -> LUParams:
    return {
        "tiny": LUParams(n=16, tile=8),
        "small": LUParams(n=32, tile=8),
        "table2": LUParams(n=64, tile=16),
        "large": LUParams(n=128, tile=16),
    }[scale]


def _input_matrix(params: LUParams) -> np.ndarray:
    """Strictly diagonally dominant => LU without pivoting is stable."""
    rng = np.random.default_rng(params.seed)
    a = rng.random((params.n, params.n)) - 0.5
    a += np.diag(np.full(params.n, params.n))
    return a


def _lu_inplace(a: np.ndarray) -> np.ndarray:
    """Right-looking in-place LU of one tile (unit-diagonal L below, U on
    and above the diagonal)."""
    n = a.shape[0]
    for k in range(n):
        a[k + 1 :, k] /= a[k, k]
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    return a


def _lower_solve(lkk: np.ndarray, akj: np.ndarray) -> np.ndarray:
    """Solve L(k,k) X = A[k][j] with unit-lower-triangular L (row panel)."""
    n = lkk.shape[0]
    x = akj.copy()
    for r in range(1, n):
        x[r, :] -= lkk[r, :r] @ x[:r, :]
    return x


def _upper_solve(ukk: np.ndarray, aik: np.ndarray) -> np.ndarray:
    """Solve X U(k,k) = A[i][k] with upper-triangular U (column panel)."""
    n = ukk.shape[0]
    x = aik.copy()
    for c in range(n):
        x[:, c] -= x[:, :c] @ ukk[:c, c]
        x[:, c] /= ukk[c, c]
    return x


def serial(params: LUParams) -> np.ndarray:
    """Serial elision: the same tiled algorithm, sequentially."""
    a = _input_matrix(params)
    t, b = params.tiles, params.tile

    def tile(i, j):
        return a[i * b : (i + 1) * b, j * b : (j + 1) * b]

    for k in range(t):
        _lu_inplace(tile(k, k))
        for j in range(k + 1, t):
            tile(k, j)[:, :] = _lower_solve(tile(k, k), tile(k, j))
        for i in range(k + 1, t):
            tile(i, k)[:, :] = _upper_solve(tile(k, k), tile(i, k))
        for i in range(k + 1, t):
            for j in range(k + 1, t):
                tile(i, j)[:, :] -= tile(i, k) @ tile(k, j)
    return a


def run_future(rt: Runtime, params: LUParams) -> np.ndarray:
    """Dependence-driven tiled LU (futures via the depends layer)."""
    a = _input_matrix(params)
    t, b = params.tiles, params.tile
    tiles: Dict[Tuple[int, int], InstrumentedMatrix] = {}
    for i in range(t):
        for j in range(t):
            m = InstrumentedMatrix(
                rt, b, a[i * b : (i + 1) * b, j * b : (j + 1) * b].copy(),
                name=f"A{i}{j}",
            )
            # float tiles: InstrumentedMatrix defaults to int64 zeros only
            # when data is None, so passing data keeps the float dtype.
            tiles[i, j] = m

    group = DependsTaskGroup(rt)

    def diag(k):
        def body():
            tiles[k, k].store(_lu_inplace(tiles[k, k].load()))

        return body

    def row(k, j):
        def body():
            tiles[k, j].store(
                _lower_solve(tiles[k, k].load(), tiles[k, j].load())
            )

        return body

    def col(i, k):
        def body():
            tiles[i, k].store(
                _upper_solve(tiles[k, k].load(), tiles[i, k].load())
            )

        return body

    def update(i, j, k):
        def body():
            tiles[i, j].store(
                tiles[i, j].load() - tiles[i, k].load() @ tiles[k, j].load()
            )

        return body

    for k in range(t):
        group.task(diag(k), inout=[("T", k, k)], name=f"diag({k})")
        for j in range(k + 1, t):
            group.task(row(k, j), in_=[("T", k, k)], inout=[("T", k, j)],
                       name=f"row({k},{j})")
        for i in range(k + 1, t):
            group.task(col(i, k), in_=[("T", k, k)], inout=[("T", i, k)],
                       name=f"col({i},{k})")
        for i in range(k + 1, t):
            for j in range(k + 1, t):
                group.task(
                    update(i, j, k),
                    in_=[("T", i, k), ("T", k, j)],
                    inout=[("T", i, j)],
                    name=f"upd({i},{j},{k})",
                )
    group.wait_all()

    out = np.zeros_like(a)
    for (i, j), m in tiles.items():
        out[i * b : (i + 1) * b, j * b : (j + 1) * b] = m.data
    return out


def _split_lu(packed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    l = np.tril(packed, -1) + np.eye(packed.shape[0])
    u = np.triu(packed)
    return l, u


def verify(params: LUParams, result: np.ndarray) -> None:
    expected = serial(params)
    if not np.allclose(result, expected, rtol=1e-10, atol=1e-10):
        raise AssertionError("LU factors differ from the serial elision")
    l, u = _split_lu(result)
    original = _input_matrix(params)
    if not np.allclose(l @ u, original, rtol=1e-8, atol=1e-8):
        raise AssertionError("L @ U does not reconstruct A")
