"""Functional reduction tree — futures with *no* side effects.

Section 2: "Futures are traditionally used for enabling functional-style
parallelism and are guaranteed not to exhibit data races in their return
values."  This extension workload is that guarantee made executable: a
divide-and-conquer reduction where every intermediate value flows through
futures' return values and ``get()``, never through shared memory.  Under
detection it produces *zero* shared accesses and zero races by
construction — the degenerate best case for any detector — and it doubles
as the API showcase for value-carrying futures (including futures whose
operands are other futures' values).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.runtime.runtime import Runtime

__all__ = ["ReduceParams", "default_params", "serial", "run_future", "verify"]


@dataclass(frozen=True)
class ReduceParams:
    size: int = 64            #: number of leaves
    cutoff: int = 8           #: sequential below this many elements
    op: str = "add"           #: "add" | "max" | "mul"
    seed: int = 5

    @property
    def operator(self) -> Callable[[int, int], int]:
        return {"add": operator.add, "max": max, "mul": operator.mul}[self.op]

    @property
    def identity(self) -> int:
        return {"add": 0, "max": -(1 << 62), "mul": 1}[self.op]


def default_params(scale: str = "small") -> ReduceParams:
    return {
        "tiny": ReduceParams(size=16, cutoff=4),
        "small": ReduceParams(size=64, cutoff=8),
        "table2": ReduceParams(size=512, cutoff=16),
        "large": ReduceParams(size=8192, cutoff=16),
    }[scale]


def _data(params: ReduceParams) -> List[int]:
    state = params.seed or 1
    out = []
    for _ in range(params.size):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        out.append(state % 1000 - 500)
    return out


def serial(params: ReduceParams) -> int:
    op = params.operator
    acc = params.identity
    for value in _data(params):
        acc = op(acc, value)
    return acc


def run_future(rt: Runtime, params: ReduceParams) -> int:
    """Recursive reduction: each half is a future; the combiner consumes
    values through ``get()`` only.  The left-to-right combination order is
    preserved, so even non-commutative operators match the serial fold."""
    data = _data(params)
    op = params.operator

    def reduce_range(lo: int, hi: int) -> int:
        if hi - lo <= params.cutoff:
            acc = params.identity
            for i in range(lo, hi):
                acc = op(acc, data[i])
            return acc
        mid = (lo + hi) // 2
        left = rt.future(reduce_range, lo, mid, name=f"red[{lo}:{mid}]")
        right = rt.future(reduce_range, mid, hi, name=f"red[{mid}:{hi}]")
        return op(left.get(), right.get())

    return reduce_range(0, params.size)


def verify(params: ReduceParams, result: int) -> None:
    expected = serial(params)
    assert result == expected, (result, expected)
