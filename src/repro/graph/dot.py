"""Graphviz DOT export of computation graphs.

Used by the figure-reproduction examples to emit renderable versions of the
paper's Figure 2/Figure 3 computation graphs, and by ``repro-racecheck
--explain --dot`` to overlay race witnesses on the graph.  Pure string
generation — no graphviz dependency; pipe the output through ``dot -Tpng``
if available.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.computation_graph import ComputationGraph, EdgeKind

__all__ = ["to_dot"]

_EDGE_STYLE = {
    EdgeKind.CONTINUE: 'color="black"',
    EdgeKind.SPAWN: 'color="blue", style=dashed',
    EdgeKind.JOIN_TREE: 'color="forestgreen"',
    EdgeKind.JOIN_NON_TREE: 'color="red", penwidth=2',
}


def _witness_highlights(graph: ComputationGraph, witnesses: Iterable):
    """Compute the overlay sets for a list of RaceWitness objects.

    Returns ``(racing_tasks, frontier_tasks, racing_steps)``:

    * ``racing_tasks`` — the two tasks of each witness (red clusters);
    * ``frontier_tasks`` — members of every DTRG set the exhausted VISIT
      search expanded (orange clusters), i.e. the certificate's frontier;
    * ``racing_steps`` — steps holding the witnessed conflicting accesses
      (filled red), resolved from ``accesses_by_loc``.
    """
    racing_tasks: Set[int] = set()
    frontier_tasks: Set[int] = set()
    racing_steps: Set[int] = set()
    for w in witnesses:
        racing_tasks.update((w.prev_task, w.current_task))
        cert = w.certificate or {}
        for key in ("a_set", "b_set"):
            frontier_tasks.update(cert.get(key, {}).get("members", []))
        search = cert.get("search") or {}
        for rec in search.get("expanded", []):
            frontier_tasks.add(rec.get("rep"))
        roles = {"read-write": (False, True), "write-write": (True, True),
                 "write-read": (True, False)}[w.kind]
        for acc in graph.accesses_by_loc.get(w.loc, []):
            if ((acc.task == w.prev_task and acc.is_write == roles[0])
                    or (acc.task == w.current_task
                        and acc.is_write == roles[1])):
                racing_steps.add(acc.step)
    frontier_tasks -= racing_tasks
    return racing_tasks, frontier_tasks, racing_steps


def to_dot(
    graph: ComputationGraph,
    title: str = "computation graph",
    witnesses: Optional[Iterable] = None,
) -> str:
    """Render the graph, clustering steps by task as in the paper's figures
    (circles = steps, rectangles = task clusters).

    ``witnesses`` (optional) is an iterable of
    :class:`repro.obs.provenance.RaceWitness`; when given, the racing
    tasks' clusters are outlined red, every DTRG set the exhausted VISIT
    search expanded is outlined orange, and the steps holding the
    witnessed accesses are filled red — so the rendered figure shows both
    the race and the evidence that no path orders it.  Without witnesses
    the output is byte-identical to the pre-overlay renderer.
    """
    racing_tasks: Set[int] = set()
    frontier_tasks: Set[int] = set()
    racing_steps: Set[int] = set()
    if witnesses is not None:
        racing_tasks, frontier_tasks, racing_steps = _witness_highlights(
            graph, witnesses
        )
    lines: List[str] = [
        "digraph G {",
        f'  label="{title}";',
        "  rankdir=TB;",
        "  node [shape=circle, fontsize=10];",
    ]
    by_task: Dict[int, List[int]] = {}
    for step in graph.steps:
        by_task.setdefault(step.task, []).append(step.sid)
    for tid, sids in by_task.items():
        name = graph.task_names.get(tid, f"task{tid}")
        lines.append(f"  subgraph cluster_{tid} {{")
        if tid in racing_tasks:
            lines.append(
                f'    label="{name} (racing)"; style=rounded; '
                'color="red"; penwidth=2;'
            )
        elif tid in frontier_tasks:
            lines.append(
                f'    label="{name} (witness frontier)"; style=rounded; '
                'color="orange";'
            )
        else:
            lines.append(f'    label="{name}"; style=rounded;')
        for sid in sids:
            label = graph.steps[sid].label or f"S{sid}"
            if sid in racing_steps:
                lines.append(
                    f'    s{sid} [label="{label}", style=filled, '
                    'fillcolor="salmon"];'
                )
            else:
                lines.append(f'    s{sid} [label="{label}"];')
        lines.append("  }")
    for src, dst, kind in graph.edges:
        lines.append(f"  s{src} -> s{dst} [{_EDGE_STYLE[kind]}];")
    lines.append("}")
    return "\n".join(lines)
