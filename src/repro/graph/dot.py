"""Graphviz DOT export of computation graphs.

Used by the figure-reproduction examples to emit renderable versions of the
paper's Figure 2/Figure 3 computation graphs.  Pure string generation — no
graphviz dependency; pipe the output through ``dot -Tpng`` if available.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.computation_graph import ComputationGraph, EdgeKind

__all__ = ["to_dot"]

_EDGE_STYLE = {
    EdgeKind.CONTINUE: 'color="black"',
    EdgeKind.SPAWN: 'color="blue", style=dashed',
    EdgeKind.JOIN_TREE: 'color="forestgreen"',
    EdgeKind.JOIN_NON_TREE: 'color="red", penwidth=2',
}


def to_dot(graph: ComputationGraph, title: str = "computation graph") -> str:
    """Render the graph, clustering steps by task as in the paper's figures
    (circles = steps, rectangles = task clusters)."""
    lines: List[str] = [
        "digraph G {",
        f'  label="{title}";',
        "  rankdir=TB;",
        "  node [shape=circle, fontsize=10];",
    ]
    by_task: Dict[int, List[int]] = {}
    for step in graph.steps:
        by_task.setdefault(step.task, []).append(step.sid)
    for tid, sids in by_task.items():
        name = graph.task_names.get(tid, f"task{tid}")
        lines.append(f"  subgraph cluster_{tid} {{")
        lines.append(f'    label="{name}"; style=rounded;')
        for sid in sids:
            label = graph.steps[sid].label or f"S{sid}"
            lines.append(f'    s{sid} [label="{label}"];')
        lines.append("  }")
    for src, dst, kind in graph.edges:
        lines.append(f"  s{src} -> s{dst} [{_EDGE_STYLE[kind]}];")
    lines.append("}")
    return "\n".join(lines)
