"""Computation-graph analyses: reachability, the race oracle, work/span.

The oracle here is the "brute force approach … building the transitive
closure of the happens-before relation" that Section 1 contrasts with the
DTRG.  It is exact by construction, so the property tests use it as ground
truth for Theorem 2 (the detector reports a race on a location iff the
closure finds logically-parallel conflicting accesses there).

Implementation: step ids are a topological order (see
:mod:`repro.graph.computation_graph`), so the closure is computed in one
reverse sweep with Python big-int bitsets — ``reach[i]`` has bit ``j`` set
iff step ``i`` strictly precedes step ``j``.  Big-int OR is vectorized C
machinery under the hood, which keeps the oracle usable on graphs with tens
of thousands of steps (the HPC guides' "optimize the algorithm, then let the
runtime's compiled paths do the work").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.graph.computation_graph import Access, ComputationGraph

__all__ = [
    "ReachabilityClosure",
    "RacePair",
    "find_races",
    "racy_locations",
    "work_and_span",
    "max_logical_parallelism",
]


class ReachabilityClosure:
    """Transitive closure of a computation graph over step ids."""

    def __init__(self, graph: ComputationGraph) -> None:
        n = graph.num_steps
        reach: List[int] = [0] * n
        succs = graph.successors
        for i in range(n - 1, -1, -1):
            mask = 0
            for j in succs[i]:
                mask |= (1 << j) | reach[j]
            reach[i] = mask
        self._reach = reach
        self.graph = graph

    def precedes(self, u: int, v: int) -> bool:
        """True iff step ``u`` strictly precedes step ``v`` (``u ≺ v``)."""
        return bool((self._reach[u] >> v) & 1)

    def parallel(self, u: int, v: int) -> bool:
        """True iff ``u ∥ v`` — distinct, with no path either way."""
        return u != v and not self.precedes(u, v) and not self.precedes(v, u)

    def descendants(self, u: int) -> Set[int]:
        """All steps strictly reachable from ``u``."""
        mask = self._reach[u]
        out: Set[int] = set()
        v = 0
        while mask:
            low = mask & -mask
            out.add(low.bit_length() - 1)
            mask ^= low
        return out

    def task_precedes(self, a: int, b_step: int) -> bool:
        """The DTRG query in oracle form: does *every step of task* ``a``
        *that executed before* ``b_step`` precede ``b_step``?

        "Executed before" is step-id order (serial depth-first execution).
        Matches the on-the-fly semantics of the paper's ``PRECEDE(A, B)``
        evaluated while ``b_step`` is the current step.
        """
        g = self.graph
        for step in g.steps:
            if step.task == a and step.sid < b_step:
                if not self.precedes(step.sid, b_step):
                    return False
        return True


@dataclass(frozen=True)
class RacePair:
    """One conflicting logically-parallel access pair found by the oracle."""

    loc: Hashable
    first: Access
    second: Access

    @property
    def tasks(self) -> Tuple[int, int]:
        return self.first.task, self.second.task


def find_races(
    graph: ComputationGraph,
    closure: ReachabilityClosure | None = None,
    max_pairs_per_loc: int | None = None,
) -> List[RacePair]:
    """Exhaustive race enumeration per Definition 3.

    For every location, every pair of accesses with at least one write is
    tested for logical parallelism.  ``max_pairs_per_loc`` caps the output
    (not the search is still quadratic per location — acceptable for tests;
    the detector exists precisely because this does not scale).
    """
    closure = closure or ReachabilityClosure(graph)
    races: List[RacePair] = []
    for loc, accesses in graph.accesses_by_loc.items():
        found = 0
        for i, a in enumerate(accesses):
            for b in accesses[i + 1 :]:
                if not (a.is_write or b.is_write):
                    continue
                if a.step == b.step:
                    continue  # same step: ordered by program order
                if closure.parallel(a.step, b.step):
                    races.append(RacePair(loc=loc, first=a, second=b))
                    found += 1
                    if max_pairs_per_loc and found >= max_pairs_per_loc:
                        break
            if max_pairs_per_loc and found >= max_pairs_per_loc:
                break
    return races


def racy_locations(
    graph: ComputationGraph, closure: ReachabilityClosure | None = None
) -> FrozenSet[Hashable]:
    """Locations with at least one race — the Theorem 2 comparison set."""
    closure = closure or ReachabilityClosure(graph)
    out: Set[Hashable] = set()
    for loc, accesses in graph.accesses_by_loc.items():
        writes = [a for a in accesses if a.is_write]
        if not writes:
            continue
        done = False
        for i, a in enumerate(accesses):
            for b in accesses[i + 1 :]:
                if not (a.is_write or b.is_write):
                    continue
                if a.step != b.step and closure.parallel(a.step, b.step):
                    out.add(loc)
                    done = True
                    break
            if done:
                break
    return frozenset(out)


def work_and_span(graph: ComputationGraph) -> Tuple[int, int]:
    """Cilkview-style ``(work, span)`` with unit step weights.

    ``work`` is the step count; ``span`` the longest path length in steps.
    ``work/span`` bounds the program's available parallelism.
    """
    n = graph.num_steps
    dist = [1] * n  # longest path ending at i, in steps
    for i in range(n):
        di = dist[i]
        for j in graph.successors[i]:
            if di + 1 > dist[j]:
                dist[j] = di + 1
    return n, (max(dist) if n else 0)


def max_logical_parallelism(
    graph: ComputationGraph, closure: ReachabilityClosure | None = None
) -> int:
    """Size of the largest antichain layer: max over steps of how many other
    steps are logically parallel with it, plus one.  A cheap upper-bound
    proxy (exact antichain is NP-ish in general); used by examples only."""
    closure = closure or ReachabilityClosure(graph)
    n = graph.num_steps
    best = 1 if n else 0
    for u in range(n):
        count = sum(1 for v in range(n) if closure.parallel(u, v))
        best = max(best, count + 1)
    return best
