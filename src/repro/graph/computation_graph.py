"""Computation graphs — Section 3 of the paper.

A computation graph of one dynamic execution has a node per *step* (maximal
statement sequence containing no async/finish boundary and no ``get``,
Definition 1) and three edge kinds:

* **continue** — sequencing of steps within one task;
* **spawn** — from the step ending with an ``async``/``future`` spawn in the
  parent to the first step of the child;
* **join** — from the last step of a future task to the step after a
  ``get()`` on it, and from the last step of every task to the step after its
  Immediately Enclosing Finish.  A join from task B to task A is a **tree
  join** when A is a spawn-tree ancestor of B, otherwise a **non-tree join**
  (the construct that makes future graphs non-strict).

:class:`GraphBuilder` is an :class:`~repro.core.events.ExecutionObserver`
that reconstructs the exact computation graph from the instrumentation event
stream, including the per-step shared-memory access log.  Step ids are
allocated lazily in execution order, so *step id order is both the serial
depth-first execution order and a topological order of the graph* — the
property the brute-force oracle and the schedule simulator rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.events import ExecutionObserver

__all__ = ["EdgeKind", "Step", "Access", "ComputationGraph", "GraphBuilder"]


class EdgeKind(enum.Enum):
    CONTINUE = "continue"
    SPAWN = "spawn"
    JOIN_TREE = "join"          #: join edge whose sink task is an ancestor
    JOIN_NON_TREE = "nt-join"   #: join edge between unrelated tasks

    @property
    def is_join(self) -> bool:
        return self in (EdgeKind.JOIN_TREE, EdgeKind.JOIN_NON_TREE)


@dataclass
class Step:
    """One computation-graph node.

    ``sid`` doubles as the step's position in the serial depth-first
    execution order and in a topological order of the graph.
    """

    sid: int
    task: int                     #: tid of the owning task
    label: str = ""               #: optional pretty label (figures/tests)
    accesses: List["Access"] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<Step {self.label or self.sid} task={self.task}>"


@dataclass(frozen=True)
class Access:
    """One shared-memory access attributed to a step."""

    step: int
    task: int
    loc: Hashable
    is_write: bool


class ComputationGraph:
    """The assembled graph: steps, typed edges, and the access log."""

    def __init__(self) -> None:
        self.steps: List[Step] = []
        self.edges: List[Tuple[int, int, EdgeKind]] = []
        self.successors: List[List[int]] = []
        self.predecessors: List[List[int]] = []
        self.first_step: Dict[int, int] = {}   #: tid -> first step sid
        self.last_step: Dict[int, int] = {}    #: tid -> last step sid
        self.task_parent: Dict[int, Optional[int]] = {}
        self.task_is_future: Dict[int, bool] = {}
        self.task_names: Dict[int, str] = {}
        self.accesses_by_loc: Dict[Hashable, List[Access]] = {}

    # -- construction -------------------------------------------------- #
    def new_step(self, task: int, label: str = "") -> Step:
        step = Step(sid=len(self.steps), task=task, label=label)
        self.steps.append(step)
        self.successors.append([])
        self.predecessors.append([])
        if task not in self.first_step:
            self.first_step[task] = step.sid
        return step

    def add_edge(self, src: int, dst: int, kind: EdgeKind) -> None:
        if src == dst:
            raise ValueError("self edge in computation graph")
        self.edges.append((src, dst, kind))
        self.successors[src].append(dst)
        self.predecessors[dst].append(src)

    def add_access(self, step: Step, loc: Hashable, is_write: bool) -> None:
        acc = Access(step=step.sid, task=step.task, loc=loc, is_write=is_write)
        step.accesses.append(acc)
        self.accesses_by_loc.setdefault(loc, []).append(acc)

    # -- task relations ------------------------------------------------ #
    def is_ancestor_task(self, a: int, b: int) -> bool:
        """Spawn-tree proper-ancestor test on task ids (O(depth))."""
        node = self.task_parent.get(b)
        while node is not None:
            if node == a:
                return True
            node = self.task_parent.get(node)
        return False

    # -- stats --------------------------------------------------------- #
    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_tasks(self) -> int:
        return len(self.task_parent)

    def edge_counts(self) -> Dict[EdgeKind, int]:
        counts = {kind: 0 for kind in EdgeKind}
        for _, _, kind in self.edges:
            counts[kind] += 1
        return counts

    def steps_of_task(self, tid: int) -> List[Step]:
        return [s for s in self.steps if s.task == tid]

    def step_by_label(self, label: str) -> Step:
        """Find the unique step with ``label`` (figure tests)."""
        matches = [s for s in self.steps if s.label == label]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} steps labeled {label!r}")
        return matches[0]


class GraphBuilder(ExecutionObserver):
    """Builds a :class:`ComputationGraph` from the event stream.

    A task's "current step" ends at every boundary event; the next step is
    allocated lazily at the task's next action so that step ids follow the
    serial depth-first execution order exactly.  Pending incoming edges
    (continue from the previous step, spawn from the parent, joins from
    producers/finish scopes) are buffered per task and attached when the
    next step materializes.
    """

    def __init__(self) -> None:
        self.graph = ComputationGraph()
        self._current: Dict[int, Optional[Step]] = {}
        self._pending: Dict[int, List[Tuple[int, EdgeKind]]] = {}

    # -- step management ------------------------------------------------ #
    def _step(self, tid: int) -> Step:
        """The task's current step, materializing it if a boundary closed
        the previous one."""
        step = self._current.get(tid)
        if step is None:
            step = self.graph.new_step(tid)
            for src, kind in self._pending.pop(tid, ()):
                self.graph.add_edge(src, step.sid, kind)
            self._current[tid] = step
        return step

    def _end_step(self, tid: int) -> Step:
        """Close the task's current step, scheduling a continue edge to the
        not-yet-materialized next step."""
        step = self._step(tid)
        self._current[tid] = None
        self._pending.setdefault(tid, []).append((step.sid, EdgeKind.CONTINUE))
        return step

    # -- observer hooks -------------------------------------------------- #
    def on_init(self, main) -> None:
        g = self.graph
        g.task_parent[main.tid] = None
        g.task_is_future[main.tid] = False
        g.task_names[main.tid] = main.name
        self._step(main.tid)

    def on_task_create(self, parent, child) -> None:
        g = self.graph
        g.task_parent[child.tid] = parent.tid
        g.task_is_future[child.tid] = child.is_future
        g.task_names[child.tid] = child.name
        # The parent step ending with the async is the spawn-edge source.
        parent_step = self._end_step(parent.tid)
        self._pending.setdefault(child.tid, []).append(
            (parent_step.sid, EdgeKind.SPAWN)
        )

    def on_task_end(self, task) -> None:
        step = self._step(task.tid)  # every task has >= 1 step
        self.graph.last_step[task.tid] = step.sid
        self._current[task.tid] = None

    def on_get(self, consumer, producer) -> None:
        g = self.graph
        self._end_step(consumer.tid)
        kind = (
            EdgeKind.JOIN_TREE
            if g.is_ancestor_task(consumer.tid, producer.tid)
            else EdgeKind.JOIN_NON_TREE
        )
        self._pending.setdefault(consumer.tid, []).append(
            (g.last_step[producer.tid], kind)
        )

    def on_finish_start(self, scope) -> None:
        # Entering a finish is a step boundary for the owner (Definition 1).
        if scope.enclosing is None:
            return  # root finish: main's first step already open
        self._end_step(scope.owner.tid)

    def on_finish_end(self, scope) -> None:
        g = self.graph
        self._end_step(scope.owner.tid)
        pend = self._pending.setdefault(scope.owner.tid, [])
        for task in scope.joins:
            pend.append((g.last_step[task.tid], EdgeKind.JOIN_TREE))

    def on_read(self, task, loc) -> None:
        self.graph.add_access(self._step(task.tid), loc, is_write=False)

    def on_write(self, task, loc) -> None:
        self.graph.add_access(self._step(task.tid), loc, is_write=True)
