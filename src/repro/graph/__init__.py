"""Computation-graph substrate (Section 3) and analyses."""

from repro.graph.analysis import (
    RacePair,
    ReachabilityClosure,
    find_races,
    max_logical_parallelism,
    racy_locations,
    work_and_span,
)
from repro.graph.computation_graph import (
    Access,
    ComputationGraph,
    EdgeKind,
    GraphBuilder,
    Step,
)
from repro.graph.dot import to_dot

__all__ = [
    "Access",
    "ComputationGraph",
    "EdgeKind",
    "GraphBuilder",
    "Step",
    "ReachabilityClosure",
    "RacePair",
    "find_races",
    "racy_locations",
    "work_and_span",
    "max_logical_parallelism",
    "to_dot",
]
