"""Instrumented shared-memory wrappers and trace recording."""

from repro.memory.shared import (
    SharedArray,
    SharedFutureCell,
    SharedMatrix,
    SharedNDArray,
    SharedVar,
)

__all__ = [
    "SharedVar",
    "SharedArray",
    "SharedNDArray",
    "SharedMatrix",
    "SharedFutureCell",
]
