"""Trace recording and replay.

The paper measures detector overhead by running the same instrumented
program with and without the race-detection library.  We additionally
support *trace replay*: record the instrumentation event stream once, then
feed it to any detector without re-executing the workload.  This isolates
pure detector cost (the quantity Theorem 1 bounds) from workload cost, and
it is how ``benchmarks/bench_detector_comparison.py`` compares our detector
against SP-bags/ESP-bags/vector clocks on identical event streams.

Replay synthesizes lightweight stand-ins for :class:`Task` and
:class:`FinishScope` that carry exactly the attributes observers consume
(``tid``, ``is_future``, ``parent``, ``ief``, ``name``, ``owner``,
``joins``, ``enclosing``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.events import (
    Event,
    ExecutionObserver,
    FinishEndEvent,
    FinishStartEvent,
    GetEvent,
    ReadEvent,
    TaskCreateEvent,
    TaskEndEvent,
    Trace,
    WriteEvent,
)

__all__ = ["TraceRecorder", "replay_trace", "replay_trace_parallel"]


class TraceRecorder(ExecutionObserver):
    """Observer that records the full event stream into a :class:`Trace`.

    The implicit bracket (main task init/end, root finish start/end,
    shutdown) is *not* recorded — :func:`replay_trace` re-synthesizes it, so
    a recorded trace contains exactly the program's own events.

    With a :class:`repro.obs.provenance.RaceProvenance` attached (the same
    object given to the runtime, whose adapter observer runs first), the
    spawn/get/read/write events additionally carry the provenance call-site
    label in their optional ``site`` field, so a replayed trace can
    attribute races to source sites without re-running the program.
    Without one the recorded events are exactly the pre-provenance events.
    """

    def __init__(self, provenance=None) -> None:
        self.trace = Trace()
        self._prov = (
            provenance
            if provenance is not None and getattr(provenance, "enabled", False)
            else None
        )

    def _site(self):
        prov = self._prov
        if prov is None:
            return None
        return prov.site_label(prov.current_site)

    def on_task_create(self, parent, child) -> None:
        self.trace.append(
            TaskCreateEvent(
                parent=parent.tid,
                child=child.tid,
                is_future=child.is_future,
                ief=child.ief.fid if child.ief is not None else -1,
                site=self._site(),
            )
        )

    def on_task_end(self, task) -> None:
        if task.parent is None:
            return  # main's end belongs to the implicit bracket
        self.trace.append(TaskEndEvent(task=task.tid))

    def on_get(self, consumer, producer) -> None:
        self.trace.append(
            GetEvent(
                consumer=consumer.tid,
                producer=producer.tid,
                site=self._site(),
            )
        )

    def on_finish_start(self, scope) -> None:
        if scope.enclosing is None:
            return  # implicit root finish
        self.trace.append(
            FinishStartEvent(
                fid=scope.fid,
                owner=scope.owner.tid,
                enclosing=scope.enclosing.fid if scope.enclosing else -1,
            )
        )

    def on_finish_end(self, scope) -> None:
        if scope.enclosing is None:
            return  # implicit root finish
        self.trace.append(FinishEndEvent(fid=scope.fid))

    def on_read(self, task, loc) -> None:
        self.trace.append(ReadEvent(task=task.tid, loc=loc, site=self._site()))

    def on_write(self, task, loc) -> None:
        self.trace.append(WriteEvent(task=task.tid, loc=loc, site=self._site()))


class _ReplayTask:
    """Duck-typed :class:`~repro.runtime.task.Task` stand-in."""

    __slots__ = ("tid", "is_future", "parent", "ief", "name")

    def __init__(self, tid: int, is_future: bool, parent, ief) -> None:
        self.tid = tid
        self.is_future = is_future
        self.parent = parent
        self.ief = ief
        self.name = f"{'future' if is_future else 'task'}#{tid}"


class _ReplayScope:
    """Duck-typed :class:`~repro.runtime.finish.FinishScope` stand-in."""

    __slots__ = ("fid", "owner", "enclosing", "joins")

    def __init__(self, fid: int, owner, enclosing) -> None:
        self.fid = fid
        self.owner = owner
        self.enclosing = enclosing
        self.joins: List[_ReplayTask] = []


def replay_trace(
    trace: Trace | Iterable[Event],
    observers: Sequence[ExecutionObserver],
    *,
    provenance=None,
) -> None:
    """Feed a recorded event stream to ``observers``.

    ``trace`` may be a :class:`~repro.core.events.Trace` or **any**
    iterable of events, including a one-shot generator: the loop below is
    a single streaming pass and nothing is materialized, so replaying a
    lazily-decoded multi-gigabyte trace holds one event at a time
    (regression-tested with ``__len__``-less generator input).

    The replay re-synthesizes the implicit bracket that
    :meth:`Runtime.run` emits: the main task and the root finish at the
    start; root finish end, main's task end, and shutdown at the end.

    ``provenance`` (a :class:`repro.obs.provenance.RaceProvenance`)
    re-adopts the ``site`` labels recorded in the events before each
    dispatch, so a detector replaying a provenance-recorded trace
    attributes races exactly as the live run would.  Events recorded
    without provenance (or pickled before the field existed) replay with
    unknown sites; the default ``None`` keeps the dispatch closures
    branch-free (this loop is the detector benchmarks' inner loop).
    """
    main = _ReplayTask(0, is_future=False, parent=None, ief=None)
    root = _ReplayScope(0, owner=main, enclosing=None)
    tasks: Dict[int, _ReplayTask] = {0: main}
    scopes: Dict[int, _ReplayScope] = {0: root}

    # Replay is the harness's inner loop (bench_detector_comparison runs
    # millions of events through it), so events dispatch through a
    # type-keyed table — one dict probe per event instead of walking an
    # isinstance chain whose common cases (reads/writes) sat first only by
    # convention.
    def replay_read(event: ReadEvent) -> None:
        task = tasks[event.task]
        for ob in observers:
            ob.on_read(task, event.loc)

    def replay_write(event: WriteEvent) -> None:
        task = tasks[event.task]
        for ob in observers:
            ob.on_write(task, event.loc)

    def replay_task_create(event: TaskCreateEvent) -> None:
        parent = tasks[event.parent]
        ief = scopes[event.ief] if event.ief >= 0 else None
        child = _ReplayTask(event.child, event.is_future, parent, ief)
        tasks[event.child] = child
        if ief is not None:
            ief.joins.append(child)
        for ob in observers:
            ob.on_task_create(parent, child)

    def replay_task_end(event: TaskEndEvent) -> None:
        task = tasks[event.task]
        for ob in observers:
            ob.on_task_end(task)

    def replay_get(event: GetEvent) -> None:
        consumer, producer = tasks[event.consumer], tasks[event.producer]
        for ob in observers:
            ob.on_get(consumer, producer)

    def replay_finish_start(event: FinishStartEvent) -> None:
        owner = tasks[event.owner]
        enclosing: Optional[_ReplayScope] = (
            scopes[event.enclosing] if event.enclosing >= 0 else None
        )
        scope = _ReplayScope(event.fid, owner, enclosing)
        scopes[event.fid] = scope
        for ob in observers:
            ob.on_finish_start(scope)

    def replay_finish_end(event: FinishEndEvent) -> None:
        scope = scopes[event.fid]
        for ob in observers:
            ob.on_finish_end(scope)

    prov = (
        provenance
        if provenance is not None and getattr(provenance, "enabled", False)
        else None
    )
    if prov is not None:
        # Provenance-aware shadows: adopt the recorded site, register the
        # spawn site, then dispatch.  Defined only when requested so the
        # default replay closures stay branch-free.
        note = prov.note_replay_site

        def replay_read(event: ReadEvent) -> None:  # noqa: F811
            note(getattr(event, "site", None))
            task = tasks[event.task]
            for ob in observers:
                ob.on_read(task, event.loc)

        def replay_write(event: WriteEvent) -> None:  # noqa: F811
            note(getattr(event, "site", None))
            task = tasks[event.task]
            for ob in observers:
                ob.on_write(task, event.loc)

        def replay_task_create(event: TaskCreateEvent) -> None:  # noqa: F811
            note(getattr(event, "site", None))
            prov.spawn_sites[event.child] = prov.current_site
            parent = tasks[event.parent]
            ief = scopes[event.ief] if event.ief >= 0 else None
            child = _ReplayTask(event.child, event.is_future, parent, ief)
            tasks[event.child] = child
            if ief is not None:
                ief.joins.append(child)
            for ob in observers:
                ob.on_task_create(parent, child)

        def replay_get(event: GetEvent) -> None:  # noqa: F811
            note(getattr(event, "site", None))
            consumer, producer = tasks[event.consumer], tasks[event.producer]
            for ob in observers:
                ob.on_get(consumer, producer)

    handlers = {
        ReadEvent: replay_read,
        WriteEvent: replay_write,
        TaskCreateEvent: replay_task_create,
        TaskEndEvent: replay_task_end,
        GetEvent: replay_get,
        FinishStartEvent: replay_finish_start,
        FinishEndEvent: replay_finish_end,
    }
    for ob in observers:
        ob.on_init(main)
    for ob in observers:
        ob.on_finish_start(root)

    handlers_get = handlers.get
    for event in trace:
        handler = handlers_get(type(event))
        if handler is None:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {event!r}")
        handler(event)

    for ob in observers:
        ob.on_finish_end(root)
    for ob in observers:
        ob.on_task_end(main)
        ob.on_shutdown(main)


def replay_trace_parallel(
    trace: Trace | Iterable[Event],
    *,
    jobs: int = 1,
    backend: Optional[str] = None,
    names: Optional[Dict[int, str]] = None,
    obs=None,
    progress=None,
):
    """Two-phase parallel replay: check a recorded trace with the DTRG
    detector sharded over ``jobs`` workers.

    Streams ``trace`` once (any iterable, like :func:`replay_trace`):
    structure events build the DTRG sequentially, accesses are
    epoch-stamped and hash-sharded by location, shards fan out via
    ``multiprocessing`` and a deterministic merge reproduces the
    sequential race list, summary text and structural counters
    bit-identically at every job count.  Returns a
    :class:`repro.core.parallel_check.ParallelCheckResult`.

    This is the replay-mode counterpart of attaching a
    :class:`~repro.core.detector.DeterminacyRaceDetector` to
    :func:`replay_trace` — same verdicts, same ``summary()``, same
    ``DetectorPerf`` columns except the ``cache_*`` ones, which read 0
    (the PRECEDE verdict cache is interleaving-sensitive, so workers run
    cache-less to keep every column job-count-invariant).  See
    ``docs/ALGORITHM.md`` §12.
    """
    from repro.core.parallel_check import check_trace_parallel

    return check_trace_parallel(
        trace, jobs=jobs, backend=backend, names=names, obs=obs,
        progress=progress,
    )
