"""Instrumented shared-memory wrappers.

The paper instruments HJ bytecode so that "reads and writes to shared memory
locations" call into the race-detection library (Section 5: "all accesses to
instance/static fields and array elements").  In Python we make the
instrumentation explicit: workloads store shared state in the wrappers below,
whose ``read``/``write`` methods report the access to the runtime's observers
before touching the data.

Location keys are ``(name, index...)`` tuples — stable across runs, hashable,
and meaningful in race reports.

Design notes (hot path):

* Each wrapper caches ``runtime.record_read``/``record_write`` as bound
  attributes; an element access is then two function calls (record + the
  actual list/array indexing) with zero allocation beyond the key tuple.
* :class:`SharedArray` is backed by a plain Python list (arbitrary element
  types, e.g. future handles); numeric workloads can use numpy arrays *via*
  the same interface with :class:`SharedNDArray`.
* ``unchecked_*`` accessors bypass instrumentation for values the
  programming model treats as task-private (e.g. reading a tile you just
  computed inside the same task); workloads use them sparingly and only
  where the paper's model would see a register, not shared memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime

__all__ = [
    "SharedVar",
    "SharedArray",
    "SharedNDArray",
    "SharedMatrix",
    "SharedFutureCell",
]


class SharedVar:
    """One shared scalar location (an instance/static field in the paper)."""

    __slots__ = ("_record_read", "_record_write", "key", "_value")

    def __init__(self, runtime: "Runtime", name: str, value: Any = None) -> None:
        self._record_read = runtime.record_read
        self._record_write = runtime.record_write
        self.key = (name,)
        self._value = value

    def read(self) -> Any:
        """Instrumented read."""
        self._record_read(self.key)
        return self._value

    def write(self, value: Any) -> None:
        """Instrumented write."""
        self._record_write(self.key)
        self._value = value

    def peek(self) -> Any:
        """Uninstrumented read (verification/debugging only)."""
        return self._value

    def __repr__(self) -> str:
        return f"<SharedVar {self.key[0]}={self._value!r}>"


class SharedArray:
    """A 1-D shared array backed by a Python list.

    Every element is a distinct shared location ``(name, i)``.
    """

    __slots__ = ("_record_read", "_record_write", "name", "_data")

    def __init__(
        self,
        runtime: "Runtime",
        name: str,
        init: Iterable[Any] | int,
    ) -> None:
        self._record_read = runtime.record_read
        self._record_write = runtime.record_write
        self.name = name
        if isinstance(init, int):
            self._data: List[Any] = [None] * init
        else:
            self._data = list(init)

    def __len__(self) -> int:
        return len(self._data)

    def read(self, i: int) -> Any:
        """Instrumented element read."""
        self._record_read((self.name, i))
        return self._data[i]

    def write(self, i: int, value: Any) -> None:
        """Instrumented element write."""
        self._record_write((self.name, i))
        self._data[i] = value

    def peek(self, i: int) -> Any:
        """Uninstrumented element read (verification only)."""
        return self._data[i]

    def to_list(self) -> List[Any]:
        """Uninstrumented snapshot (verification only)."""
        return list(self._data)

    def __repr__(self) -> str:
        return f"<SharedArray {self.name}[{len(self._data)}]>"


class SharedNDArray:
    """An n-D shared numpy array with per-element instrumentation.

    Indexing is by tuple: ``a.read((i, j))``.  For tile-grained workloads
    (Jacobi, Strassen, Smith-Waterman at tile level) prefer modeling each
    tile as one location via :class:`SharedArray`/:class:`SharedMatrix` of
    tile objects — the paper's benchmarks instrument *element* accesses, but
    at Python speed a faithful per-element treatment is also provided and
    used by the scaled benchmark configurations.
    """

    __slots__ = ("_record_read", "_record_write", "name", "data")

    def __init__(
        self,
        runtime: "Runtime",
        name: str,
        shape_or_array,
        dtype=np.float64,
    ) -> None:
        self._record_read = runtime.record_read
        self._record_write = runtime.record_write
        self.name = name
        if isinstance(shape_or_array, np.ndarray):
            self.data = shape_or_array
        else:
            self.data = np.zeros(shape_or_array, dtype=dtype)

    @property
    def shape(self):
        return self.data.shape

    def read(self, idx) -> Any:
        self._record_read((self.name, idx))
        return self.data[idx]

    def write(self, idx, value) -> None:
        self._record_write((self.name, idx))
        self.data[idx] = value

    def read_block(self, slices, count: Optional[int] = None) -> np.ndarray:
        """Instrumented block read: one record per element (or ``count``
        coalesced records when the caller models coarser granularity), one
        vectorized numpy read."""
        view = self.data[slices]
        n = view.size if count is None else count
        rec = self._record_read
        key = (self.name, _slice_key(slices))
        for _ in range(n):
            rec(key)
        return view

    def peek(self, idx) -> Any:
        return self.data[idx]

    def __repr__(self) -> str:
        return f"<SharedNDArray {self.name}{self.data.shape}>"


def _slice_key(slices) -> tuple:
    """Stable hashable rendering of a slice tuple."""
    if not isinstance(slices, tuple):
        slices = (slices,)
    out = []
    for s in slices:
        if isinstance(s, slice):
            out.append(("slice", s.start, s.stop, s.step))
        else:
            out.append(s)
    return tuple(out)


class SharedMatrix:
    """A 2-D shared array of arbitrary objects, location per (row, col)."""

    __slots__ = ("_record_read", "_record_write", "name", "rows", "cols", "_data")

    def __init__(
        self, runtime: "Runtime", name: str, rows: int, cols: int
    ) -> None:
        self._record_read = runtime.record_read
        self._record_write = runtime.record_write
        self.name = name
        self.rows = rows
        self.cols = cols
        self._data: List[Any] = [None] * (rows * cols)

    def read(self, r: int, c: int) -> Any:
        self._record_read((self.name, r, c))
        return self._data[r * self.cols + c]

    def write(self, r: int, c: int, value: Any) -> None:
        self._record_write((self.name, r, c))
        self._data[r * self.cols + c] = value

    def peek(self, r: int, c: int) -> Any:
        return self._data[r * self.cols + c]

    def __repr__(self) -> str:
        return f"<SharedMatrix {self.name}[{self.rows}x{self.cols}]>"


class SharedFutureCell:
    """A shared location holding a future handle.

    Section 5 observes that future-parallelized benchmarks perform extra
    shared accesses precisely because "the reference to each future task must
    be subjected to at least one write access (when the future task is
    created) and one read access (when a get() operation is performed)".
    Storing handles in these cells reproduces that accounting — and lets the
    detector catch races on future references themselves, the root cause of
    the Appendix A deadlock.
    """

    __slots__ = ("_var",)

    def __init__(self, runtime: "Runtime", name: str) -> None:
        self._var = SharedVar(runtime, name, None)

    def put(self, handle) -> None:
        """Publish a future handle (instrumented write)."""
        self._var.write(handle)

    def take(self):
        """Fetch the handle (instrumented read); may be ``None`` if the
        publishing write has not executed — the racy-deadlock situation."""
        return self._var.read()

    @property
    def key(self):
        return self._var.key
