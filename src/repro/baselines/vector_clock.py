"""Vector-clock determinacy race detection — the impractical-but-general
baseline.

Section 1 / Section 6: "Race detection algorithms based on vector clocks
[1, 16] are impractical for these constructs because either the vector
clocks have to be allocated with a size proportional to the maximum number
of simultaneously live tasks (which can be unboundedly large) or precision
has to be sacrificed by assigning one clock per processor."

We implement the *precise* variant — one clock component per task — so the
benchmarks can exhibit the quadratic blow-up the paper predicts:
``benchmarks/bench_vector_clock_scaling.py`` sweeps task counts and shows
per-spawn cost growing with the number of tasks while the DTRG detector's
stays flat.

Clock discipline (serial DFS drives it, but the happens-before relation
tracked is the full computation-graph relation):

* spawn of ``C`` by ``P``: ``VC(C) = VC(P) ⊔ {C: 1}``, then ``P`` ticks;
* task end: the final clock is frozen (a *copy* — the live dict would
  otherwise alias state a later join could in principle mutate);
* ``get``/finish join of ``B`` into ``A``: ``VC(A) ⊔= VC_final(B)``, tick.
  The future ``get`` edge goes through exactly the same component-wise
  max as the end-finish join — the join rule is what makes this baseline
  *general* rather than async/finish-only, and it is pinned by the
  regression corpus entry ``tests/corpus/vc_future_get_join.json`` and
  audited against the brute-force oracle over thousands of future-heavy
  fuzz seeds (the ``vector-clock`` parity row).  A join whose producer
  has not ended is rejected with a pointed error: the runtime can never
  emit one (``get`` waits), so it signals a malformed hand-built or
  truncated trace, which used to surface as a bare ``KeyError``;
* access check via epochs: an access by ``t`` is stamped ``(t, VC(t)[t])``;
  a stamped access ``(u, c)`` happens-before current task ``t`` iff
  ``VC(t)[u] >= c``.

The same clock algebra, behind the detector's backend protocol instead
of a private shadow memory, is :class:`repro.core.vc_backend.VectorClockBackend`
(``DeterminacyRaceDetector(engine="vc")``).

Shadow memory: last-write epoch plus a read *map* (task → epoch) per
location; unlike the DTRG detector no bounded-reader lemma applies, so the
read map can hold one epoch per task that ever read the location — another
axis of the memory blow-up.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.baselines.base import BaselineDetector
from repro.core.races import AccessKind, ReportPolicy

__all__ = ["VectorClockDetector"]

Epoch = Tuple[int, int]  # (task tid, clock value)


class _Cell:
    __slots__ = ("write_epoch", "read_epochs")

    def __init__(self) -> None:
        self.write_epoch: Optional[Epoch] = None
        self.read_epochs: Dict[int, int] = {}


class VectorClockDetector(BaselineDetector):
    """Precise vector-clock detector supporting async, finish and future."""

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
    ) -> None:
        super().__init__(policy, dedupe=dedupe)
        self._clocks: Dict[int, Dict[int, int]] = {}
        self._final: Dict[int, Dict[int, int]] = {}
        self._cells: Dict[Hashable, _Cell] = {}
        # Instrumentation for the scaling benchmark.
        self.total_clock_entries_copied = 0

    # ------------------------------------------------------------------ #
    def on_init(self, main) -> None:
        self._remember_name(main)
        self._clocks[main.tid] = {main.tid: 1}

    def on_task_create(self, parent, child) -> None:
        self._remember_name(child)
        pvc = self._clocks[parent.tid]
        cvc = dict(pvc)  # O(|VC|) copy — the cost the paper warns about
        self.total_clock_entries_copied += len(pvc)
        cvc[child.tid] = 1
        self._clocks[child.tid] = cvc
        pvc[parent.tid] = pvc.get(parent.tid, 0) + 1

    def on_task_end(self, task) -> None:
        # Freeze by copy: joiners must see the clock as of the task's
        # last step.  (The live dict happens never to be mutated again —
        # only join *destinations* mutate, and a terminated task is never
        # a destination — but aliasing made that a global invariant
        # instead of a local one.)
        self._final[task.tid] = dict(self._clocks[task.tid])

    def on_get(self, consumer, producer) -> None:
        self._join(consumer.tid, producer.tid)

    def on_finish_end(self, scope) -> None:
        owner = scope.owner.tid
        for task in scope.joins:
            self._join(owner, task.tid)

    def on_write(self, task, loc) -> None:
        tid = task.tid
        vc = self._clocks[tid]
        cell = self._cell(loc)
        for rt, rc in cell.read_epochs.items():
            if rt != tid and vc.get(rt, 0) < rc:
                self._report_race(AccessKind.READ_WRITE, rt, tid, loc)
        cell.read_epochs.clear()
        we = cell.write_epoch
        if we is not None and we[0] != tid and vc.get(we[0], 0) < we[1]:
            self._report_race(AccessKind.WRITE_WRITE, we[0], tid, loc)
        cell.write_epoch = (tid, vc[tid])

    def on_read(self, task, loc) -> None:
        tid = task.tid
        vc = self._clocks[tid]
        cell = self._cell(loc)
        we = cell.write_epoch
        if we is not None and we[0] != tid and vc.get(we[0], 0) < we[1]:
            self._report_race(AccessKind.WRITE_READ, we[0], tid, loc)
        cell.read_epochs[tid] = vc[tid]

    # ------------------------------------------------------------------ #
    def _join(self, dst: int, src: int) -> None:
        dvc = self._clocks[dst]
        svc = self._final.get(src)
        if svc is None:
            raise ValueError(
                f"vector-clock join of task {src} before its task-end "
                "event: a get() cannot return before its producer ends, "
                "so the event stream is not a serial depth-first "
                "execution order"
            )
        self.total_clock_entries_copied += len(svc)
        for t, c in svc.items():
            if dvc.get(t, 0) < c:
                dvc[t] = c
        dvc[dst] = dvc.get(dst, 0) + 1

    def _cell(self, loc: Hashable) -> _Cell:
        cell = self._cells.get(loc)
        if cell is None:
            cell = _Cell()
            self._cells[loc] = cell
        return cell

    @property
    def max_clock_size(self) -> int:
        """Largest vector clock materialized — the memory-growth metric."""
        sizes = [len(vc) for vc in self._clocks.values()]
        return max(sizes) if sizes else 0
