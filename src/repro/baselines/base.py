"""Common surface shared by the baseline detectors.

Every baseline is an :class:`~repro.core.events.ExecutionObserver` exposing
the same result surface as the paper's detector — a
:class:`~repro.core.races.RaceReport` under ``.report`` — so harness code and
tests can swap detectors freely.  Baselines with a restricted model (SP-bags,
ESP-bags) raise
:class:`~repro.runtime.errors.UnsupportedConstructError` when the program
uses a construct outside it, which is itself part of the reproduction: the
paper's Section 1/6 argument is precisely that those algorithms cannot
express futures.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.events import ExecutionObserver
from repro.core.races import AccessKind, Race, RaceReport, ReportPolicy
from repro.runtime.errors import RaceError

__all__ = ["BaselineDetector"]


class BaselineDetector(ExecutionObserver):
    """Shared reporting plumbing for the baseline detectors."""

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
    ) -> None:
        if isinstance(policy, str):
            policy = ReportPolicy(policy)
        self.policy = policy
        self.report = RaceReport(dedupe=dedupe)
        self._names: dict[int, str] = {}

    @property
    def races(self):
        return self.report.races

    @property
    def racy_locations(self):
        return self.report.racy_locations

    def _remember_name(self, task) -> None:
        self._names[task.tid] = task.name

    def _report_race(
        self, kind: AccessKind, prev: int, cur: int, loc: Hashable
    ) -> None:
        race = Race(
            loc=loc,
            kind=kind,
            prev_task=prev,
            current_task=cur,
            prev_name=self._names.get(prev, ""),
            current_name=self._names.get(cur, ""),
        )
        if self.report.add(race) and self.policy is ReportPolicy.RAISE:
            raise RaceError(race)
