"""Brute-force race detection via transitive closure — the oracle.

Section 1 dismisses "brute force approaches such as building the transitive
closure of the happens-before relation" for production use; we build exactly
that as (a) the ground-truth oracle for Theorem 2 property tests and (b) a
baseline whose cost curves motivate the DTRG.

The detector records the full computation graph during execution and, at
shutdown, computes the step-level closure and enumerates conflicting
logically-parallel access pairs (Definition 3).  Reports surface at task
granularity for comparability with the on-the-fly detectors.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, List, Optional

from repro.baselines.base import BaselineDetector
from repro.core.races import AccessKind, ReportPolicy
from repro.graph.analysis import RacePair, ReachabilityClosure, find_races
from repro.graph.computation_graph import GraphBuilder

__all__ = ["BruteForceDetector"]


class BruteForceDetector(BaselineDetector):
    """Post-mortem exact detector; also exposes the graph and closure.

    ``max_pairs_per_loc`` limits enumerated pairs per location (default 1 —
    per-location verdicts only, which is what Theorem 2 speaks about);
    pass ``None`` for the full quadratic enumeration.
    """

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
        max_pairs_per_loc: Optional[int] = 1,
    ) -> None:
        super().__init__(policy, dedupe=dedupe)
        self._builder = GraphBuilder()
        self._max_pairs = max_pairs_per_loc
        self.closure: Optional[ReachabilityClosure] = None
        self.pairs: List[RacePair] = []

    # Delegate every structural hook to the embedded graph builder.
    def on_init(self, main) -> None:
        self._remember_name(main)
        self._builder.on_init(main)

    def on_task_create(self, parent, child) -> None:
        self._remember_name(child)
        self._builder.on_task_create(parent, child)

    def on_task_end(self, task) -> None:
        self._builder.on_task_end(task)

    def on_get(self, consumer, producer) -> None:
        self._builder.on_get(consumer, producer)

    def on_finish_start(self, scope) -> None:
        self._builder.on_finish_start(scope)

    def on_finish_end(self, scope) -> None:
        self._builder.on_finish_end(scope)

    def on_read(self, task, loc) -> None:
        self._builder.on_read(task, loc)

    def on_write(self, task, loc) -> None:
        self._builder.on_write(task, loc)

    def on_shutdown(self, main) -> None:
        graph = self._builder.graph
        self.closure = ReachabilityClosure(graph)
        self.pairs = find_races(
            graph, self.closure, max_pairs_per_loc=self._max_pairs
        )
        for pair in self.pairs:
            kind = _pair_kind(pair)
            self._report_race(kind, pair.first.task, pair.second.task, pair.loc)

    # ------------------------------------------------------------------ #
    @property
    def graph(self):
        """The recorded :class:`~repro.graph.computation_graph.ComputationGraph`."""
        return self._builder.graph

    def racy_location_set(self) -> FrozenSet[Hashable]:
        """Exact set of racy locations (alias of ``report.racy_locations``
        once shutdown ran)."""
        return frozenset(self.report.racy_locations)


def _pair_kind(pair: RacePair) -> AccessKind:
    if pair.first.is_write and pair.second.is_write:
        return AccessKind.WRITE_WRITE
    if pair.first.is_write:
        return AccessKind.WRITE_READ
    return AccessKind.READ_WRITE
