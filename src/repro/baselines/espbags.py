"""ESP-bags — race detection for async-finish parallelism (Raman et al.).

The paper's Section 5 compares its slowdowns on async-finish benchmarks
against "the ESP-Bags algorithm [23] that only supported async and finish".
This module implements that baseline so the comparison can be reproduced.

The algorithm generalizes Feng & Leiserson's SP-bags from Cilk's fully
strict spawn-sync to terminally strict async-finish.  Every task owns an
**S-bag** (descendants guaranteed to have joined — serialized with the
task's continuation) and every finish scope owns a **P-bag** (completed
tasks that may still run logically in parallel with code after them, until
the scope closes):

* spawn of ``C``             → make S-bag {C};
* ``C`` terminates           → S(C) merges into P(IEF(C));
* ``finish`` scope ``F`` ends → P(F) merges into S(owner);
* access check               → a previously recorded task ``u`` precedes the
  current step iff the bag currently containing ``u`` is an S-bag.

Shadow memory keeps one writer and one reader per location (sufficient for
async-finish by the paper's Lemma 4).  ``get`` raises
:class:`UnsupportedConstructError`: futures are exactly what this model
cannot express (non-tree joins have no bag to live in).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.baselines.base import BaselineDetector
from repro.core.disjoint_set import DisjointSets
from repro.core.races import AccessKind, ReportPolicy
from repro.runtime.errors import UnsupportedConstructError

__all__ = ["ESPBagsDetector", "BagKind"]


class BagKind:
    """Bag tags attached to disjoint sets."""

    S = "S"
    P = "P"


class _Cell:
    __slots__ = ("writer", "reader")

    def __init__(self) -> None:
        self.writer: Optional[int] = None
        self.reader: Optional[int] = None


class ESPBagsDetector(BaselineDetector):
    """ESP-bags detector for async-finish programs."""

    #: Set by subclasses that restrict the model further (SP-bags).
    _model_name = "ESP-bags"

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
    ) -> None:
        super().__init__(policy, dedupe=dedupe)
        self._bags: DisjointSets[int] = DisjointSets()  # elements: task tids
        self._kind: Dict[int, str] = {}  # set-representative -> bag kind
        # P-bag anchor element per finish scope: lazily created synthetic
        # elements (negative ids) so empty scopes cost nothing.
        self._scope_anchor: Dict[int, int] = {}
        self._cells: Dict[Hashable, _Cell] = {}

    # ------------------------------------------------------------------ #
    # Structure hooks                                                    #
    # ------------------------------------------------------------------ #
    def on_init(self, main) -> None:
        self._remember_name(main)
        self._bags.make_set(main.tid)
        self._kind[main.tid] = BagKind.S

    def on_task_create(self, parent, child) -> None:
        self._remember_name(child)
        self._bags.make_set(child.tid)
        self._kind[child.tid] = BagKind.S

    def on_task_end(self, task) -> None:
        if task.ief is None:
            return  # main: nothing outlives it
        # S(task) (which already absorbed the task's closed finish P-bags)
        # becomes parallel material of the enclosing scope.
        anchor = self._anchor(task.ief.fid)
        root = self._bags.union(anchor, task.tid)
        self._kind[root] = BagKind.P

    def on_get(self, consumer, producer) -> None:
        raise UnsupportedConstructError(
            f"{self._model_name} cannot model future get() operations "
            "(non-strict computation graphs)"
        )

    def on_finish_end(self, scope) -> None:
        fid = scope.fid
        anchor = self._scope_anchor.pop(fid, None)
        if anchor is None:
            return  # no task ever joined this scope
        # P(F) drains into S(owner): everything in it is now serialized
        # with the owner's continuation.
        root = self._bags.union(scope.owner.tid, anchor)
        self._kind[root] = BagKind.S

    # ------------------------------------------------------------------ #
    # Access checks                                                      #
    # ------------------------------------------------------------------ #
    def on_write(self, task, loc) -> None:
        cell = self._cell(loc)
        tid = task.tid
        r = cell.reader
        if r is not None and not self._precedes(r, tid):
            self._report_race(AccessKind.READ_WRITE, r, tid, loc)
        else:
            cell.reader = None  # superseded by this write
        w = cell.writer
        if w is not None and not self._precedes(w, tid):
            self._report_race(AccessKind.WRITE_WRITE, w, tid, loc)
        cell.writer = tid

    def on_read(self, task, loc) -> None:
        cell = self._cell(loc)
        tid = task.tid
        w = cell.writer
        if w is not None and not self._precedes(w, tid):
            self._report_race(AccessKind.WRITE_READ, w, tid, loc)
        r = cell.reader
        if r is None or self._precedes(r, tid):
            cell.reader = tid
        # else: keep the leftmost parallel reader (Lemma 4 covers us).

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #
    def _precedes(self, prev_tid: int, cur_tid: int) -> bool:
        """A recorded task precedes the current step iff its bag is an
        S-bag (or it *is* the current task)."""
        if prev_tid == cur_tid:
            return True
        return self._kind[self._bags.find(prev_tid)] == BagKind.S

    def _anchor(self, fid: int) -> int:
        anchor = self._scope_anchor.get(fid)
        if anchor is None:
            anchor = -(fid + 1)  # negative synthetic element, unique per scope
            self._bags.make_set(anchor)
            self._kind[anchor] = BagKind.P
            self._scope_anchor[fid] = anchor
        return anchor

    def _cell(self, loc: Hashable) -> _Cell:
        cell = self._cells.get(loc)
        if cell is None:
            cell = _Cell()
            self._cells[loc] = cell
        return cell
