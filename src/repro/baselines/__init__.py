"""Baseline race detectors the paper positions itself against (Sections 1, 6).

* :class:`BruteForceDetector` — exact transitive-closure oracle;
* :class:`SPBagsDetector` — Feng & Leiserson [15], fully strict spawn-sync;
* :class:`ESPBagsDetector` — Raman et al. [23/24], async-finish;
* :class:`SPD3Detector` — Raman et al. [25], DPST/LCA, async-finish;
* :class:`OffsetSpanDetector` — Mellor-Crummey [20], nested fork-join;
* :class:`VectorClockDetector` — [1, 16]-style, fully general but with
  per-task clocks whose size grows with the task count.
"""

from repro.baselines.base import BaselineDetector
from repro.baselines.brute_force import BruteForceDetector
from repro.baselines.espbags import ESPBagsDetector
from repro.baselines.offset_span import OffsetSpanDetector
from repro.baselines.spbags import SPBagsDetector
from repro.baselines.spd3 import SPD3Detector
from repro.baselines.vector_clock import VectorClockDetector

__all__ = [
    "BaselineDetector",
    "BruteForceDetector",
    "SPBagsDetector",
    "ESPBagsDetector",
    "SPD3Detector",
    "OffsetSpanDetector",
    "VectorClockDetector",
]
