"""Offset-Span labeling — Mellor-Crummey's detector for nested fork-join.

Related work [20]: "Mellor-Crummey presented Offset-Span labeling … The
idea behind their techniques is to attach a label to every thread in the
program and use these labels to check if two threads can execute
concurrently.  The length of the labels associated with each thread is
bounded by the maximum nesting depth of fork-join … While Offset-Span
labeling supports only nested fork-join constructs, our algorithm supports
a more general set of computation graphs."

The scheme: a thread carries a list of ``(offset, span)`` pairs.

* fork — the *i*-th forked child extends the parent's label with a fresh
  pair ``(i, S)``;
* join — the continuation *replaces the parent's last pair* ``(o, s)``
  with ``(o + s, s)``;
* happens-before — ``L1 ≺ L2`` iff ``L1`` is a proper prefix of ``L2`` or,
  at the first index where they differ, the pairs are ``(o1, s)`` /
  ``(o2, s)`` with ``o1 < o2`` and ``o1 ≡ o2 (mod s)``.

Dynamic fork widths: the classic scheme needs the fork's width as the
span.  An async-finish ``finish { async… }`` region does not know its
width up front, so we use a span larger than any realizable offset
(``WIDE``): within one fork region distinct offsets are then never
congruent (concurrent, as required), and join continuations bump the
parent's offset by exactly one span so congruence along the sequential
spine is preserved.  This is the standard trick that makes OS-labels work
for dynamic widths, and it preserves the label-length bound (nesting
depth), which is the property the paper contrasts with its constant-size
interval labels.

Model restrictions (violations raise
:class:`~repro.runtime.errors.UnsupportedConstructError`): strict nested
fork-join only —

* the owner of a ``finish`` may not touch shared memory, start another
  construct, or spawn from a *descendant* once the first child has been
  forked (the fork suspends the parent in the fork-join model);
* every ``async`` must be forked directly by the finish owner;
* futures are out of model entirely.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.baselines.base import BaselineDetector
from repro.core.races import AccessKind, ReportPolicy
from repro.runtime.errors import UnsupportedConstructError

__all__ = ["OffsetSpanDetector", "os_precedes", "WIDE"]

#: Span stand-in for "wider than any fork in this run".
WIDE = 1 << 60

Label = Tuple[Tuple[int, int], ...]


def os_precedes(l1: Label, l2: Label) -> bool:
    """The Offset-Span happens-before test (reflexive)."""
    for (o1, s1), (o2, s2) in zip(l1, l2):
        if o1 == o2 and s1 == s2:
            continue
        return s1 == s2 and o1 < o2 and (o2 - o1) % s1 == 0
    return len(l1) <= len(l2)  # equal or proper prefix


def os_concurrent(l1: Label, l2: Label) -> bool:
    return not os_precedes(l1, l2) and not os_precedes(l2, l1)


class _Region:
    """Bookkeeping for one open finish scope acting as a fork region."""

    __slots__ = ("owner_tid", "base_label", "next_offset", "forked")

    def __init__(self, owner_tid: int, base_label: Label) -> None:
        self.owner_tid = owner_tid
        self.base_label = base_label
        self.next_offset = 0
        self.forked = False


class _Cell:
    __slots__ = ("writer", "reader")

    def __init__(self) -> None:
        self.writer: Optional[Tuple[Label, int]] = None
        self.reader: Optional[Tuple[Label, int]] = None


class OffsetSpanDetector(BaselineDetector):
    """Offset-Span labeling detector for strict nested fork-join programs."""

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
    ) -> None:
        super().__init__(policy, dedupe=dedupe)
        self._labels: Dict[int, Label] = {}
        self._regions: Dict[int, _Region] = {}  # fid -> region
        self._region_stack: List[_Region] = []
        self._cells: Dict[Hashable, _Cell] = {}
        self.max_label_length = 0

    # ------------------------------------------------------------------ #
    def on_init(self, main) -> None:
        self._remember_name(main)
        self._labels[main.tid] = ((0, WIDE),)

    def on_finish_start(self, scope) -> None:
        # A forked owner is suspended in the fork-join model; opening a
        # nested region would hand out labels that collide with the open
        # fork's children.
        for region in reversed(self._region_stack):
            if region.owner_tid == scope.owner.tid:
                if region.forked:
                    raise UnsupportedConstructError(
                        "Offset-Span labeling: the owner started a nested "
                        "fork region between fork and join"
                    )
                break
        region = _Region(scope.owner.tid, self._labels[scope.owner.tid])
        self._regions[scope.fid] = region
        self._region_stack.append(region)

    def on_finish_end(self, scope) -> None:
        region = self._regions.pop(scope.fid)
        self._region_stack.pop()
        if region.forked:
            # Join: continuation bumps the parent's last pair by its span.
            label = self._labels[region.owner_tid]
            (o, s) = label[-1]
            self._labels[region.owner_tid] = label[:-1] + ((o + s, s),)

    def on_task_create(self, parent, child) -> None:
        self._remember_name(child)
        if child.is_future:
            raise UnsupportedConstructError(
                "Offset-Span labeling supports nested fork-join only; "
                "futures are out of model"
            )
        if child.ief is None or child.ief.fid not in self._regions:
            raise UnsupportedConstructError(
                "Offset-Span labeling requires every async inside a fork "
                "region (finish scope)"
            )
        region = self._regions[child.ief.fid]
        if region.owner_tid != parent.tid:
            raise UnsupportedConstructError(
                "Offset-Span labeling requires the fork region's owner to "
                f"fork all children; {child.name} was spawned by a "
                "different task"
            )
        label = region.base_label + ((region.next_offset, WIDE),)
        region.next_offset += 1
        region.forked = True
        self._labels[child.tid] = label
        if len(label) > self.max_label_length:
            self.max_label_length = len(label)

    def on_get(self, consumer, producer) -> None:
        raise UnsupportedConstructError(
            "Offset-Span labeling cannot model future get() operations"
        )

    # ------------------------------------------------------------------ #
    def _check_owner_quiescent(self, tid: int) -> None:
        """In fork-join, a parent that has forked is suspended until the
        join; any activity from it inside the open region is out of model."""
        for region in reversed(self._region_stack):
            if region.owner_tid == tid:
                if region.forked:
                    raise UnsupportedConstructError(
                        "Offset-Span labeling: the fork region's owner "
                        "accessed shared memory between fork and join "
                        "(not expressible in strict nested fork-join)"
                    )
                return  # innermost own region not yet forked: fine
            # Regions owned by others don't constrain this task.

    def on_write(self, task, loc) -> None:
        self._check_owner_quiescent(task.tid)
        label = self._labels[task.tid]
        cell = self._cell(loc)
        r = cell.reader
        if r is not None and os_concurrent(r[0], label):
            self._report_race(AccessKind.READ_WRITE, r[1], task.tid, loc)
        else:
            cell.reader = None
        w = cell.writer
        if w is not None and os_concurrent(w[0], label):
            self._report_race(AccessKind.WRITE_WRITE, w[1], task.tid, loc)
        cell.writer = (label, task.tid)

    def on_read(self, task, loc) -> None:
        self._check_owner_quiescent(task.tid)
        label = self._labels[task.tid]
        cell = self._cell(loc)
        w = cell.writer
        if w is not None and os_concurrent(w[0], label):
            self._report_race(AccessKind.WRITE_READ, w[1], task.tid, loc)
        r = cell.reader
        if r is None or os_precedes(r[0], label):
            cell.reader = (label, task.tid)

    def _cell(self, loc: Hashable) -> _Cell:
        cell = self._cells.get(loc)
        if cell is None:
            cell = _Cell()
            self._cells[loc] = cell
        return cell
