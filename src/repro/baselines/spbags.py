"""SP-bags — Feng & Leiserson's detector for Cilk's fully strict model.

Cilk's spawn-sync discipline is *fully strict*: a task may be joined only by
its own parent (``sync`` waits for the parent's outstanding children).  In
async-finish vocabulary that means every async's Immediately Enclosing
Finish must be owned by the async's own parent — ``finish`` plays the role
of an enclosing ``sync`` region.

The bag mechanics are identical to ESP-bags (ESP-bags *is* the async-finish
generalization of SP-bags), so :class:`SPBagsDetector` reuses them and adds
the structural restriction: it rejects terminally-strict programs (asyncs
that escape to an ancestor's finish) and, like ESP-bags, rejects futures.
This keeps the baseline honest about which computation graphs each
algorithm class supports — the core claim of the paper's related-work
comparison (Section 6).
"""

from __future__ import annotations

from repro.baselines.espbags import ESPBagsDetector
from repro.runtime.errors import UnsupportedConstructError

__all__ = ["SPBagsDetector"]


class SPBagsDetector(ESPBagsDetector):
    """SP-bags: ESP-bags restricted to fully strict (spawn-sync) programs."""

    _model_name = "SP-bags"

    def on_task_create(self, parent, child) -> None:
        if child.ief is not None and child.ief.owner is not parent:
            raise UnsupportedConstructError(
                "SP-bags requires fully strict computations: task "
                f"{child.name} escapes its parent into an ancestor's finish "
                f"(owned by {child.ief.owner.name}); use ESP-bags or the "
                "futures detector"
            )
        super().on_task_create(parent, child)
