"""SPD3 — race detection via the Dynamic Program Structure Tree.

Related work [25] (Raman, Zhao, Sarkar, Vechev, Yahav, PLDI 2012): for
async-finish programs, whether two steps may execute logically in parallel
"can still be determined efficiently by a lookup of the lowest common
ancestor of the instructions in the dynamic program structure tree"
(the paper's Section 1/6 summary of SPD3).

The **DPST** has one internal node per dynamic ``async`` and ``finish``
instance and one leaf per *step*; a node's children are ordered left to
right in creation order.  The May-Happen-in-Parallel query for two steps
``s1``, ``s2`` with ``s1`` to the left (= earlier in the serial depth-first
execution):

    DMHP(s1, s2)  =  the child of LCA(s1, s2) on the path to s1
                     is an ASYNC node.

Intuition: everything under an async subtree runs asynchronously with the
code to its right until the enclosing finish closes — and the enclosing
finish, if already closed, would *be* the LCA's child boundary instead.

Shadow memory: one writer and one reader step per location.  SPD3 proper
stores *two* readers so that checks can run from concurrently executing
tasks; under serial depth-first detection a single reader is sufficient by
the paper's Lemma 4 (we document this simplification; ESP-bags makes the
same choice).  Futures raise
:class:`~repro.runtime.errors.UnsupportedConstructError` — non-tree joins
have no DPST expression, which is precisely the gap the DTRG fills.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, List, Optional

from repro.baselines.base import BaselineDetector
from repro.core.races import AccessKind, ReportPolicy
from repro.runtime.errors import UnsupportedConstructError

__all__ = ["SPD3Detector", "DpstNode", "DpstNodeKind"]


class DpstNodeKind(enum.Enum):
    FINISH = "finish"
    ASYNC = "async"
    STEP = "step"


class DpstNode:
    """One DPST node.  ``index`` is the global creation (= left-to-right)
    order, used to decide which of two steps is the earlier one."""

    __slots__ = ("kind", "parent", "depth", "index")

    def __init__(
        self, kind: DpstNodeKind, parent: Optional["DpstNode"], index: int
    ) -> None:
        self.kind = kind
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Dpst {self.kind.value}#{self.index} d={self.depth}>"


class _Cell:
    __slots__ = ("writer", "reader")

    def __init__(self) -> None:
        self.writer: Optional[DpstNode] = None
        self.reader: Optional[DpstNode] = None


class SPD3Detector(BaselineDetector):
    """DPST/LCA-based detector for async-finish programs."""

    def __init__(
        self,
        policy: ReportPolicy | str = ReportPolicy.COLLECT,
        *,
        dedupe: bool = True,
    ) -> None:
        super().__init__(policy, dedupe=dedupe)
        self._next_index = 0
        self.root: Optional[DpstNode] = None
        # Innermost open internal node per task (tasks execute one at a
        # time under DFS, but escaping asyncs need per-task context).
        self._context: Dict[int, DpstNode] = {}
        self._current_step: Dict[int, Optional[DpstNode]] = {}
        self._step_task: Dict[DpstNode, int] = {}
        self._cells: Dict[Hashable, _Cell] = {}
        self.num_nodes = 0
        self.num_lca_queries = 0

    # ------------------------------------------------------------------ #
    # DPST construction                                                  #
    # ------------------------------------------------------------------ #
    def _node(self, kind: DpstNodeKind, parent: Optional[DpstNode]) -> DpstNode:
        node = DpstNode(kind, parent, self._next_index)
        self._next_index += 1
        self.num_nodes += 1
        return node

    def _step(self, tid: int) -> DpstNode:
        step = self._current_step.get(tid)
        if step is None:
            step = self._node(DpstNodeKind.STEP, self._context[tid])
            self._current_step[tid] = step
            self._step_task[step] = tid
        return step

    def _boundary(self, tid: int) -> None:
        self._current_step[tid] = None

    # ------------------------------------------------------------------ #
    # Observer hooks                                                     #
    # ------------------------------------------------------------------ #
    def on_init(self, main) -> None:
        self._remember_name(main)
        self.root = self._node(DpstNodeKind.FINISH, None)
        self._context[main.tid] = self.root

    def on_finish_start(self, scope) -> None:
        if scope.enclosing is None:
            return  # the implicit root finish is the DPST root itself
        tid = scope.owner.tid
        self._boundary(tid)
        self._context[tid] = self._node(
            DpstNodeKind.FINISH, self._context[tid]
        )

    def on_finish_end(self, scope) -> None:
        if scope.enclosing is None:
            return
        tid = scope.owner.tid
        self._boundary(tid)
        node = self._context[tid]
        assert node.kind is DpstNodeKind.FINISH
        self._context[tid] = node.parent

    def on_task_create(self, parent, child) -> None:
        self._remember_name(child)
        if child.is_future:
            raise UnsupportedConstructError(
                "SPD3 supports async-finish only; future tasks create "
                "non-tree joins outside the DPST model"
            )
        tid = parent.tid
        self._boundary(tid)
        # The async node hangs off the spawner's innermost open scope.
        self._context[child.tid] = self._node(
            DpstNodeKind.ASYNC, self._context[tid]
        )

    def on_task_end(self, task) -> None:
        self._boundary(task.tid)

    def on_get(self, consumer, producer) -> None:
        raise UnsupportedConstructError(
            "SPD3 cannot model future get() operations"
        )

    # ------------------------------------------------------------------ #
    # DMHP + access checks                                               #
    # ------------------------------------------------------------------ #
    def dmhp(self, s1: DpstNode, s2: DpstNode) -> bool:
        """May ``s1`` and ``s2`` happen in parallel?

        Order-insensitive: internally orders the two steps by creation
        index so the "child toward the earlier step" rule applies.
        """
        self.num_lca_queries += 1
        if s1 is s2:
            return False
        if s1.index > s2.index:
            s1, s2 = s2, s1
        # Walk up to equal depth, remembering s1's last hop.
        a, b = s1, s2
        child_a: Optional[DpstNode] = None
        while a.depth > b.depth:
            child_a, a = a, a.parent
        while b.depth > a.depth:
            b = b.parent
        while a is not b:
            child_a, a = a, a.parent
            b = b.parent
        # `a` is the LCA; `child_a` its child on the path to s1 (None only
        # if s1 were an ancestor of s2 — impossible for two step leaves).
        assert child_a is not None
        return child_a.kind is DpstNodeKind.ASYNC

    def _precedes(self, prev: DpstNode, cur: DpstNode) -> bool:
        return not self.dmhp(prev, cur)

    def on_write(self, task, loc) -> None:
        cur = self._step(task.tid)
        cell = self._cell(loc)
        r = cell.reader
        if r is not None and not self._precedes(r, cur):
            self._report_race(
                AccessKind.READ_WRITE, self._step_task[r], task.tid, loc
            )
        else:
            cell.reader = None
        w = cell.writer
        if w is not None and not self._precedes(w, cur):
            self._report_race(
                AccessKind.WRITE_WRITE, self._step_task[w], task.tid, loc
            )
        cell.writer = cur

    def on_read(self, task, loc) -> None:
        cur = self._step(task.tid)
        cell = self._cell(loc)
        w = cell.writer
        if w is not None and not self._precedes(w, cur):
            self._report_race(
                AccessKind.WRITE_READ, self._step_task[w], task.tid, loc
            )
        r = cell.reader
        if r is None or self._precedes(r, cur):
            cell.reader = cur

    def _cell(self, loc: Hashable) -> _Cell:
        cell = self._cells.get(loc)
        if cell is None:
            cell = _Cell()
            self._cells[loc] = cell
        return cell
