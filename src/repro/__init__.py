"""Dynamic determinacy race detection for task parallelism with futures.

A complete Python reproduction of Surendran & Sarkar, *Dynamic Determinacy
Race Detection for Task Parallelism with Futures* (SPAA 2016 brief
announcement / full Rice TR): a serial depth-first async/finish/future
runtime, the dynamic task reachability graph detector (Algorithms 1-10),
baseline detectors (SP-bags, ESP-bags, vector clocks, brute force), the
Table 2 benchmark suite, and an experiment harness.

Quickstart::

    from repro import DeterminacyRaceDetector, Runtime, SharedArray

    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det])
    data = SharedArray(rt, "data", [0, 0])

    def program(rt):
        with rt.finish():
            rt.async_(lambda: data.write(0, 1))
            rt.async_(lambda: data.write(0, 2))   # races with the first!

    rt.run(program)
    print(det.report.summary())
"""

from repro.core.detector import DeterminacyRaceDetector
from repro.core.exact import ExactDetector
from repro.core.events import ExecutionObserver, Trace
from repro.core.parallel_detector import ParallelRaceDetector
from repro.core.races import AccessKind, Race, RaceReport, ReportPolicy
from repro.core.reachability import DynamicTaskReachabilityGraph
from repro.obs import MetricsRegistry, Observability, RingTracer
from repro.memory.shared import (
    SharedArray,
    SharedFutureCell,
    SharedMatrix,
    SharedNDArray,
    SharedVar,
)
from repro.runtime.errors import (
    NullFutureError,
    RaceError,
    ReproError,
    RuntimeStateError,
    UnsupportedConstructError,
)
from repro.runtime.asyncio_runtime import AsyncioRuntime
from repro.runtime.base import RuntimeBase
from repro.runtime.executor import ThreadRuntime
from repro.runtime.future import FutureHandle
from repro.runtime.runtime import Runtime
from repro.runtime.task import Task, TaskKind

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # runtime
    "Runtime",
    "RuntimeBase",
    "ThreadRuntime",
    "AsyncioRuntime",
    "Task",
    "TaskKind",
    "FutureHandle",
    # detector
    "DeterminacyRaceDetector",
    "ParallelRaceDetector",
    "ExactDetector",
    "DynamicTaskReachabilityGraph",
    "ExecutionObserver",
    "Trace",
    "Race",
    "RaceReport",
    "ReportPolicy",
    "AccessKind",
    # shared memory
    "SharedVar",
    "SharedArray",
    "SharedNDArray",
    "SharedMatrix",
    "SharedFutureCell",
    # observability
    "Observability",
    "RingTracer",
    "MetricsRegistry",
    # errors
    "ReproError",
    "RuntimeStateError",
    "NullFutureError",
    "RaceError",
    "UnsupportedConstructError",
]
