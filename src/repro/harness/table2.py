"""Regenerate the paper's Table 2 ("Runtime overhead for determinacy race
detection").

Usage::

    python -m repro.harness.table2 [--scale tiny|small|table2]
                                   [--repeats N] [--bench NAME ...]
                                   [--jobs N]
                                   [--metrics-json FILE] [--perfetto FILE]

Prints the measured table followed by the paper's values and the
qualitative checks DESIGN.md promises (NT-join zeros, the future-variant
#SharedMem delta, #AvgReaders ranges).  EXPERIMENTS.md archives one run.

``--jobs N`` (N > 1) appends a parallel-checking section: each row's
trace is re-checked by the two-phase sharded checker at jobs 1 and N
(``docs/ALGORITHM.md`` §12), reporting check wall times, the speedup,
and an ``identical`` qualitative check — the sharded checker must
reproduce the sequential summary and counters byte-for-byte, so the
Table 2 columns are job-count-invariant by construction.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.harness.report import render_table
from repro.harness.runner import (
    BENCHMARKS,
    EXTENDED_BENCHMARKS,
    BenchmarkResult,
    ParallelBenchResult,
    run_benchmark,
    run_parallel_benchmark,
)

__all__ = ["main", "PAPER_TABLE2"]

#: The paper's Table 2 (milliseconds; #AvgReaders was unreadable in the
#: source scan and is reported qualitatively in the text).
PAPER_TABLE2 = [
    {"Benchmark": "Series-af", "#Tasks": 999_999, "#NTJoins": 0,
     "#SharedMem": 4_000_059, "Seq (ms)": 483_224, "Racedet (ms)": 484_746,
     "Slowdown": 1.00},
    {"Benchmark": "Series-future", "#Tasks": 999_999, "#NTJoins": 0,
     "#SharedMem": 6_000_059, "Seq (ms)": 487_134, "Racedet (ms)": 487_985,
     "Slowdown": 1.00},
    {"Benchmark": "Crypt-af", "#Tasks": 12_500_000, "#NTJoins": 0,
     "#SharedMem": 1_150_000_682, "Seq (ms)": 15_375, "Racedet (ms)": 119_504,
     "Slowdown": 7.77},
    {"Benchmark": "Crypt-future", "#Tasks": 12_500_000, "#NTJoins": 0,
     "#SharedMem": 1_175_000_682, "Seq (ms)": 15_517, "Racedet (ms)": 128_234,
     "Slowdown": 8.26},
    {"Benchmark": "Jacobi", "#Tasks": 8_192, "#NTJoins": 34_944,
     "#SharedMem": 641_499_805, "Seq (ms)": 3_402, "Racedet (ms)": 27_388,
     "Slowdown": 8.05},
    {"Benchmark": "Smith-Waterman", "#Tasks": 1_608, "#NTJoins": 4_641,
     "#SharedMem": 1_652_175_806, "Seq (ms)": 3_488, "Racedet (ms)": 34_558,
     "Slowdown": 9.92},
    {"Benchmark": "Strassen", "#Tasks": 30_811, "#NTJoins": 33_612,
     "#SharedMem": 1_610_522_196, "Seq (ms)": 6_281, "Racedet (ms)": 33_618,
     "Slowdown": 5.35},
]


def qualitative_checks(results: Dict[str, BenchmarkResult]) -> List[str]:
    """The scale-invariant Table 2 relationships (see DESIGN.md §4)."""
    checks: List[str] = []

    def check(label: str, ok: bool) -> None:
        checks.append(f"[{'PASS' if ok else 'FAIL'}] {label}")

    for name in ("Series-af", "Series-future", "Crypt-af", "Crypt-future"):
        if name in results:
            check(f"{name}: #NTJoins == 0",
                  results[name].metrics.num_nt_joins == 0)
    for name in ("Jacobi", "Smith-Waterman", "Strassen"):
        if name in results:
            check(f"{name}: #NTJoins > 0",
                  results[name].metrics.num_nt_joins > 0)
    for base in ("Series", "Crypt"):
        af, fut = f"{base}-af", f"{base}-future"
        if af in results and fut in results:
            delta = (results[fut].metrics.num_shared_accesses
                     - results[af].metrics.num_shared_accesses)
            tasks = results[fut].metrics.num_tasks
            check(
                f"{base}: #SharedMem(future) - #SharedMem(af) == 2 x #Tasks"
                f" ({delta:,} vs {2 * tasks:,})",
                delta == 2 * tasks,
            )
    for name in ("Series-af", "Crypt-af"):
        if name in results:
            check(f"{name}: #AvgReaders in [0, 1]",
                  0.0 <= results[name].avg_readers <= 1.0)
    if "Crypt-af" in results and "Crypt-future" in results:
        check(
            "Crypt: #AvgReaders(future) > #AvgReaders(af)",
            results["Crypt-future"].avg_readers
            > results["Crypt-af"].avg_readers,
        )
    for name, res in results.items():
        check(f"{name}: race-free (0 races reported)", res.races == 0)
    for name, res in results.items():
        # The PRECEDE cache only ever *answers* queries the shadow memory
        # issued, and its hit rate is a probability by construction; a
        # violation means the caching layer is miscounting (or answering
        # queries that never happened — a soundness smell).
        perf = res.perf
        check(
            f"{name}: precede cache consistent "
            f"(hits {perf.cache_hits:,} + misses {perf.cache_misses:,} "
            f"<= queries {perf.precede_queries:,}, "
            f"hit-rate {perf.cache_hit_rate:.2f})",
            perf.cache_hits + perf.cache_misses <= perf.precede_queries
            and 0.0 <= perf.cache_hit_rate <= 1.0,
        )
    if "Series-af" in results and "Crypt-af" in results:
        check(
            "Slowdown(Series-af) < Slowdown(Crypt-af) "
            "(work-per-access ordering)",
            results["Series-af"].slowdown_vs_instrumented
            < results["Crypt-af"].slowdown_vs_instrumented,
        )
    return checks


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "table2"))
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--bench", nargs="*", default=None,
                        help="subset of benchmark names (default: all)")
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="N > 1: also check each row's trace with the "
                             "sharded parallel checker at jobs 1 and N")
    parser.add_argument("--extended", action="store_true",
                        help="also run the extension rows (SOR, NQueens, "
                             "LUFact, ReduceTree)")
    parser.add_argument("--metrics-json", metavar="FILE", dest="metrics_json",
                        help="dump the observability registry (PRECEDE "
                             "latency/frontier histograms, cache timeline) "
                             "accumulated over the Racedet runs")
    parser.add_argument("--perfetto", metavar="FILE",
                        help="write a Chrome trace of the Racedet runs")
    args = parser.parse_args(argv)

    obs = None
    if args.metrics_json or args.perfetto:
        from repro.obs import Observability, RingTracer

        obs = Observability(
            tracer=RingTracer() if args.perfetto else None
        )

    known = dict(BENCHMARKS)
    known.update(EXTENDED_BENCHMARKS)
    names = args.bench or (
        list(BENCHMARKS) + (list(EXTENDED_BENCHMARKS) if args.extended else [])
    )
    unknown = [n for n in names if n not in known]
    if unknown:
        parser.error(f"unknown benchmarks: {unknown}; "
                     f"choose from {list(known)}")

    results: Dict[str, BenchmarkResult] = {}
    for name in names:
        print(f"running {name} (scale={args.scale}) ...", file=sys.stderr)
        results[name] = run_benchmark(
            name, args.scale, repeats=args.repeats,
            verify=not args.no_verify, obs=obs,
        )

    print(f"\nTable 2 reproduction (scale={args.scale}, Python "
          f"{sys.version.split()[0]}):\n")
    print(render_table([results[n].row() for n in names]))
    print("\nPaper's Table 2 (16-core Ivybridge, JDK 1.7, Size-C inputs):\n")
    print(render_table([r for r in PAPER_TABLE2 if r["Benchmark"] in names]))
    print("\nQualitative checks:")
    for line in qualitative_checks(results):
        print(" ", line)

    if args.jobs > 1:
        parallel: Dict[str, ParallelBenchResult] = {}
        for name in names:
            print(f"parallel-checking {name} (jobs=1,{args.jobs}) ...",
                  file=sys.stderr)
            parallel[name] = run_parallel_benchmark(
                name, args.scale, jobs=(1, args.jobs),
                repeats=args.repeats, verify=False,
            )
        print(f"\nTwo-phase sharded checker (jobs=1 vs {args.jobs}):\n")
        print(render_table([
            {
                "Benchmark": name,
                "#Accesses": p.num_access_events,
                "Freeze (ms)": round(p.freeze_seconds * 1e3, 2),
                "Check@1 (ms)": round(
                    p.per_jobs[1]["seconds"] * 1e3, 1
                ),
                f"Check@{args.jobs} (ms)": round(
                    p.per_jobs[args.jobs]["seconds"] * 1e3, 1
                ),
                "Speedup": round(p.speedup(args.jobs), 2),
                "Identical": p.identical,
            }
            for name, p in parallel.items()
        ]))
        print("\nParallel determinism checks:")
        for name, p in parallel.items():
            status = "PASS" if p.identical else "FAIL"
            print(f"  [{status}] {name}: jobs={args.jobs} summary and "
                  "counters byte-identical to jobs=1")
    if obs is not None:
        from repro.harness.report import render_metrics

        print("\nObservability (Racedet runs):\n")
        print(render_metrics(obs.registry.as_dict()))
        if args.metrics_json:
            obs.write_metrics(args.metrics_json)
            print(f"\nmetrics written to {args.metrics_json}")
        if args.perfetto:
            obs.write_trace(args.perfetto)
            print(f"perfetto trace written to {args.perfetto}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
