"""Benchmark registry and single-benchmark execution for the harness.

Maps the seven Table 2 rows to workload entry points and runs one row in
the paper's three configurations:

* ``Seq``          — serial elision, uninstrumented (paper's Seq column);
* ``Instrumented`` — runtime + shared wrappers + metrics, *no* detector.
  The paper's bytecode instrumentation is nearly free on the JVM; in
  CPython the wrapper calls dominate, so we report this middle bar to keep
  the ``Racedet/Instrumented`` ratio comparable to the paper's
  ``Racedet/Seq`` (see EXPERIMENTS.md for the discussion);
* ``Racedet``      — instrumentation + the determinacy race detector.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.harness.metrics import DetectorPerf, Metrics
from repro.workloads import (
    crypt_idea,
    jacobi,
    lufact,
    nqueens,
    reduce_tree,
    series,
    smith_waterman,
    sor,
    strassen,
)
from repro.workloads.common import run_instrumented

__all__ = [
    "BenchmarkDef",
    "BenchmarkResult",
    "ParallelBenchResult",
    "BENCHMARKS",
    "EXTENDED_BENCHMARKS",
    "run_benchmark",
    "run_parallel_benchmark",
]


@dataclass(frozen=True)
class BenchmarkDef:
    """One Table 2 row: names, entry points, verification."""

    name: str
    module: Any
    parallel_entry: str  #: attribute name: "run_af" or "run_future"

    def params(self, scale: str):
        return self.module.default_params(scale)

    def serial(self, params) -> Any:
        return self.module.serial(params)

    def parallel(self, rt, params) -> Any:
        return getattr(self.module, self.parallel_entry)(rt, params)

    def verify(self, params, result) -> None:
        self.module.verify(params, result)


#: The seven Table 2 rows, in the paper's order.
BENCHMARKS: Dict[str, BenchmarkDef] = {
    b.name: b
    for b in [
        BenchmarkDef("Series-af", series, "run_af"),
        BenchmarkDef("Series-future", series, "run_future"),
        BenchmarkDef("Crypt-af", crypt_idea, "run_af"),
        BenchmarkDef("Crypt-future", crypt_idea, "run_future"),
        BenchmarkDef("Jacobi", jacobi, "run_future"),
        BenchmarkDef("Smith-Waterman", smith_waterman, "run_future"),
        BenchmarkDef("Strassen", strassen, "run_future"),
    ]
}

#: Extension rows (not part of the paper's Table 2): broaden the overhead
#: picture — a second stencil, a fully strict search, a blocked LU, and
#: the zero-shared-access functional extreme.
EXTENDED_BENCHMARKS: Dict[str, BenchmarkDef] = {
    b.name: b
    for b in [
        BenchmarkDef("SOR-af", sor, "run_af"),
        BenchmarkDef("SOR-future", sor, "run_future"),
        BenchmarkDef("NQueens", nqueens, "run_af"),
        BenchmarkDef("LUFact", lufact, "run_future"),
        BenchmarkDef("ReduceTree", reduce_tree, "run_future"),
    ]
}


@dataclass
class BenchmarkResult:
    """Everything the Table 2 row reports, plus the extra middle bar."""

    name: str
    scale: str
    metrics: Metrics
    avg_readers: float
    seq_seconds: float
    instrumented_seconds: float
    racedet_seconds: float
    races: int
    perf: DetectorPerf = field(default_factory=DetectorPerf)

    @property
    def slowdown_vs_seq(self) -> float:
        """The paper's Slowdown column (Racedet / Seq)."""
        return self.racedet_seconds / self.seq_seconds if self.seq_seconds else 0.0

    @property
    def slowdown_vs_instrumented(self) -> float:
        """Detector-only slowdown (Racedet / Instrumented) — the CPython
        analogue of the paper's ratio, with interpreter dispatch factored
        out of the baseline."""
        if not self.instrumented_seconds:
            return 0.0
        return self.racedet_seconds / self.instrumented_seconds

    def row(self) -> Dict[str, Any]:
        row = {
            "Benchmark": self.name,
            "#Tasks": self.metrics.num_tasks,
            "#NTJoins": self.metrics.num_nt_joins,
            "#SharedMem": self.metrics.num_shared_accesses,
            "#AvgReaders": round(self.avg_readers, 2),
        }
        # Cache/fast-path observability sits next to #AvgReaders: both
        # describe the per-access work the detector actually did.
        row.update(self.perf.as_row())
        row.update({
            "Seq (ms)": round(self.seq_seconds * 1e3, 1),
            "Instr (ms)": round(self.instrumented_seconds * 1e3, 1),
            "Racedet (ms)": round(self.racedet_seconds * 1e3, 1),
            "Slowdown": round(self.slowdown_vs_seq, 2),
            "Slowdown/Instr": round(self.slowdown_vs_instrumented, 2),
        })
        return row


@dataclass
class ParallelBenchResult:
    """One workload checked by the two-phase sharded checker at several
    job counts (``docs/ALGORITHM.md`` §12).

    ``per_jobs`` maps each job count to its best-of-``repeats`` wall
    times: ``seconds`` is the full check (build + freeze + fan-out +
    merge), ``check_seconds`` the fan-out stage alone, ``speedup`` is
    relative to the jobs=1 ``seconds``.  ``identical`` records whether
    every job count reproduced the jobs=1 ``summary()`` text and
    ``perf_stats`` byte-for-byte — the determinism contract, asserted by
    the caller, not here, so a violation still lands in the artifact.
    """

    name: str
    scale: str
    num_events: int
    num_access_events: int
    num_tasks: int
    num_locations: int
    races: int
    freeze_seconds: float
    snapshot_bytes: int
    bytes_per_task: float
    identical: bool
    per_jobs: Dict[int, Dict[str, float]]

    def speedup(self, jobs: int) -> float:
        base = self.per_jobs.get(1, {}).get("seconds", 0.0)
        ours = self.per_jobs.get(jobs, {}).get("seconds", 0.0)
        return base / ours if ours else 0.0


def run_parallel_benchmark(
    name: str,
    scale: str = "small",
    *,
    jobs: tuple = (1, 2, 4),
    repeats: int = 1,
    verify: bool = True,
    backend: Optional[str] = None,
) -> ParallelBenchResult:
    """Record one workload's trace, then check it at each job count.

    The workload runs **once** with only a trace recorder attached
    (phase 1); every job count then re-checks the same recorded stream
    (phase 2), so the comparison isolates checker throughput from
    workload execution.  Wall times are best-of-``repeats`` per job
    count, like :func:`run_benchmark`.
    """
    from repro.core.parallel_check import check_trace_parallel
    from repro.memory.tracer import TraceRecorder

    bench = BENCHMARKS.get(name) or EXTENDED_BENCHMARKS[name]
    params = bench.params(scale)

    recorder = TraceRecorder()
    run = run_instrumented(
        lambda rt: bench.parallel(rt, params),
        detect=False,
        extra_observers=(recorder,),
    )
    if verify:
        bench.verify(params, run.result)
    trace = recorder.trace

    golden_summary: Optional[str] = None
    golden_perf: Optional[Dict[str, Any]] = None
    identical = True
    per_jobs: Dict[int, Dict[str, float]] = {}
    result = None
    for n in jobs:
        best_total = float("inf")
        best_check = float("inf")
        best_freeze = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = check_trace_parallel(trace, jobs=n, backend=backend)
            wall = time.perf_counter() - start
            best_total = min(best_total, wall)
            best_check = min(
                best_check, result.timings["check_seconds"]
            )
            best_freeze = min(
                best_freeze, result.timings["freeze_seconds"]
            )
        assert result is not None
        if golden_summary is None:
            golden_summary = result.summary()
            golden_perf = result.perf_stats
        elif (result.summary() != golden_summary
              or result.perf_stats != golden_perf):
            identical = False
        per_jobs[n] = {
            "seconds": best_total,
            "check_seconds": best_check,
            "freeze_seconds": best_freeze,
        }
    assert result is not None
    base = per_jobs.get(jobs[0], {}).get("seconds", 0.0)
    for n in jobs:
        row = per_jobs[n]
        row["speedup"] = base / row["seconds"] if row["seconds"] else 0.0
    snapshot_bytes = result.snapshot.nbytes
    return ParallelBenchResult(
        name=name,
        scale=scale,
        num_events=result.num_events,
        num_access_events=result.num_access_events,
        num_tasks=result.num_tasks,
        num_locations=result.num_locations,
        races=len(result.races),
        freeze_seconds=per_jobs[jobs[0]]["freeze_seconds"],
        snapshot_bytes=snapshot_bytes,
        bytes_per_task=(
            snapshot_bytes / result.num_tasks if result.num_tasks else 0.0
        ),
        identical=identical,
        per_jobs=per_jobs,
    )


def run_benchmark(
    name: str,
    scale: str = "small",
    *,
    repeats: int = 1,
    verify: bool = True,
    obs=None,
) -> BenchmarkResult:
    """Run one Table 2 row in all three configurations.

    ``repeats`` keeps the best wall time per configuration (the paper uses
    the mean of 10 in-JVM runs to dodge JIT warmup; CPython has no warmup,
    so min-of-N suffices and is the conventional choice for interpreted
    code).

    ``obs`` (an :class:`repro.obs.Observability`) instruments the *Racedet*
    configuration only — the Seq and Instrumented bars stay untouched so
    the reported slowdowns keep their meaning.  The structural Table-2
    columns are identical with and without it (pinned by
    ``tests/integration/test_obs_integration.py``).
    """
    bench = BENCHMARKS.get(name) or EXTENDED_BENCHMARKS[name]
    params = bench.params(scale)

    seq_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        bench.serial(params)
        seq_best = min(seq_best, time.perf_counter() - start)

    instr_best = float("inf")
    metrics: Optional[Metrics] = None
    for _ in range(repeats):
        run = run_instrumented(
            lambda rt: bench.parallel(rt, params), detect=False
        )
        instr_best = min(instr_best, run.wall_seconds)
        metrics = run.metrics
        if verify:
            bench.verify(params, run.result)

    det_best = float("inf")
    avg_readers = 0.0
    races = 0
    perf = DetectorPerf()
    for _ in range(repeats):
        run = run_instrumented(
            lambda rt: bench.parallel(rt, params), detect=True, obs=obs
        )
        det_best = min(det_best, run.wall_seconds)
        avg_readers = run.avg_readers
        races = len(run.races)
        perf = DetectorPerf.from_detector(run.detector)
        if verify:
            bench.verify(params, run.result)

    assert metrics is not None
    return BenchmarkResult(
        name=name,
        scale=scale,
        metrics=metrics,
        avg_readers=avg_readers,
        seq_seconds=seq_best,
        instrumented_seconds=instr_best,
        racedet_seconds=det_best,
        races=races,
        perf=perf,
    )
