"""Benchmark registry and single-benchmark execution for the harness.

Maps the seven Table 2 rows to workload entry points and runs one row in
the paper's three configurations:

* ``Seq``          — serial elision, uninstrumented (paper's Seq column);
* ``Instrumented`` — runtime + shared wrappers + metrics, *no* detector.
  The paper's bytecode instrumentation is nearly free on the JVM; in
  CPython the wrapper calls dominate, so we report this middle bar to keep
  the ``Racedet/Instrumented`` ratio comparable to the paper's
  ``Racedet/Seq`` (see EXPERIMENTS.md for the discussion);
* ``Racedet``      — instrumentation + the determinacy race detector.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.harness.metrics import DetectorPerf, Metrics
from repro.workloads import (
    crypt_idea,
    jacobi,
    lufact,
    nqueens,
    reduce_tree,
    series,
    smith_waterman,
    sor,
    strassen,
)
from repro.workloads.common import run_instrumented

__all__ = [
    "BenchmarkDef",
    "BenchmarkResult",
    "BackendBenchResult",
    "ParallelBenchResult",
    "ThroughputBenchResult",
    "BENCHMARKS",
    "EXTENDED_BENCHMARKS",
    "BACKEND_ENGINES",
    "ExecutorBenchResult",
    "run_benchmark",
    "run_backend_benchmark",
    "run_executor_benchmark",
    "run_parallel_benchmark",
    "run_throughput_benchmark",
    "TelemetryBenchResult",
    "run_telemetry_benchmark",
]


@dataclass(frozen=True)
class BenchmarkDef:
    """One Table 2 row: names, entry points, verification."""

    name: str
    module: Any
    parallel_entry: str  #: attribute name: "run_af" or "run_future"

    def params(self, scale: str):
        return self.module.default_params(scale)

    def serial(self, params) -> Any:
        return self.module.serial(params)

    def parallel(self, rt, params) -> Any:
        return getattr(self.module, self.parallel_entry)(rt, params)

    def verify(self, params, result) -> None:
        self.module.verify(params, result)


#: The seven Table 2 rows, in the paper's order.
BENCHMARKS: Dict[str, BenchmarkDef] = {
    b.name: b
    for b in [
        BenchmarkDef("Series-af", series, "run_af"),
        BenchmarkDef("Series-future", series, "run_future"),
        BenchmarkDef("Crypt-af", crypt_idea, "run_af"),
        BenchmarkDef("Crypt-future", crypt_idea, "run_future"),
        BenchmarkDef("Jacobi", jacobi, "run_future"),
        BenchmarkDef("Smith-Waterman", smith_waterman, "run_future"),
        BenchmarkDef("Strassen", strassen, "run_future"),
    ]
}

#: Extension rows (not part of the paper's Table 2): broaden the overhead
#: picture — a second stencil, a fully strict search, a blocked LU, and
#: the zero-shared-access functional extreme.
EXTENDED_BENCHMARKS: Dict[str, BenchmarkDef] = {
    b.name: b
    for b in [
        BenchmarkDef("SOR-af", sor, "run_af"),
        BenchmarkDef("SOR-future", sor, "run_future"),
        BenchmarkDef("NQueens", nqueens, "run_af"),
        BenchmarkDef("LUFact", lufact, "run_future"),
        BenchmarkDef("ReduceTree", reduce_tree, "run_future"),
    ]
}


@dataclass
class BenchmarkResult:
    """Everything the Table 2 row reports, plus the extra middle bar."""

    name: str
    scale: str
    metrics: Metrics
    avg_readers: float
    seq_seconds: float
    instrumented_seconds: float
    racedet_seconds: float
    races: int
    perf: DetectorPerf = field(default_factory=DetectorPerf)

    @property
    def slowdown_vs_seq(self) -> float:
        """The paper's Slowdown column (Racedet / Seq)."""
        return self.racedet_seconds / self.seq_seconds if self.seq_seconds else 0.0

    @property
    def slowdown_vs_instrumented(self) -> float:
        """Detector-only slowdown (Racedet / Instrumented) — the CPython
        analogue of the paper's ratio, with interpreter dispatch factored
        out of the baseline."""
        if not self.instrumented_seconds:
            return 0.0
        return self.racedet_seconds / self.instrumented_seconds

    @property
    def events_per_second(self) -> float:
        """Detected-run throughput: all instrumented events (accesses +
        structure) over the Racedet wall time.  Includes workload compute,
        so it *under*-states pure checking throughput — the trace-replay
        numbers in ``repro-bench --throughput`` isolate that."""
        if not self.racedet_seconds:
            return 0.0
        return self.metrics.num_events / self.racedet_seconds

    def row(self) -> Dict[str, Any]:
        row = {
            "Benchmark": self.name,
            "#Tasks": self.metrics.num_tasks,
            "#NTJoins": self.metrics.num_nt_joins,
            "#SharedMem": self.metrics.num_shared_accesses,
            "#AvgReaders": round(self.avg_readers, 2),
        }
        # Cache/fast-path observability sits next to #AvgReaders: both
        # describe the per-access work the detector actually did.
        row.update(self.perf.as_row())
        row.update({
            "Seq (ms)": round(self.seq_seconds * 1e3, 1),
            "Instr (ms)": round(self.instrumented_seconds * 1e3, 1),
            "Racedet (ms)": round(self.racedet_seconds * 1e3, 1),
            "Slowdown": round(self.slowdown_vs_seq, 2),
            "Slowdown/Instr": round(self.slowdown_vs_instrumented, 2),
            "Events/s": round(self.events_per_second),
        })
        return row


@dataclass
class ParallelBenchResult:
    """One workload checked by the two-phase sharded checker at several
    job counts (``docs/ALGORITHM.md`` §12).

    ``per_jobs`` maps each job count to its best-of-``repeats`` wall
    times: ``seconds`` is the full check (build + freeze + fan-out +
    merge), ``check_seconds`` the fan-out stage alone, ``speedup`` is
    relative to the jobs=1 ``seconds``.  ``identical`` records whether
    every job count reproduced the jobs=1 ``summary()`` text and
    ``perf_stats`` byte-for-byte — the determinism contract, asserted by
    the caller, not here, so a violation still lands in the artifact.
    """

    name: str
    scale: str
    num_events: int
    num_access_events: int
    num_tasks: int
    num_locations: int
    races: int
    freeze_seconds: float
    snapshot_bytes: int
    bytes_per_task: float
    identical: bool
    per_jobs: Dict[int, Dict[str, float]]

    def speedup(self, jobs: int) -> float:
        base = self.per_jobs.get(1, {}).get("seconds", 0.0)
        ours = self.per_jobs.get(jobs, {}).get("seconds", 0.0)
        return base / ours if ours else 0.0


def run_parallel_benchmark(
    name: str,
    scale: str = "small",
    *,
    jobs: tuple = (1, 2, 4),
    repeats: int = 1,
    verify: bool = True,
    backend: Optional[str] = None,
) -> ParallelBenchResult:
    """Record one workload's trace, then check it at each job count.

    The workload runs **once** with only a trace recorder attached
    (phase 1); every job count then re-checks the same recorded stream
    (phase 2), so the comparison isolates checker throughput from
    workload execution.  Wall times are best-of-``repeats`` per job
    count, like :func:`run_benchmark`.
    """
    from repro.core.parallel_check import check_trace_parallel
    from repro.memory.tracer import TraceRecorder

    bench = BENCHMARKS.get(name) or EXTENDED_BENCHMARKS[name]
    params = bench.params(scale)

    recorder = TraceRecorder()
    run = run_instrumented(
        lambda rt: bench.parallel(rt, params),
        detect=False,
        extra_observers=(recorder,),
    )
    if verify:
        bench.verify(params, run.result)
    trace = recorder.trace

    golden_summary: Optional[str] = None
    golden_perf: Optional[Dict[str, Any]] = None
    identical = True
    per_jobs: Dict[int, Dict[str, float]] = {}
    result = None
    for n in jobs:
        best_total = float("inf")
        best_check = float("inf")
        best_freeze = float("inf")
        best_build = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = check_trace_parallel(trace, jobs=n, backend=backend)
            wall = time.perf_counter() - start
            best_total = min(best_total, wall)
            best_check = min(
                best_check, result.timings["check_seconds"]
            )
            best_freeze = min(
                best_freeze, result.timings["freeze_seconds"]
            )
            best_build = min(
                best_build, result.timings["build_seconds"]
            )
        assert result is not None
        if golden_summary is None:
            golden_summary = result.summary()
            golden_perf = result.perf_stats
        elif (result.summary() != golden_summary
              or result.perf_stats != golden_perf):
            identical = False
        per_jobs[n] = {
            "seconds": best_total,
            "check_seconds": best_check,
            "freeze_seconds": best_freeze,
            "build_seconds": best_build,
        }
    assert result is not None
    base = per_jobs.get(jobs[0], {}).get("seconds", 0.0)
    num_events = result.num_events
    num_access = result.num_access_events
    for n in jobs:
        row = per_jobs[n]
        row["speedup"] = base / row["seconds"] if row["seconds"] else 0.0
        # Structure-vs-access phase split: build_seconds is the structure
        # pass (DTRG construction + bucketing), check_seconds the access
        # (shadow-check) fan-out.
        row["events_per_second"] = (
            num_events / row["seconds"] if row["seconds"] else 0.0
        )
        row["access_events_per_second"] = (
            num_access / row["check_seconds"] if row["check_seconds"] else 0.0
        )
    snapshot_bytes = result.snapshot.nbytes
    return ParallelBenchResult(
        name=name,
        scale=scale,
        num_events=result.num_events,
        num_access_events=result.num_access_events,
        num_tasks=result.num_tasks,
        num_locations=result.num_locations,
        races=len(result.races),
        freeze_seconds=per_jobs[jobs[0]]["freeze_seconds"],
        snapshot_bytes=snapshot_bytes,
        bytes_per_task=(
            snapshot_bytes / result.num_tasks if result.num_tasks else 0.0
        ),
        identical=identical,
        per_jobs=per_jobs,
    )


@dataclass
class ThroughputBenchResult:
    """One workload's trace checked by three single-thread engines
    back-to-back in the same process (box speed varies across runs, so
    only same-process ratios are meaningful):

    * ``replay`` — the live object-graph detector re-driven over the
      recorded events (the PR 1–4 path);
    * ``snapshot_jobs1`` — the two-phase sharded checker at ``jobs=1``
      (the PR 5 pure-Python baseline the acceptance ratio is against);
    * ``fast`` — :func:`repro.core.fastcheck.check_trace_fast` over the
      batched :class:`~repro.core.events.EncodedTrace` and the flat-array
      live DTRG (the PR 6 hot path).

    ``identical`` records the bit-equivalence contract: all three engines
    produced the same ``RaceReport.summary()`` text, the same ordered race
    pair list, and the same invariant perf counters (``precede_queries``,
    ``mutation_epoch``, ``shadow_fast_hits``, ``precede_calls_saved``).
    """

    name: str
    scale: str
    num_events: int
    num_access_events: int
    num_structure_events: int
    num_tasks: int
    num_locations: int
    races: int
    replay_seconds: float
    snapshot_check_seconds: float   #: jobs=1 shadow-check stage wall time
    snapshot_total_seconds: float
    fast_timings: Dict[str, float]  #: encode/structure/access/total seconds
    identical: bool
    mismatches: List[str] = field(default_factory=list)

    @property
    def replay_events_per_second(self) -> float:
        s = self.replay_seconds
        return self.num_events / s if s else 0.0

    @property
    def snapshot_access_events_per_second(self) -> float:
        s = self.snapshot_check_seconds
        return self.num_access_events / s if s else 0.0

    @property
    def fast_events_per_second(self) -> float:
        s = self.fast_timings.get("total_seconds", 0.0)
        return self.num_events / s if s else 0.0

    @property
    def fast_access_events_per_second(self) -> float:
        s = self.fast_timings.get("access_seconds", 0.0)
        return self.num_access_events / s if s else 0.0

    @property
    def speedup_access_vs_snapshot(self) -> float:
        """The acceptance ratio: access-check throughput of the fast path
        over the PR 5 jobs=1 checker, same trace, same process."""
        s = self.snapshot_access_events_per_second
        return self.fast_access_events_per_second / s if s else 0.0

    @property
    def speedup_total_vs_replay(self) -> float:
        s = self.fast_timings.get("total_seconds", 0.0)
        return self.replay_seconds / s if s else 0.0


_INVARIANT_PERF = (
    "precede_queries", "mutation_epoch",
    "shadow_fast_hits", "precede_calls_saved",
)


def run_throughput_benchmark(
    name: str,
    scale: str = "small",
    *,
    repeats: int = 2,
    verify: bool = True,
) -> ThroughputBenchResult:
    """Record one workload's trace, then race the three single-thread
    checking engines over it (see :class:`ThroughputBenchResult`).

    All engines run back-to-back in this process on the *same* recorded
    stream; wall times are best-of-``repeats`` per engine.  Equivalence is
    asserted into ``identical``/``mismatches`` rather than raised so a
    violation still lands in the artifact (and the CLI exits non-zero)."""
    from repro.core.events import encode_trace
    from repro.core.fastcheck import check_trace_fast
    from repro.core.parallel_check import check_trace_parallel
    from repro.memory.tracer import TraceRecorder, replay_trace

    bench = BENCHMARKS.get(name) or EXTENDED_BENCHMARKS[name]
    params = bench.params(scale)
    recorder = TraceRecorder()
    run = run_instrumented(
        lambda rt: bench.parallel(rt, params),
        detect=False,
        extra_observers=(recorder,),
    )
    if verify:
        bench.verify(params, run.result)
    trace = recorder.trace
    t_enc = time.perf_counter()
    encoded = encode_trace(trace)
    encode_seconds = time.perf_counter() - t_enc

    from repro.core.detector import DeterminacyRaceDetector

    replay_best = float("inf")
    detector = None
    for _ in range(repeats):
        detector = DeterminacyRaceDetector()
        start = time.perf_counter()
        replay_trace(trace, [detector])
        replay_best = min(replay_best, time.perf_counter() - start)

    snap_check_best = float("inf")
    snap_total_best = float("inf")
    snap = None
    for _ in range(repeats):
        start = time.perf_counter()
        snap = check_trace_parallel(trace, jobs=1, backend="inline")
        snap_total_best = min(snap_total_best, time.perf_counter() - start)
        snap_check_best = min(
            snap_check_best, snap.timings["check_seconds"]
        )

    fast = None
    fast_timings: Dict[str, float] = {}
    for _ in range(repeats):
        fast = check_trace_fast(encoded)
        for key, value in fast.timings.items():
            fast_timings[key] = min(fast_timings.get(key, value), value)
    # The encode pass ran once, outside the repeat loop — report it.
    fast_timings["encode_seconds"] = encode_seconds

    assert detector is not None and snap is not None and fast is not None
    mismatches: List[str] = []
    golden_summary = detector.report.summary()
    golden_pairs = [r.pair_key for r in detector.races]
    for label, res in (("snapshot_jobs1", snap), ("fast", fast)):
        if res.summary() != golden_summary:
            mismatches.append(f"{label}: summary differs from replay")
        if [r.pair_key for r in res.races] != golden_pairs:
            mismatches.append(f"{label}: race list differs from replay")
        stats = res.perf_stats
        golden_stats = detector.perf_stats
        for key in _INVARIANT_PERF:
            if stats[key] != golden_stats[key]:
                mismatches.append(
                    f"{label}: {key} {stats[key]} != {golden_stats[key]}"
                )

    return ThroughputBenchResult(
        name=name,
        scale=scale,
        num_events=fast.num_events,
        num_access_events=fast.num_access_events,
        num_structure_events=fast.num_structure_events,
        num_tasks=fast.num_tasks,
        num_locations=fast.num_locations,
        races=len(fast.races),
        replay_seconds=replay_best,
        snapshot_check_seconds=snap_check_best,
        snapshot_total_seconds=snap_total_best,
        fast_timings=fast_timings,
        identical=not mismatches,
        mismatches=mismatches,
    )


@dataclass
class TelemetryBenchResult:
    """One workload's trace checked twice by the fast-path engine:

    * ``detached`` — plain ``check_trace_fast(encoded)``, no telemetry
      object anywhere (the PR 3 null-object contract: this leg must be
      byte-identical to a build without ``repro.obs.live`` imported);
    * ``served`` — the same call with a :class:`~repro.obs.live.
      LiveTelemetry` progress counter attached, the 250 ms runtime
      sampler running, the HTTP exporter bound to an ephemeral port and
      an in-process scraper hitting ``/metrics`` every 250 ms — the
      worst realistic observation load a long run sees.

    ``identical`` records the equivalence gate: both legs produced the
    same ``RaceReport.summary()`` text, the same ordered race pair list
    and the same invariant perf counters.  ``telemetry_overhead_pct`` is
    the served/detached wall-time slowdown the ≤5 % acceptance gate
    applies to (best-of-``repeats`` per leg, same process, so box-speed
    noise mostly cancels).
    """

    name: str
    scale: str
    num_events: int
    num_access_events: int
    races: int
    detached_seconds: float
    served_seconds: float
    scrapes: int               #: successful /metrics fetches in the served leg
    samples: int               #: sampler ticks observed in the served leg
    identical: bool
    mismatches: List[str] = field(default_factory=list)

    @property
    def telemetry_overhead_pct(self) -> float:
        d = self.detached_seconds
        return (self.served_seconds - d) / d * 100.0 if d else 0.0

    @property
    def detached_events_per_second(self) -> float:
        s = self.detached_seconds
        return self.num_events / s if s else 0.0

    @property
    def served_events_per_second(self) -> float:
        s = self.served_seconds
        return self.num_events / s if s else 0.0


def run_telemetry_benchmark(
    name: str,
    scale: str = "small",
    *,
    repeats: int = 3,
    verify: bool = True,
    interval: float = 0.25,
) -> TelemetryBenchResult:
    """Measure the live-telemetry plane's checking overhead on one
    workload (see :class:`TelemetryBenchResult`).

    Records the trace once, then runs a detached leg and a served leg
    back-to-back in this process; each leg is best-of-``repeats``.  The
    served leg keeps one LiveTelemetry (sampler + HTTP exporter) running
    across its repeats and scrapes its own ``/metrics`` endpoint every
    ``interval`` seconds from a background thread, so the number includes
    exposition rendering and sampler contention, not just the progress
    counter bumps."""
    import threading
    import urllib.request

    from repro.core.events import encode_trace
    from repro.core.fastcheck import check_trace_fast
    from repro.memory.tracer import TraceRecorder
    from repro.obs.live import LiveTelemetry

    bench = BENCHMARKS.get(name) or EXTENDED_BENCHMARKS[name]
    params = bench.params(scale)
    recorder = TraceRecorder()
    run = run_instrumented(
        lambda rt: bench.parallel(rt, params),
        detect=False,
        extra_observers=(recorder,),
    )
    if verify:
        bench.verify(params, run.result)
    encoded = encode_trace(recorder.trace)

    detached_best = float("inf")
    detached = None
    for _ in range(repeats):
        start = time.perf_counter()
        detached = check_trace_fast(encoded)
        detached_best = min(detached_best, time.perf_counter() - start)

    served_best = float("inf")
    served = None
    scrapes = 0
    telemetry = LiveTelemetry(port=0, interval=interval)
    telemetry.start()
    stop = threading.Event()

    def _scrape_loop() -> None:
        # Scrape-then-wait, so even a leg shorter than one interval sees
        # at least one concurrent exposition render.
        nonlocal scrapes
        url = f"{telemetry.url}/metrics"
        while True:
            try:
                with urllib.request.urlopen(url, timeout=2.0) as resp:
                    resp.read()
                scrapes += 1
            except OSError:
                pass
            if stop.wait(interval):
                return

    scraper = threading.Thread(target=_scrape_loop, daemon=True)
    scraper.start()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            served = check_trace_fast(encoded, progress=telemetry.progress)
            served_best = min(served_best, time.perf_counter() - start)
        samples = int(telemetry.sampler.gauges.get("sampler_samples_total", 0))
    finally:
        stop.set()
        scraper.join(timeout=2.0)
        telemetry.stop()

    assert detached is not None and served is not None
    mismatches: List[str] = []
    if served.summary() != detached.summary():
        mismatches.append("served: summary differs from detached")
    if (
        [r.pair_key for r in served.races]
        != [r.pair_key for r in detached.races]
    ):
        mismatches.append("served: race list differs from detached")
    for key in _INVARIANT_PERF:
        if served.perf_stats[key] != detached.perf_stats[key]:
            mismatches.append(
                f"served: {key} {served.perf_stats[key]} "
                f"!= {detached.perf_stats[key]}"
            )

    return TelemetryBenchResult(
        name=name,
        scale=scale,
        num_events=detached.num_events,
        num_access_events=detached.num_access_events,
        races=len(detached.races),
        detached_seconds=detached_best,
        served_seconds=served_best,
        scrapes=scrapes,
        samples=samples,
        identical=not mismatches,
        mismatches=mismatches,
    )


#: Engine rows of the ``--backends`` head-to-head, in report order.  The
#: first row is the golden engine the others are gated against.
BACKEND_ENGINES = ("dtrg", "array", "depa", "vc")


@dataclass
class BackendBenchResult:
    """One workload's recorded trace replayed through every PRECEDE
    backend (``DeterminacyRaceDetector(engine=…)``) back-to-back in the
    same process — the head-to-head table of docs/ALGORITHM.md §14.4.

    ``per_engine`` maps each engine to its row: ``status`` is ``"ok"``,
    ``"declined"`` (DePa refusing a future ``get`` with
    ``UnsupportedConstructError`` — an honest fragment boundary, not a
    failure) or ``"error"``; completed rows carry best-of-``repeats``
    replay wall seconds, the events/s they imply, the race count and the
    engine's own perf counters.

    The equivalence gate is the *verdict stream* only: every completed
    engine must reproduce the golden (first) engine's
    ``RaceReport.summary()`` text and ordered race pair list
    bit-for-bit.  Perf counters are per-engine invariants — a vector
    clock is never consulted the way a shadow memory consults PRECEDE —
    so they are reported, not gated (the dtrg/array counter bit-match
    has its own gate in ``--throughput`` and the fuzzer).
    """

    name: str
    scale: str
    num_events: int
    num_access_events: int
    num_tasks: int
    num_gets: int
    races: int
    per_engine: Dict[str, Dict[str, Any]]
    identical: bool
    mismatches: List[str] = field(default_factory=list)


def run_backend_benchmark(
    name: str,
    scale: str = "small",
    *,
    engines: tuple = BACKEND_ENGINES,
    repeats: int = 2,
    verify: bool = True,
) -> BackendBenchResult:
    """Record one workload's trace, then replay it through each PRECEDE
    backend (see :class:`BackendBenchResult`).

    The workload runs **once** with only a trace recorder attached; every
    engine then re-checks the same recorded stream through the full
    detector (shadow memory included), so the rows differ only in the
    PRECEDE data structure behind them.  Wall times are
    best-of-``repeats`` per engine.  Mismatches are recorded, not
    raised, so a violation still lands in the artifact."""
    from repro.core.detector import DeterminacyRaceDetector
    from repro.memory.tracer import TraceRecorder, replay_trace
    from repro.runtime.errors import UnsupportedConstructError

    bench = BENCHMARKS.get(name) or EXTENDED_BENCHMARKS[name]
    params = bench.params(scale)
    recorder = TraceRecorder()
    run = run_instrumented(
        lambda rt: bench.parallel(rt, params),
        detect=False,
        extra_observers=(recorder,),
    )
    if verify:
        bench.verify(params, run.result)
    trace = recorder.trace
    metrics = run.metrics

    per_engine: Dict[str, Dict[str, Any]] = {}
    mismatches: List[str] = []
    golden_summary: Optional[str] = None
    golden_pairs: Optional[List] = None
    golden_races = 0
    for engine in engines:
        best = float("inf")
        detector = None
        status = "ok"
        detail = ""
        for _ in range(repeats):
            detector = DeterminacyRaceDetector(engine=engine)
            start = time.perf_counter()
            try:
                replay_trace(trace, [detector])
            except UnsupportedConstructError as exc:
                status, detail, detector = "declined", str(exc), None
                break
            except Exception as exc:
                status = "error"
                detail = f"{type(exc).__name__}: {exc}"
                detector = None
                break
            best = min(best, time.perf_counter() - start)
        row: Dict[str, Any] = {"status": status}
        if detail:
            row["detail"] = detail
        if detector is not None:
            row["seconds"] = best
            row["events_per_second"] = (
                round(len(trace) / best, 1) if best else 0.0
            )
            row["races"] = len(detector.races)
            row["perf"] = detector.perf_stats
            summary = detector.report.summary()
            pairs = [r.pair_key for r in detector.races]
            if golden_summary is None:
                golden_summary = summary
                golden_pairs = pairs
                golden_races = len(pairs)
            else:
                if summary != golden_summary:
                    mismatches.append(
                        f"{engine}: summary differs from {engines[0]}"
                    )
                if pairs != golden_pairs:
                    mismatches.append(
                        f"{engine}: race list differs from {engines[0]}"
                    )
        elif status == "error":
            mismatches.append(f"{engine}: {detail}")
        per_engine[engine] = row

    return BackendBenchResult(
        name=name,
        scale=scale,
        num_events=len(trace),
        num_access_events=metrics.num_shared_accesses,
        num_tasks=metrics.num_tasks,
        num_gets=metrics.num_gets,
        races=golden_races,
        per_engine=per_engine,
        identical=not mismatches,
        mismatches=mismatches,
    )


@dataclass
class ExecutorBenchResult:
    """One workload *executed for real* on every runtime substrate with
    a fresh online :class:`~repro.core.parallel_detector.ParallelRaceDetector`
    attached (PR 8).

    ``per_runtime`` maps ``"serial"`` / ``"threads-N"`` to its row:
    best-of-``repeats`` wall seconds, tasks/s and shadow-checked
    accesses/s implied by that wall time, the speedup over the serial
    elision, and (threads rows) the peak pool size — workers plus any
    compensation threads spawned for blocking ``get``\\ s.

    The equivalence gate is the *racy-location set*: every runtime must
    report exactly the serial elision's set (race pair order is
    schedule-dependent; DESIGN.md "Race order under parallel runtimes").
    The AsyncioRuntime is exercised by the fuzz/property parity sweeps,
    not here: workload kernels use the synchronous blocking ``get()``
    style, which the cooperative runtime by design rejects.

    On a single-core box thread-row "speedups" measure scheduling
    overhead, never parallelism — the artifact records ``cpu_count`` so
    a reader can judge (same caveat as the sharded-checker benchmark).
    """

    name: str
    scale: str
    races: int
    num_tasks: int
    num_accesses: int
    identical: bool
    per_runtime: Dict[str, Dict[str, Any]]
    mismatches: List[str] = field(default_factory=list)


def run_executor_benchmark(
    name: str,
    scale: str = "small",
    *,
    workers: tuple = (1, 2, 4),
    repeats: int = 1,
    verify: bool = True,
) -> ExecutorBenchResult:
    """Run one workload on the serial elision and on a work-stealing
    ThreadRuntime at each pool size in ``workers``, detecting online
    during execution (see :class:`ExecutorBenchResult`).

    Unlike the trace-replay benchmarks, nothing is recorded and nothing
    is replayed: every leg is a live run, so thread rows measure the
    whole contract at once — scheduler, two-tier detector locking, and
    the verified workload result.  Mismatches are recorded, not raised,
    so a violation still lands in the artifact."""
    from repro.core.parallel_detector import ParallelRaceDetector
    from repro.runtime.executor import ThreadRuntime
    from repro.runtime.runtime import Runtime

    bench = BENCHMARKS.get(name) or EXTENDED_BENCHMARKS[name]
    params = bench.params(scale)

    def one_leg(make_runtime):
        best = float("inf")
        det = stats = pool = None
        for _ in range(repeats):
            det = ParallelRaceDetector()
            rt = make_runtime(det)
            start = time.perf_counter()
            result = rt.run(lambda r: bench.parallel(r, params))
            best = min(best, time.perf_counter() - start)
            stats = det.perf_stats
            pool = getattr(rt, "pool_size", None)
            if verify:
                bench.verify(params, result)
        return det, stats, best, pool

    per_runtime: Dict[str, Dict[str, Any]] = {}
    mismatches: List[str] = []

    det, stats, serial_best, _ = one_leg(
        lambda d: Runtime(observers=[d])
    )
    golden = frozenset(det.racy_locations)
    races = len(det.races)
    num_tasks = stats["num_tasks"]
    num_accesses = stats["num_accesses"]
    per_runtime["serial"] = {
        "seconds": serial_best,
        "tasks_per_second": round(num_tasks / serial_best, 1)
        if serial_best else 0.0,
        "accesses_per_second": round(num_accesses / serial_best, 1)
        if serial_best else 0.0,
        "speedup_vs_serial": 1.0,
        "races": races,
    }

    for w in workers:
        det, stats, best, pool = one_leg(
            lambda d, w=w: ThreadRuntime(observers=[d], workers=w)
        )
        row: Dict[str, Any] = {
            "workers": w,
            "pool_size": pool,
            "seconds": best,
            "tasks_per_second": round(stats["num_tasks"] / best, 1)
            if best else 0.0,
            "accesses_per_second": round(stats["num_accesses"] / best, 1)
            if best else 0.0,
            "speedup_vs_serial": round(serial_best / best, 4)
            if best else 0.0,
            "races": len(det.races),
        }
        got = frozenset(det.racy_locations)
        if got != golden:
            mismatches.append(
                f"threads-{w}: racy locations {sorted(got)} != "
                f"serial {sorted(golden)}"
            )
        if stats["num_tasks"] != num_tasks:
            mismatches.append(
                f"threads-{w}: task count {stats['num_tasks']} != "
                f"serial {num_tasks}"
            )
        per_runtime[f"threads-{w}"] = row

    return ExecutorBenchResult(
        name=name,
        scale=scale,
        races=races,
        num_tasks=num_tasks,
        num_accesses=num_accesses,
        identical=not mismatches,
        per_runtime=per_runtime,
        mismatches=mismatches,
    )


def run_benchmark(
    name: str,
    scale: str = "small",
    *,
    repeats: int = 1,
    verify: bool = True,
    obs=None,
) -> BenchmarkResult:
    """Run one Table 2 row in all three configurations.

    ``repeats`` keeps the best wall time per configuration (the paper uses
    the mean of 10 in-JVM runs to dodge JIT warmup; CPython has no warmup,
    so min-of-N suffices and is the conventional choice for interpreted
    code).

    ``obs`` (an :class:`repro.obs.Observability`) instruments the *Racedet*
    configuration only — the Seq and Instrumented bars stay untouched so
    the reported slowdowns keep their meaning.  The structural Table-2
    columns are identical with and without it (pinned by
    ``tests/integration/test_obs_integration.py``).
    """
    bench = BENCHMARKS.get(name) or EXTENDED_BENCHMARKS[name]
    params = bench.params(scale)

    seq_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        bench.serial(params)
        seq_best = min(seq_best, time.perf_counter() - start)

    instr_best = float("inf")
    metrics: Optional[Metrics] = None
    for _ in range(repeats):
        run = run_instrumented(
            lambda rt: bench.parallel(rt, params), detect=False
        )
        instr_best = min(instr_best, run.wall_seconds)
        metrics = run.metrics
        if verify:
            bench.verify(params, run.result)

    det_best = float("inf")
    avg_readers = 0.0
    races = 0
    perf = DetectorPerf()
    for _ in range(repeats):
        run = run_instrumented(
            lambda rt: bench.parallel(rt, params), detect=True, obs=obs
        )
        det_best = min(det_best, run.wall_seconds)
        avg_readers = run.avg_readers
        races = len(run.races)
        perf = DetectorPerf.from_detector(run.detector)
        if verify:
            bench.verify(params, run.result)

    assert metrics is not None
    return BenchmarkResult(
        name=name,
        scale=scale,
        metrics=metrics,
        avg_readers=avg_readers,
        seq_seconds=seq_best,
        instrumented_seconds=instr_best,
        racedet_seconds=det_best,
        races=races,
        perf=perf,
    )
