"""Experiment harness: structural metrics and the Table 2 generator.

``runner``/``table2`` are imported lazily: they depend on the workload
modules, which themselves use :mod:`repro.harness.metrics`, and an eager
import here would close that cycle.
"""

from repro.harness.metrics import Metrics, MetricsCollector
from repro.harness.report import render_kv, render_table

__all__ = [
    "Metrics",
    "MetricsCollector",
    "render_table",
    "render_kv",
    "BENCHMARKS",
    "BenchmarkResult",
    "run_benchmark",
]

_LAZY = {"BENCHMARKS", "BenchmarkResult", "run_benchmark"}


def __getattr__(name):
    if name in _LAZY:
        from repro.harness import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
