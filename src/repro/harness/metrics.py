"""Structural counters for the Table 2 columns.

Table 2 reports, per benchmark:

* ``#Tasks``      — dynamic tasks created (main excluded, as in the paper's
  999,999 for Series which counts only the spawned tasks);
* ``#NTJoins``    — "the subset of future get() operations that are
  non-tree-joins", classified by the *definition* (Section 3): a join from
  B to A is a tree join iff A is a spawn-tree ancestor of B;
* ``#SharedMem``  — total instrumented shared-memory accesses;
* ``#AvgReaders`` — mean shadow reader-set size at access time (this one
  lives in :class:`~repro.core.shadow.ShadowMemory` because only the
  detector has shadow state; the harness merges it in).

:class:`MetricsCollector` is a passive observer — attaching it to a run
without a detector measures the workload's structure at (near) zero cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.events import ExecutionObserver

__all__ = ["DetectorPerf", "Metrics", "MetricsCollector"]


@dataclass
class Metrics:
    """Immutable snapshot of the structural counters."""

    num_tasks: int = 0          #: spawned tasks (main excluded)
    num_future_tasks: int = 0
    num_async_tasks: int = 0
    num_gets: int = 0
    num_nt_joins: int = 0       #: gets whose consumer is not an ancestor
    num_reads: int = 0
    num_writes: int = 0
    num_finish_scopes: int = 0  #: explicit scopes (root excluded)
    max_live_depth: int = 0

    @property
    def num_shared_accesses(self) -> int:
        return self.num_reads + self.num_writes

    @property
    def num_events(self) -> int:
        """Total instrumented events: accesses plus the structure stream
        (create + end per spawned task, one get per join, start + end per
        explicit finish scope) — the same count a trace recorder captures."""
        return (
            self.num_shared_accesses
            + 2 * self.num_tasks
            + self.num_gets
            + 2 * self.num_finish_scopes
        )

    def as_row(self) -> Dict[str, int]:
        return {
            "#Tasks": self.num_tasks,
            "#NTJoins": self.num_nt_joins,
            "#SharedMem": self.num_shared_accesses,
        }


@dataclass
class DetectorPerf:
    """Snapshot of the detector's caching/fast-path counters.

    These are *performance* observability (PRECEDE cache hit rate, DTRG
    mutation epochs, shadow fast-path savings), kept separate from the
    structural :class:`Metrics` so the Table 2 columns stay comparable to
    the paper while the report can print cache behaviour alongside
    ``#AvgReaders``.
    """

    precede_queries: int = 0    #: PRECEDE calls issued by the shadow memory
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0  #: stale negative entries dropped
    cache_hit_rate: float = 0.0
    epoch_bumps: int = 0        #: DTRG mutations observed (epoch counter)
    shadow_fast_hits: int = 0   #: accesses short-circuited before PRECEDE
    precede_calls_saved: int = 0

    @classmethod
    def from_detector(cls, detector) -> "DetectorPerf":
        """Build from a :class:`~repro.core.detector.DeterminacyRaceDetector`
        (``None`` yields all-zero counters).

        Missing stats default to zero: ablated detectors (``--no-cache``,
        subclasses, duck-typed stand-ins in the fuzz harness) may omit
        cache counters from ``perf_stats``; indexing them directly raised
        ``KeyError`` and took the whole Table-2 report down with it.
        """
        if detector is None:
            return cls()
        stats = detector.perf_stats
        return cls(
            precede_queries=stats.get("precede_queries", 0),
            cache_hits=stats.get("cache_hits", 0),
            cache_misses=stats.get("cache_misses", 0),
            cache_invalidations=stats.get("cache_invalidations", 0),
            cache_hit_rate=stats.get("cache_hit_rate", 0.0),
            epoch_bumps=stats.get("mutation_epoch", 0),
            shadow_fast_hits=stats.get("shadow_fast_hits", 0),
            precede_calls_saved=stats.get("precede_calls_saved", 0),
        )

    def as_row(self) -> Dict[str, object]:
        """Columns the Table-2 report appends next to ``#AvgReaders``."""
        return {
            "#PrecedeQ": self.precede_queries,
            "CacheHit%": round(100.0 * self.cache_hit_rate, 1),
            "#QSaved": self.precede_calls_saved,
        }


class MetricsCollector(ExecutionObserver):
    """Counts tasks, joins (tree vs non-tree), and shared accesses."""

    def __init__(self) -> None:
        self.num_tasks = 0
        self.num_future_tasks = 0
        self.num_async_tasks = 0
        self.num_gets = 0
        self.num_nt_joins = 0
        self.num_reads = 0
        self.num_writes = 0
        self.num_finish_scopes = 0
        self.max_live_depth = 0
        # parent map for the ancestor test (tid -> parent tid)
        self._parent: Dict[int, Optional[int]] = {}
        # memoized spawn-tree depth (tid -> depth; main is 0).  Computed
        # incrementally — walking the whole parent chain per spawn made
        # on_task_create O(depth), i.e. quadratic over a deep spawn chain
        # (Sort's depth-999 recursion spent more time here than in the
        # detector; see tests/integration/test_harness_metrics.py's
        # walk-bound test at depth 10,000).
        self._depth: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def on_init(self, main) -> None:
        self._parent[main.tid] = None
        self._depth[main.tid] = 0

    def on_task_create(self, parent, child) -> None:
        self.num_tasks += 1
        if child.is_future:
            self.num_future_tasks += 1
        else:
            self.num_async_tasks += 1
        self._parent[child.tid] = parent.tid
        # Depth comes from our own maps so replayed stand-in tasks (which
        # carry no depth attribute) work too; the parent's depth is already
        # memoized, so this is O(1) per spawn.
        depth = self._depth.get(parent.tid, 0) + 1
        self._depth[child.tid] = depth
        if depth > self.max_live_depth:
            self.max_live_depth = depth

    def on_get(self, consumer, producer) -> None:
        self.num_gets += 1
        if not self._is_ancestor(consumer.tid, producer.tid):
            self.num_nt_joins += 1

    def on_finish_start(self, scope) -> None:
        if scope.enclosing is not None:
            self.num_finish_scopes += 1

    def on_read(self, task, loc) -> None:
        self.num_reads += 1

    def on_write(self, task, loc) -> None:
        self.num_writes += 1

    # ------------------------------------------------------------------ #
    def _is_ancestor(self, a: int, b: int) -> bool:
        """Is ``a`` a spawn-tree ancestor of ``b``?

        The memoized depths bound the walk: lift ``b`` exactly
        ``depth(b) - depth(a)`` levels and compare — never the full chain.
        """
        da = self._depth.get(a)
        db = self._depth.get(b)
        if da is None or db is None or db <= da:
            return False
        node: Optional[int] = b
        for _ in range(db - da):
            node = self._parent.get(node)
        return node == a

    def snapshot(self) -> Metrics:
        """Freeze the counters into a :class:`Metrics` value."""
        return Metrics(
            num_tasks=self.num_tasks,
            num_future_tasks=self.num_future_tasks,
            num_async_tasks=self.num_async_tasks,
            num_gets=self.num_gets,
            num_nt_joins=self.num_nt_joins,
            num_reads=self.num_reads,
            num_writes=self.num_writes,
            num_finish_scopes=self.num_finish_scopes,
            max_live_depth=self.max_live_depth,
        )
