"""Plain-text table rendering for harness output."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

__all__ = ["render_table", "render_kv", "render_metrics"]


def render_table(rows: Sequence[Dict[str, Any]]) -> str:
    """Render dict rows as an aligned ASCII table.

    The columns are the *ordered union* of every row's keys: each new key
    appears at the first row that introduces it, after the keys already
    seen.  (Taking the columns from ``rows[0]`` alone silently dropped any
    column absent from the first row — e.g. detector-perf columns when the
    first benchmark ran with ``--no-detect`` — so rows are not truncated to
    the first row's shape anymore.)  Missing cells render empty.
    """
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                # Throughput-scale floats (events/s) read better without
                # fractional digits; small ratios keep two.
                text = (
                    f"{value:,.0f}" if abs(value) >= 10000
                    else f"{value:,.2f}"
                )
            elif isinstance(value, int):
                text = f"{value:,}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    sep = "-+-".join("-" * widths[c] for c in columns)
    lines = [" | ".join(c.ljust(widths[c]) for c in columns), sep]
    for cells in rendered:
        lines.append(
            " | ".join(cell.rjust(widths[c]) for cell, c in zip(cells, columns))
        )
    return "\n".join(lines)


def render_kv(title: str, values: Mapping[str, Any]) -> str:
    """Render a titled key/value block (run-summary statistics).

    Used by the fuzz harness for its per-run totals; keys keep insertion
    order, values format like :func:`render_table` cells.
    """
    width = max((len(k) for k in values), default=0)
    lines = [title, "=" * len(title)]
    for key, value in values.items():
        if isinstance(value, float):
            text = f"{value:,.2f}"
        elif isinstance(value, int):
            text = f"{value:,}"
        else:
            text = str(value)
        lines.append(f"{key.ljust(width)}  {text}")
    return "\n".join(lines)


def render_metrics(metrics: Mapping[str, Any]) -> str:
    """Render an :class:`repro.obs.MetricsRegistry` dump (``as_dict()``).

    Counters become a key/value block; each histogram becomes one summary
    row (count / mean / interpolated q50/q95/q99 / bucket-bound p50/p99 /
    max); epoch-window hit-rate timelines print their first and last
    windows.  The ``q*`` columns are linear-interpolation estimates
    (:func:`repro.obs.metrics.quantile_from_dump`) computed from the
    bucket counts, so dumps written before the quantile columns existed
    render fine.
    """
    from repro.obs.metrics import quantile_from_dump

    blocks: List[str] = []
    counters = metrics.get("counters") or {}
    if counters:
        blocks.append(render_kv("counters", dict(sorted(counters.items()))))
    histograms = metrics.get("histograms") or {}
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            rows.append(
                {
                    "histogram": name,
                    "count": h.get("count", 0),
                    "mean": round(h.get("mean", 0.0), 2),
                    "q50": round(quantile_from_dump(h, 0.50), 2),
                    "q95": round(quantile_from_dump(h, 0.95), 2),
                    "q99": round(quantile_from_dump(h, 0.99), 2),
                    "p50": h.get("p50", 0),
                    "p99": h.get("p99", 0),
                    "max": h.get("max", 0),
                }
            )
        blocks.append(render_table(rows))
    windows = metrics.get("epoch_windows") or {}
    for name in sorted(windows):
        series = windows[name].get("windows") or []
        if not series:
            continue
        first, last = series[0], series[-1]
        blocks.append(
            f"{name}: window={windows[name].get('window')} "
            f"first[@{first['epoch_start']}]={first['rate']:.2f} "
            f"last[@{last['epoch_start']}]={last['rate']:.2f} "
            f"({len(series)} windows)"
        )
    return "\n\n".join(blocks) if blocks else "(no metrics)"
