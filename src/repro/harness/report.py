"""Plain-text table rendering for harness output."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

__all__ = ["render_table", "render_kv"]


def render_table(rows: Sequence[Dict[str, Any]]) -> str:
    """Render dict rows as an aligned ASCII table (first row sets columns)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:,.2f}"
            elif isinstance(value, int):
                text = f"{value:,}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    sep = "-+-".join("-" * widths[c] for c in columns)
    lines = [" | ".join(c.ljust(widths[c]) for c in columns), sep]
    for cells in rendered:
        lines.append(
            " | ".join(cell.rjust(widths[c]) for cell, c in zip(cells, columns))
        )
    return "\n".join(lines)


def render_kv(title: str, values: Mapping[str, Any]) -> str:
    """Render a titled key/value block (run-summary statistics).

    Used by the fuzz harness for its per-run totals; keys keep insertion
    order, values format like :func:`render_table` cells.
    """
    width = max((len(k) for k in values), default=0)
    lines = [title, "=" * len(title)]
    for key, value in values.items():
        if isinstance(value, float):
            text = f"{value:,.2f}"
        elif isinstance(value, int):
            text = f"{value:,}"
        else:
            text = str(value)
        lines.append(f"{key.ljust(width)}  {text}")
    return "\n".join(lines)
