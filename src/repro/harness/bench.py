"""``repro-bench`` — machine-readable benchmark runs for CI artifacts.

``repro-table2`` renders the paper's Table 2 for humans; this entry point
runs the same registry (:data:`~repro.harness.runner.BENCHMARKS`, plus
``--extended`` for the extension rows) and writes one JSON document —
``BENCH_PR4.json`` by default — that CI uploads as an artifact so perf and
structural counters can be diffed across commits without screen-scraping
the rendered table::

    repro-bench --scale tiny --repeats 1 --output BENCH_PR4.json

Per workload the document records the three wall times (Seq /
Instrumented / Racedet, min-of-``--repeats``), both slowdown ratios, the
structural counters the paper reports (#Tasks, #NTJoins, #SharedMem,
#AvgReaders) and the detector's cache/fast-path counters (PRECEDE
queries, cache hit rate, calls saved by the shadow fast paths).

Schema (``repro.bench/1``)::

    {"schema": "repro.bench/1", "scale": ..., "repeats": ...,
     "tag": ..., "workloads": [{"name": ..., "seq_seconds": ...,
       "instrumented_seconds": ..., "racedet_seconds": ...,
       "slowdown_vs_seq": ..., "slowdown_vs_instrumented": ...,
       "races": ..., "structural": {...}, "detector_perf": {...}}, ...]}

Exit status: 0 on success, 1 if any workload failed verification or
raised, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import List, Optional

from repro.harness.runner import (
    BENCHMARKS,
    EXTENDED_BENCHMARKS,
    run_benchmark,
)

__all__ = ["bench_data", "main"]

BENCH_SCHEMA = "repro.bench/1"


def _workload_data(result) -> dict:
    return {
        "name": result.name,
        "scale": result.scale,
        "seq_seconds": result.seq_seconds,
        "instrumented_seconds": result.instrumented_seconds,
        "racedet_seconds": result.racedet_seconds,
        "slowdown_vs_seq": round(result.slowdown_vs_seq, 4),
        "slowdown_vs_instrumented": round(
            result.slowdown_vs_instrumented, 4
        ),
        "races": result.races,
        "structural": {
            "num_tasks": result.metrics.num_tasks,
            "num_future_tasks": result.metrics.num_future_tasks,
            "num_gets": result.metrics.num_gets,
            "num_nt_joins": result.metrics.num_nt_joins,
            "num_shared_accesses": result.metrics.num_shared_accesses,
            "avg_readers": round(result.avg_readers, 4),
        },
        "detector_perf": asdict(result.perf),
    }


def bench_data(
    names: List[str],
    *,
    scale: str = "tiny",
    repeats: int = 1,
    verify: bool = True,
    tag: Optional[str] = None,
    out=None,
) -> dict:
    """Run ``names`` and assemble the ``repro.bench/1`` document.

    Failures don't abort the sweep: a workload that raises contributes an
    ``{"name": ..., "error": ...}`` row so the artifact still records
    which rows succeeded.
    """
    workloads: List[dict] = []
    for name in names:
        try:
            result = run_benchmark(
                name, scale, repeats=repeats, verify=verify
            )
        except Exception as exc:
            print(f"bench {name}: FAILED — {type(exc).__name__}: {exc}",
                  file=out or sys.stderr)
            workloads.append({
                "name": name,
                "error": f"{type(exc).__name__}: {exc}",
            })
            continue
        row = _workload_data(result)
        workloads.append(row)
        print(
            f"bench {name}: racedet {result.racedet_seconds * 1e3:.1f} ms "
            f"(x{result.slowdown_vs_seq:.2f} vs seq), "
            f"{result.metrics.num_tasks} tasks, "
            f"{result.metrics.num_nt_joins} nt-joins, "
            f"cache hit rate {result.perf.cache_hit_rate:.2f}",
            file=out,
        )
    data = {
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "workloads": workloads,
    }
    if tag is not None:
        data["tag"] = tag
    return data


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium", "large"))
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--output", metavar="FILE", default="BENCH_PR4.json")
    parser.add_argument("--tag", default=None,
                        help="free-form label recorded in the document "
                             "(e.g. a commit hash)")
    parser.add_argument("--extended", action="store_true",
                        help="include the extension rows beyond Table 2")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip output verification (timing only)")
    parser.add_argument("--only", metavar="NAME", action="append",
                        help="run only this workload (repeatable)")
    args = parser.parse_args(argv)

    names = list(BENCHMARKS)
    if args.extended:
        names += list(EXTENDED_BENCHMARKS)
    if args.only:
        unknown = [n for n in args.only if n not in set(names)]
        if unknown:
            print(f"error: unknown workload(s): {', '.join(unknown)} "
                  f"(choose from {', '.join(names)})", file=sys.stderr)
            return 2
        names = args.only

    data = bench_data(
        names, scale=args.scale, repeats=args.repeats,
        verify=not args.no_verify, tag=args.tag,
    )
    with open(args.output, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    failed = [w["name"] for w in data["workloads"] if "error" in w]
    print(f"{len(data['workloads'])} workload(s) written to {args.output}")
    if failed:
        print(f"error: {len(failed)} workload(s) failed: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
