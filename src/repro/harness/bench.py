"""``repro-bench`` — machine-readable benchmark runs for CI artifacts.

``repro-table2`` renders the paper's Table 2 for humans; this entry point
runs the same registry (:data:`~repro.harness.runner.BENCHMARKS`, plus
``--extended`` for the extension rows) and writes one JSON document —
``BENCH_PR4.json`` by default — that CI uploads as an artifact so perf and
structural counters can be diffed across commits without screen-scraping
the rendered table::

    repro-bench --scale tiny --repeats 1 --output BENCH_PR4.json

Per workload the document records the three wall times (Seq /
Instrumented / Racedet, min-of-``--repeats``), both slowdown ratios, the
structural counters the paper reports (#Tasks, #NTJoins, #SharedMem,
#AvgReaders) and the detector's cache/fast-path counters (PRECEDE
queries, cache hit rate, calls saved by the shadow fast paths).

Schema (``repro.bench/1``)::

    {"schema": "repro.bench/1", "scale": ..., "repeats": ...,
     "tag": ..., "workloads": [{"name": ..., "seq_seconds": ...,
       "instrumented_seconds": ..., "racedet_seconds": ...,
       "slowdown_vs_seq": ..., "slowdown_vs_instrumented": ...,
       "races": ..., "structural": {...}, "detector_perf": {...}}, ...]}

``--parallel`` switches to the two-phase sharded checker benchmark
(``docs/ALGORITHM.md`` §12) and writes ``BENCH_PR5.json`` by default:
each workload's trace is recorded once, then checked at every ``--jobs``
count, recording per-count wall times, speedup over jobs=1, the
snapshot-freeze overhead (seconds and bytes/task), and whether every
count reproduced the jobs=1 summary and counters byte-for-byte
(``identical_across_jobs`` — the determinism contract)::

    repro-bench --parallel --scale small --jobs 1,2,4 --output BENCH_PR5.json

Schema (``repro.bench.parallel/1``)::

    {"schema": "repro.bench.parallel/1", "scale": ..., "repeats": ...,
     "cpu_count": ..., "tag": ..., "workloads": [{"name": ...,
       "num_events": ..., "num_access_events": ..., "num_tasks": ...,
       "races": ..., "freeze_seconds": ..., "snapshot_bytes": ...,
       "bytes_per_task": ..., "identical_across_jobs": ...,
       "jobs": [{"jobs": 1, "seconds": ..., "check_seconds": ...,
                 "freeze_seconds": ..., "speedup": ...}, ...]}, ...]}

On a single-core box (``os.cpu_count() == 1``) the parallel document is
additionally tagged ``"speedup_valid": false`` and a loud warning is
printed: multi-job wall times there measure sharding *overhead*, never
speedup, and must not be read as regressions.

``--throughput`` races the three single-thread checking engines
back-to-back over each workload's recorded trace — live object-graph
replay, the PR 5 snapshot checker at jobs=1, and the PR 6 flat-array
fast path (:func:`repro.core.fastcheck.check_trace_fast`) — and writes
``BENCH_PR6.json`` by default::

    repro-bench --throughput --scale large --only Jacobi

Schema (``repro.bench.throughput/1``)::

    {"schema": "repro.bench.throughput/1", "scale": ..., "repeats": ...,
     "cpu_count": ..., "tag": ..., "workloads": [{"name": ...,
       "num_events": ..., "num_access_events": ..., "races": ...,
       "sequential_replay": {"seconds": ..., "events_per_second": ...},
       "snapshot_jobs1": {"check_seconds": ..., "total_seconds": ...,
                          "access_events_per_second": ...},
       "fast": {"encode_seconds": ..., "structure_seconds": ...,
                "access_seconds": ..., "total_seconds": ...,
                "events_per_second": ...,
                "access_events_per_second": ...},
       "speedup_access_vs_snapshot_jobs1": ...,
       "speedup_total_vs_replay": ...,
       "identical": ..., "mismatches": [...]}, ...]}

``--backends`` races every pluggable PRECEDE backend
(``DeterminacyRaceDetector(engine=…)`` — object-graph dtrg, flat-array,
DePa order-maintenance labels, future-aware vector clocks; see
docs/ALGORITHM.md §14) head-to-head over each workload's recorded trace
and writes ``BENCH_PR7.json`` by default.  ``--scales`` takes a comma
list so one artifact can cover several scales::

    repro-bench --backends --scales table2,large --markdown docs/BACKENDS.md

Per workload × scale the document records each engine's replay wall
time, events/s, race count and perf counters, plus a status: ``ok``,
``declined`` (DePa refusing a future ``get`` — an honest fragment
boundary, reported as data, never an error) or ``error``.  Completed
engines are gated on reproducing the dtrg engine's summary text and
ordered race pair list bit-for-bit (``identical``); perf counters are
per-engine invariants and are reported, not gated.  ``--markdown FILE``
additionally renders the comparison table as markdown.

Schema (``repro.bench.backends/1``)::

    {"schema": "repro.bench.backends/1", "scales": [...], "repeats": ...,
     "cpu_count": ..., "tag": ..., "workloads": [{"name": ...,
       "scale": ..., "num_events": ..., "num_access_events": ...,
       "num_tasks": ..., "num_gets": ..., "races": ...,
       "identical": ..., "mismatches": [...], "engines": {
         "dtrg": {"status": "ok", "seconds": ...,
                  "events_per_second": ..., "races": ..., "perf": {...}},
         "depa": {"status": "declined", "detail": ...}, ...}}, ...]}

``--executors`` runs each workload *live* on the serial elision and on
the work-stealing ThreadRuntime at each ``--workers`` pool size, a fresh
online :class:`~repro.core.parallel_detector.ParallelRaceDetector`
checking during execution, and writes ``BENCH_PR8.json`` by default::

    repro-bench --executors --scale table2 --workers 1,2,4

Per workload the document records each runtime's wall seconds, tasks/s
and shadow-checked accesses/s, the speedup over the serial elision, the
thread rows' peak pool size (workers + compensation threads), and the
parity gate: every runtime must report exactly the serial elision's
racy-location set and task count (``identical``).  The AsyncioRuntime
has no row — workload kernels use the synchronous blocking ``get()``
style the cooperative runtime rejects by design; its parity coverage
lives in ``repro-fuzz --runtimes`` and the property sweep.  As with
``--parallel``, a 1-core box tags the artifact
``"speedup_valid": false`` — thread rows there measure scheduling
overhead, not parallelism.

Schema (``repro.bench.executors/1``)::

    {"schema": "repro.bench.executors/1", "scale": ..., "repeats": ...,
     "cpu_count": ..., "speedup_valid": ..., "tag": ...,
     "workloads": [{"name": ..., "scale": ..., "races": ...,
       "num_tasks": ..., "num_accesses": ..., "identical": ...,
       "mismatches": [...], "runtimes": {
         "serial": {"seconds": ..., "tasks_per_second": ...,
                    "accesses_per_second": ..., "speedup_vs_serial": 1.0,
                    "races": ...},
         "threads-2": {"workers": 2, "pool_size": ..., ...}, ...}}, ...]}

``--telemetry`` measures the live-telemetry plane's checking overhead
(``docs/ALGORITHM.md`` §16) and writes ``BENCH_PR9.json`` by default:
each workload's trace is checked detached (no telemetry object
anywhere) and served (progress counter attached, 250 ms sampler
running, HTTP exporter scraped every 250 ms by an in-process client),
best-of-``--repeats`` per leg in the same process.  Rows record both
wall times and ``telemetry_overhead_pct``, gated at ``--max-overhead``
(default 5%); the served leg must also reproduce the detached leg's
race summary, ordered pair list and invariant perf counters
byte-for-byte (``identical``)::

    repro-bench --telemetry --scale table2 --only Jacobi

Schema (``repro.bench.telemetry/1``)::

    {"schema": "repro.bench.telemetry/1", "scale": ..., "repeats": ...,
     "cpu_count": ..., "max_overhead_pct": 5.0, "tag": ...,
     "workloads": [{"name": ..., "num_events": ...,
       "num_access_events": ..., "races": ..., "detached_seconds": ...,
       "served_seconds": ..., "detached_events_per_second": ...,
       "served_events_per_second": ..., "telemetry_overhead_pct": ...,
       "overhead_ok": ..., "scrapes": ..., "samples": ...,
       "identical": ..., "mismatches": [...]}, ...]}

``--serve-metrics PORT`` / ``--heartbeat SECS`` watch the *bench run
itself*: any mode gains a live ``/metrics`` + ``/snapshot`` endpoint
(PORT 0 picks an ephemeral port, printed to stderr) and a periodic
stderr progress line; the progress counter ticks once per completed
workload row.

``--baseline FILE`` (throughput mode) gates against a checked-in
baseline (``benchmarks/throughput_baseline.json``): the run fails if any
workload's fast-path ``access_events_per_second`` drops more than 10%
below the baseline value, or if its speedup over the same-process
snapshot baseline falls below the recorded floor.  Baseline absolute
numbers are deliberately conservative — shared-CI wall clocks vary
severalfold — while the speedup floor is box-speed-independent.  With
``--backends`` the same flag gates the **dtrg rows only** against
``benchmarks/backends_baseline.json`` (conservative
``dtrg_events_per_second`` floors at the baseline's scale); the other
engines are compared for verdict identity, never for speed.

Exit status: 0 on success, 1 if any workload failed verification or
raised (or, with ``--parallel``, broke the determinism contract; or,
with ``--throughput``, broke bit-equivalence or the ``--baseline``
gate), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from typing import List, Optional, Sequence

from repro.harness.runner import (
    BACKEND_ENGINES,
    BENCHMARKS,
    EXTENDED_BENCHMARKS,
    run_backend_benchmark,
    run_benchmark,
    run_executor_benchmark,
    run_parallel_benchmark,
    run_telemetry_benchmark,
    run_throughput_benchmark,
)

__all__ = [
    "bench_data",
    "backend_bench_data",
    "backends_markdown",
    "executor_bench_data",
    "parallel_bench_data",
    "telemetry_bench_data",
    "throughput_bench_data",
    "check_backends_baseline",
    "check_throughput_baseline",
    "main",
]

BENCH_SCHEMA = "repro.bench/1"
BACKEND_BENCH_SCHEMA = "repro.bench.backends/1"
EXECUTOR_BENCH_SCHEMA = "repro.bench.executors/1"
PARALLEL_BENCH_SCHEMA = "repro.bench.parallel/1"
TELEMETRY_BENCH_SCHEMA = "repro.bench.telemetry/1"
THROUGHPUT_BENCH_SCHEMA = "repro.bench.throughput/1"


def _tick(progress) -> None:
    """Bump a :class:`repro.obs.live.ProgressCounter` by one workload
    row (``--serve-metrics``/``--heartbeat`` watch the bench run itself;
    ``None`` — the default — keeps every mode telemetry-free)."""
    if progress is not None:
        progress.add(1)


def _workload_data(result) -> dict:
    return {
        "name": result.name,
        "scale": result.scale,
        "seq_seconds": result.seq_seconds,
        "instrumented_seconds": result.instrumented_seconds,
        "racedet_seconds": result.racedet_seconds,
        "slowdown_vs_seq": round(result.slowdown_vs_seq, 4),
        "slowdown_vs_instrumented": round(
            result.slowdown_vs_instrumented, 4
        ),
        "races": result.races,
        "events_per_second": round(result.events_per_second, 1),
        "structural": {
            "num_tasks": result.metrics.num_tasks,
            "num_future_tasks": result.metrics.num_future_tasks,
            "num_gets": result.metrics.num_gets,
            "num_nt_joins": result.metrics.num_nt_joins,
            "num_shared_accesses": result.metrics.num_shared_accesses,
            "avg_readers": round(result.avg_readers, 4),
        },
        "detector_perf": asdict(result.perf),
    }


def bench_data(
    names: List[str],
    *,
    scale: str = "tiny",
    repeats: int = 1,
    verify: bool = True,
    tag: Optional[str] = None,
    out=None,
    progress=None,
) -> dict:
    """Run ``names`` and assemble the ``repro.bench/1`` document.

    Failures don't abort the sweep: a workload that raises contributes an
    ``{"name": ..., "error": ...}`` row so the artifact still records
    which rows succeeded.
    """
    workloads: List[dict] = []
    for name in names:
        try:
            result = run_benchmark(
                name, scale, repeats=repeats, verify=verify
            )
        except Exception as exc:
            print(f"bench {name}: FAILED — {type(exc).__name__}: {exc}",
                  file=out or sys.stderr)
            workloads.append({
                "name": name,
                "error": f"{type(exc).__name__}: {exc}",
            })
            _tick(progress)
            continue
        row = _workload_data(result)
        workloads.append(row)
        _tick(progress)
        print(
            f"bench {name}: racedet {result.racedet_seconds * 1e3:.1f} ms "
            f"(x{result.slowdown_vs_seq:.2f} vs seq), "
            f"{result.metrics.num_tasks} tasks, "
            f"{result.metrics.num_nt_joins} nt-joins, "
            f"cache hit rate {result.perf.cache_hit_rate:.2f}",
            file=out,
        )
    data = {
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "workloads": workloads,
    }
    if tag is not None:
        data["tag"] = tag
    return data


def parallel_bench_data(
    names: List[str],
    *,
    scale: str = "tiny",
    jobs: Sequence[int] = (1, 2, 4),
    repeats: int = 1,
    verify: bool = True,
    backend: Optional[str] = None,
    tag: Optional[str] = None,
    out=None,
    progress=None,
) -> dict:
    """Run ``names`` through the sharded checker and assemble the
    ``repro.bench.parallel/1`` document.  ``cpu_count`` is recorded so a
    reader can judge the speedup numbers honestly — on a 1-core box the
    fan-out cannot beat jobs=1 and the artifact says so."""
    workloads: List[dict] = []
    for name in names:
        try:
            result = run_parallel_benchmark(
                name, scale, jobs=tuple(jobs), repeats=repeats,
                verify=verify, backend=backend,
            )
        except Exception as exc:
            print(f"bench {name}: FAILED — {type(exc).__name__}: {exc}",
                  file=out or sys.stderr)
            workloads.append({
                "name": name,
                "error": f"{type(exc).__name__}: {exc}",
            })
            _tick(progress)
            continue
        workloads.append({
            "name": name,
            "scale": result.scale,
            "num_events": result.num_events,
            "num_access_events": result.num_access_events,
            "num_tasks": result.num_tasks,
            "num_locations": result.num_locations,
            "races": result.races,
            "freeze_seconds": result.freeze_seconds,
            "snapshot_bytes": result.snapshot_bytes,
            "bytes_per_task": round(result.bytes_per_task, 2),
            "identical_across_jobs": result.identical,
            "jobs": [
                {
                    "jobs": n,
                    "seconds": result.per_jobs[n]["seconds"],
                    "check_seconds": result.per_jobs[n]["check_seconds"],
                    "freeze_seconds": result.per_jobs[n]["freeze_seconds"],
                    "build_seconds": result.per_jobs[n]["build_seconds"],
                    "speedup": round(result.per_jobs[n]["speedup"], 4),
                    "events_per_second": round(
                        result.per_jobs[n]["events_per_second"], 1
                    ),
                    "access_events_per_second": round(
                        result.per_jobs[n]["access_events_per_second"], 1
                    ),
                }
                for n in jobs
            ],
        })
        _tick(progress)
        fastest = max(jobs, key=lambda n: result.per_jobs[n]["speedup"])
        print(
            f"bench {name}: {result.num_access_events} accesses, "
            f"jobs=1 {result.per_jobs[jobs[0]]['seconds'] * 1e3:.1f} ms, "
            f"best x{result.per_jobs[fastest]['speedup']:.2f} at "
            f"jobs={fastest}, freeze {result.freeze_seconds * 1e3:.2f} ms "
            f"({result.bytes_per_task:.0f} B/task), "
            f"identical={result.identical}",
            file=out,
        )
    cpu_count = os.cpu_count() or 1
    data = {
        "schema": PARALLEL_BENCH_SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "cpu_count": cpu_count,
        "speedup_valid": cpu_count > 1,
        "workloads": workloads,
    }
    if cpu_count <= 1:
        print(
            "=" * 72 + "\n"
            "WARNING: cpu_count == 1 — multi-job wall times on this box\n"
            "measure sharding OVERHEAD, not speedup.  The artifact is\n"
            'tagged "speedup_valid": false; do not read sub-1.0 speedups\n'
            "here as regressions.\n" + "=" * 72,
            file=out or sys.stderr,
        )
    if tag is not None:
        data["tag"] = tag
    return data


def throughput_bench_data(
    names: List[str],
    *,
    scale: str = "small",
    repeats: int = 2,
    verify: bool = True,
    tag: Optional[str] = None,
    out=None,
    progress=None,
) -> dict:
    """Run ``names`` through the single-thread engine race and assemble
    the ``repro.bench.throughput/1`` document (see module docstring)."""
    workloads: List[dict] = []
    for name in names:
        try:
            result = run_throughput_benchmark(
                name, scale, repeats=repeats, verify=verify
            )
        except Exception as exc:
            print(f"bench {name}: FAILED — {type(exc).__name__}: {exc}",
                  file=out or sys.stderr)
            workloads.append({
                "name": name,
                "error": f"{type(exc).__name__}: {exc}",
            })
            _tick(progress)
            continue
        ft = result.fast_timings
        workloads.append({
            "name": name,
            "scale": result.scale,
            "num_events": result.num_events,
            "num_access_events": result.num_access_events,
            "num_structure_events": result.num_structure_events,
            "num_tasks": result.num_tasks,
            "num_locations": result.num_locations,
            "races": result.races,
            "sequential_replay": {
                "seconds": result.replay_seconds,
                "events_per_second": round(
                    result.replay_events_per_second, 1
                ),
            },
            "snapshot_jobs1": {
                "check_seconds": result.snapshot_check_seconds,
                "total_seconds": result.snapshot_total_seconds,
                "access_events_per_second": round(
                    result.snapshot_access_events_per_second, 1
                ),
            },
            "fast": {
                "encode_seconds": ft.get("encode_seconds", 0.0),
                "structure_seconds": ft.get("structure_seconds", 0.0),
                "access_seconds": ft.get("access_seconds", 0.0),
                "total_seconds": ft.get("total_seconds", 0.0),
                "events_per_second": round(
                    result.fast_events_per_second, 1
                ),
                "access_events_per_second": round(
                    result.fast_access_events_per_second, 1
                ),
            },
            "speedup_access_vs_snapshot_jobs1": round(
                result.speedup_access_vs_snapshot, 4
            ),
            "speedup_total_vs_replay": round(
                result.speedup_total_vs_replay, 4
            ),
            "identical": result.identical,
            "mismatches": result.mismatches,
        })
        _tick(progress)
        print(
            f"bench {name}: {result.num_access_events} accesses — "
            f"replay {result.replay_events_per_second / 1e3:.0f}k ev/s, "
            f"snapshot jobs=1 "
            f"{result.snapshot_access_events_per_second / 1e3:.0f}k acc/s, "
            f"fast {result.fast_access_events_per_second / 1e3:.0f}k acc/s "
            f"(x{result.speedup_access_vs_snapshot:.2f} access, "
            f"x{result.speedup_total_vs_replay:.2f} end-to-end), "
            f"identical={result.identical}",
            file=out,
        )
    data = {
        "schema": THROUGHPUT_BENCH_SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
    }
    if tag is not None:
        data["tag"] = tag
    return data


def backend_bench_data(
    names: List[str],
    *,
    scales: Sequence[str] = ("table2",),
    repeats: int = 2,
    verify: bool = True,
    tag: Optional[str] = None,
    out=None,
    progress=None,
) -> dict:
    """Run ``names`` at each scale through the PRECEDE backend
    head-to-head and assemble the ``repro.bench.backends/1`` document
    (see module docstring).  A ``declined`` engine row is data, not a
    failure; an ``error`` row or a verdict mismatch fails the run."""
    workloads: List[dict] = []
    for scale in scales:
        for name in names:
            try:
                result = run_backend_benchmark(
                    name, scale, repeats=repeats, verify=verify
                )
            except Exception as exc:
                print(f"bench {name}@{scale}: FAILED — "
                      f"{type(exc).__name__}: {exc}",
                      file=out or sys.stderr)
                workloads.append({
                    "name": name,
                    "scale": scale,
                    "error": f"{type(exc).__name__}: {exc}",
                })
                _tick(progress)
                continue
            workloads.append({
                "name": name,
                "scale": result.scale,
                "num_events": result.num_events,
                "num_access_events": result.num_access_events,
                "num_tasks": result.num_tasks,
                "num_gets": result.num_gets,
                "races": result.races,
                "identical": result.identical,
                "mismatches": result.mismatches,
                "engines": result.per_engine,
            })
            _tick(progress)
            cells = []
            for engine in BACKEND_ENGINES:
                row = result.per_engine.get(engine, {})
                if row.get("status") == "ok":
                    cells.append(f"{engine} "
                                 f"{row['seconds'] * 1e3:.1f} ms")
                else:
                    cells.append(f"{engine} {row.get('status', '—')}")
            print(
                f"bench {name}@{scale}: {result.num_events} events, "
                f"{result.races} race(s) — " + ", ".join(cells)
                + f", identical={result.identical}",
                file=out,
            )
    data = {
        "schema": BACKEND_BENCH_SCHEMA,
        "scales": list(scales),
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
    }
    if tag is not None:
        data["tag"] = tag
    return data


def executor_bench_data(
    names: List[str],
    *,
    scale: str = "small",
    workers: Sequence[int] = (1, 2, 4),
    repeats: int = 1,
    verify: bool = True,
    tag: Optional[str] = None,
    out=None,
    progress=None,
) -> dict:
    """Run ``names`` live on every runtime substrate and assemble the
    ``repro.bench.executors/1`` document (see module docstring).  A
    racy-set or task-count mismatch is recorded per workload
    (``identical``/``mismatches``) and fails the run via the caller's
    gate, the same contract as the other multi-engine modes."""
    workloads: List[dict] = []
    for name in names:
        try:
            result = run_executor_benchmark(
                name, scale, workers=tuple(workers), repeats=repeats,
                verify=verify,
            )
        except Exception as exc:
            print(f"bench {name}: FAILED — {type(exc).__name__}: {exc}",
                  file=out or sys.stderr)
            workloads.append({
                "name": name,
                "error": f"{type(exc).__name__}: {exc}",
            })
            _tick(progress)
            continue
        workloads.append({
            "name": name,
            "scale": result.scale,
            "races": result.races,
            "num_tasks": result.num_tasks,
            "num_accesses": result.num_accesses,
            "identical": result.identical,
            "mismatches": result.mismatches,
            "runtimes": result.per_runtime,
        })
        _tick(progress)
        serial_ms = result.per_runtime["serial"]["seconds"] * 1e3
        cells = [
            f"threads-{w} x"
            f"{result.per_runtime[f'threads-{w}']['speedup_vs_serial']:.2f}"
            for w in workers
        ]
        print(
            f"bench {name}: {result.num_tasks} tasks, "
            f"{result.num_accesses} accesses, serial {serial_ms:.1f} ms — "
            + ", ".join(cells)
            + f", identical={result.identical}",
            file=out,
        )
    cpu_count = os.cpu_count() or 1
    data = {
        "schema": EXECUTOR_BENCH_SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "cpu_count": cpu_count,
        "speedup_valid": cpu_count > 1,
        "workloads": workloads,
    }
    if cpu_count <= 1:
        print(
            "=" * 72 + "\n"
            "WARNING: cpu_count == 1 — thread-row wall times on this box\n"
            "measure scheduling OVERHEAD, not parallelism.  The artifact\n"
            'is tagged "speedup_valid": false.\n' + "=" * 72,
            file=out or sys.stderr,
        )
    if tag is not None:
        data["tag"] = tag
    return data


def telemetry_bench_data(
    names: List[str],
    *,
    scale: str = "small",
    repeats: int = 3,
    verify: bool = True,
    max_overhead_pct: float = 5.0,
    tag: Optional[str] = None,
    out=None,
    progress=None,
) -> dict:
    """Run ``names`` through the detached-vs-served fast-path comparison
    and assemble the ``repro.bench.telemetry/1`` document (see module
    docstring).  Each row carries its own ``overhead_ok`` verdict against
    ``max_overhead_pct`` so the artifact is self-describing; the caller's
    gate turns a false verdict (or an equivalence mismatch) into a
    non-zero exit."""
    workloads: List[dict] = []
    for name in names:
        try:
            result = run_telemetry_benchmark(
                name, scale, repeats=repeats, verify=verify
            )
        except Exception as exc:
            print(f"bench {name}: FAILED — {type(exc).__name__}: {exc}",
                  file=out or sys.stderr)
            workloads.append({
                "name": name,
                "error": f"{type(exc).__name__}: {exc}",
            })
            _tick(progress)
            continue
        overhead = round(result.telemetry_overhead_pct, 2)
        workloads.append({
            "name": name,
            "scale": result.scale,
            "num_events": result.num_events,
            "num_access_events": result.num_access_events,
            "races": result.races,
            "detached_seconds": result.detached_seconds,
            "served_seconds": result.served_seconds,
            "detached_events_per_second": round(
                result.detached_events_per_second, 1
            ),
            "served_events_per_second": round(
                result.served_events_per_second, 1
            ),
            "telemetry_overhead_pct": overhead,
            "overhead_ok": overhead <= max_overhead_pct,
            "scrapes": result.scrapes,
            "samples": result.samples,
            "identical": result.identical,
            "mismatches": result.mismatches,
        })
        _tick(progress)
        print(
            f"bench {name}: {result.num_events} events — detached "
            f"{result.detached_seconds * 1e3:.1f} ms, served "
            f"{result.served_seconds * 1e3:.1f} ms "
            f"({overhead:+.2f}% overhead, {result.scrapes} scrape(s), "
            f"{result.samples} sample(s)), identical={result.identical}",
            file=out,
        )
    data = {
        "schema": TELEMETRY_BENCH_SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "max_overhead_pct": max_overhead_pct,
        "workloads": workloads,
    }
    if tag is not None:
        data["tag"] = tag
    return data


def backends_markdown(data: dict) -> str:
    """Render a ``repro.bench.backends/1`` document as a markdown
    comparison table, one row per workload × scale.  Cells show replay
    wall milliseconds (``declined``/``error`` for incomplete rows); a
    trailing column records the verdict-stream bit-identity gate."""
    lines = [
        "| Workload | Scale | #Events | #Gets | "
        + " | ".join(f"{e} (ms)" for e in BACKEND_ENGINES)
        + " | Races | Identical |",
        "|---|---|---:|---:|" + "---:|" * len(BACKEND_ENGINES) + "---:|---|",
    ]
    for w in data.get("workloads", []):
        if "error" in w:
            lines.append(
                f"| {w['name']} | {w.get('scale', '?')} | — | — |"
                + " error |" * len(BACKEND_ENGINES) + " — | — |")
            continue
        cells = []
        for engine in BACKEND_ENGINES:
            row = w["engines"].get(engine, {})
            if row.get("status") == "ok":
                cells.append(f"{row['seconds'] * 1e3:.1f}")
            else:
                cells.append(row.get("status", "—"))
        lines.append(
            f"| {w['name']} | {w['scale']} | {w['num_events']:,} | "
            f"{w['num_gets']:,} | " + " | ".join(cells)
            + f" | {w['races']} | {'yes' if w['identical'] else 'NO'} |")
    return "\n".join(lines) + "\n"


def check_backends_baseline(data: dict, baseline: dict, out=None) -> List[str]:
    """Compare a ``repro.bench.backends/1`` document against a
    checked-in baseline; return violation strings (empty = ok).

    The gate covers the **dtrg rows only**: the default engine's replay
    throughput must not drop more than 10% below the (deliberately
    conservative) ``dtrg_events_per_second`` floor at the baseline's
    scale.  The other engines are compared, not gated — ``depa`` may
    decline and ``vc``'s cost profile is the experiment, not a
    regression."""
    want_scale = baseline.get("scale")
    rows = {
        w.get("name"): w for w in data.get("workloads", [])
        if want_scale is None or w.get("scale") == want_scale
    }
    violations: List[str] = []
    for name, gate in baseline.get("workloads", {}).items():
        row = rows.get(name)
        if row is None or "error" in row:
            violations.append(f"{name}: missing from the run")
            continue
        dtrg = row.get("engines", {}).get("dtrg", {})
        if dtrg.get("status") != "ok":
            violations.append(f"{name}: dtrg row did not complete")
            continue
        floor = gate.get("dtrg_events_per_second")
        if floor is not None:
            measured = dtrg["events_per_second"]
            if measured < 0.9 * floor:
                violations.append(
                    f"{name}: dtrg replay throughput {measured:.0f} ev/s "
                    f"regressed >10% below baseline {floor:.0f} ev/s"
                )
    for violation in violations:
        print(f"baseline: {violation}", file=out or sys.stderr)
    return violations


def check_throughput_baseline(data: dict, baseline: dict, out=None) -> List[str]:
    """Compare a ``repro.bench.throughput/1`` document against a
    checked-in baseline; return a list of violation strings (empty = ok).

    Two gates per workload named in the baseline:

    * ``access_events_per_second`` — absolute floor with 10% tolerance.
      Baseline values are recorded conservatively (well below a healthy
      run) because shared-CI wall clocks vary severalfold.
    * ``min_speedup_vs_snapshot`` — the fast path's access-throughput
      ratio over the same-process PR 5 jobs=1 checker.  Box-speed
      cancels out of the ratio, so this is the sharper gate.
    """
    rows = {w.get("name"): w for w in data.get("workloads", [])}
    violations: List[str] = []
    for name, gate in baseline.get("workloads", {}).items():
        row = rows.get(name)
        if row is None or "error" in row:
            violations.append(f"{name}: missing from the run")
            continue
        floor = gate.get("access_events_per_second")
        if floor is not None:
            measured = row["fast"]["access_events_per_second"]
            if measured < 0.9 * floor:
                violations.append(
                    f"{name}: fast access throughput {measured:.0f} ev/s "
                    f"regressed >10% below baseline {floor:.0f} ev/s"
                )
        min_speedup = gate.get("min_speedup_vs_snapshot")
        if min_speedup is not None:
            measured = row["speedup_access_vs_snapshot_jobs1"]
            if measured < min_speedup:
                violations.append(
                    f"{name}: speedup vs snapshot jobs=1 {measured:.2f} "
                    f"below floor {min_speedup:.2f}"
                )
    for violation in violations:
        print(f"baseline: {violation}", file=out or sys.stderr)
    return violations


_SCALES = ("tiny", "small", "table2", "large")


def _parse_scales_list(text: str) -> List[str]:
    scales = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [s for s in scales if s not in _SCALES]
    if not scales or unknown:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated scales from {', '.join(_SCALES)}, "
            f"got {text!r}")
    return scales


def _parse_jobs_list(text: str) -> List[int]:
    try:
        jobs = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated job counts, got {text!r}")
    if not jobs or any(n < 1 for n in jobs):
        raise argparse.ArgumentTypeError(
            f"job counts must be positive, got {text!r}")
    return jobs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "table2", "large"))
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="artifact path (default BENCH_PR4.json, "
                             "BENCH_PR5.json with --parallel, or "
                             "BENCH_PR6.json with --throughput)")
    parser.add_argument("--parallel", action="store_true",
                        help="benchmark the two-phase sharded checker "
                             "instead of the live detector")
    parser.add_argument("--throughput", action="store_true",
                        help="race the single-thread checking engines "
                             "(live replay / snapshot jobs=1 / flat-array "
                             "fast path) over each recorded trace")
    parser.add_argument("--backends", action="store_true",
                        help="race every PRECEDE backend (dtrg / array / "
                             "depa / vc) over each recorded trace")
    parser.add_argument("--executors", action="store_true",
                        help="run each workload live on the serial elision "
                             "and the work-stealing ThreadRuntime at each "
                             "--workers pool size, detecting online")
    parser.add_argument("--telemetry", action="store_true",
                        help="measure the live-telemetry plane's checking "
                             "overhead (detached vs served fast-path legs, "
                             "gated at --max-overhead)")
    parser.add_argument("--max-overhead", dest="max_overhead", type=float,
                        default=5.0, metavar="PCT",
                        help="with --telemetry: fail if any workload's "
                             "served leg is more than PCT%% slower than "
                             "its detached leg (default 5)")
    parser.add_argument("--serve-metrics", dest="serve_metrics", type=int,
                        default=None, metavar="PORT",
                        help="serve live /metrics + /snapshot for the "
                             "bench run itself (0 picks an ephemeral "
                             "port, printed to stderr)")
    parser.add_argument("--heartbeat", type=float, default=0.0,
                        metavar="SECS",
                        help="print a stderr progress line every SECS "
                             "seconds while the sweep runs (0 disables)")
    parser.add_argument("--workers", type=_parse_jobs_list,
                        default=[1, 2, 4], metavar="N,N,...",
                        help="pool sizes for --executors (default 1,2,4)")
    parser.add_argument("--scales", type=_parse_scales_list, default=None,
                        metavar="S,S,...",
                        help="with --backends: comma list of scales to "
                             "cover in one artifact (default: --scale)")
    parser.add_argument("--markdown", metavar="FILE", default=None,
                        help="with --backends: also render the comparison "
                             "table as markdown to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="with --throughput (or --backends): fail if "
                             "fast-path (or dtrg-row) throughput "
                             "regresses >10%% below this checked-in "
                             "baseline")
    parser.add_argument("--jobs", type=_parse_jobs_list, default=[1, 2, 4],
                        metavar="N,N,...",
                        help="job counts for --parallel (default 1,2,4)")
    parser.add_argument("--parallel-backend", dest="parallel_backend",
                        default=None,
                        choices=("auto", "fork", "spawn", "inline"),
                        help="worker dispatch for --parallel")
    parser.add_argument("--tag", default=None,
                        help="free-form label recorded in the document "
                             "(e.g. a commit hash)")
    parser.add_argument("--extended", action="store_true",
                        help="include the extension rows beyond Table 2")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip output verification (timing only)")
    parser.add_argument("--only", metavar="NAME", action="append",
                        help="run only this workload (repeatable)")
    args = parser.parse_args(argv)

    names = list(BENCHMARKS)
    if args.extended:
        names += list(EXTENDED_BENCHMARKS)
    if args.only:
        unknown = [n for n in args.only if n not in set(names)]
        if unknown:
            print(f"error: unknown workload(s): {', '.join(unknown)} "
                  f"(choose from {', '.join(names)})", file=sys.stderr)
            return 2
        names = args.only

    if sum((args.parallel, args.throughput, args.backends,
            args.executors, args.telemetry)) > 1:
        print("error: --parallel, --throughput, --backends, --executors "
              "and --telemetry are mutually exclusive", file=sys.stderr)
        return 2
    if args.heartbeat < 0:
        print("error: --heartbeat must be >= 0", file=sys.stderr)
        return 2
    if args.max_overhead <= 0:
        print("error: --max-overhead must be positive", file=sys.stderr)
        return 2
    if args.baseline and not (args.throughput or args.backends):
        print("error: --baseline requires --throughput or --backends",
              file=sys.stderr)
        return 2
    if (args.scales or args.markdown) and not args.backends:
        print("error: --scales/--markdown require --backends",
              file=sys.stderr)
        return 2

    telemetry = None
    if args.serve_metrics is not None or args.heartbeat > 0:
        from repro.obs.live import LiveTelemetry

        telemetry = LiveTelemetry(
            port=args.serve_metrics, heartbeat=args.heartbeat,
        )
        telemetry.start()
        if telemetry.url:
            print(f"serving live metrics at {telemetry.url}/metrics "
                  f"(snapshot: {telemetry.url}/snapshot)", file=sys.stderr)
        rows = len(names) * (
            len(args.scales or [args.scale]) if args.backends else 1
        )
        telemetry.progress.set_total(rows)
        telemetry.progress.set_phase("bench")
    progress = telemetry.progress if telemetry is not None else None

    try:
        if args.backends:
            output = args.output or "BENCH_PR7.json"
            data = backend_bench_data(
                names, scales=args.scales or [args.scale],
                repeats=max(args.repeats, 2), verify=not args.no_verify,
                tag=args.tag, progress=progress,
            )
            if args.markdown:
                with open(args.markdown, "w") as fh:
                    fh.write(backends_markdown(data))
                print(f"markdown table written to {args.markdown}")
        elif args.executors:
            output = args.output or "BENCH_PR8.json"
            data = executor_bench_data(
                names, scale=args.scale, workers=args.workers,
                repeats=args.repeats, verify=not args.no_verify,
                tag=args.tag, progress=progress,
            )
        elif args.parallel:
            output = args.output or "BENCH_PR5.json"
            data = parallel_bench_data(
                names, scale=args.scale, jobs=args.jobs,
                repeats=args.repeats, verify=not args.no_verify,
                backend=args.parallel_backend, tag=args.tag,
                progress=progress,
            )
        elif args.throughput:
            output = args.output or "BENCH_PR6.json"
            data = throughput_bench_data(
                names, scale=args.scale, repeats=max(args.repeats, 2),
                verify=not args.no_verify, tag=args.tag, progress=progress,
            )
        elif args.telemetry:
            output = args.output or "BENCH_PR9.json"
            data = telemetry_bench_data(
                names, scale=args.scale, repeats=max(args.repeats, 3),
                verify=not args.no_verify,
                max_overhead_pct=args.max_overhead, tag=args.tag,
                progress=progress,
            )
        else:
            output = args.output or "BENCH_PR4.json"
            data = bench_data(
                names, scale=args.scale, repeats=args.repeats,
                verify=not args.no_verify, tag=args.tag, progress=progress,
            )
    finally:
        if telemetry is not None:
            telemetry.stop()
    with open(output, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    failed = [w["name"] for w in data["workloads"] if "error" in w]
    nondeterministic = [
        w["name"] for w in data["workloads"]
        if not (w.get("identical_across_jobs", True)
                and w.get("identical", True))
    ]
    violations: List[str] = []
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        if args.backends:
            violations = check_backends_baseline(data, baseline)
        else:
            violations = check_throughput_baseline(data, baseline)
    if args.telemetry:
        for w in data["workloads"]:
            if "error" in w or w["overhead_ok"]:
                continue
            violation = (
                f"{w['name']}: telemetry overhead "
                f"{w['telemetry_overhead_pct']:+.2f}% exceeds the "
                f"{args.max_overhead:.1f}% budget"
            )
            violations.append(violation)
            print(f"gate: {violation}", file=sys.stderr)
    print(f"{len(data['workloads'])} workload(s) written to {output}")
    if nondeterministic:
        print(f"error: non-identical results across engines/job counts: "
              f"{', '.join(nondeterministic)}", file=sys.stderr)
    if failed:
        print(f"error: {len(failed)} workload(s) failed: "
              f"{', '.join(failed)}", file=sys.stderr)
    if violations:
        print(f"error: {len(violations)} gate/baseline violation(s)",
              file=sys.stderr)
    return 1 if failed or nondeterministic or violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
