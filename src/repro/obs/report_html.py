"""Self-contained HTML race report (``repro-racecheck --html``).

One static HTML file, no external assets or scripts: a summary table of
the deduplicated races, one collapsible section per witness showing the
full non-ordering certificate (interval labels, set membership, LSA chain,
exhausted VISIT frontier), the flight-recorder tail, and — when the run
also built the computation graph — the witness-highlighted DOT source for
rendering with Graphviz.  Everything is escaped; the file is safe to open
from an untrusted program's run.
"""

from __future__ import annotations

import html
from typing import Iterable, List, Optional

from repro.obs.provenance import RaceProvenance, RaceWitness, _fmt_label

__all__ = ["render_html_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1b1f24; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #d0d7de;
     padding-bottom: .4rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: .9rem; }
th, td { border: 1px solid #d0d7de; padding: .35rem .6rem;
         text-align: left; vertical-align: top; }
th { background: #f6f8fa; }
code, pre { font-family: ui-monospace, 'SFMono-Regular', Menlo, monospace;
            font-size: .85rem; }
pre { background: #f6f8fa; border: 1px solid #d0d7de; border-radius: 6px;
      padding: .8rem; overflow-x: auto; }
.race { color: #cf222e; font-weight: 600; }
.ok { color: #1a7f37; font-weight: 600; }
.site { color: #57606a; }
details { margin: .8rem 0; }
summary { cursor: pointer; font-weight: 600; }
.badge { display: inline-block; border-radius: 10px; padding: 0 .5rem;
         font-size: .75rem; background: #ddf4ff; color: #0969da; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _witness_section(witness: RaceWitness) -> List[str]:
    cert = witness.certificate or {}
    prev = witness.prev_name or f"task {witness.prev_task}"
    cur = witness.current_name or f"task {witness.current_task}"
    out = [
        f'<details open id="{_esc(witness.witness_id)}">',
        f"<summary>witness <code>{_esc(witness.witness_id)}</code>: "
        f'<span class="race">{_esc(witness.kind)}</span> race on '
        f"<code>{_esc(repr(witness.loc))}</code></summary>",
        "<table>",
        "<tr><th></th><th>task</th><th>site</th><th>set rep</th>"
        "<th>interval label</th></tr>",
    ]
    for role, name, tid, site, key in (
        ("previous", prev, witness.prev_task, witness.prev_site, "a_set"),
        ("current", cur, witness.current_task, witness.current_site, "b_set"),
    ):
        info = cert.get(key, {})
        out.append(
            f"<tr><td>{role}</td><td>{_esc(name)} (tid {tid})</td>"
            f'<td class="site">{_esc(site or "—")}</td>'
            f"<td>{_esc(info.get('rep', '?'))}</td>"
            f"<td><code>{_esc(_fmt_label(info.get('label', {})))}</code>"
            "</td></tr>"
        )
    out.append("</table>")
    level0 = cert.get("level0", {})
    checks = ", ".join(
        f"{k}={'yes' if v else 'no'}" for k, v in level0.items()
    ) or "(no certificate)"
    out.append(f"<p>level-0 checks: <code>{_esc(checks)}</code></p>")
    search = cert.get("search")
    if search is None:
        reason = ("preorder prune" if level0.get("preorder_pruned")
                  else "level-0")
        out.append(f"<p>PRECEDE resolved without search ({_esc(reason)}); "
                   "no backward path can exist.</p>")
    else:
        chain = search.get("lsa_chain", [])
        out.append(
            f"<p>VISIT expanded {len(search.get('expanded', []))} set(s), "
            f"LSA chain <code>{_esc(chain)}</code>, frontier exhausted: "
            f"<code>{_esc(search.get('frontier_exhausted'))}</code></p>"
        )
        out.append("<table><tr><th>set rep</th><th>via</th>"
                   "<th>label</th><th>non-tree predecessors scanned</th></tr>")
        for rec in search.get("expanded", []):
            out.append(
                f"<tr><td>{_esc(rec.get('rep'))}</td>"
                f"<td>{_esc(rec.get('via'))}</td>"
                f"<td><code>{_esc(_fmt_label(rec.get('label', {})))}</code>"
                f"</td><td><code>{_esc(rec.get('nt_scanned'))}</code>"
                "</td></tr>"
            )
        out.append("</table>")
    out.append(
        "<p>Reverse direction: serial depth-first execution places the "
        "current access after every completed step of the previous task's "
        "access, so neither access precedes the other — the pair is "
        "logically parallel (Definition 3).</p>"
    )
    out.append("</details>")
    return out


def render_html_report(
    *,
    program: str,
    report,
    witnesses: Iterable[RaceWitness],
    provenance: Optional[RaceProvenance] = None,
    dot_source: Optional[str] = None,
    verified: Optional[bool] = None,
) -> str:
    """Build the full report HTML (returns the document as a string)."""
    witnesses = list(witnesses)
    races = list(report)
    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>race report: {_esc(program)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>Determinacy race report — <code>{_esc(program)}</code></h1>",
    ]
    if races:
        verdict = f'<span class="race">{len(races)} race(s) detected</span>'
    else:
        verdict = '<span class="ok">no determinacy races detected</span>'
    if verified is not None:
        verdict += (
            ' &nbsp;<span class="badge">witnesses verified against '
            'brute-force graph</span>' if verified else
            ' &nbsp;<span class="race">witness verification FAILED</span>'
        )
    out.append(f"<p>{verdict}</p>")

    if races:
        out.append("<h2>Races</h2><table>")
        out.append("<tr><th>location</th><th>kind</th><th>previous access"
                   "</th><th>current access</th><th>witness</th></tr>")
        ordered = sorted(
            races,
            key=lambda r: (repr(r.loc),) + r.pair_key[1:3] + (r.kind.value,),
        )
        for race in ordered:
            wid = race.witness_id
            link = (f'<a href="#{_esc(wid)}"><code>{_esc(wid)}</code></a>'
                    if wid else "—")
            out.append(
                f"<tr><td><code>{_esc(repr(race.loc))}</code></td>"
                f"<td>{_esc(race.kind)}</td>"
                f"<td>{_esc(race.prev_name or race.prev_task)}"
                f'<br><span class="site">{_esc(race.prev_site or "—")}'
                "</span></td>"
                f"<td>{_esc(race.current_name or race.current_task)}"
                f'<br><span class="site">{_esc(race.current_site or "—")}'
                "</span></td>"
                f"<td>{link}</td></tr>"
            )
        out.append("</table>")

    if witnesses:
        out.append("<h2>Witnesses (non-ordering certificates)</h2>")
        out.append(
            "<p>Each certificate shows why <code>PRECEDE(prev, current)"
            "</code> is false in the dynamic task reachability graph: the "
            "interval labels rule out a tree ancestry, and the backward "
            "search over non-tree join edges and the LSA chain exhausts "
            "its frontier without reaching the previous task's set.</p>"
        )
        for witness in witnesses:
            out.extend(_witness_section(witness))

    if provenance is not None:
        recent = provenance.recent(50)
        out.append("<h2>Flight recorder (most recent events)</h2>")
        out.append(
            f"<p>{provenance.num_events} events recorded, "
            f"{len(provenance.sites)} distinct sites interned"
            + (f", {provenance.sites.num_dropped} dropped (table full)"
               if provenance.sites.num_dropped else "")
            + ".</p>"
        )
        out.append("<table><tr><th>event</th><th>task</th><th>detail</th>"
                   "<th>site</th></tr>")
        for kind, tid, detail, sid in recent:
            out.append(
                f"<tr><td>{_esc(kind)}</td><td>{tid}</td>"
                f"<td><code>{_esc(repr(detail))}</code></td>"
                f'<td class="site">'
                f"{_esc(provenance.site_label(sid) or '—')}</td></tr>"
            )
        out.append("</table>")

    if dot_source is not None:
        out.append("<h2>Computation graph (witness overlay)</h2>")
        out.append("<details><summary>Graphviz DOT source — render with "
                   "<code>dot -Tsvg</code></summary>")
        out.append(f"<pre>{_esc(dot_source)}</pre></details>")

    out.append("</body></html>")
    return "\n".join(out)
