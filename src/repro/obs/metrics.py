"""Counters, fixed-bucket histograms, and the metrics registry.

Design constraints (in order):

1. **Cheap to record.**  ``Histogram.observe`` is one ``bisect`` + three
   adds; ``Counter.inc`` is one add.  No locks (the runtime is serial), no
   allocation after construction.
2. **Fixed memory.**  Buckets are declared up front; observing a value
   never grows state (the epoch-window ratio is the one exception — it
   grows by one small entry per *window*, not per observation).
3. **Dumpable.**  Every primitive renders to plain JSON-able dicts so
   ``racecheck --metrics-json`` / ``repro-fuzz --metrics-json`` can write
   them and :func:`repro.harness.report.render_metrics` can print them.

Default bucket ladders are powers-of-two-ish, chosen to straddle the
operating points measured on the Table-2 workloads: PRECEDE latency is
sub-microsecond on the level-0 fast path and tens of microseconds on deep
``_explore`` searches; frontier sizes are 0 for structured programs and
O(non-tree chain length) for future-heavy ones; reader populations are
0..1 for async-finish programs and unbounded with futures.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "EpochWindowRatio",
    "MetricsRegistry",
    "quantile_from_dump",
    "PRECEDE_LATENCY_BUCKETS_NS",
    "FRONTIER_BUCKETS",
    "READER_BUCKETS",
    "SHARD_EVENT_BUCKETS",
    "PARALLEL_STAGE_BUCKETS_NS",
]

#: PRECEDE wall-time buckets (nanoseconds): level-0 answers land in the
#: first few, cold backward searches in the microsecond tail.
PRECEDE_LATENCY_BUCKETS_NS: Tuple[float, ...] = (
    250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000,
    64_000, 128_000, 512_000, 2_000_000,
)

#: ``_explore`` frontier size (VISIT expansions per query): 0 means the
#: query resolved at level 0 or from the cache.
FRONTIER_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Stored reader population of a shadow cell at access time.
READER_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)

#: Access events per shard in a parallel check (shard-balance visibility:
#: a heavy-tailed distribution here means the hash/bin-packing failed).
SHARD_EVENT_BUCKETS: Tuple[float, ...] = (
    0, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
)

#: Wall-time buckets (nanoseconds) for the parallel checker's build /
#: freeze / fan-out / merge stages.
PARALLEL_STAGE_BUCKETS_NS: Tuple[float, ...] = (
    100_000, 1_000_000, 10_000_000, 100_000_000,
    1_000_000_000, 10_000_000_000,
)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are inclusive upper bounds in ascending order; one implicit
    overflow bucket (``+Inf``) catches the tail.  A value ``v`` lands in
    the first bucket with ``v <= bound``.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending")
        if not bounds:
            raise ValueError("histogram needs at least one bound")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # Inclusive upper bounds: bucket i holds (bounds[i-1], bounds[i]],
        # so a value equal to a bound belongs to that bound's bucket —
        # bisect_left gives exactly that.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the p-th percentile
        (``p`` in [0, 100]); ``max`` for the overflow bucket."""
        if not self.count:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= rank and n:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) by linear
        interpolation inside the containing bucket — the
        ``histogram_quantile`` estimator, with two refinements the tests
        pin:

        * a rank landing exactly on a bucket's cumulative boundary
          returns that bucket's upper bound exactly (no interpolation
          drift across the seam);
        * the first bucket interpolates from the observed ``min`` (not
          an assumed 0) and the overflow bucket from its lower bound to
          the observed ``max``, so estimates never leave the observed
          value range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            prev_cumulative = cumulative
            cumulative += n
            if cumulative >= rank and n:
                if i < len(self.bounds):
                    hi = self.bounds[i]
                    lo = (
                        self.bounds[i - 1]
                        if i > 0
                        else (self.min if self.min is not None else hi)
                    )
                else:
                    hi = self.max if self.max is not None else 0.0
                    lo = self.bounds[-1]
                lo = min(lo, hi)
                if n == 0 or hi == lo:
                    estimate = hi
                else:
                    fraction = (rank - prev_cumulative) / n
                    estimate = lo + (hi - lo) * min(fraction, 1.0)
                # Clamp to the observed range: interpolation must never
                # report a value no observation could have had.
                if self.max is not None:
                    estimate = min(estimate, self.max)
                if self.min is not None:
                    estimate = max(estimate, self.min)
                return estimate
        return self.max if self.max is not None else 0.0

    def as_dict(self) -> Dict[str, Any]:
        buckets = [
            {"le": bound, "count": n}
            for bound, n in zip(self.bounds, self.counts)
        ]
        buckets.append({"le": "+Inf", "count": self.counts[-1]})
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "quantiles": {
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            },
            "buckets": buckets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, mean={self.mean:.1f})"


def quantile_from_dump(dump: Dict[str, Any], q: float) -> float:
    """:meth:`Histogram.quantile` applied to a histogram's ``as_dict``
    dump — lets :func:`repro.harness.report.render_metrics` interpolate
    quantiles from a ``--metrics-json`` file without the live object.

    Old dumps (pre-quantile PRs) lack nothing this needs: only
    ``buckets``, ``count``, ``min`` and ``max`` are read.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    count = dump.get("count", 0)
    if not count:
        return 0.0
    buckets = dump.get("buckets", [])
    bounds = [b["le"] for b in buckets if b["le"] != "+Inf"]
    counts = [b["count"] for b in buckets]
    rank = q * count
    vmin = dump.get("min")
    vmax = dump.get("max")
    cumulative = 0
    for i, n in enumerate(counts):
        prev_cumulative = cumulative
        cumulative += n
        if cumulative >= rank and n:
            if i < len(bounds):
                hi = bounds[i]
                lo = bounds[i - 1] if i > 0 else (vmin if vmin is not None else hi)
            else:
                hi = vmax if vmax is not None else 0.0
                lo = bounds[-1] if bounds else hi
            lo = min(lo, hi)
            if hi == lo:
                estimate = hi
            else:
                fraction = (rank - prev_cumulative) / n
                estimate = lo + (hi - lo) * min(fraction, 1.0)
            if vmax is not None:
                estimate = min(estimate, vmax)
            if vmin is not None:
                estimate = max(estimate, vmin)
            return estimate
    return vmax if vmax is not None else 0.0


class EpochWindowRatio:
    """Hit rate bucketed by DTRG mutation-epoch window.

    The PRECEDE cache's aggregate hit rate hides *when* the cache pays off:
    epochs with heavy graph mutation invalidate negative entries, epochs of
    pure access replay hit constantly.  Observations are keyed by
    ``epoch // window`` so the dump shows the hit rate's evolution over the
    run's mutation timeline.
    """

    __slots__ = ("window", "_hits", "_totals")

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._hits: Dict[int, int] = {}
        self._totals: Dict[int, int] = {}

    def observe(self, epoch: int, hit: bool) -> None:
        key = epoch // self.window
        self._totals[key] = self._totals.get(key, 0) + 1
        if hit:
            self._hits[key] = self._hits.get(key, 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        windows = []
        for key in sorted(self._totals):
            total = self._totals[key]
            hits = self._hits.get(key, 0)
            windows.append({
                "epoch_start": key * self.window,
                "hits": hits,
                "total": total,
                "rate": hits / total,
            })
        return {"window": self.window, "windows": windows}


class MetricsRegistry:
    """Named counters, histograms and epoch-window ratios.

    Lookups create on first use so hook points never need registration
    boilerplate; repeated lookups return the same object (hot paths should
    still cache the reference, as :class:`repro.obs.hooks.Observability`
    does).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._ratios: Dict[str, EpochWindowRatio] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                bounds if bounds is not None else FRONTIER_BUCKETS
            )
        return h

    def epoch_ratio(self, name: str, window: int = 1024) -> EpochWindowRatio:
        r = self._ratios.get(name)
        if r is None:
            r = self._ratios[name] = EpochWindowRatio(window)
        return r

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        """Plain JSON-able dump of everything recorded so far."""
        return {
            "counters": {
                name: c.as_dict() for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.as_dict()
                for name, h in sorted(self._histograms.items())
            },
            "epoch_windows": {
                name: r.as_dict() for name, r in sorted(self._ratios.items())
            },
        }

    def write_json(self, path) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
