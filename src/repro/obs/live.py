"""The live telemetry plane: pull-based metrics for long-running checks.

Three cooperating pieces, all optional and all detachable (the PR 3
contract — a run without telemetry executes byte-identically):

:class:`ProgressCounter`
    A shared, lock-guarded progress cell the batched checkers
    (:func:`repro.core.fastcheck.check_trace_fast`,
    :func:`repro.core.parallel_check.check_trace_parallel`) and the fuzz
    driver bump as they go.  Increments are coarse (one per run-length
    block / seed, never per access) so the hot loops stay hot.

:class:`RuntimeSampler`
    A daemon thread that every ``interval`` seconds (default 250 ms)
    calls a set of *source* callables — each returns a flat dict of
    gauge values — and swaps the merged result in atomically.  Sources
    read live detector/runtime state **without taking the subject's
    locks**: shadow-cell counts, DTRG sizes, deque depths and stripe
    counters are plain attribute reads of values that only ever grow, so
    a torn read costs accuracy (a gauge may lag by one increment), never
    correctness.  That is why every gauge here is documented as
    *approximate*.  The sampler also maintains EWMAs (events/s, PRECEDE
    cache hit rate) from deltas between consecutive samples.

:class:`TelemetryServer` / :class:`LiveTelemetry`
    ``LiveTelemetry`` is the facade the CLI tools construct for
    ``--serve-metrics PORT``: it owns the progress counter, the sampler,
    an optional :class:`http.server.ThreadingHTTPServer` (``/metrics``
    in Prometheus text exposition, ``/healthz``, ``/snapshot`` as JSON)
    and the stderr heartbeat line.  Bind to port 0 to get an ephemeral
    port (``.url`` reports the resolved address) — the test suite and
    the CI ``obs-live`` job rely on that.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.obs.exposition import DEFAULT_PREFIX, render_exposition

__all__ = [
    "ProgressCounter",
    "RuntimeSampler",
    "TelemetryServer",
    "LiveTelemetry",
    "detector_source",
    "thread_runtime_source",
    "tracer_source",
]

#: Rough per-cell footprint of a ShadowMemory cell (cell object + writer
#: slot + small reader list/set).  Deliberately a constant: the sampler
#: must not walk the cell table, so ``approx_bytes`` is cells × this.
APPROX_SHADOW_CELL_BYTES = 512


class ProgressCounter:
    """Monotonic progress shared between a checker and the telemetry
    plane.  ``add`` is taken under a lock — callers bump it per *block*
    (run-length segment, shard, seed), never per event, so contention is
    negligible and snapshots are always coherent."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._start = clock()
        self.events = 0
        self.races = 0
        self.total: Optional[int] = None
        self.phase = ""

    # ------------------------------------------------------------------ #
    def add(self, n: int = 1) -> None:
        with self._lock:
            self.events += n

    def add_races(self, n: int = 1) -> None:
        with self._lock:
            self.races += n

    def set_total(self, total: Optional[int]) -> None:
        with self._lock:
            self.total = total

    def set_phase(self, phase: str) -> None:
        with self._lock:
            self.phase = phase

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            elapsed = self._clock() - self._start
            events = self.events
            total = self.total
            rate = events / elapsed if elapsed > 0 else 0.0
            eta = None
            if total and rate > 0 and total > events:
                eta = (total - events) / rate
            return {
                "events": events,
                "total": total,
                "races": self.races,
                "phase": self.phase,
                "elapsed_seconds": elapsed,
                "events_per_second": rate,
                "eta_seconds": eta,
            }


class RuntimeSampler:
    """Periodic gauge sampler.  ``add_source(fn)`` registers a callable
    returning a flat ``{name: value}`` mapping; every tick the sampler
    merges all sources and swaps the result in as one dict (readers see
    either the old or the new sample, never a half-merge).  A source
    that raises is dropped from that tick only — a detector mid-teardown
    must not kill the telemetry thread."""

    #: EWMA smoothing factor for the derived rate gauges.
    ALPHA = 0.3

    def __init__(
        self,
        interval: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampler interval must be > 0")
        self.interval = interval
        self._clock = clock
        self._sources: List[Callable[[], Mapping[str, Any]]] = []
        self._gauges: Dict[str, Any] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples_total = 0
        # EWMA state: previous (t, events, cache_hits, cache_misses).
        self._prev_t: Optional[float] = None
        self._prev_events = 0
        self._prev_hits = 0
        self._prev_misses = 0
        self._rate_ewma: Optional[float] = None
        self._hit_rate_ewma: Optional[float] = None

    # ------------------------------------------------------------------ #
    def add_source(self, fn: Callable[[], Mapping[str, Any]]) -> None:
        self._sources.append(fn)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def gauges(self) -> Dict[str, Any]:
        """The most recent merged sample (a copy)."""
        return dict(self._gauges)

    # ------------------------------------------------------------------ #
    def sample_once(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for fn in list(self._sources):
            try:
                merged.update(fn())
            except Exception:
                continue
        self._derive_rates(merged)
        self.samples_total += 1
        merged["sampler_samples_total"] = self.samples_total
        self._gauges = merged
        return merged

    def _derive_rates(self, merged: Dict[str, Any]) -> None:
        now = self._clock()
        events = merged.get("progress_events")
        if not events:
            events = merged.get("detector_accesses", 0) or 0
        hits = merged.get("precede_cache_hits", 0) or 0
        misses = merged.get("precede_cache_misses", 0) or 0
        if self._prev_t is not None:
            dt = now - self._prev_t
            if dt > 0:
                rate = max(events - self._prev_events, 0) / dt
                self._rate_ewma = (
                    rate
                    if self._rate_ewma is None
                    else self.ALPHA * rate + (1 - self.ALPHA) * self._rate_ewma
                )
            d_hits = max(hits - self._prev_hits, 0)
            d_total = d_hits + max(misses - self._prev_misses, 0)
            if d_total > 0:
                window_rate = d_hits / d_total
                self._hit_rate_ewma = (
                    window_rate
                    if self._hit_rate_ewma is None
                    else self.ALPHA * window_rate
                    + (1 - self.ALPHA) * self._hit_rate_ewma
                )
        self._prev_t = now
        self._prev_events = events
        self._prev_hits = hits
        self._prev_misses = misses
        if self._rate_ewma is not None:
            merged["events_per_second_ewma"] = self._rate_ewma
        if self._hit_rate_ewma is not None:
            merged["precede_cache_hit_rate_ewma"] = self._hit_rate_ewma

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval)


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /snapshot; 404 otherwise; silent log."""

    server_version = "repro-live/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - silence stdlib logging
        pass

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = telemetry.render_metrics().encode()
                self._send(
                    200, "text/plain; version=0.0.4; charset=utf-8", body
                )
            elif path == "/healthz":
                self._send(200, "text/plain; charset=utf-8", b"ok\n")
            elif path == "/snapshot":
                body = json.dumps(
                    telemetry.snapshot(), indent=2, sort_keys=True,
                    default=str,
                ).encode()
                self._send(200, "application/json", body + b"\n")
            else:
                self._send(404, "text/plain; charset=utf-8", b"not found\n")
        except BrokenPipeError:  # scraper went away mid-reply
            pass


class TelemetryServer:
    """A :class:`ThreadingHTTPServer` bound at construction (so port 0
    resolves immediately) and served from a daemon thread."""

    def __init__(self, telemetry: "LiveTelemetry", port: int,
                 host: str = "127.0.0.1") -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = telemetry  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._httpd.server_close()


# --------------------------------------------------------------------- #
# Sampler sources
# --------------------------------------------------------------------- #
def detector_source(detector) -> Callable[[], Dict[str, Any]]:
    """Gauges from any detector shape we ship: the serial
    :class:`~repro.core.detector.DeterminacyRaceDetector` (shadow +
    DTRG + PRECEDE cache), the schedule-robust
    :class:`~repro.core.parallel_detector.ParallelRaceDetector` (clock
    table + stripe counters), and the checker result objects (races +
    perf counters).  Missing attributes are simply skipped, so one
    source works across all of them."""

    def sample() -> Dict[str, Any]:
        g: Dict[str, Any] = {}
        shadow = getattr(detector, "shadow", None)
        if shadow is not None:
            cells = shadow.num_locations
            g["shadow_cells"] = cells
            g["shadow_approx_bytes"] = cells * APPROX_SHADOW_CELL_BYTES
            g["detector_accesses"] = shadow.num_accesses
        dtrg = getattr(detector, "dtrg", None)
        if dtrg is not None:
            num_tasks = getattr(dtrg, "num_tasks", None)
            if num_tasks is None:
                num_tasks = len(getattr(dtrg, "_nodes", ()))
            g["dtrg_tasks"] = num_tasks
            for attr, name in (
                ("num_non_tree_edges", "dtrg_non_tree_edges"),
                ("num_tree_merges", "dtrg_tree_merges"),
                ("num_precede_queries", "precede_queries"),
                ("mutation_epoch", "dtrg_mutation_epoch"),
            ):
                value = getattr(dtrg, attr, None)
                if value is not None:
                    g[name] = value
            cache = getattr(dtrg, "cache", None)
            if cache is not None:
                g["precede_cache_hits"] = cache.hits
                g["precede_cache_misses"] = cache.misses
                g["precede_cache_hit_rate"] = cache.hit_rate
        stats = getattr(detector, "perf_stats", None)
        if isinstance(stats, Mapping):  # ParallelRaceDetector property
            for key in ("num_accesses", "num_locations", "num_tasks",
                        "mutation_epoch"):
                if key in stats:
                    g[f"pardet_{key}"] = stats[key]
            if "num_locations" in stats:
                g.setdefault("shadow_cells", stats["num_locations"])
                g.setdefault(
                    "shadow_approx_bytes",
                    stats["num_locations"] * APPROX_SHADOW_CELL_BYTES,
                )
            if "num_accesses" in stats:
                g.setdefault("detector_accesses", stats["num_accesses"])
        stripes = getattr(detector, "stripe_counts", None)
        if stripes:
            g["stripe_lock_acquisitions_total"] = sum(stripes)
            g["stripe_lock_max_acquisitions"] = max(stripes)
            g["stripe_locks_touched"] = sum(1 for n in stripes if n)
        races = getattr(detector, "races", None)
        if races is not None:
            try:
                g["races_detected"] = len(races)
            except TypeError:
                pass
        return g

    return sample


def thread_runtime_source(runtime) -> Callable[[], Dict[str, Any]]:
    """Gauges from a :class:`~repro.runtime.executor.ThreadRuntime`:
    per-worker deque depths (sum/max on /metrics, the full vector in
    /snapshot), steal/block/compensation counters and striped
    shadow-lock acquisitions.  All reads are lock-free and approximate
    by design (ALGORITHM.md §16)."""

    def sample() -> Dict[str, Any]:
        g: Dict[str, Any] = {}
        depths = getattr(runtime, "deque_depths", None)
        if callable(depths):
            vector = depths()
            g["worker_deque_depths"] = vector  # list → /snapshot only
            g["worker_deque_depth_sum"] = sum(vector)
            g["worker_deque_depth_max"] = max(vector) if vector else 0
        for attr, name in (
            ("steals", "exec_steals_total"),
            ("failed_steals", "exec_failed_steals_total"),
            ("compensation_threads", "exec_compensation_threads_total"),
            ("blocked", "exec_blocked_tasks"),
            ("num_tasks", "exec_tasks"),
            ("pool_size", "exec_pool_size"),
        ):
            value = getattr(runtime, attr, None)
            if value is not None:
                g[name] = value
        stripes = getattr(runtime, "stripe_acquisitions", None)
        if stripes:
            g["stripe_lock_acquisitions_total"] = sum(stripes)
            g["stripe_lock_max_acquisitions"] = max(stripes)
            g["stripe_locks_touched"] = sum(1 for n in stripes if n)
        return g

    return sample


def tracer_source(tracer) -> Callable[[], Dict[str, Any]]:
    """Ring-buffer health: drops (``obs_trace_dropped_total``, the
    satellite-pinned name) and capacity."""

    def sample() -> Dict[str, Any]:
        return {
            "obs_trace_dropped_total": tracer.dropped,
            "obs_trace_capacity": tracer.capacity,
        }

    return sample


# --------------------------------------------------------------------- #
class LiveTelemetry:
    """Facade tying progress + sampler + exporter + heartbeat together.

    Parameters
    ----------
    registry / tracer:
        The run's :class:`~repro.obs.metrics.MetricsRegistry` and
        :class:`~repro.obs.trace.RingTracer`, when observability is on —
        the registry renders into ``/metrics``, the tracer contributes
        the drop gauges.  Both optional: the telemetry plane works on
        otherwise-uninstrumented runs.
    port:
        ``None`` → no HTTP server (sampler + heartbeat only).  ``0`` →
        ephemeral port, resolved at construction.
    interval:
        Sampler cadence in seconds (default 0.25).
    heartbeat:
        Seconds between stderr heartbeat lines; 0 disables.  The
        heartbeat rides on the sampler thread, so it needs
        ``interval <= heartbeat`` to fire on time.
    """

    def __init__(
        self,
        registry=None,
        tracer=None,
        *,
        port: Optional[int] = None,
        interval: float = 0.25,
        heartbeat: float = 0.0,
        prefix: str = DEFAULT_PREFIX,
        heartbeat_stream=None,
    ) -> None:
        self.registry = registry
        self.prefix = prefix
        self.progress = ProgressCounter()
        self.sampler = RuntimeSampler(interval)
        self.heartbeat = heartbeat
        self._hb_stream = heartbeat_stream
        self._hb_last = 0.0
        self.server: Optional[TelemetryServer] = None
        if port is not None:
            self.server = TelemetryServer(self, port)
        if tracer is not None:
            self.attach_tracer(tracer)
        self.sampler.add_source(self._progress_source)
        if heartbeat > 0:
            self.sampler.add_source(self._heartbeat_tick)

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def add_source(self, fn: Callable[[], Mapping[str, Any]]) -> None:
        self.sampler.add_source(fn)

    def attach_detector(self, detector) -> None:
        self.sampler.add_source(detector_source(detector))

    def attach_runtime(self, runtime) -> None:
        if hasattr(runtime, "deque_depths") or hasattr(runtime, "steals"):
            self.sampler.add_source(thread_runtime_source(runtime))

    def attach_tracer(self, tracer) -> None:
        self.sampler.add_source(tracer_source(tracer))

    @classmethod
    def from_observability(cls, obs, **kwargs) -> "LiveTelemetry":
        """Build a telemetry plane sharing an
        :class:`~repro.obs.hooks.Observability` bundle's registry and
        tracer, so ``/metrics`` serves the same counters the post-mortem
        ``--metrics-json`` dump would contain."""
        registry = getattr(obs, "registry", None)
        tracer = getattr(obs, "tracer", None)
        return cls(registry=registry, tracer=tracer, **kwargs)

    # ------------------------------------------------------------------ #
    # Internal sources
    # ------------------------------------------------------------------ #
    def _progress_source(self) -> Dict[str, Any]:
        snap = self.progress.snapshot()
        # ``progress_events`` feeds the sampler's rate EWMA; the
        # canonical progress counters/gauges on /metrics come from the
        # ``progress=`` snapshot in render_exposition (kept distinct so
        # the two never emit duplicate series).
        g: Dict[str, Any] = {
            "progress_events": snap["events"],
            "progress_races": snap["races"],
        }
        if snap["eta_seconds"] is not None:
            g["progress_eta_seconds"] = snap["eta_seconds"]
        return g

    def _heartbeat_tick(self) -> Dict[str, Any]:
        now = time.monotonic()
        if now - self._hb_last >= self.heartbeat:
            self._hb_last = now
            self._emit_heartbeat()
        return {}

    def _emit_heartbeat(self) -> None:
        snap = self.progress.snapshot()
        gauges = self.sampler.gauges
        rate = gauges.get(
            "events_per_second_ewma", snap["events_per_second"]
        )
        parts = [f"events={snap['events']}"]
        if snap["total"]:
            pct = 100.0 * snap["events"] / snap["total"]
            parts[0] += f"/{snap['total']} ({pct:.1f}%)"
        parts.append(f"races={snap['races']}")
        if rate:
            parts.append(f"rate={rate:.3g}/s")
        eta = snap["eta_seconds"]
        if eta is not None:
            parts.append(f"eta={eta:.1f}s")
        parts.append(f"elapsed={snap['elapsed_seconds']:.1f}s")
        if snap["phase"]:
            parts.insert(0, f"phase={snap['phase']}")
        stream = self._hb_stream if self._hb_stream is not None else sys.stderr
        print("[live] " + " ".join(parts), file=stream, flush=True)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        """The /metrics payload.  Gauges whose values are not scalars
        (e.g. the per-worker deque-depth vector) appear only in the JSON
        /snapshot."""
        if not self.sampler.running:
            self.sampler.sample_once()
        gauges = {
            name: value
            for name, value in self.sampler.gauges.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        return render_exposition(
            self.registry,
            gauges=gauges,
            progress=self.progress.snapshot(),
            prefix=self.prefix,
        )

    def snapshot(self) -> Dict[str, Any]:
        """The /snapshot payload: progress, raw gauges (including
        vectors), and the full registry dump when observability is on."""
        if not self.sampler.running:
            self.sampler.sample_once()
        snap: Dict[str, Any] = {
            "progress": self.progress.snapshot(),
            "gauges": self.sampler.gauges,
            "sampler_interval": self.sampler.interval,
        }
        if self.registry is not None:
            snap["metrics"] = self.registry.as_dict()
        return snap

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> Optional[str]:
        if self.server is None:
            return None
        return f"http://{self.server.host}:{self.server.port}"

    def start(self) -> None:
        self.sampler.start()
        if self.server is not None:
            self.server.start()

    def stop(self) -> None:
        if self.server is not None:
            self.server.stop()
        self.sampler.stop()
        if self.heartbeat > 0:
            # One final line so the last state is never lost to the
            # sampling cadence.
            self._emit_heartbeat()

    def __enter__(self) -> "LiveTelemetry":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
