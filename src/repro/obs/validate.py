"""Schema validation for observability artifacts (traces + witnesses).

Two document families, both usable from the CLI::

    python -m repro.obs.validate trace.json      # Chrome trace-event JSON
    python -m repro.obs.validate witness.json    # race-witness report JSON

The Chrome trace-event format has no official JSON Schema; this module
encodes the subset the :class:`~repro.obs.trace.RingTracer` emits (and
Perfetto requires): a ``traceEvents`` array of objects whose phases are
``X`` (complete, with a non-negative ``dur``), ``i`` (instant, with scope
in ``t``/``p``/``g``) or ``M`` (metadata), each carrying string ``name``/
``cat`` (metadata excepted for ``cat``), numeric ``ts`` and integer
``pid``/``tid``.  Instant timestamps must additionally be monotone per
``(pid, tid)`` track — the tracer emits them in order from a monotonic
clock, so a decrease means a corrupted or hand-edited trace.  (Complete
``X`` spans are exempt: nested spans close inner-first, so their emission
order is not ``ts`` order.)

Witness documents are the ``repro.race-witness-report/1`` JSON written by
``repro-racecheck --witness-json`` (and fuzz triage): the race fields plus
the non-ordering certificate from
:meth:`~repro.core.reachability.DynamicTaskReachabilityGraph.explain_precede`.
The CLI auto-detects the document kind from its top-level keys.

Exit status: 0 valid, 1 invalid (including unreadable/truncated JSON —
with a pointed message, never a traceback), 2 usage error / missing file.
"""

from __future__ import annotations

import sys
from typing import Any, List

__all__ = [
    "validate_chrome_trace",
    "validate_witness",
    "validate_witness_report",
    "trace_dropped_events",
    "main",
]


def trace_dropped_events(data) -> int:
    """Ring-buffer drop count recorded in a Chrome trace export, read
    from ``otherData.dropped`` with the ``trace_buffer_stats`` metadata
    record as fallback (hand-trimmed traces sometimes lose one or the
    other).  0 when absent or malformed."""
    if not isinstance(data, dict):
        return 0
    other = data.get("otherData")
    if isinstance(other, dict):
        dropped = other.get("dropped")
        if isinstance(dropped, int) and not isinstance(dropped, bool):
            return max(dropped, 0)
    for event in data.get("traceEvents", []) or []:
        if (isinstance(event, dict) and event.get("ph") == "M"
                and event.get("name") == "trace_buffer_stats"):
            args = event.get("args")
            if isinstance(args, dict):
                dropped = args.get("dropped")
                if isinstance(dropped, int) and not isinstance(dropped, bool):
                    return max(dropped, 0)
    return 0

_PHASES = {"X", "i", "M"}
_INSTANT_SCOPES = {"t", "p", "g"}
_WITNESS_SCHEMA = "repro.race-witness/1"
_REPORT_SCHEMA = "repro.race-witness-report/1"
_RACE_KINDS = {"read-write", "write-write", "write-read"}


def validate_chrome_trace(data: Any) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    last_instant_ts: dict = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer 'pid'")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing integer 'tid'")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
        if ph == "M":
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            problems.append(f"{where}: missing numeric 'ts'")
            continue
        if not isinstance(event.get("cat"), str):
            problems.append(f"{where}: missing string 'cat'")
        if ph == "X":
            dur = event.get("dur")
            if (not isinstance(dur, (int, float))
                    or isinstance(dur, bool) or dur < 0):
                problems.append(f"{where}: 'X' needs non-negative 'dur'")
        elif ph == "i":
            if event.get("s", "t") not in _INSTANT_SCOPES:
                problems.append(f"{where}: bad instant scope {event.get('s')!r}")
            track = (event.get("pid"), event.get("tid"))
            last = last_instant_ts.get(track)
            if last is not None and ts < last:
                problems.append(
                    f"{where}: instant 'ts' {ts} goes backwards on track "
                    f"pid={track[0]} tid={track[1]} (previous {last})"
                )
            last_instant_ts[track] = ts
    return problems


# ---------------------------------------------------------------------- #
# Witness documents                                                      #
# ---------------------------------------------------------------------- #
def _check_fields(obj: dict, where: str, spec, problems: List[str]) -> None:
    """``spec``: iterable of (key, type-or-tuple, required)."""
    for key, types, required in spec:
        if key not in obj:
            if required:
                problems.append(f"{where}: missing '{key}'")
            continue
        value = obj[key]
        if value is None and not required:
            continue
        if not isinstance(value, types) or isinstance(value, bool) and (
            types is int or types == (int,)
        ):
            problems.append(
                f"{where}: '{key}' must be {types}, "
                f"got {type(value).__name__}"
            )


def validate_witness(data: Any, where: str = "witness") -> List[str]:
    """Validate one ``repro.race-witness/1`` object."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"{where}: not an object"]
    if data.get("schema") != _WITNESS_SCHEMA:
        problems.append(
            f"{where}: 'schema' must be {_WITNESS_SCHEMA!r}, "
            f"got {data.get('schema')!r}"
        )
    _check_fields(data, where, [("witness_id", str, True)], problems)
    race = data.get("race")
    if not isinstance(race, dict):
        problems.append(f"{where}: missing object 'race'")
    else:
        rw = f"{where}.race"
        _check_fields(race, rw, [
            ("prev_task", int, True),
            ("current_task", int, True),
            ("prev_name", str, False),
            ("current_name", str, False),
            ("prev_site", str, False),
            ("current_site", str, False),
        ], problems)
        if "loc" not in race:
            problems.append(f"{rw}: missing 'loc'")
        if race.get("kind") not in _RACE_KINDS:
            problems.append(f"{rw}: bad race kind {race.get('kind')!r}")
    cert = data.get("certificate")
    if not isinstance(cert, dict):
        problems.append(f"{where}: missing object 'certificate'")
        return problems
    cw = f"{where}.certificate"
    if cert.get("verdict") is not False:
        problems.append(
            f"{cw}: 'verdict' must be false (a witness certifies "
            f"non-ordering), got {cert.get('verdict')!r}"
        )
    for key in ("a_label", "b_label"):
        label = cert.get(key)
        if not isinstance(label, dict) or not all(
            isinstance(label.get(f), int) and not isinstance(label.get(f), bool)
            for f in ("pre", "post")
        ):
            problems.append(f"{cw}: '{key}' must hold integer pre/post")
    for key in ("a_set", "b_set"):
        info = cert.get(key)
        if not isinstance(info, dict):
            problems.append(f"{cw}: missing object '{key}'")
            continue
        if "rep" not in info:
            problems.append(f"{cw}.{key}: missing 'rep'")
        if not isinstance(info.get("nt"), list):
            problems.append(f"{cw}.{key}: 'nt' must be an array")
        if not isinstance(info.get("members"), list):
            problems.append(f"{cw}.{key}: 'members' must be an array")
    level0 = cert.get("level0")
    if not isinstance(level0, dict) or not all(
        isinstance(v, bool) for v in level0.values()
    ):
        problems.append(f"{cw}: 'level0' must be an object of booleans")
    search = cert.get("search", None)
    if search is not None:
        if not isinstance(search, dict):
            problems.append(f"{cw}: 'search' must be an object or null")
        else:
            if not isinstance(search.get("expanded"), list):
                problems.append(f"{cw}.search: 'expanded' must be an array")
            if not isinstance(search.get("lsa_chain"), list):
                problems.append(f"{cw}.search: 'lsa_chain' must be an array")
            if not isinstance(search.get("frontier_exhausted"), bool):
                problems.append(
                    f"{cw}.search: missing boolean 'frontier_exhausted'"
                )
    return problems


def validate_witness_report(data: Any) -> List[str]:
    """Validate a ``repro.race-witness-report/1`` document (or a single
    bare witness object, accepted for convenience)."""
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    if data.get("schema") == _WITNESS_SCHEMA:
        return validate_witness(data)
    problems: List[str] = []
    if data.get("schema") != _REPORT_SCHEMA:
        problems.append(
            f"'schema' must be {_REPORT_SCHEMA!r}, got {data.get('schema')!r}"
        )
    witnesses = data.get("witnesses")
    if not isinstance(witnesses, list):
        problems.append("missing or non-array 'witnesses'")
        return problems
    for i, witness in enumerate(witnesses):
        problems.extend(validate_witness(witness, where=f"witnesses[{i}]"))
    return problems


def main(argv: List[str] | None = None) -> int:
    import json

    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE_OR_WITNESS.json",
              file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as fh:
            data = json.load(fh)
    except OSError as exc:
        print(f"error: cannot open {argv[0]}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Truncated or otherwise malformed JSON is a *validation* failure
        # (exit 1), reported pointedly — never a traceback.
        print(f"invalid: {argv[0]} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    if isinstance(data, dict) and (
        data.get("schema") in (_WITNESS_SCHEMA, _REPORT_SCHEMA)
        or "witnesses" in data
    ):
        kind = "witness report"
        problems = validate_witness_report(data)
        count = len(data.get("witnesses", [])) if isinstance(
            data.get("witnesses"), list) else 1
        summary = f"{count} witness(es)"
    else:
        kind = "Chrome trace"
        problems = validate_chrome_trace(data)
        events = data.get("traceEvents", []) if isinstance(data, dict) else []
        dropped = trace_dropped_events(data)
        if dropped:
            # Drops are a *warning*, not a schema failure: the trace is
            # well-formed, it just isn't the whole run.
            print(
                f"warning: ring buffer dropped {dropped} event(s) — "
                f"the trace holds only the latest window "
                f"(raise RingTracer capacity to keep more)",
                file=sys.stderr,
            )
        phases: dict = {}
        for event in events:
            if isinstance(event, dict):
                phases[event.get("ph")] = phases.get(event.get("ph"), 0) + 1
        summary = (f"{len(events)} events: " + ", ".join(
            f"{n} {ph!r}" for ph, n in sorted(
                phases.items(), key=lambda kv: str(kv[0]))))
    if problems:
        for problem in problems[:50]:
            print(f"invalid: {problem}", file=sys.stderr)
        if len(problems) > 50:
            print(f"... and {len(problems) - 50} more", file=sys.stderr)
        return 1
    print(f"{argv[0]}: valid {kind} ({summary})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
