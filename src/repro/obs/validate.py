"""Chrome trace-event schema validation.

The trace-event format has no official JSON Schema; this module encodes the
subset the :class:`~repro.obs.trace.RingTracer` emits (and Perfetto
requires): a ``traceEvents`` array of objects whose phases are ``X``
(complete, with a non-negative ``dur``), ``i`` (instant, with scope in
``t``/``p``/``g``) or ``M`` (metadata), each carrying string ``name``/
``cat`` (metadata excepted for ``cat``), numeric ``ts`` and integer
``pid``/``tid``.

Usable as a CLI — the CI trace artifact is checked with::

    python -m repro.obs.validate trace.json
"""

from __future__ import annotations

import sys
from typing import Any, List

__all__ = ["validate_chrome_trace", "main"]

_PHASES = {"X", "i", "M"}
_INSTANT_SCOPES = {"t", "p", "g"}


def validate_chrome_trace(data: Any) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer 'pid'")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing integer 'tid'")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
        if ph == "M":
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            problems.append(f"{where}: missing numeric 'ts'")
        if not isinstance(event.get("cat"), str):
            problems.append(f"{where}: missing string 'cat'")
        if ph == "X":
            dur = event.get("dur")
            if (not isinstance(dur, (int, float))
                    or isinstance(dur, bool) or dur < 0):
                problems.append(f"{where}: 'X' needs non-negative 'dur'")
        elif ph == "i":
            if event.get("s", "t") not in _INSTANT_SCOPES:
                problems.append(f"{where}: bad instant scope {event.get('s')!r}")
    return problems


def main(argv: List[str] | None = None) -> int:
    import json

    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE.json",
              file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {argv[0]}: {exc}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(data)
    if problems:
        for problem in problems[:50]:
            print(f"invalid: {problem}", file=sys.stderr)
        if len(problems) > 50:
            print(f"... and {len(problems) - 50} more", file=sys.stderr)
        return 1
    events = data["traceEvents"]
    phases = {}
    for event in events:
        phases[event["ph"]] = phases.get(event["ph"], 0) + 1
    summary = ", ".join(f"{n} {ph!r}" for ph, n in sorted(phases.items()))
    print(f"{argv[0]}: valid Chrome trace ({len(events)} events: {summary})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
