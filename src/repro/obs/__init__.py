"""Runtime observability: structured tracing + performance metrics.

The paper's evaluation is built on structural counters (Table 2); the perf
layer (PRECEDE cache, shadow fast paths) needs *distributional* visibility
— where time goes inside a run, which queries pay the backward ``_explore``
search, how reader-set populations evolve per location.  This package
provides that, following the per-operation cost-breakdown methodology of
Utterback et al. (*Efficient Race Detection with Futures*) and Westrick et
al. (*DePa*):

* :mod:`repro.obs.trace` — a low-overhead span/event tracer
  (:class:`RingTracer`) recording task spawn/terminate, finish enter/exit,
  ``get()`` joins, shadow-memory checks, DTRG mutations and PRECEDE queries
  into a bounded ring buffer, exportable as Chrome trace-event JSON
  loadable in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.metrics` — a registry of counters and fixed-bucket
  histograms (PRECEDE latency, ``_explore`` frontier size, per-cell reader
  population, cache hit rate per mutation-epoch window) dumpable as JSON
  and renderable by :func:`repro.harness.report.render_metrics`;
* :mod:`repro.obs.hooks` — :class:`Observability`, the bundle the hook
  points in ``core/reachability.py``, ``core/shadow.py``,
  ``core/detector.py``, ``runtime/runtime.py`` and
  ``runtime/workstealing.py`` call into, plus the
  :data:`NULL_OBSERVABILITY` null object.  Hook points are *detached by
  default*: a component without an attached (enabled) observability object
  runs the exact pre-observability code path — the disabled cost is
  asserted by ``benchmarks/bench_obs_overhead.py``;
* :mod:`repro.obs.validate` — a schema checker for trace-event JSON and
  race-witness JSON (``python -m repro.obs.validate FILE.json``), used by
  tests and CI;
* :mod:`repro.obs.provenance` — race provenance: a bounded access-site
  flight recorder (:class:`RaceProvenance`) attributing every spawn /
  ``get`` / read / write to its source call site, and machine-checkable
  :class:`RaceWitness` certificates reconstructed from the DTRG that
  explain *why* two accesses are unordered (interval labels, set
  representatives, the LSA chain and the exhausted VISIT frontier);
* :mod:`repro.obs.report_html` — self-contained HTML race reports
  (``repro-racecheck --html``) combining races, witnesses, the flight
  recorder tail and a witness-overlaid DOT graph;
* :mod:`repro.obs.live` — the live telemetry plane
  (:class:`LiveTelemetry`): an in-process HTTP exporter (``/metrics``
  in Prometheus text exposition, ``/healthz``, ``/snapshot``), a
  periodic :class:`RuntimeSampler` over detector/runtime state, a
  shared :class:`ProgressCounter` the batched checkers bump, and the
  stderr heartbeat behind ``--serve-metrics`` / ``--heartbeat`` on the
  CLI tools (ALGORITHM.md §16);
* :mod:`repro.obs.exposition` — the Prometheus text renderer behind
  ``/metrics`` plus a strict promtool-style validator
  (``python -m repro.obs.exposition FILE``) used by tests and CI.

Capture a trace from the CLI::

    repro-racecheck prog.py --perfetto out.json --metrics-json metrics.json

then open ``out.json`` at https://ui.perfetto.dev (or ``chrome://tracing``).
"""

from repro.obs.exposition import parse_exposition, render_exposition
from repro.obs.hooks import NULL_OBSERVABILITY, Observability
from repro.obs.live import (
    LiveTelemetry,
    ProgressCounter,
    RuntimeSampler,
    TelemetryServer,
)
from repro.obs.metrics import (
    Counter,
    EpochWindowRatio,
    Histogram,
    MetricsRegistry,
    quantile_from_dump,
)
from repro.obs.provenance import (
    RaceProvenance,
    RaceWitness,
    confirm_witness,
    render_witness_text,
    witness_report_data,
)
from repro.obs.report_html import render_html_report
from repro.obs.trace import RingTracer
from repro.obs.validate import (
    validate_chrome_trace,
    validate_witness,
    validate_witness_report,
)

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "Counter",
    "Histogram",
    "EpochWindowRatio",
    "MetricsRegistry",
    "RaceProvenance",
    "RaceWitness",
    "RingTracer",
    "confirm_witness",
    "render_witness_text",
    "render_html_report",
    "witness_report_data",
    "validate_chrome_trace",
    "validate_witness",
    "validate_witness_report",
    "LiveTelemetry",
    "ProgressCounter",
    "RuntimeSampler",
    "TelemetryServer",
    "render_exposition",
    "parse_exposition",
    "quantile_from_dump",
]
