"""The :class:`Observability` bundle the instrumented hook points call.

One object carries both sinks — an optional :class:`~repro.obs.trace.RingTracer`
and a :class:`~repro.obs.metrics.MetricsRegistry` — plus the callbacks the
hook points in the core/runtime layers invoke:

===========================  ===========================================
Hook point                   Callback
===========================  ===========================================
``Runtime`` (spawn/end)      :meth:`task_begin` / :meth:`task_end`
``Runtime`` (finish)         :meth:`finish_begin` / :meth:`finish_end`
``Runtime`` (``get()``)      :meth:`on_get`
DTRG ``precede``             :meth:`on_precede`
DTRG mutators                :meth:`on_mutation`
``ShadowMemory`` accesses    :meth:`on_shadow_access`
Detector race sink           :meth:`on_race`
``WorkStealingSimulator``    :meth:`ws_step` / :meth:`ws_steal`
===========================  ===========================================

**Null-object protocol.**  Every hook point guards with a single attribute
test and only ever *installs* instrumentation for an observability object
whose :attr:`enabled` is true: components default to the exact
pre-observability code path, and attaching :data:`NULL_OBSERVABILITY` (or
``None``) is a no-op.  ``benchmarks/bench_obs_overhead.py`` asserts the
disabled path costs nothing measurable on the Jacobi event stream.

Histograms recorded (see :mod:`repro.obs.metrics` for the bucket ladders):

* ``precede_latency_ns`` — wall time per PRECEDE query;
* ``explore_frontier`` — VISIT expansions per query (0 = level-0/cached);
* ``cell_readers`` — stored reader population at each shadow access;
* ``cache_hit_by_epoch_window`` — cache hit rate per mutation-epoch window.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.obs.metrics import (
    FRONTIER_BUCKETS,
    MetricsRegistry,
    PARALLEL_STAGE_BUCKETS_NS,
    PRECEDE_LATENCY_BUCKETS_NS,
    READER_BUCKETS,
    SHARD_EVENT_BUCKETS,
)
from repro.obs.trace import DTRG_TRACK, PARALLEL_TRACK, RingTracer

__all__ = ["Observability", "NULL_OBSERVABILITY"]


class Observability:
    """Live tracing + metrics sink for one instrumented run.

    Parameters
    ----------
    tracer:
        Optional :class:`RingTracer`; ``None`` records metrics only.
    registry:
        Metrics sink; a fresh :class:`MetricsRegistry` by default.
    epoch_window:
        Mutation-epoch bucket width of the cache-hit-rate timeline.
    """

    enabled = True

    def __init__(
        self,
        tracer: Optional[RingTracer] = None,
        registry: Optional[MetricsRegistry] = None,
        *,
        epoch_window: int = 1024,
    ) -> None:
        self.tracer = tracer
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        # Hot-path references, resolved once.
        self._h_precede_ns = reg.histogram(
            "precede_latency_ns", PRECEDE_LATENCY_BUCKETS_NS
        )
        self._h_frontier = reg.histogram("explore_frontier", FRONTIER_BUCKETS)
        self._h_readers = reg.histogram("cell_readers", READER_BUCKETS)
        self._cache_timeline = reg.epoch_ratio(
            "cache_hit_by_epoch_window", epoch_window
        )
        self._c_precede = {
            outcome: reg.counter(f"precede_{outcome}")
            for outcome in ("level0", "hit", "miss", "search")
        }
        self._c_reads = reg.counter("shadow_reads")
        self._c_writes = reg.counter("shadow_writes")
        self._c_races = reg.counter("races_reported")
        self._c_tasks = reg.counter("tasks_spawned")
        self._c_finishes = reg.counter("finish_scopes")
        self._c_gets = reg.counter("get_joins")
        # Open spans: key -> (start ts_us, name, cat, extra args).
        self._open: Dict[Any, tuple] = {}
        # The exec_* hook points below are the only ones invoked from
        # concurrently running threads (ThreadRuntime workers) without an
        # external serializing lock; they guard themselves with this.
        import threading

        self._exec_lock = threading.Lock()
        if tracer is not None:
            tracer.set_track_name(DTRG_TRACK, "DTRG mutations")

    # ------------------------------------------------------------------ #
    # Runtime hook points (task / finish / get)                          #
    # ------------------------------------------------------------------ #
    def task_begin(self, tid: int, name: str, is_future: bool) -> None:
        self._c_tasks.inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.set_track_name(tid, f"task {name}")
            self._open[("task", tid)] = (
                tracer.now_us(), name, is_future,
            )

    def task_end(self, tid: int) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        opened = self._open.pop(("task", tid), None)
        if opened is None:
            return
        start, name, is_future = opened
        tracer.complete(
            name, "task", tid, start, tracer.now_us() - start,
            args={"tid": tid, "future": is_future},
        )

    def finish_begin(self, fid: int, owner_tid: int) -> None:
        self._c_finishes.inc()
        tracer = self.tracer
        if tracer is not None:
            self._open[("finish", fid)] = (tracer.now_us(), owner_tid)

    def finish_end(self, fid: int) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        opened = self._open.pop(("finish", fid), None)
        if opened is None:
            return
        start, owner_tid = opened
        tracer.complete(
            f"finish#{fid}", "finish", owner_tid, start,
            tracer.now_us() - start, args={"fid": fid},
        )

    def on_get(self, consumer_tid: int, producer_tid: int) -> None:
        self._c_gets.inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "get", "join", consumer_tid,
                args={"producer": producer_tid},
            )

    # ------------------------------------------------------------------ #
    # DTRG hook points                                                   #
    # ------------------------------------------------------------------ #
    def on_precede(
        self,
        a_key: Hashable,
        b_key: Hashable,
        verdict: bool,
        dur_ns: int,
        expansions: int,
        outcome: str,
        epoch: int,
    ) -> None:
        """One completed PRECEDE query.

        ``expansions`` is the query's VISIT-expansion count (the
        ``num_visits`` delta — 0 for level-0 or cached answers);
        ``outcome`` is ``level0``, ``hit``, ``miss`` or (cache disabled
        but searched) ``search``.
        """
        self._h_precede_ns.observe(dur_ns)
        self._h_frontier.observe(expansions)
        self._c_precede[outcome].inc()
        if outcome == "hit" or outcome == "miss":
            self._cache_timeline.observe(epoch, outcome == "hit")
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "precede", "dtrg", b_key,
                args={
                    "a": str(a_key), "b": str(b_key), "verdict": verdict,
                    "outcome": outcome, "visited": expansions,
                    "ns": dur_ns,
                },
            )

    def on_mutation(self, kind: str, epoch: int, detail: str = "") -> None:
        """One DTRG structural mutation (``add_task`` / ``record_join`` /
        ``merge`` / ``on_terminate``)."""
        self.registry.counter(f"dtrg_{kind}").inc()
        tracer = self.tracer
        if tracer is not None:
            args = {"epoch": epoch}
            if detail:
                args["detail"] = detail
            tracer.instant(f"dtrg.{kind}", "dtrg", DTRG_TRACK, args=args)

    # ------------------------------------------------------------------ #
    # Shadow-memory hook points                                          #
    # ------------------------------------------------------------------ #
    def on_shadow_access(
        self,
        kind: str,
        task: int,
        loc: Hashable,
        readers: int,
        dur_ns: int,
    ) -> None:
        """One shadow-memory check; ``readers`` is the stored reader
        population the check saw."""
        (self._c_reads if kind == "read" else self._c_writes).inc()
        self._h_readers.observe(readers)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"shadow.{kind}", "shadow", task,
                args={"loc": str(loc), "readers": readers, "ns": dur_ns},
            )

    def on_race(
        self, kind: str, prev: int, cur: int, loc: Hashable
    ) -> None:
        self._c_races.inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "race", "race", cur,
                args={"kind": kind, "prev": prev, "loc": str(loc)},
            )

    # ------------------------------------------------------------------ #
    # Parallel-checker hook points (repro.core.parallel_check)           #
    # ------------------------------------------------------------------ #
    def on_parallel_plan(
        self, jobs: int, backend: str, shard_events: list
    ) -> None:
        """Shard plan of one parallel check: ``shard_events[k]`` is the
        access-event count bin-packed into shard ``k`` (the shard-balance
        histogram makes a failed hash/packing visible)."""
        self.registry.counter("parallel_checks").inc()
        h = self.registry.histogram("parallel_shard_events",
                                    SHARD_EVENT_BUCKETS)
        for n in shard_events:
            h.observe(n)
        tracer = self.tracer
        if tracer is not None:
            tracer.set_track_name(PARALLEL_TRACK, "parallel check")
            tracer.instant(
                "parallel.plan", "parallel", PARALLEL_TRACK,
                args={"jobs": jobs, "backend": backend,
                      "shard_events": list(shard_events)},
            )

    def on_parallel_stages(self, timings: dict, shards: list) -> None:
        """Stage timings + per-shard outcomes of one completed parallel
        check.  ``timings`` holds ``build/freeze/check/merge/total``
        seconds (:class:`~repro.core.parallel_check.ParallelCheckResult`
        layout); ``shards`` holds per-shard event/race counts and wall
        times.  Stages land in the ``parallel_stage_ns`` histograms and,
        with a tracer, as back-dated spans on the parallel track (shard
        spans on ``parallel-shard-<k>`` tracks, drawn concurrent)."""
        reg = self.registry
        for stage in ("build", "freeze", "check", "merge"):
            seconds = timings.get(f"{stage}_seconds", 0.0)
            reg.histogram(
                f"parallel_{stage}_ns", PARALLEL_STAGE_BUCKETS_NS
            ).observe(seconds * 1e9)
        tracer = self.tracer
        if tracer is None:
            return
        tracer.set_track_name(PARALLEL_TRACK, "parallel check")
        end = tracer.now_us()
        start = end - timings.get("total_seconds", 0.0) * 1e6
        ts = start
        for stage in ("build", "freeze", "check", "merge"):
            dur = timings.get(f"{stage}_seconds", 0.0) * 1e6
            tracer.complete(
                f"parallel.{stage}", "parallel", PARALLEL_TRACK, ts, dur,
            )
            if stage == "check":
                for shard in shards:
                    track = f"{PARALLEL_TRACK}-shard-{shard['shard']}"
                    tracer.set_track_name(track, f"shard {shard['shard']}")
                    tracer.complete(
                        f"shard{shard['shard']}", "parallel", track,
                        ts, shard["seconds"] * 1e6,
                        args={"events": shard["events"],
                              "races": shard["races"]},
                    )
            ts += dur

    # ------------------------------------------------------------------ #
    # Work-stealing simulator hook points (virtual clock: cycles as us)  #
    # ------------------------------------------------------------------ #
    def ws_step(
        self, worker: int, step: int, start_cycle: int, weight: int
    ) -> None:
        self.registry.counter("ws_steps").inc()
        tracer = self.tracer
        if tracer is not None:
            track = f"ws-worker-{worker}"
            tracer.set_track_name(track, f"worker {worker}")
            tracer.complete(
                f"step{step}", "ws", track, float(start_cycle),
                float(weight), args={"step": step},
            )

    def ws_steal(
        self, worker: int, victim: int, cycle: int, *,
        hit: bool, victim_depth: int,
    ) -> None:
        name = "ws_steals" if hit else "ws_failed_steals"
        self.registry.counter(name).inc()
        self.registry.histogram(
            "ws_victim_depth", (0, 1, 2, 4, 8, 16, 32, 64)
        ).observe(victim_depth)
        tracer = self.tracer
        if tracer is not None:
            track = f"ws-worker-{worker}"
            tracer.set_track_name(track, f"worker {worker}")
            tracer.instant(
                "steal" if hit else "steal.miss", "ws", track,
                ts_us=float(cycle), args={"victim": victim},
            )

    # ------------------------------------------------------------------ #
    # Concurrent-executor hook points (ThreadRuntime: real threads,      #
    # wall-clock time — unlike the ws_* simulator hooks' virtual cycles) #
    # ------------------------------------------------------------------ #
    def exec_worker_begin(self, worker: int) -> None:
        """A ThreadRuntime worker thread entered its scheduling loop."""
        with self._exec_lock:
            self.registry.counter("exec_workers").inc()
            tracer = self.tracer
            if tracer is not None:
                track = f"exec-worker-{worker}"
                tracer.set_track_name(track, f"exec worker {worker}")
                self._open[("exec-worker", worker)] = (tracer.now_us(),)

    def exec_worker_end(self, worker: int) -> None:
        """The worker's scheduling loop exited (shutdown)."""
        with self._exec_lock:
            tracer = self.tracer
            if tracer is None:
                return
            opened = self._open.pop(("exec-worker", worker), None)
            if opened is None:
                return
            (start,) = opened
            tracer.complete(
                f"worker{worker}", "exec", f"exec-worker-{worker}",
                start, tracer.now_us() - start, args={"worker": worker},
            )

    def exec_task_run(
        self, worker: int, tid: int, start_us: float, dur_us: float
    ) -> None:
        """One task body executed on a worker thread (back-dated span)."""
        with self._exec_lock:
            self.registry.counter("exec_tasks_run").inc()
            tracer = self.tracer
            if tracer is not None:
                tracer.complete(
                    f"run t{tid}", "exec", f"exec-worker-{worker}",
                    start_us, dur_us, args={"tid": tid},
                )

    def exec_steal(self, worker: int, victim: int, *, hit: bool) -> None:
        """One steal probe by a real worker thread (instant event)."""
        with self._exec_lock:
            name = "exec_steals" if hit else "exec_failed_steals"
            self.registry.counter(name).inc()
            tracer = self.tracer
            if tracer is not None:
                track = f"exec-worker-{worker}"
                tracer.set_track_name(track, f"exec worker {worker}")
                tracer.instant(
                    "steal" if hit else "steal.miss", "exec", track,
                    args={"victim": victim},
                )

    def exec_block(self, worker: int, kind: str) -> None:
        """A worker is about to block (``get`` or finish wait); a
        compensation thread may be spawned to preserve parallelism."""
        with self._exec_lock:
            self.registry.counter("exec_blocks").inc()
            tracer = self.tracer
            if tracer is not None:
                track = f"exec-worker-{worker}"
                tracer.set_track_name(track, f"exec worker {worker}")
                tracer.instant("block", "exec", track, args={"kind": kind})

    # ------------------------------------------------------------------ #
    def write_trace(self, path) -> None:
        """Write the Perfetto/Chrome trace JSON (requires a tracer)."""
        if self.tracer is None:
            raise ValueError("this Observability has no tracer attached")
        self.tracer.write(path)

    def write_metrics(self, path) -> None:
        """Write the metrics registry as JSON."""
        self.registry.write_json(path)


class _NullObservability:
    """Inert stand-in: hook points refuse to install instrumentation for
    it, so attaching it is indistinguishable from attaching nothing."""

    enabled = False
    tracer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_OBSERVABILITY"


#: The shared null object.  ``Component(obs=NULL_OBSERVABILITY)`` and
#: ``Component()`` run identical code paths.
NULL_OBSERVABILITY = _NullObservability()
