"""Race provenance: call-site flight recorder + explainable race witnesses.

A detected :class:`~repro.core.races.Race` is exact per Theorem 2, but by
itself it is just ``(loc, kind, prev_task, current_task)`` — the DTRG keeps
no steps and the runtime keeps no source positions, so the user cannot see
*where* the two accesses came from or *why* ``PRECEDE`` answered false.
This module adds both, strictly opt-in:

* :class:`RaceProvenance` — a bounded **access-site flight recorder**.
  Attached to a :class:`~repro.runtime.runtime.Runtime` (or a trace
  replay) it tags every spawn / ``get()`` / read / write with a lightweight
  call-site label (``file:line (function)``), interned into a bounded
  :class:`SiteTable`, and keeps a fixed-size ring of the most recent
  accesses.  Nothing here touches a hot path when the object is absent:
  the runtime installs a provenance *observer* in front of the regular
  observer list, so the provenance-off dispatch code is byte-identical to
  the pre-provenance code (same null-object discipline as
  :mod:`repro.obs.hooks`, gated by ``bench_obs_overhead.py``).

* :class:`RaceWitness` — a machine-checkable **non-ordering certificate**
  for one race, built by the detector from
  :meth:`~repro.core.reachability.DynamicTaskReachabilityGraph.explain_precede`:
  both tasks' ``(pre, post)`` interval labels, their set representatives
  and members, the level-0 checks that failed, the LSA chain walked, and
  the VISIT frontier that was exhausted without reaching the predecessor.
  :func:`confirm_witness` cross-validates a witness against the
  brute-force computation graph (``racecheck --verify-witness``).

* Renderers — :func:`render_witness_text` for terminals and
  :func:`witness_report_data` for the schema-validated JSON document
  (``repro.race-witness-report/1``, checked by
  ``python -m repro.obs.validate``).  The HTML report lives in
  :mod:`repro.obs.report_html`.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.events import ExecutionObserver

__all__ = [
    "SiteTable",
    "RaceProvenance",
    "RaceWitness",
    "WITNESS_SCHEMA",
    "WITNESS_REPORT_SCHEMA",
    "confirm_witness",
    "render_witness_text",
    "witness_report_data",
]

#: Schema tags carried by the emitted JSON, checked by ``repro.obs.validate``.
WITNESS_SCHEMA = "repro.race-witness/1"
WITNESS_REPORT_SCHEMA = "repro.race-witness-report/1"

#: Reserved site id meaning "no site captured" (table full / internal frame).
SITE_UNKNOWN = 0


class SiteTable:
    """Bounded intern table for call-site labels.

    Sites are ``(filename, lineno, function)`` triples formatted as
    ``file.py:42 (function)``.  The table holds at most ``capacity``
    distinct sites; once full, new sites intern to :data:`SITE_UNKNOWN`
    and ``num_dropped`` counts them — the flight recorder must stay
    bounded no matter how large the monitored program is.
    """

    __slots__ = ("capacity", "num_dropped", "_ids", "_labels")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.num_dropped = 0
        self._ids: Dict[Any, int] = {}
        self._labels: List[str] = ["<unknown>"]

    def intern(self, filename: str, lineno: int, function: str) -> int:
        """Intern a frame position; returns its site id (0 when full)."""
        key = (filename, lineno, function)
        sid = self._ids.get(key)
        if sid is not None:
            return sid
        if len(self._labels) > self.capacity:
            self.num_dropped += 1
            return SITE_UNKNOWN
        sid = len(self._labels)
        self._ids[key] = sid
        self._labels.append(f"{_shorten(filename)}:{lineno} ({function})")
        return sid

    def intern_label(self, label: Optional[str]) -> int:
        """Intern a pre-formatted label (trace-replay path)."""
        if not label:
            return SITE_UNKNOWN
        sid = self._ids.get(label)
        if sid is not None:
            return sid
        if len(self._labels) > self.capacity:
            self.num_dropped += 1
            return SITE_UNKNOWN
        sid = len(self._labels)
        self._ids[label] = sid
        self._labels.append(label)
        return sid

    def label(self, sid: int) -> str:
        if 0 <= sid < len(self._labels):
            return self._labels[sid]
        return self._labels[SITE_UNKNOWN]

    def __len__(self) -> int:
        """Number of distinct interned sites (excluding the sentinel)."""
        return len(self._labels) - 1


def _shorten(filename: str) -> str:
    """Best-effort cwd-relative path for readable labels."""
    try:
        rel = os.path.relpath(filename)
    except ValueError:  # pragma: no cover - different drive on Windows
        return filename
    return rel if not rel.startswith("..") else filename


def _internal_files() -> frozenset:
    """Source files whose frames are library plumbing, not user code."""
    import repro.memory.shared as _shared
    import repro.runtime.future as _future
    import repro.runtime.runtime as _runtime

    return frozenset(
        {__file__, _runtime.__file__, _future.__file__, _shared.__file__}
    )


class _ProvenanceObserver(ExecutionObserver):
    """Adapter placed *first* in the runtime's observer list.

    Being a regular observer keeps the runtime's dispatch loops untouched:
    with no provenance attached the loops simply do not contain this hook,
    so the disabled path executes the exact pre-provenance bytecode.
    Being first guarantees ``current_site`` is up to date before any
    detector / recorder observer sees the event.
    """

    __slots__ = ("_prov",)

    def __init__(self, prov: "RaceProvenance") -> None:
        self._prov = prov

    def on_task_create(self, parent, child) -> None:
        self._prov.on_spawn(parent.tid, child.tid)

    def on_get(self, consumer, producer) -> None:
        self._prov.on_get(consumer.tid, producer.tid)

    def on_read(self, task, loc) -> None:
        self._prov.on_access("read", task.tid, loc)

    def on_write(self, task, loc) -> None:
        self._prov.on_access("write", task.tid, loc)


class RaceProvenance:
    """Opt-in, bounded access-site flight recorder.

    Attach with ``Runtime(observers=[...], provenance=prov)`` and
    ``DeterminacyRaceDetector(provenance=prov)``; replays attach via
    ``replay_trace(trace, observers, provenance=prov)``.

    Parameters
    ----------
    site_capacity:
        Maximum number of distinct call sites interned; later sites
        collapse to ``<unknown>`` (bounded memory on any program).
    ring_capacity:
        Length of the recent-access ring kept for reports.
    """

    #: Null-object protocol marker (mirrors ``Observability.enabled``).
    enabled = True

    def __init__(
        self, *, site_capacity: int = 4096, ring_capacity: int = 1024
    ) -> None:
        self.sites = SiteTable(site_capacity)
        #: Site id of the event currently being dispatched.
        self.current_site: int = SITE_UNKNOWN
        #: tid -> site id of the spawn call that created the task.
        self.spawn_sites: Dict[int, int] = {}
        #: Recent ``(event_kind, tid, detail, site_id)`` records.
        self.ring: deque = deque(maxlen=ring_capacity)
        #: Total events the recorder has seen (ring length is bounded).
        self.num_events = 0
        self._skip = None  # lazily built frame-filter set

    # -- runtime-facing hooks ------------------------------------------ #
    def observer(self) -> _ProvenanceObserver:
        """The adapter the runtime inserts ahead of its observers."""
        return _ProvenanceObserver(self)

    def on_access(self, kind: str, tid: int, loc: Hashable) -> None:
        sid = self._capture()
        self.current_site = sid
        self.num_events += 1
        self.ring.append((kind, tid, loc, sid))

    def on_spawn(self, parent_tid: int, child_tid: int) -> None:
        sid = self._capture()
        self.current_site = sid
        self.spawn_sites[child_tid] = sid
        self.num_events += 1
        self.ring.append(("spawn", parent_tid, child_tid, sid))

    def on_get(self, consumer_tid: int, producer_tid: int) -> None:
        sid = self._capture()
        self.current_site = sid
        self.num_events += 1
        self.ring.append(("get", consumer_tid, producer_tid, sid))

    def note_replay_site(self, label: Optional[str]) -> None:
        """Trace-replay path: adopt the site label recorded in the event."""
        self.current_site = self.sites.intern_label(label)

    # -- lookups -------------------------------------------------------- #
    def site_label(self, sid: int) -> Optional[str]:
        """Human-readable label for a site id; ``None`` for unknown."""
        return None if sid == SITE_UNKNOWN else self.sites.label(sid)

    def spawn_site_label(self, tid: int) -> Optional[str]:
        return self.site_label(self.spawn_sites.get(tid, SITE_UNKNOWN))

    def recent(self, n: Optional[int] = None) -> List[tuple]:
        """The last ``n`` flight-recorder entries (newest last)."""
        items = list(self.ring)
        return items if n is None else items[-n:]

    # -- internals ------------------------------------------------------ #
    def _capture(self) -> int:
        """Walk up the stack to the first non-library frame and intern it.

        The skip set covers this module, the runtime, the future handle
        and the shared-memory wrappers, so the attributed frame is the
        user statement that performed the access/spawn/get.
        """
        skip = self._skip
        if skip is None:
            skip = self._skip = _internal_files()
        try:
            frame = sys._getframe(1)
        except ValueError:  # pragma: no cover - no caller frame
            return SITE_UNKNOWN
        hops = 0
        while frame is not None and hops < 24:
            code = frame.f_code
            if code.co_filename not in skip:
                return self.sites.intern(
                    code.co_filename, frame.f_lineno, code.co_name
                )
            frame = frame.f_back
            hops += 1
        return SITE_UNKNOWN


# ---------------------------------------------------------------------- #
# Witnesses                                                              #
# ---------------------------------------------------------------------- #
@dataclass
class RaceWitness:
    """A non-ordering certificate for one reported race.

    ``certificate`` is the JSON-able dict produced by
    :meth:`DynamicTaskReachabilityGraph.explain_precede` for the query
    ``PRECEDE(prev_task, current_task)`` (verdict ``False``): interval
    labels, set representatives/members, level-0 check outcomes, the LSA
    chain walked and the exhausted VISIT frontier.  The reverse direction
    needs no search: under serial depth-first execution the current
    access executes after every completed step of ``prev_task``'s
    recorded access, so ``current`` cannot precede ``prev`` either —
    the pair is unordered, i.e. logically parallel (Definition 3).
    """

    witness_id: str
    loc: Hashable
    kind: str
    prev_task: int
    current_task: int
    prev_name: str = ""
    current_name: str = ""
    prev_site: Optional[str] = None
    current_site: Optional[str] = None
    certificate: Dict[str, Any] = field(default_factory=dict)

    def to_data(self) -> Dict[str, Any]:
        """The ``repro.race-witness/1`` JSON object."""
        return {
            "schema": WITNESS_SCHEMA,
            "witness_id": self.witness_id,
            "race": {
                "loc": _loc_data(self.loc),
                "kind": self.kind,
                "prev_task": self.prev_task,
                "current_task": self.current_task,
                "prev_name": self.prev_name,
                "current_name": self.current_name,
                "prev_site": self.prev_site,
                "current_site": self.current_site,
            },
            "certificate": self.certificate,
        }


def _loc_data(loc: Hashable) -> Any:
    """JSON-safe rendering of a location key."""
    if isinstance(loc, tuple):
        return [_loc_data(item) for item in loc]
    if isinstance(loc, (str, int, float, bool)) or loc is None:
        return loc
    return repr(loc)


def _access_roles(kind: str) -> Tuple[bool, bool]:
    """``(prev_is_write, current_is_write)`` for a race kind string."""
    return {
        "read-write": (False, True),
        "write-write": (True, True),
        "write-read": (True, False),
    }[kind]


def confirm_witness(witness: RaceWitness, graph, closure=None) -> bool:
    """Cross-validate ``witness`` against the brute-force computation graph.

    True iff the graph contains a pair of accesses to ``witness.loc`` —
    one by each task, with the witnessed read/write roles — whose steps
    are logically parallel under the transitive-closure oracle
    (:class:`repro.graph.analysis.ReachabilityClosure`).  This is the
    Theorem 2 ground truth the property tests compare against; a witness
    this function rejects would be a detector bug.
    """
    if closure is None:
        from repro.graph.analysis import ReachabilityClosure

        closure = ReachabilityClosure(graph)
    prev_is_write, cur_is_write = _access_roles(witness.kind)
    accesses = graph.accesses_by_loc.get(witness.loc, [])
    prev_accs = [
        a for a in accesses
        if a.task == witness.prev_task and a.is_write == prev_is_write
    ]
    cur_accs = [
        a for a in accesses
        if a.task == witness.current_task and a.is_write == cur_is_write
    ]
    for a in prev_accs:
        for b in cur_accs:
            if closure.parallel(a.step, b.step):
                return True
    return False


def render_witness_text(witness: RaceWitness) -> str:
    """Multi-line terminal rendering of one witness."""
    cert = witness.certificate
    prev = witness.prev_name or f"task {witness.prev_task}"
    cur = witness.current_name or f"task {witness.current_task}"
    lines = [
        f"witness {witness.witness_id}: {witness.kind} race on "
        f"{witness.loc!r}",
        f"  prev    = {prev} (tid {witness.prev_task})"
        + (f" at {witness.prev_site}" if witness.prev_site else ""),
        f"  current = {cur} (tid {witness.current_task})"
        + (f" at {witness.current_site}" if witness.current_site else ""),
    ]
    if not cert:
        lines.append("  (no certificate recorded)")
        return "\n".join(lines)
    a_label = cert.get("a_set", {}).get("label", {})
    b_label = cert.get("b_set", {}).get("label", {})
    lines.append(
        f"  PRECEDE({witness.prev_task}, {witness.current_task}) = "
        f"{cert.get('verdict')}"
    )
    lines.append(
        f"    set[{prev}]: rep {cert.get('a_set', {}).get('rep')}, "
        f"label {_fmt_label(a_label)}"
    )
    lines.append(
        f"    set[{cur}]: rep {cert.get('b_set', {}).get('rep')}, "
        f"label {_fmt_label(b_label)}"
    )
    level0 = cert.get("level0", {})
    negative = [
        k for k in ("same_task", "same_set", "interval_ancestor")
        if not level0.get(k)
    ]
    lines.append(
        "    ordering checks negative: " + (", ".join(negative) or "(none)")
    )
    search = cert.get("search")
    if search is None:
        reason = (
            "preorder prune" if level0.get("preorder_pruned")
            else "level-0"
        )
        lines.append(f"    resolved without search ({reason})")
    else:
        expanded = search.get("expanded", [])
        chain = search.get("lsa_chain", [])
        lines.append(
            f"    VISIT expanded {len(expanded)} set(s); "
            f"LSA chain {chain if chain else '[]'}; "
            f"frontier exhausted = {search.get('frontier_exhausted')}"
        )
        for rec in expanded:
            lines.append(
                f"      - set rep {rec.get('rep')} (via {rec.get('via')}): "
                f"nt -> {rec.get('nt_scanned')}"
            )
    lines.append(
        "    reverse direction: serial depth-first order places the "
        "current access after prev's access, so the pair is unordered"
    )
    return "\n".join(lines)


def _fmt_label(label: Dict[str, Any]) -> str:
    if not label:
        return "?"
    post = label.get("post")
    if not label.get("final", True):
        # Match IntervalLabel.__repr__: temporary postorders render as the
        # dfid they were drawn from, flagged with a tilde.
        from repro.core.labels import MAXID

        post = f"~{MAXID - post}"
    return f"[{label.get('pre')}, {post}]"


def witness_report_data(
    witnesses: List[RaceWitness],
    *,
    program: Optional[str] = None,
    verified: Optional[bool] = None,
) -> Dict[str, Any]:
    """The ``repro.race-witness-report/1`` JSON document."""
    data: Dict[str, Any] = {
        "schema": WITNESS_REPORT_SCHEMA,
        "witnesses": [w.to_data() for w in witnesses],
    }
    if program is not None:
        data["program"] = program
    if verified is not None:
        data["verified"] = verified
    return data
