"""Ring-buffer span/event tracer with Chrome trace-event export.

Events follow the Chrome trace-event format (the JSON array Perfetto and
``chrome://tracing`` load natively): duration events (``ph: "X"``) for task
lifetimes and finish scopes on per-task tracks, instant events
(``ph: "i"``) for ``get()`` joins, shadow-memory checks, DTRG mutations and
PRECEDE queries, and metadata events (``ph: "M"``) naming the tracks.

The buffer is a fixed-capacity ring: recording never allocates beyond the
configured capacity, long runs keep the *latest* window of events, and the
number of overwritten events is reported in the export's ``otherData`` so a
truncated trace is never mistaken for a complete one.

Timestamps are microseconds from the tracer's construction (the trace-event
spec's unit).  Callers with *virtual* clocks — the work-stealing simulator
measures in cycles, not wall time — pass explicit timestamps instead.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Hashable, List, Optional

__all__ = ["RingTracer", "DTRG_TRACK", "SHADOW_TRACK", "PARALLEL_TRACK"]

#: Reserved track keys for events that belong to a data structure rather
#: than a task.  Task tracks use the (small, non-negative) task ids.
DTRG_TRACK = "dtrg"
SHADOW_TRACK = "shadow"
#: Track for the two-phase parallel checker's stage spans (build / freeze /
#: fan-out / merge); per-shard spans use ``f"{PARALLEL_TRACK}-shard-<k>"``.
PARALLEL_TRACK = "parallel"

#: First synthetic thread id handed to non-integer track keys; far above
#: any realistic task id so the two ranges never collide.
_SYNTHETIC_TID_BASE = 1_000_000


class RingTracer:
    """Bounded recorder of Chrome trace events.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are overwritten (counted in
        :attr:`dropped`).
    clock:
        Nanosecond clock used for implicit timestamps; injectable for
        deterministic tests.
    """

    def __init__(self, capacity: int = 1 << 16, clock=time.perf_counter_ns):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = True
        self.dropped = 0
        self._clock = clock
        self._t0 = clock()
        self._events: List[Dict[str, Any]] = []
        self._next = 0  # ring write index once the buffer is full
        self._track_ids: Dict[Hashable, int] = {}
        self._track_names: Dict[Hashable, str] = {}

    # ------------------------------------------------------------------ #
    # Clock / track helpers                                              #
    # ------------------------------------------------------------------ #
    def now_us(self) -> float:
        """Microseconds since the tracer was constructed."""
        return (self._clock() - self._t0) / 1_000.0

    def track_id(self, key: Hashable) -> int:
        """Stable integer thread-id for ``key`` (ints pass through)."""
        if isinstance(key, int):
            return key
        tid = self._track_ids.get(key)
        if tid is None:
            tid = _SYNTHETIC_TID_BASE + len(self._track_ids)
            self._track_ids[key] = tid
        return tid

    def set_track_name(self, key: Hashable, name: str) -> None:
        """Label a track; emitted as ``thread_name`` metadata on export."""
        self._track_names[key] = name

    # ------------------------------------------------------------------ #
    # Recording                                                          #
    # ------------------------------------------------------------------ #
    def _record(self, event: Dict[str, Any]) -> None:
        if len(self._events) < self.capacity:
            self._events.append(event)
            return
        self._events[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.dropped += 1

    def complete(
        self,
        name: str,
        cat: str,
        track: Hashable,
        ts_us: float,
        dur_us: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A duration ("complete") event: one span on ``track``."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts_us,
            "dur": dur_us,
            "pid": 1,
            "tid": self.track_id(track),
        }
        if args:
            event["args"] = args
        self._record(event)

    def instant(
        self,
        name: str,
        cat: str,
        track: Hashable,
        ts_us: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A thread-scoped instant event on ``track``."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self.now_us() if ts_us is None else ts_us,
            "pid": 1,
            "tid": self.track_id(track),
        }
        if args:
            event["args"] = args
        self._record(event)

    # ------------------------------------------------------------------ #
    # Export                                                             #
    # ------------------------------------------------------------------ #
    def events(self) -> List[Dict[str, Any]]:
        """Recorded events, oldest first."""
        if len(self._events) < self.capacity or self._next == 0:
            return list(self._events)
        return self._events[self._next:] + self._events[: self._next]

    def to_chrome(self) -> Dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object.

        When the ring wrapped, a ``trace_buffer_stats`` metadata record
        (``ph: "M"``) is emitted alongside ``otherData.dropped`` —
        Perfetto surfaces metadata args in the UI, where ``otherData``
        is invisible, so a truncated trace announces itself where the
        person reading it will actually look.
        """
        metadata: List[Dict[str, Any]] = []
        for key, name in self._track_names.items():
            metadata.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": self.track_id(key),
                "args": {"name": name},
            })
        if self.dropped:
            metadata.append({
                "name": "trace_buffer_stats",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {
                    "dropped": self.dropped,
                    "capacity": self.capacity,
                    "complete": False,
                },
            })
        return {
            "traceEvents": metadata + self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.RingTracer",
                "capacity": self.capacity,
                "dropped": self.dropped,
            },
        }

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        import json

        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self._events)
