"""Prometheus text exposition: render a :class:`MetricsRegistry` (plus
live gauges) to the classic ``text/plain; version=0.0.4`` format, and a
promtool-style pure-Python validator for scraping it back.

Rendering contract (what :mod:`repro.obs.live` serves on ``/metrics``):

* counters become ``<prefix><name>_total`` counter families;
* histograms become ``<prefix><name>`` histogram families with
  *cumulative* ``_bucket{le="..."}`` samples, a ``le="+Inf"`` bucket,
  ``_sum`` and ``_count`` — plus separate ``_p50`` / ``_p95`` / ``_p99``
  gauge families carrying the interpolated quantile estimates (kept out
  of the histogram family on purpose: mixing quantile samples into a
  histogram family is nonstandard and trips strict parsers);
* live gauges (sampler snapshots, progress) become plain gauge families.

:func:`parse_exposition` is deliberately strict — it is the CI gate that
keeps ``/metrics`` scrapable by real Prometheus: every sample line must
match the exposition grammar, every family must declare ``# TYPE``
before its first sample, histogram buckets must be cumulative and agree
with ``_count``, and duplicate (name, labels) pairs are an error.
"""

from __future__ import annotations

import math
import re
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "render_exposition",
    "parse_exposition",
    "ExpositionError",
    "DEFAULT_PREFIX",
]

DEFAULT_PREFIX = "repro_"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
_VALUE_RE = re.compile(
    r"^(?:[-+]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][-+]?\d+)?|[-+]?Inf|NaN)$"
)


class ExpositionError(ValueError):
    """A /metrics payload that a strict Prometheus parser would reject."""


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #
def _fmt(value: Any) -> str:
    """Render a sample value: integral floats lose the trailing ``.0``
    only when they are true ints; floats use repr (round-trippable)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    return repr(v)


def _sanitize(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_RE.match(out):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_exposition(
    registry=None,
    gauges: Optional[Mapping[str, Any]] = None,
    progress: Optional[Mapping[str, Any]] = None,
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """Render registry counters/histograms, live gauges and a progress
    snapshot to Prometheus text exposition (one trailing newline)."""
    lines: List[str] = []

    def family(name: str, kind: str, samples: Iterable[Tuple[str, str, Any]]):
        lines.append(f"# TYPE {name} {kind}")
        for sample_name, labels, value in samples:
            if labels:
                lines.append(f"{sample_name}{{{labels}}} {_fmt(value)}")
            else:
                lines.append(f"{sample_name} {_fmt(value)}")

    if registry is not None:
        dump = registry.as_dict()
        for raw_name, value in sorted(dump.get("counters", {}).items()):
            name = _sanitize(prefix + raw_name)
            if not name.endswith("_total"):
                name += "_total"
            family(name, "counter", [(name, "", value)])
        for raw_name, h in sorted(dump.get("histograms", {}).items()):
            name = _sanitize(prefix + raw_name)
            samples: List[Tuple[str, str, Any]] = []
            cumulative = 0
            for bucket in h["buckets"]:
                cumulative += bucket["count"]
                le = (
                    "+Inf"
                    if bucket["le"] == "+Inf"
                    else _fmt(bucket["le"])
                )
                samples.append(
                    (f"{name}_bucket", f'le="{le}"', cumulative)
                )
            samples.append((f"{name}_sum", "", h["sum"]))
            samples.append((f"{name}_count", "", h["count"]))
            family(name, "histogram", samples)
            quantiles = h.get("quantiles") or {}
            for q_key in ("p50", "p95", "p99"):
                if q_key in quantiles:
                    q_name = f"{name}_{q_key}"
                    family(q_name, "gauge", [(q_name, "", quantiles[q_key])])

    if progress is not None:
        for key in ("events", "races"):
            if key in progress:
                name = _sanitize(f"{prefix}progress_{key}_total")
                family(name, "counter", [(name, "", progress[key])])
        if progress.get("total") is not None:
            name = _sanitize(f"{prefix}progress_expected_events")
            family(name, "gauge", [(name, "", progress["total"])])
        phase = progress.get("phase")
        if phase:
            name = _sanitize(f"{prefix}progress_phase_info")
            family(
                name, "gauge",
                [(name, f'phase="{_escape_label(str(phase))}"', 1)],
            )

    if gauges:
        for raw_name, value in sorted(gauges.items()):
            if value is None:
                continue
            # Names already namespaced by this package (``obs_*``, e.g.
            # the satellite-pinned ``obs_trace_dropped_total``) or
            # already carrying the prefix are emitted verbatim.
            if raw_name.startswith(("obs_", prefix)) and prefix:
                name = _sanitize(raw_name)
            else:
                name = _sanitize(prefix + raw_name)
            # A live value named ``*_total`` is a monotonic counter read
            # off the subject (steals, drops); type it honestly.
            kind = "counter" if name.endswith("_total") else "gauge"
            family(name, kind, [(name, "", value)])

    return "\n".join(lines) + "\n" if lines else ""


# --------------------------------------------------------------------- #
# Parsing / validation
# --------------------------------------------------------------------- #
def _parse_value(raw: str, lineno: int) -> float:
    if not _VALUE_RE.match(raw):
        raise ExpositionError(f"line {lineno}: malformed sample value {raw!r}")
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def _family_of(sample_name: str, typed: Mapping[str, str]) -> Optional[str]:
    """Map a sample name to its declared family, honouring histogram
    suffix conventions (``X_bucket``/``X_sum``/``X_count`` → ``X``)."""
    if sample_name in typed:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if typed.get(base) == "histogram":
                return base
    return None


def parse_exposition(text: str) -> Dict[Tuple[str, str], float]:
    """Strictly parse Prometheus text exposition.

    Returns ``{(sample_name, label_string): value}``.  Raises
    :class:`ExpositionError` with a pointed message on the first
    violation: malformed line, sample before its ``# TYPE``, duplicate
    series, non-cumulative histogram buckets, missing ``+Inf`` bucket,
    or ``_count`` disagreeing with the ``+Inf`` bucket.
    """
    typed: Dict[str, str] = {}
    samples: Dict[Tuple[str, str], float] = {}
    buckets: Dict[str, List[Tuple[float, float]]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ExpositionError(
                        f"line {lineno}: malformed TYPE comment {line!r}"
                    )
                _, _, fam, kind = parts
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise ExpositionError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                if fam in typed:
                    raise ExpositionError(
                        f"line {lineno}: duplicate TYPE for {fam!r}"
                    )
                typed[fam] = kind
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ExpositionError(
                f"line {lineno}: malformed sample line {line!r}"
            )
        name = m.group("name")
        label_str = m.group("labels") or ""
        if label_str:
            consumed = _LABEL_RE.sub("", label_str)
            if consumed.strip(", \t"):
                raise ExpositionError(
                    f"line {lineno}: malformed labels {{{label_str}}}"
                )
        value = _parse_value(m.group("value"), lineno)
        family = _family_of(name, typed)
        if family is None:
            raise ExpositionError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        kind = typed[family]
        if kind == "counter" and not name.endswith("_total"):
            raise ExpositionError(
                f"line {lineno}: counter sample {name!r} must end in _total"
            )
        key = (name, label_str)
        if key in samples:
            raise ExpositionError(
                f"line {lineno}: duplicate series {name}{{{label_str}}}"
            )
        samples[key] = value
        if kind == "histogram" and name == family + "_bucket":
            labels = dict(
                (lm.group("key"), lm.group("value"))
                for lm in _LABEL_RE.finditer(label_str)
            )
            if "le" not in labels:
                raise ExpositionError(
                    f"line {lineno}: histogram bucket without le label"
                )
            le = _parse_value(labels["le"].replace("\\\\", "\\"), lineno)
            buckets.setdefault(family, []).append((le, value))

    for family, rows in buckets.items():
        les = [le for le, _ in rows]
        if les != sorted(les):
            raise ExpositionError(
                f"histogram {family!r}: bucket le values not ascending"
            )
        counts = [v for _, v in rows]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise ExpositionError(
                f"histogram {family!r}: bucket counts not cumulative"
            )
        if not les or not math.isinf(les[-1]):
            raise ExpositionError(
                f"histogram {family!r}: missing le=\"+Inf\" bucket"
            )
        count = samples.get((family + "_count", ""))
        if count is not None and count != counts[-1]:
            raise ExpositionError(
                f"histogram {family!r}: _count {count} != +Inf bucket "
                f"{counts[-1]}"
            )

    return samples


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.exposition FILE`` — validate a scraped
    /metrics payload (``-`` reads stdin).  Exit 0 valid, 1 invalid,
    2 usage."""
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.exposition FILE|-", file=sys.stderr)
        return 2
    try:
        if args[0] == "-":
            text = sys.stdin.read()
        else:
            with open(args[0]) as fh:
                text = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        samples = parse_exposition(text)
    except ExpositionError as exc:
        print(f"INVALID exposition: {exc}", file=sys.stderr)
        return 1
    families = {name.rsplit("_bucket", 1)[0] for name, _ in samples}
    print(f"OK: {len(samples)} samples across ~{len(families)} series names")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
