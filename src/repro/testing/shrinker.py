"""Hypothesis-free delta-debugging shrinker over the program AST.

``repro-fuzz`` must hand every divergence to a human as a *small*
pretty-printed program, without assuming the hypothesis library is
installed (it is a dev-only dependency).  :func:`shrink_program` runs
Zeller-style ddmin over every statement block, then structural passes:

1. **ddmin removal** — minimize each block (outermost first, so whole
   subtrees vanish early) to a 1-minimal statement subset;
2. **hoisting** — replace an ``async``/``future``/``finish`` construct by
   its body spliced inline, discarding one nesting level;
3. **leaf canonicalization** — pull ``get`` selectors to ``0.0`` and
   location indices toward ``0``;
4. **location compaction** — shrink ``num_locs`` to the touched range.

All passes repeat to fixpoint under a predicate-call budget.  The
predicate receives a candidate :class:`Program` and returns True when the
failure of interest still reproduces; any exception it raises counts as
"does not reproduce", so detector crashes during shrinking cannot kill
the fuzz run.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.testing.generator import (
    Async,
    Finish,
    Future,
    Get,
    Program,
    Read,
    Stmt,
    Write,
)

__all__ = ["shrink_program", "ddmin"]

_NESTED = (Async, Future, Finish)


def ddmin(
    items: Sequence,
    test: Callable[[List], bool],
) -> List:
    """Classic ddmin: a 1-minimal sublist of ``items`` satisfying ``test``.

    ``test`` must hold for ``items`` itself; only complements are probed
    (we shrink by deleting chunks), which is the variant that suits
    statement deletion.
    """
    items = list(items)
    if not items:
        return items
    if test([]):
        return []
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if candidate and test(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    return items


def _replace_block(
    body: Tuple[Stmt, ...], path: Tuple[int, ...], new_block: Tuple[Stmt, ...]
) -> Tuple[Stmt, ...]:
    """Rebuild ``body`` with the block at ``path`` replaced."""
    if not path:
        return new_block
    i, rest = path[0], path[1:]
    stmt = body[i]
    inner = _replace_block(stmt.body, rest, new_block)
    return body[:i] + (type(stmt)(inner),) + body[i + 1:]


def _block_at(body: Tuple[Stmt, ...], path: Tuple[int, ...]) -> Tuple[Stmt, ...]:
    for i in path:
        body = body[i].body
    return body


def _block_paths(body: Tuple[Stmt, ...], prefix=()) -> List[Tuple[int, ...]]:
    """All block paths, outermost first."""
    paths = [prefix]
    for i, stmt in enumerate(body):
        if isinstance(stmt, _NESTED):
            paths.extend(_block_paths(stmt.body, prefix + (i,)))
    return paths


def shrink_program(
    program: Program,
    predicate: Callable[[Program], bool],
    *,
    budget: int = 1500,
) -> Program:
    """Greedy fixpoint minimization of ``program`` under ``predicate``.

    Returns the smallest variant found (``program`` itself if nothing
    smaller reproduces, or if the predicate does not even hold for the
    original).  ``budget`` caps predicate invocations.
    """
    calls = 0

    def check(candidate: Program) -> bool:
        nonlocal calls
        if calls >= budget:
            return False
        calls += 1
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    if not check(program):
        return program

    current = program
    changed = True
    while changed and calls < budget:
        changed = False

        # Pass 1: ddmin every block, outermost first.  Paths go stale as
        # soon as a block shrinks (indices shift, subtrees vanish), so
        # restart the path walk after every successful reduction.
        reducing = True
        while reducing and calls < budget:
            reducing = False
            for path in _block_paths(current.body):
                block = _block_at(current.body, path)
                if not block:
                    continue
                kept = ddmin(
                    block,
                    lambda cand, p=path: check(
                        Program(
                            body=_replace_block(current.body, p, tuple(cand)),
                            num_locs=current.num_locs,
                        )
                    ),
                )
                if len(kept) < len(block):
                    current = Program(
                        body=_replace_block(current.body, path, tuple(kept)),
                        num_locs=current.num_locs,
                    )
                    changed = reducing = True
                    break

        # Pass 2: hoist construct bodies (drop one nesting level).
        hoisting = True
        while hoisting and calls < budget:
            hoisting = False
            for path in _block_paths(current.body):
                block = _block_at(current.body, path)
                for i, stmt in enumerate(block):
                    if not isinstance(stmt, _NESTED):
                        continue
                    spliced = block[:i] + stmt.body + block[i + 1:]
                    candidate = Program(
                        body=_replace_block(current.body, path, spliced),
                        num_locs=current.num_locs,
                    )
                    if check(candidate):
                        current = candidate
                        changed = hoisting = True
                        break
                if hoisting:
                    break

        # Pass 3: canonicalize leaves (selectors to 0.0, locs toward 0).
        for path in _block_paths(current.body):
            block = _block_at(current.body, path)
            for i, stmt in enumerate(block):
                replacement = None
                if isinstance(stmt, Get) and stmt.selector != 0.0:
                    replacement = Get(0.0)
                elif isinstance(stmt, (Read, Write)) and stmt.loc != 0:
                    replacement = type(stmt)(0)
                if replacement is None:
                    continue
                new_block = block[:i] + (replacement,) + block[i + 1:]
                candidate = Program(
                    body=_replace_block(current.body, path, new_block),
                    num_locs=current.num_locs,
                )
                if check(candidate):
                    current = candidate
                    block = new_block
                    changed = True

    # Final pass: compact num_locs to the touched range.
    max_loc = -1
    stack = list(current.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (Read, Write)):
            max_loc = max(max_loc, stmt.loc)
        elif isinstance(stmt, _NESTED):
            stack.extend(stmt.body)
    compact = max(1, max_loc + 1)
    if compact < current.num_locs:
        candidate = Program(body=current.body, num_locs=compact)
        if check(candidate):
            current = candidate

    return current
