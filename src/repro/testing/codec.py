"""Stable JSON codec for generated programs and regression-corpus entries.

The differential fuzzer (``repro-fuzz``) persists minimized failing
programs so they can be replayed forever after, independent of generator
drift: a program serialized today must load identically after any future
change to :func:`~repro.testing.generator.random_program`.  JSON (not
pickle) keeps the corpus reviewable in diffs and safe to load.

Format (``version`` 1)::

    {
      "version": 1,
      "num_locs": 4,
      "body": [
        ["read", 0], ["write", 1], ["get", 0.25],
        ["async",  [ ...nested statements... ]],
        ["future", [ ... ]],
        ["finish", [ ... ]]
      ]
    }

A *corpus entry* wraps a program with its provenance and the oracle's
verdict (location indices into the single shared array ``"x"`` used by
:func:`~repro.testing.generator.run_program`)::

    {
      "version": 1,
      "name": "dtrg_future_covered_reader",
      "description": "...",
      "racy_locs": [0],
      "program": { ...program object as above... }
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.testing.generator import (
    Async,
    Finish,
    Future,
    Get,
    Program,
    Read,
    Stmt,
    Write,
)

__all__ = [
    "program_to_data",
    "program_from_data",
    "dumps_program",
    "loads_program",
    "CorpusEntry",
    "entry_to_data",
    "entry_from_data",
]

CODEC_VERSION = 1

_NESTED = {"async": Async, "future": Future, "finish": Finish}


def _body_to_data(body: Sequence[Stmt]) -> List[list]:
    out: List[list] = []
    for stmt in body:
        if isinstance(stmt, Read):
            out.append(["read", stmt.loc])
        elif isinstance(stmt, Write):
            out.append(["write", stmt.loc])
        elif isinstance(stmt, Get):
            out.append(["get", stmt.selector])
        elif isinstance(stmt, (Async, Future, Finish)):
            out.append([type(stmt).__name__.lower(), _body_to_data(stmt.body)])
        else:
            raise TypeError(f"unknown statement {stmt!r}")
    return out


def _body_from_data(data: Sequence) -> Tuple[Stmt, ...]:
    stmts: List[Stmt] = []
    for item in data:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ValueError(f"malformed statement {item!r}")
        tag, arg = item
        if tag == "read":
            stmts.append(Read(int(arg)))
        elif tag == "write":
            stmts.append(Write(int(arg)))
        elif tag == "get":
            stmts.append(Get(float(arg)))
        elif tag in _NESTED:
            stmts.append(_NESTED[tag](_body_from_data(arg)))
        else:
            raise ValueError(f"unknown statement tag {tag!r}")
    return tuple(stmts)


def program_to_data(program: Program) -> Dict[str, Any]:
    """Encode a :class:`Program` as a JSON-serializable dict."""
    return {
        "version": CODEC_VERSION,
        "num_locs": program.num_locs,
        "body": _body_to_data(program.body),
    }


def program_from_data(data: Dict[str, Any]) -> Program:
    """Decode :func:`program_to_data` output (validates the version)."""
    version = data.get("version")
    if version != CODEC_VERSION:
        raise ValueError(f"unsupported program codec version {version!r}")
    return Program(
        body=_body_from_data(data["body"]), num_locs=int(data["num_locs"])
    )


def dumps_program(program: Program) -> str:
    """Deterministic JSON text for ``program`` (stable across runs)."""
    return json.dumps(program_to_data(program), sort_keys=True, indent=2)


def loads_program(text: str) -> Program:
    return program_from_data(json.loads(text))


# ---------------------------------------------------------------------- #
# Corpus entries                                                         #
# ---------------------------------------------------------------------- #
@dataclass
class CorpusEntry:
    """One regression-corpus record: a program plus its expected verdict.

    ``racy_locs`` holds the indices of the racy cells of the shared array
    ``"x"`` — the oracle's ``racy_locations`` with the array name dropped.
    """

    name: str
    description: str
    program: Program
    racy_locs: Tuple[int, ...]

    @property
    def racy_locations(self) -> Set[Tuple[str, int]]:
        """The verdict in detector-report form."""
        return {("x", loc) for loc in self.racy_locs}


def entry_to_data(entry: CorpusEntry) -> Dict[str, Any]:
    return {
        "version": CODEC_VERSION,
        "name": entry.name,
        "description": entry.description,
        "racy_locs": sorted(entry.racy_locs),
        "program": program_to_data(entry.program),
    }


def entry_from_data(data: Dict[str, Any]) -> CorpusEntry:
    version = data.get("version")
    if version != CODEC_VERSION:
        raise ValueError(f"unsupported corpus entry version {version!r}")
    return CorpusEntry(
        name=str(data["name"]),
        description=str(data.get("description", "")),
        program=program_from_data(data["program"]),
        racy_locs=tuple(int(x) for x in data["racy_locs"]),
    )
