"""Hand-written corpus of async/finish/future programs with known verdicts.

Each :class:`CorpusProgram` builds a program against a fresh runtime and
declares the exact set of racy locations (per Definition 3).  The corpus is
shared by the detector integration tests, the cross-detector agreement
tests, and the documentation examples — every entry is a scenario called
out somewhere in the paper:

* structured async-finish races (the SP-bags/ESP-bags regime);
* future tree joins (parent get), including repeated gets;
* sibling/cousin non-tree joins and transitive join chains (Figure 1);
* reader-set subtleties: multiple parallel future readers, async reader
  replacement (Lemma 4), write-after-read retirement (Lemma 3);
* the Appendix A reference-race pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Sequence, Tuple

from repro.memory.shared import SharedArray
from repro.runtime.runtime import Runtime

__all__ = ["CorpusProgram", "CORPUS", "run_corpus_program"]


@dataclass(frozen=True)
class CorpusProgram:
    """A named program plus its ground-truth racy-location set."""

    name: str
    builder: Callable[[Runtime, SharedArray], None]
    racy: FrozenSet[Tuple[str, int]]
    num_locs: int = 4
    description: str = ""

    def locs(self) -> FrozenSet:
        return self.racy


def run_corpus_program(
    program: CorpusProgram, observers: Sequence = ()
) -> Runtime:
    """Execute a corpus entry with ``observers`` attached."""
    rt = Runtime(observers=list(observers))
    mem = SharedArray(rt, "x", program.num_locs)
    rt.run(lambda _rt: program.builder(rt, mem))
    return rt


def _loc(i: int) -> Tuple[str, int]:
    return ("x", i)


# ---------------------------------------------------------------------- #
# Builders                                                               #
# ---------------------------------------------------------------------- #
def _race_free_sequential(rt: Runtime, mem: SharedArray) -> None:
    mem.write(0, 1)
    mem.read(0)
    mem.write(0, 2)


def _parallel_writes_race(rt: Runtime, mem: SharedArray) -> None:
    with rt.finish():
        rt.async_(lambda: mem.write(0, 1))
        rt.async_(lambda: mem.write(0, 2))


def _finish_orders_writes(rt: Runtime, mem: SharedArray) -> None:
    with rt.finish():
        rt.async_(lambda: mem.write(0, 1))
    with rt.finish():
        rt.async_(lambda: mem.write(0, 2))


def _nested_finish_race_free(rt: Runtime, mem: SharedArray) -> None:
    def outer() -> None:
        with rt.finish():
            rt.async_(lambda: mem.write(1, 7))
        mem.read(1)

    with rt.finish():
        rt.async_(outer)
    mem.read(1)


def _escaping_async_race(rt: Runtime, mem: SharedArray) -> None:
    # The async escapes its parent into the ancestor's finish; its write is
    # parallel with the parent's continuation read.
    def parent() -> None:
        rt.async_(lambda: mem.write(2, 1))  # IEF is the outer finish
        mem.read(2)  # races: no join yet

    with rt.finish():
        rt.async_(parent)


def _future_get_orders(rt: Runtime, mem: SharedArray) -> None:
    f = rt.future(lambda: mem.write(0, 42))
    f.get()
    mem.read(0)


def _future_without_get_races(rt: Runtime, mem: SharedArray) -> None:
    rt.future(lambda: mem.write(0, 42))  # never joined before the read...
    mem.read(0)  # ...so this read races (implicit finish joins later)


def _repeated_get_race_free(rt: Runtime, mem: SharedArray) -> None:
    f = rt.future(lambda: mem.write(0, 1))
    f.get()
    f.get()  # repeated joins are no-ops
    mem.write(0, 2)


def _sibling_join_orders(rt: Runtime, mem: SharedArray) -> None:
    f = rt.future(lambda: mem.write(0, 1), name="producer")

    def consumer() -> None:
        f.get()  # non-tree join
        mem.read(0)

    g = rt.future(consumer, name="consumer")
    g.get()


def _sibling_without_join_races(rt: Runtime, mem: SharedArray) -> None:
    f = rt.future(lambda: mem.write(0, 1), name="producer")
    g = rt.future(lambda: mem.read(0), name="consumer")  # no get: race
    f.get()
    g.get()


def _transitive_join_chain(rt: Runtime, mem: SharedArray) -> None:
    # Figure 1's transitive dependence: main joins only C, but C joined B
    # and B joined A, so main is ordered after all of them.
    a = rt.future(lambda: mem.write(0, 1), name="A")

    def body_b() -> None:
        a.get()
        mem.write(1, 2)

    b = rt.future(body_b, name="B")

    def body_c() -> None:
        b.get()
        mem.write(2, 3)

    c = rt.future(body_c, name="C")
    c.get()
    mem.read(0)
    mem.read(1)
    mem.read(2)


def _partial_transitive_race(rt: Runtime, mem: SharedArray) -> None:
    # Main joins C; C joined B but nobody joined A -> A's write still races
    # with main's read of loc 0, while loc 1 is ordered.
    a = rt.future(lambda: mem.write(0, 1), name="A")

    def body_b() -> None:
        mem.write(1, 2)

    b = rt.future(body_b, name="B")

    def body_c() -> None:
        b.get()
        mem.write(2, 3)

    c = rt.future(body_c, name="C")
    c.get()
    mem.read(0)  # races with A
    mem.read(1)  # ordered through C -> B
    mem.read(2)  # ordered through C


def _many_future_readers_then_ordered_write(rt: Runtime, mem: SharedArray) -> None:
    # Several parallel future readers; the writer joins them all -> no race.
    mem.write(3, 9)
    readers = [rt.future(lambda: mem.read(3)) for _ in range(4)]
    for f in readers:
        f.get()
    mem.write(3, 10)


def _many_future_readers_missed_one(rt: Runtime, mem: SharedArray) -> None:
    # Joining all but one reader leaves exactly one racy pair: the write
    # races with the unjoined future's read.  The multi-reader shadow set
    # is what catches this (an SP-bags-style single reader could not).
    mem.write(3, 9)
    readers = [rt.future(lambda: mem.read(3), name=f"r{i}") for i in range(4)]
    for f in readers[:-1]:
        f.get()
    mem.write(3, 10)
    readers[-1].get()


def _async_reader_replacement(rt: Runtime, mem: SharedArray) -> None:
    # Lemma 4 regime: async readers in series, then a parallel async write.
    mem.write(0, 1)
    with rt.finish():
        rt.async_(lambda: mem.read(0))
    with rt.finish():
        rt.async_(lambda: mem.read(0))
        rt.async_(lambda: mem.write(0, 2))  # races with the sibling read


def _write_read_same_task(rt: Runtime, mem: SharedArray) -> None:
    def worker() -> None:
        mem.write(1, 5)
        mem.read(1)
        mem.write(1, 6)

    with rt.finish():
        rt.async_(worker)
    mem.read(1)


def _future_value_only_no_memory(rt: Runtime, mem: SharedArray) -> None:
    # Pure functional futures: values flow through get() only — the
    # guaranteed-race-free idiom the paper contrasts with side effects.
    f = rt.future(lambda: 21)
    g = rt.future(lambda: f.get() * 2)
    assert g.get() == 42


def _depends_on_handle_cells(rt: Runtime, mem: SharedArray) -> None:
    # Appendix A discipline done right: handle published before consumers
    # spawn; no race anywhere.
    cell = SharedArray(rt, "cells", 1)
    f = rt.future(lambda: mem.write(0, 8))
    cell.write(0, f)

    def consumer() -> None:
        cell.read(0).get()
        mem.read(0)

    g = rt.future(consumer)
    g.get()


CORPUS: List[CorpusProgram] = [
    CorpusProgram(
        "race_free_sequential", _race_free_sequential, frozenset(),
        description="single-task program: program order covers everything",
    ),
    CorpusProgram(
        "parallel_writes_race", _parallel_writes_race,
        frozenset({_loc(0)}),
        description="two asyncs in one finish write the same cell",
    ),
    CorpusProgram(
        "finish_orders_writes", _finish_orders_writes, frozenset(),
        description="back-to-back finish scopes serialize the writers",
    ),
    CorpusProgram(
        "nested_finish_race_free", _nested_finish_race_free, frozenset(),
        description="inner finish joins the writer before both readers",
    ),
    CorpusProgram(
        "escaping_async_race", _escaping_async_race,
        frozenset({_loc(2)}),
        description="terminally-strict escape: async outlives its parent",
    ),
    CorpusProgram(
        "future_get_orders", _future_get_orders, frozenset(),
        description="parent get() is a tree join ordering the write",
    ),
    CorpusProgram(
        "future_without_get_races", _future_without_get_races,
        frozenset({_loc(0)}),
        description="unjoined future write races with the parent read",
    ),
    CorpusProgram(
        "repeated_get_race_free", _repeated_get_race_free, frozenset(),
        description="repeated get() on one future is idempotent",
    ),
    CorpusProgram(
        "sibling_join_orders", _sibling_join_orders, frozenset(),
        description="non-tree join between siblings orders the accesses",
    ),
    CorpusProgram(
        "sibling_without_join_races", _sibling_without_join_races,
        frozenset({_loc(0)}),
        description="siblings without a get() race",
    ),
    CorpusProgram(
        "transitive_join_chain", _transitive_join_chain, frozenset(),
        description="Figure 1: main is ordered after A,B,C via C alone",
    ),
    CorpusProgram(
        "partial_transitive_race", _partial_transitive_race,
        frozenset({_loc(0)}),
        description="transitive chain with one missing link",
    ),
    CorpusProgram(
        "many_future_readers_then_ordered_write",
        _many_future_readers_then_ordered_write, frozenset(),
        description="all parallel future readers joined before the write",
    ),
    CorpusProgram(
        "many_future_readers_missed_one",
        _many_future_readers_missed_one, frozenset({_loc(3)}),
        description="one unjoined future reader: needs the multi-reader set",
    ),
    CorpusProgram(
        "async_reader_replacement", _async_reader_replacement,
        frozenset({_loc(0)}),
        description="Lemma 4: one async reader representative suffices",
    ),
    CorpusProgram(
        "write_read_same_task", _write_read_same_task, frozenset(),
        description="program order within one task plus a finish",
    ),
    CorpusProgram(
        "future_value_only_no_memory", _future_value_only_no_memory,
        frozenset(),
        description="functional futures: no shared accesses at all",
    ),
    CorpusProgram(
        "depends_on_handle_cells", _depends_on_handle_cells, frozenset(),
        description="handles through shared cells, published before use",
    ),
]
