"""Program generation and execution helpers used by tests and benchmarks."""

from repro.testing.generator import (
    Async,
    Finish,
    Future,
    Get,
    Program,
    Read,
    Stmt,
    Write,
    count_stmts,
    program_strategy,
    random_program,
    run_program,
)

__all__ = [
    "Stmt",
    "Read",
    "Write",
    "Get",
    "Async",
    "Future",
    "Finish",
    "Program",
    "run_program",
    "random_program",
    "program_strategy",
    "count_stmts",
]
