"""Program generation and execution helpers used by tests and benchmarks."""

from repro.testing.codec import (
    CorpusEntry,
    dumps_program,
    entry_from_data,
    entry_to_data,
    loads_program,
    program_from_data,
    program_to_data,
)
from repro.testing.generator import (
    Async,
    Finish,
    Future,
    Get,
    Program,
    Read,
    Stmt,
    Write,
    count_stmts,
    program_strategy,
    random_program,
    run_program,
)
from repro.testing.shrinker import ddmin, shrink_program

__all__ = [
    "Stmt",
    "Read",
    "Write",
    "Get",
    "Async",
    "Future",
    "Finish",
    "Program",
    "run_program",
    "random_program",
    "program_strategy",
    "count_stmts",
    "CorpusEntry",
    "program_to_data",
    "program_from_data",
    "dumps_program",
    "loads_program",
    "entry_to_data",
    "entry_from_data",
    "ddmin",
    "shrink_program",
]
