"""Random async/finish/future program generation and execution.

The paper's Theorem 2 claims the detector reports a race iff one exists.
We validate that claim mechanically: generate arbitrary programs over the
model's constructs, execute them once (serial depth-first), and compare the
detector's per-location verdicts against the brute-force transitive-closure
oracle.  This module provides

* a tiny program AST (:class:`Stmt` subclasses) covering reads, writes,
  ``async``, ``finish``, futures and ``get``;
* :func:`run_program` — execute an AST on a
  :class:`~repro.runtime.runtime.Runtime` with any observers attached;
* :func:`random_program` — seedable generator used by benchmarks and
  stress tests;
* :func:`program_strategy` — a hypothesis strategy with good shrinking for
  the property tests.

``get`` targets are resolved *during* the depth-first walk: a ``Get`` node
carries a selector in ``[0, 1)`` that indexes the list of futures already
created at that point of the execution, so any generated program is valid
by construction (every ``get`` references an existing task — exactly the
programs expressible in the paper's model, including sibling/cousin joins
that produce non-tree edges).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.memory.shared import SharedArray
from repro.runtime.asyncio_runtime import AsyncioRuntime
from repro.runtime.executor import ThreadRuntime
from repro.runtime.runtime import Runtime

try:  # hypothesis is a dev dependency; the module works without it.
    from hypothesis import strategies as st

    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    _HAVE_HYPOTHESIS = False

__all__ = [
    "Stmt",
    "Read",
    "Write",
    "Get",
    "Async",
    "Future",
    "Finish",
    "Program",
    "run_program",
    "run_program_values",
    "run_program_threads",
    "run_program_asyncio",
    "random_program",
    "program_strategy",
    "count_stmts",
]


class Stmt:
    """Base class of program statements (value objects)."""

    __slots__ = ()


@dataclass(frozen=True)
class Read(Stmt):
    loc: int


@dataclass(frozen=True)
class Write(Stmt):
    loc: int


@dataclass(frozen=True)
class Get(Stmt):
    """``get()`` on the ``int(selector * len(created))``-th future created
    so far in depth-first order; a no-op if none exist yet."""

    selector: float


@dataclass(frozen=True)
class Async(Stmt):
    body: tuple


@dataclass(frozen=True)
class Future(Stmt):
    body: tuple


@dataclass(frozen=True)
class Finish(Stmt):
    body: tuple


@dataclass
class Program:
    """A generated program: the main task's body plus its location count."""

    body: tuple
    num_locs: int

    def __str__(self) -> str:
        lines: List[str] = []
        _pretty(self.body, lines, 0)
        return "\n".join(lines) or "(empty)"


def _pretty(body: Sequence[Stmt], lines: List[str], indent: int) -> None:
    pad = "  " * indent
    for stmt in body:
        if isinstance(stmt, Read):
            lines.append(f"{pad}read x{stmt.loc}")
        elif isinstance(stmt, Write):
            lines.append(f"{pad}write x{stmt.loc}")
        elif isinstance(stmt, Get):
            lines.append(f"{pad}get [{stmt.selector:.2f}]")
        elif isinstance(stmt, (Async, Future, Finish)):
            kw = type(stmt).__name__.lower()
            lines.append(f"{pad}{kw} {{")
            _pretty(stmt.body, lines, indent + 1)
            lines.append(f"{pad}}}")


def count_stmts(body: Sequence[Stmt]) -> int:
    """Total statement count, nested bodies included."""
    total = 0
    for stmt in body:
        total += 1
        if isinstance(stmt, (Async, Future, Finish)):
            total += count_stmts(stmt.body)
    return total


# ---------------------------------------------------------------------- #
# Execution                                                              #
# ---------------------------------------------------------------------- #
def run_program(
    program: Program,
    observers: Sequence = (),
    *,
    scoped_handles: bool = True,
    obs=None,
    provenance=None,
) -> Runtime:
    """Execute ``program`` depth-first on a fresh runtime.

    Returns the runtime (observers hold whatever they recorded).  Shared
    locations are cells of one :class:`SharedArray` named ``"x"``, so the
    oracle/detector location keys are ``("x", loc)``.

    ``scoped_handles`` selects how ``Get`` targets resolve:

    * ``True`` (default) — the *language's* reference-flow discipline: a
      task can join only futures whose handles it legitimately holds —
      those visible to its parent at its spawn plus those it created
      itself.  This is the HJ/X10 capability rule the paper's precision
      proof depends on (Lemma 1: whoever joins ``F`` is already ordered
      after the step holding ``F``'s reference).  Theorem 2 property tests
      use this mode.
    * ``False`` — a "wild" out-of-band registry: any already-created
      future may be joined, including ones whose handle could never have
      reached the joining task without a racy (or impossible) reference
      flow.  Such executions are outside the model's guarantee; they are
      used for robustness (no-crash, no-exception) stress tests only.
    """
    rt = Runtime(observers=list(observers), obs=obs, provenance=provenance)
    mem = SharedArray(rt, "x", program.num_locs)
    registry: List = []  # wild mode: all handles in creation order

    def exec_body(body: Sequence[Stmt], visible: List) -> None:
        for stmt in body:
            if isinstance(stmt, Read):
                mem.read(stmt.loc)
            elif isinstance(stmt, Write):
                mem.write(stmt.loc, None)
            elif isinstance(stmt, Get):
                pool = visible if scoped_handles else registry
                if pool:
                    idx = min(int(stmt.selector * len(pool)), len(pool) - 1)
                    pool[idx].get()
            elif isinstance(stmt, Async):
                # Child inherits a snapshot of the parent's visible handles
                # (references passed as spawn arguments).
                rt.async_(exec_body, stmt.body, list(visible))
            elif isinstance(stmt, Future):
                cell: List = [None]

                def body_with_self(
                    b=stmt.body, v=list(visible), c=cell
                ) -> None:
                    # The future's own handle is not yet bound inside its
                    # body (the assignment happens in the parent after the
                    # spawn), so the child sees the parent's snapshot only.
                    exec_body(b, v)

                handle = rt.future(body_with_self)
                cell[0] = handle
                visible.append(handle)
                registry.append(handle)
            elif isinstance(stmt, Finish):
                with rt.finish():
                    exec_body(stmt.body, visible)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown statement {stmt!r}")

    rt.run(lambda _rt: exec_body(program.body, []))
    return rt


# ---------------------------------------------------------------------- #
# Runtime-parametric execution (runtime-parity sweeps, PR 8)             #
# ---------------------------------------------------------------------- #
# The interpreters below execute the same AST on any RuntimeBase
# implementation and write *statement-path tokens* instead of ``None``:
# every statement of a generated program executes exactly once (the AST
# is a tree and each construct spawns once), so the token identifies the
# write uniquely and the final memory state is a schedule-independent
# fingerprint for race-free programs — the executable form of the
# Determinism Property that the parity tests compare across the serial,
# threaded and asyncio substrates.  Handle-flow caveat: only the scoped
# mode is schedule-independent (the wild registry's creation order is a
# race by construction), so parity legs always run scoped.


def _make_sync_interpreter(rt, mem, *, scoped_handles: bool, values: bool):
    registry: List = []  # wild mode: all handles in creation order

    def exec_body(body: Sequence[Stmt], visible: List, path: tuple = ()) -> None:
        for i, stmt in enumerate(body):
            if isinstance(stmt, Read):
                mem.read(stmt.loc)
            elif isinstance(stmt, Write):
                mem.write(stmt.loc, path + (i,) if values else None)
            elif isinstance(stmt, Get):
                pool = visible if scoped_handles else registry
                if pool:
                    idx = min(int(stmt.selector * len(pool)), len(pool) - 1)
                    pool[idx].get()
            elif isinstance(stmt, Async):
                rt.async_(exec_body, stmt.body, list(visible), path + (i,))
            elif isinstance(stmt, Future):
                handle = rt.future(
                    exec_body, stmt.body, list(visible), path + (i,)
                )
                visible.append(handle)
                registry.append(handle)
            elif isinstance(stmt, Finish):
                with rt.finish():
                    exec_body(stmt.body, visible, path + (i,))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown statement {stmt!r}")

    return exec_body


def _make_async_interpreter(rt, mem, *, scoped_handles: bool, values: bool):
    registry: List = []

    async def exec_body(
        body: Sequence[Stmt], visible: List, path: tuple = ()
    ) -> None:
        for i, stmt in enumerate(body):
            if isinstance(stmt, Read):
                mem.read(stmt.loc)
            elif isinstance(stmt, Write):
                mem.write(stmt.loc, path + (i,) if values else None)
            elif isinstance(stmt, Get):
                pool = visible if scoped_handles else registry
                if pool:
                    idx = min(int(stmt.selector * len(pool)), len(pool) - 1)
                    await pool[idx].get()
            elif isinstance(stmt, Async):
                rt.async_(exec_body, stmt.body, list(visible), path + (i,))
            elif isinstance(stmt, Future):
                handle = rt.future(
                    exec_body, stmt.body, list(visible), path + (i,)
                )
                visible.append(handle)
                registry.append(handle)
            elif isinstance(stmt, Finish):
                async with rt.finish():
                    await exec_body(stmt.body, visible, path + (i,))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown statement {stmt!r}")

    return exec_body


def run_program_values(
    program: Program,
    observers: Sequence = (),
    *,
    scoped_handles: bool = True,
    obs=None,
):
    """Serial depth-first execution with path-token writes.

    The reference leg of the runtime-parity sweep: same substrate as
    :func:`run_program` but writes statement-path tokens so the final
    memory is comparable.  Returns ``(runtime, final_memory)``.
    """
    rt = Runtime(observers=list(observers), obs=obs)
    mem = SharedArray(rt, "x", program.num_locs)
    exec_body = _make_sync_interpreter(
        rt, mem, scoped_handles=scoped_handles, values=True
    )
    rt.run(lambda _rt: exec_body(program.body, [], ()))
    return rt, mem.to_list()


def run_program_threads(
    program: Program,
    observers: Sequence = (),
    *,
    workers: int = 2,
    scoped_handles: bool = True,
    obs=None,
    steal_seed: int = 0,
):
    """Execute ``program`` on a :class:`ThreadRuntime` with path-token
    writes.  Returns ``(runtime, final_memory)``; observers must be
    schedule-robust (``ParallelRaceDetector``)."""
    rt = ThreadRuntime(
        observers=list(observers), workers=workers, obs=obs,
        steal_seed=steal_seed,
    )
    mem = SharedArray(rt, "x", program.num_locs)
    exec_body = _make_sync_interpreter(
        rt, mem, scoped_handles=scoped_handles, values=True
    )
    rt.run(lambda _rt: exec_body(program.body, [], ()))
    return rt, mem.to_list()


def run_program_asyncio(
    program: Program,
    observers: Sequence = (),
    *,
    scoped_handles: bool = True,
    obs=None,
):
    """Execute ``program`` on an :class:`AsyncioRuntime` with path-token
    writes.  Returns ``(runtime, final_memory)``."""
    rt = AsyncioRuntime(observers=list(observers), obs=obs)
    mem = SharedArray(rt, "x", program.num_locs)
    exec_body = _make_async_interpreter(
        rt, mem, scoped_handles=scoped_handles, values=True
    )

    async def main(_rt):
        await exec_body(program.body, [], ())

    rt.run(main)
    return rt, mem.to_list()


# ---------------------------------------------------------------------- #
# Seedable random generation (benchmarks, stress)                        #
# ---------------------------------------------------------------------- #
def random_program(
    rng: random.Random,
    *,
    num_locs: int = 4,
    max_depth: int = 4,
    max_block: int = 6,
    p_task: float = 0.35,
    p_get: float = 0.2,
) -> Program:
    """Generate a random program.

    ``p_task`` is the probability that a statement is a nested construct
    (split between async/future/finish); ``p_get`` the probability of a
    ``get``; the rest are reads/writes split evenly.
    """

    def gen_block(depth: int) -> tuple:
        # At max_depth no nested construct may be drawn; fold the p_task
        # mass back into the read/write share so maximally nested blocks
        # stay access-heavy as documented (previously it fell through the
        # elif chain into Get, making them join-heavy instead).
        p_nest = p_task if depth < max_depth else 0.0
        stmts: List[Stmt] = []
        for _ in range(rng.randint(1, max_block)):
            r = rng.random()
            if r < p_nest:
                body = gen_block(depth + 1)
                kind = rng.random()
                if kind < 0.4:
                    stmts.append(Async(body))
                elif kind < 0.8:
                    stmts.append(Future(body))
                else:
                    stmts.append(Finish(body))
            elif r < p_nest + p_get:
                stmts.append(Get(rng.random()))
            elif r < p_nest + p_get + (1 - p_nest - p_get) / 2:
                stmts.append(Read(rng.randrange(num_locs)))
            else:
                stmts.append(Write(rng.randrange(num_locs)))
        return tuple(stmts)

    return Program(body=gen_block(0), num_locs=num_locs)


# ---------------------------------------------------------------------- #
# Hypothesis strategy                                                    #
# ---------------------------------------------------------------------- #
def program_strategy(
    *,
    num_locs: int = 3,
    max_leaves: int = 40,
):
    """Hypothesis strategy producing :class:`Program` values.

    Uses :func:`hypothesis.strategies.recursive` so shrinking peels
    constructs from the outside in; selectors shrink toward 0 (the oldest
    future), which tends to shrink counterexamples toward parent-joins.
    """
    if not _HAVE_HYPOTHESIS:  # pragma: no cover
        raise ImportError("hypothesis is required for program_strategy")

    leaf = st.one_of(
        st.builds(Read, loc=st.integers(0, num_locs - 1)),
        st.builds(Write, loc=st.integers(0, num_locs - 1)),
        st.builds(
            Get,
            selector=st.floats(
                0, 1, exclude_max=True, allow_nan=False, width=32
            ),
        ),
    )

    def wrap(children):
        block = st.lists(children, min_size=0, max_size=4).map(tuple)
        return st.one_of(
            st.builds(Async, body=block),
            st.builds(Future, body=block),
            st.builds(Finish, body=block),
        )

    stmt = st.recursive(leaf, wrap, max_leaves=max_leaves)
    body = st.lists(stmt, min_size=0, max_size=6).map(tuple)
    return st.builds(Program, body=body, num_locs=st.just(num_locs))
