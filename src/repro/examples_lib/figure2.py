"""Figure 2 — example program with futures and its 12-step computation graph.

The paper's Figure 2 is an image; its caption and the surrounding text pin
down the structure we must reproduce:

* tasks: main ``T_M`` plus future tasks ``T_A``, ``T_B``, ``T_C``, ``T_D``;
* steps ``S1``-``S12`` numbered in serial depth-first execution order;
* "S2 ⊀ S10 because there is no directed path from S2 to S10", and
  "S2 ≺ S12 since there is a directed path";
* "the join edge from S3 to S5 is a tree join since T_A is an ancestor of
  T_B.  The edge from S5 to S8 is a non-tree join since T_C is not an
  ancestor of T_A."

The unique (up to irrelevant renaming) program consistent with all of that::

    // T_M
    S1
    A = future { S2; B = future { S3 }; S4; B.get(); S5 }   // T_A, T_B
    S6
    C = future(A) { S7; A.get(); S8 }                        // T_C
    S9
    D = future { S10 }                                       // T_D
    S11
    C.get()
    S12

Depth-first execution visits the steps exactly in S1..S12 order, matching
the paper's numbering.  ``tests/paper/test_figure2.py`` checks the step
count, the edge classification, and both reachability claims;
``examples/figure2_computation_graph.py`` renders the graph to DOT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.events import ExecutionObserver
from repro.memory.shared import SharedArray
from repro.runtime.runtime import Runtime

__all__ = ["Figure2Result", "run_figure2", "step_location", "NUM_STEPS"]

NUM_STEPS = 12


@dataclass
class Figure2Result:
    runtime: Runtime
    tids: Dict[str, int]  #: "M", "A", "B", "C", "D" -> task id


def run_figure2(observers: Sequence[ExecutionObserver] = ()) -> Figure2Result:
    """Execute the reconstructed Figure 2 program."""
    rt = Runtime(observers=list(observers))
    marks = SharedArray(rt, "S", NUM_STEPS + 1)
    tids: Dict[str, int] = {}

    def mark(i: int) -> None:
        marks.read(i)

    def program(rt: Runtime) -> None:
        # The only finish is the implicit one around main (as in the paper);
        # its closing join edges land in one terminal step after S12.
        tids["M"] = rt.current_task.tid
        mark(1)

        def body_a() -> None:
            mark(2)
            b = rt.future(lambda: mark(3), name="T_B")
            tids["B"] = b.task.tid
            mark(4)
            b.get()
            mark(5)

        a = rt.future(body_a, name="T_A")
        tids["A"] = a.task.tid
        mark(6)

        def body_c() -> None:
            mark(7)
            a.get()
            mark(8)

        c = rt.future(body_c, name="T_C")
        tids["C"] = c.task.tid
        mark(9)
        d = rt.future(lambda: mark(10), name="T_D")
        tids["D"] = d.task.tid
        mark(11)
        c.get()
        mark(12)

    rt.run(program)
    return Figure2Result(runtime=rt, tids=tids)


def step_location(i: int):
    """Location key of the marker access identifying step ``Si``."""
    return ("S", i)
