"""Figure 3 / Table 1 — dynamic task reachability graph snapshots.

The paper's Figure 3 (an image we must reconstruct) shows a 7-task program
whose DTRG is dumped twice in Table 1:

* **(a) after "step 11"** — ``T3`` has performed non-tree joins on ``T1``
  and ``T2`` (so ``P(T3) = {T1, T2}``) and then spawned ``T4``, ``T5``,
  ``T6``, whose lowest significant ancestor is therefore ``T3``; every task
  is still its own singleton disjoint set.
* **(b) after "step 17"** — ``T0, T3, T4, T5, T6`` have been connected by
  tree joins and share one disjoint set; ``T1`` and ``T2`` remain apart.

The program below realizes exactly those states::

    // T0 (main)
    T1 = future { ... }
    T2 = future { ... }
    T3 = future(T1, T2) {
        T1.get()        // non-tree: T3 is not an ancestor of T1
        T2.get()        // non-tree
        T4 = future { ... }     // LSA(T4) = T3
        T5 = future { ... }     // LSA(T5) = T3
        T6 = future { ... }     // LSA(T6) = T3
        --- snapshot (a) taken here ---
        T4.get(); T5.get(); T6.get()   // tree joins into T3's set
    }
    T3.get()                            // tree join into T0's set
    --- snapshot (b) taken here ---

``run_figure3`` executes it against a
:class:`~repro.core.detector.DeterminacyRaceDetector` and captures both
snapshots; ``tests/paper/test_figure3_table1.py`` asserts every Table 1
fact against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.detector import DeterminacyRaceDetector
from repro.runtime.runtime import Runtime

__all__ = ["DtrgSnapshot", "Figure3Result", "run_figure3"]


@dataclass
class DtrgSnapshot:
    """Frozen view of the DTRG facts Table 1 reports."""

    partition: List[Set[str]]                 #: disjoint sets, as name sets
    nt_preds: Dict[str, Tuple[str, ...]]      #: P — per task, its set's nt list
    lsa: Dict[str, Optional[str]]             #: A — per task, its set's LSA
    labels: Dict[str, Tuple[int, int]]        #: L — per task, (pre, post/raw)


@dataclass
class Figure3Result:
    detector: DeterminacyRaceDetector
    after_step_11: DtrgSnapshot
    after_step_17: DtrgSnapshot
    tids: Dict[str, int]


def _snapshot(det: DeterminacyRaceDetector, tids: Dict[str, int]) -> DtrgSnapshot:
    names = {tid: name for name, tid in tids.items()}
    known = [tid for tid in tids.values()]
    partition: List[Set[str]] = []
    seen: set = set()
    for name, tid in tids.items():
        if tid in seen:
            continue
        group = {
            names[other]
            for other in known
            if det.dtrg.same_set(tid, other)
        }
        seen.update(tids[g] for g in group)
        partition.append(group)
    nt = {
        name: tuple(
            names[k] for k in det.dtrg.non_tree_predecessors(tid) if k in names
        )
        for name, tid in tids.items()
    }
    lsa = {}
    for name, tid in tids.items():
        anc = det.dtrg.lsa_of(tid)
        lsa[name] = names.get(anc) if anc is not None else None
    labels = {
        name: (det.dtrg.label_of(tid).pre, det.dtrg.label_of(tid).post)
        for name, tid in tids.items()
    }
    return DtrgSnapshot(partition=partition, nt_preds=nt, lsa=lsa, labels=labels)


def run_figure3(extra_observers: Sequence = ()) -> Figure3Result:
    """Execute the reconstructed Figure 3 program, snapshotting the DTRG."""
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det, *extra_observers])
    tids: Dict[str, int] = {}
    snapshots: Dict[str, DtrgSnapshot] = {}

    def program(rt: Runtime) -> None:
        tids["T0"] = rt.current_task.tid
        with rt.finish():
            t1 = rt.future(lambda: None, name="T1")
            tids["T1"] = t1.task.tid
            t2 = rt.future(lambda: None, name="T2")
            tids["T2"] = t2.task.tid

            def body_t3() -> None:
                tids["T3"] = rt.current_task.tid
                t1.get()   # non-tree join T1 -> T3
                t2.get()   # non-tree join T2 -> T3
                t4 = rt.future(lambda: None, name="T4")
                tids["T4"] = t4.task.tid
                t5 = rt.future(lambda: None, name="T5")
                tids["T5"] = t5.task.tid
                t6 = rt.future(lambda: None, name="T6")
                tids["T6"] = t6.task.tid
                # --- Table 1 (a): "after the execution of step 11" ---
                snapshots["a"] = _snapshot(det, dict(tids))
                t4.get()   # tree join: merge T4 into T3's set
                t5.get()
                t6.get()

            t3 = rt.future(body_t3, name="T3")
            tids["T3"] = t3.task.tid
            t3.get()       # tree join: merge T3's set into T0's
            # --- Table 1 (b): "after the execution of step 17" ---
            snapshots["b"] = _snapshot(det, dict(tids))

    rt.run(program)
    return Figure3Result(
        detector=det,
        after_step_11=snapshots["a"],
        after_step_17=snapshots["b"],
        tids=tids,
    )
