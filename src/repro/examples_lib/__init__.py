"""The paper's example programs (Figures 1-3, Table 1, Appendix A) as
runnable library code, shared by tests and the ``examples/`` scripts."""

from repro.examples_lib.appendix_deadlock import DeadlockOutcome, run_deadlock_example
from repro.examples_lib.figure1 import Figure1Result, run_figure1
from repro.examples_lib.figure2 import Figure2Result, run_figure2
from repro.examples_lib.figure3 import DtrgSnapshot, Figure3Result, run_figure3

__all__ = [
    "run_figure1",
    "Figure1Result",
    "run_figure2",
    "Figure2Result",
    "run_figure3",
    "Figure3Result",
    "DtrgSnapshot",
    "run_deadlock_example",
    "DeadlockOutcome",
]
