"""Figure 1 — the paper's first example program, as runnable library code.

The program (paper notation, Section 2)::

    // Main task
    Stmt1;
    future<T> A = async<T> { StmtA };          // task T_A
    Stmt2;
    future<T> B = async<T> { Stmt3; A.get(); Stmt4; };   // task T_B
    Stmt5;
    future<T> C = async<T> { Stmt6; A.get(); Stmt7; B.get(); StmtC };  // T_C
    Stmt8;
    A.get();
    Stmt9;
    C.get();
    Stmt10;

(The paper's listing reuses the labels Stmt6/Stmt7 for both T_C and the
main task — an obvious typo; we rename main's to Stmt8/Stmt9.)

The text asserts: "Stmt3, Stmt6, and Stmt8 may execute in parallel with
task T_A, while Stmt4, Stmt7, and Stmt9 can execute only after the
completion of task T_A … Stmt10 can execute only after tasks T_A, T_B and
T_C complete" (the T_B ordering being the *transitive* join through T_C).
``tests/paper/test_figure1.py`` verifies every one of those relations on
the recorded computation graph.

Each statement is modeled as an instrumented read of a unique location
``("stmt", name)`` so tests can locate its step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.events import ExecutionObserver
from repro.memory.shared import SharedArray
from repro.runtime.runtime import Runtime

__all__ = ["Figure1Result", "run_figure1", "STATEMENTS"]

#: All statement labels, in serial execution order.
STATEMENTS = [
    "Stmt1", "StmtA", "Stmt2", "Stmt3", "Stmt4", "Stmt5",
    "Stmt6", "Stmt7", "StmtC", "Stmt8", "Stmt9", "Stmt10",
]


@dataclass
class Figure1Result:
    """Task ids of the four tasks plus the runtime that ran the program."""

    runtime: Runtime
    main_tid: int
    a_tid: int
    b_tid: int
    c_tid: int


def run_figure1(observers: Sequence[ExecutionObserver] = ()) -> Figure1Result:
    """Execute the Figure 1 program with ``observers`` attached."""
    rt = Runtime(observers=list(observers))
    stmts = SharedArray(rt, "stmt_marks", len(STATEMENTS))
    index: Dict[str, int] = {name: i for i, name in enumerate(STATEMENTS)}

    def stmt(name: str) -> None:
        stmts.read(index[name])

    tids: Dict[str, int] = {}

    def program(rt: Runtime) -> None:
        tids["main"] = rt.current_task.tid
        with rt.finish():
            stmt("Stmt1")
            a = rt.future(lambda: stmt("StmtA"), name="T_A")
            tids["A"] = a.task.tid
            stmt("Stmt2")

            def body_b() -> None:
                stmt("Stmt3")
                a.get()
                stmt("Stmt4")

            b = rt.future(body_b, name="T_B")
            tids["B"] = b.task.tid
            stmt("Stmt5")

            def body_c() -> None:
                stmt("Stmt6")
                a.get()
                stmt("Stmt7")
                b.get()
                stmt("StmtC")

            c = rt.future(body_c, name="T_C")
            tids["C"] = c.task.tid
            stmt("Stmt8")
            a.get()
            stmt("Stmt9")
            c.get()
            stmt("Stmt10")

    rt.run(program)
    return Figure1Result(
        runtime=rt,
        main_tid=tids["main"],
        a_tid=tids["A"],
        b_tid=tids["B"],
        c_tid=tids["C"],
    )


def statement_location(name: str):
    """Shared-memory location key of a statement marker."""
    return ("stmt_marks", STATEMENTS.index(name))
