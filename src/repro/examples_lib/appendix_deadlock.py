"""Appendix A — the racy future-reference program that can deadlock.

The paper's example::

    future<T> a = null, b = null;
    async { a = async<T> { b.get(); ... };  /* F1 */ }
    async { b = async<T> { a.get(); ... };  /* F2 */ }

In a parallel execution F1 and F2 can wait on each other forever.  Appendix
A proves such a deadlock requires a data race on the future *references*
(here the shared variables ``a`` and ``b``), and that in the serial
depth-first execution the program cannot block — instead F1 reads ``b``
before it was ever written and trips on a null reference
(:class:`~repro.runtime.errors.NullFutureError`, the paper's
``NullPointerException``).

Two modes:

* ``defensive=False`` — faithful rendering: the depth-first execution
  raises :class:`NullFutureError` from inside F1.
* ``defensive=True`` — F1/F2 skip the ``get`` when the reference is still
  null, letting the program complete so the detector can report the
  underlying determinacy races on the reference cells ``a`` and ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.detector import DeterminacyRaceDetector
from repro.memory.shared import SharedFutureCell
from repro.runtime.errors import NullFutureError
from repro.runtime.runtime import Runtime

__all__ = ["DeadlockOutcome", "run_deadlock_example"]


@dataclass
class DeadlockOutcome:
    detector: DeterminacyRaceDetector
    null_future_error: Optional[NullFutureError]

    @property
    def deadlock_diagnosed(self) -> bool:
        return self.null_future_error is not None


def run_deadlock_example(
    *, defensive: bool, extra_observers: Sequence = ()
) -> DeadlockOutcome:
    """Run the Appendix A program; see module docstring for modes."""
    det = DeterminacyRaceDetector()
    rt = Runtime(observers=[det, *extra_observers])
    cell_a = SharedFutureCell(rt, "a")
    cell_b = SharedFutureCell(rt, "b")
    caught: list = []

    def guarded_get(cell: SharedFutureCell) -> None:
        handle = cell.take()
        if defensive:
            if handle is not None:
                handle.get()
        else:
            rt.get(handle)  # raises NullFutureError when handle is None

    def program(rt: Runtime) -> None:
        with rt.finish():

            def async1() -> None:
                f1 = rt.future(lambda: guarded_get(cell_b), name="F1")
                cell_a.put(f1)

            def async2() -> None:
                f2 = rt.future(lambda: guarded_get(cell_a), name="F2")
                cell_b.put(f2)

            rt.async_(async1, name="async1")
            rt.async_(async2, name="async2")

    try:
        rt.run(program)
    except NullFutureError as exc:
        caught.append(exc)
    return DeadlockOutcome(
        detector=det,
        null_future_error=caught[0] if caught else None,
    )
