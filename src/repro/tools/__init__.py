"""Command-line tools: ``repro-racecheck`` and the Table 2 generator
(``repro-table2`` lives in :mod:`repro.harness.table2`)."""

__all__ = ["racecheck"]
