"""``repro-graphstats`` — Cilkview-style analysis of a workload's
computation graph.

For any registered workload (Table 2 rows and extensions) prints the
work/span/parallelism profile, the edge census (spawn / continue / tree
join / non-tree join), and simulated speedups under greedy and
work-stealing schedulers:

    repro-graphstats --workload Jacobi --scale small --workers 1 2 4 8 16

This is the quantitative face of the paper's §5 remark that dependence
patterns like Jacobi's "cannot be represented using only async-finish
constructs without loss of parallelism".
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List

from repro.graph import EdgeKind, GraphBuilder
from repro.harness.report import render_table
from repro.runtime.runtime import Runtime
from repro.runtime.workstealing import (
    WorkStealingSimulator,
    greedy_schedule,
)
from repro.workloads import (
    crypt_idea,
    jacobi,
    lufact,
    nqueens,
    reduce_tree,
    series,
    smith_waterman,
    sor,
    strassen,
)

__all__ = ["main", "GRAPH_WORKLOADS"]

#: name -> (module, entry attribute)
GRAPH_WORKLOADS: Dict[str, tuple] = {
    "Series-af": (series, "run_af"),
    "Series-future": (series, "run_future"),
    "Crypt-af": (crypt_idea, "run_af"),
    "Crypt-future": (crypt_idea, "run_future"),
    "Jacobi-af": (jacobi, "run_af"),
    "Jacobi": (jacobi, "run_future"),
    "Smith-Waterman": (smith_waterman, "run_future"),
    "Strassen": (strassen, "run_future"),
    "SOR-af": (sor, "run_af"),
    "SOR": (sor, "run_future"),
    "NQueens": (nqueens, "run_af"),
    "ReduceTree": (reduce_tree, "run_future"),
    "LUFact": (lufact, "run_future"),
}


def record_graph(name: str, scale: str):
    module, attr = GRAPH_WORKLOADS[name]
    params = module.default_params(scale)
    entry: Callable = getattr(module, attr)
    gb = GraphBuilder()
    rt = Runtime(observers=[gb])
    rt.run(lambda r: entry(r, params))
    return gb.graph


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-graphstats", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--workload", default="Jacobi",
                        choices=sorted(GRAPH_WORKLOADS))
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "table2"))
    parser.add_argument("--workers", nargs="*", type=int,
                        default=[1, 2, 4, 8, 16])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    graph = record_graph(args.workload, args.scale)
    s1 = greedy_schedule(graph, 1)
    counts = graph.edge_counts()

    print(f"{args.workload} (scale={args.scale}):")
    print(f"  steps: {graph.num_steps:,}   tasks: {graph.num_tasks:,}")
    print(
        "  edges: "
        f"{counts[EdgeKind.SPAWN]:,} spawn, "
        f"{counts[EdgeKind.CONTINUE]:,} continue, "
        f"{counts[EdgeKind.JOIN_TREE]:,} tree join, "
        f"{counts[EdgeKind.JOIN_NON_TREE]:,} non-tree join"
    )
    print(f"  work T1 = {s1.work:,}   span Tinf = {s1.span:,}   "
          f"parallelism T1/Tinf = {s1.work / s1.span:.2f}\n")

    rows = []
    for p in args.workers:
        greedy = greedy_schedule(graph, p)
        ws = WorkStealingSimulator(graph, p, seed=args.seed).run()
        rows.append({
            "workers": p,
            "greedy speedup": round(greedy.speedup, 2),
            "greedy util": round(greedy.utilization, 2),
            "steal speedup": round(ws.speedup, 2),
            "steals": ws.steals,
        })
    print(render_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
