"""``repro-fuzz`` — differential fuzzing across every race detector.

Theorem 2 claims the DTRG detector is sound and precise; the baselines
claim exactness within (and honest refusal outside) their own models; the
trace recorder claims replay is observationally identical to a live run.
This tool attacks all three claims mechanically, the way Utterback et al.
and the DePa authors keep their detectors honest — by generating programs
and diffing every implementation against the brute-force oracle:

    repro-fuzz --seeds 0:500                 # fuzz seed range
    repro-fuzz --seeds 0:500 --mode wild     # robustness only
    repro-fuzz --replay-corpus tests/corpus  # replay checked-in repros
    repro-fuzz --seeds 0:50 --perfetto t.json --metrics-json m.json

Per seed, :func:`~repro.testing.generator.random_program` yields a program
which is checked in up to two modes:

* **scoped** (the language's reference-flow discipline): every general
  detector (dtrg, exact, vector-clock) *and* every DTRG ablation
  (``dtrg[no-lsa]``, ``dtrg[no-memo]``, ``dtrg[no-intervals]`` — the same
  graph with an optimization switched off, which must never change a
  verdict) must report exactly the oracle's racy locations; every
  restricted detector (spd3, espbags, spbags, offset-span) must either
  refuse with ``UnsupportedConstructError`` or agree; the pluggable
  PRECEDE backends (``vc`` — general, must always agree; ``depa`` —
  fork-join order-maintenance labels, must refuse on a future ``get`` or
  agree; docs/ALGORITHM.md §14) run as parity rows under the same rules,
  so agreeing with the oracle makes every backend agree with the dtrg and
  with each other by transitivity; and each completed run must round-trip
  through
  :class:`~repro.memory.tracer.TraceRecorder`/:func:`replay_trace` with an
  identical verdict (record-replay parity).
* **wild** (out-of-band handle registry, outside the model's guarantee):
  nothing may crash, and the exact detector — whose reachability needs no
  reference-flow assumption — must still match the oracle.  dtrg,
  vector-clock and ``vc`` verdicts are *not* compared here;
  task-granularity false positives/negatives are documented behavior
  (DESIGN.md deviation #4).  ``depa`` may refuse (a get executed) but,
  when it accepts, the program was get-free and mode-independent, so its
  verdict must still match the oracle.

Failures are triaged by deduplicated signature, minimized with the
hypothesis-free ddmin shrinker (:mod:`repro.testing.shrinker`), printed as
pretty programs, and optionally written as regression-corpus JSON entries
(:mod:`repro.testing.codec`) for ``tests/corpus/``.  When a minimized
scoped repro is racy under the DTRG detector, triage reruns it with race
provenance enabled and prints a compact witness line per race (the
non-ordering certificate from ``explain_precede``); with ``--corpus-dir``
the full ``repro.race-witness-report/1`` JSON is written next to the
corpus entry as ``<name>.witness.json``.

Exit status: 0 = no failures, 1 = at least one failure, 2 = bad usage.
"""

from __future__ import annotations

import argparse
import builtins
import json
import random
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.harness.report import render_kv, render_table
from repro.memory.tracer import TraceRecorder, replay_trace
from repro.runtime.errors import UnsupportedConstructError
from repro.testing.codec import (
    CorpusEntry,
    entry_to_data,
    entry_from_data,
)
from repro.core.parallel_detector import ParallelRaceDetector
from repro.testing.generator import (
    Program,
    count_stmts,
    random_program,
    run_program,
    run_program_asyncio,
    run_program_threads,
    run_program_values,
)
from repro.testing.shrinker import shrink_program
from repro.tools.racecheck import DETECTORS

__all__ = [
    "FuzzFailure",
    "FuzzStats",
    "check_seed",
    "fuzz_range",
    "replay_corpus",
    "main",
]

ORACLE = "brute-force"
#: Detectors whose model covers every generated program.
GENERAL = ("dtrg", "exact", "vector-clock")
#: Detectors that must refuse-or-agree (restricted models).
RESTRICTED = ("spd3", "espbags", "spbags", "offset-span")
#: DTRG ablations (optimizations off).  Theorem 2 makes no reference to
#: the LSA chain, VISIT memoization or interval labels — they are pure
#: accelerations, so every ablation must agree with the oracle on every
#: scoped program (and with the full dtrg via transitivity).  Fuzzed here
#: and by the corpus replay gate so an optimization bug that changes a
#: verdict cannot hide behind the default configuration.
ABLATIONS = {
    "dtrg[no-lsa]": dict(use_lsa=False),
    "dtrg[no-memo]": dict(memoize_visit=False),
    "dtrg[no-intervals]": dict(use_intervals=False),
    # Not an optimization *off* but an alternate engine: the flat-array
    # live DTRG (core/array_dtrg.py) must agree with the oracle and, by
    # transitivity, bit-match the object-graph default.
    "dtrg[array]": dict(engine="array"),
}
#: Alternative PRECEDE backends behind ``DeterminacyRaceDetector(engine=…)``
#: (docs/ALGORITHM.md §14).  ``vc`` is general — future-aware vector clocks
#: must report exactly the oracle's racy set on every scoped program (and
#: match the dtrg and depa rows by transitivity).  ``depa`` covers the
#: fork-join fragment only: like the RESTRICTED family it must refuse (via
#: ``UnsupportedConstructError`` on a future ``get``) or agree with the
#: oracle.  Both rows also run in wild mode with refusal tolerance.
BACKENDS = {
    "depa": dict(engine="depa"),
    "vc": dict(engine="vc"),
}
#: Detectors exercised in wild mode (refusals allowed for BACKENDS only;
#: anything else that raises is a crash).
WILD = (ORACLE,) + GENERAL + tuple(BACKENDS)
#: Stats row for the two-phase sharded checker (``--jobs N``, N > 1):
#: per scoped seed it re-checks the recorded trace at jobs ∈ {1, N} and
#: must reproduce the sequential dtrg racy set *and* byte-identical
#: ``RaceReport.summary()`` text at every job count.
PARALLEL_NAME = "dtrg[parallel]"
#: Runtime-parity rows (``--runtimes``, PR 8): the same scoped program is
#: *executed for real* on every substrate — the serial elision, the
#: work-stealing ThreadRuntime at several pool sizes, and the cooperative
#: AsyncioRuntime — each with a fresh
#: :class:`~repro.core.parallel_detector.ParallelRaceDetector` checking
#: online.  Every row must report exactly the oracle's racy-location set,
#: and on race-free programs every row's final memory (statement-path
#: write tokens — each DSL statement executes exactly once, so the final
#: tokens are a schedule-independent fingerprint) must equal the serial
#: elision's.  Scoped mode only: wild-registry publication order is racy
#: by construction, so cross-schedule comparison is meaningless there.
RUNTIME_WORKERS = (1, 2, 4)
RUNTIME_SERIAL = "runtime[serial]"
RUNTIME_ROWS = tuple(
    f"runtime[threads-{w}]" for w in RUNTIME_WORKERS
) + ("runtime[asyncio]",)


def _make_detector(name: str, obs=None):
    """Instantiate a detector by registry, ablation or backend name."""
    options = ABLATIONS.get(name) or BACKENDS.get(name)
    if options is not None:
        from repro.core.detector import DeterminacyRaceDetector

        return DeterminacyRaceDetector(obs=obs, **options)
    if name == "dtrg" and obs is not None:
        return DETECTORS[name](obs=obs)
    return DETECTORS[name]()


@dataclass
class FuzzFailure:
    """One triaged divergence/crash, with its minimized reproducer."""

    seed: int
    mode: str            #: "scoped" | "wild"
    kind: str            #: "divergence" | "replay-divergence" | "crash"
    detector: str
    signature: str       #: dedup key (mode/kind/detector/direction)
    detail: str
    program: Program
    minimized: Optional[Program] = None

    @property
    def repro(self) -> Program:
        return self.minimized if self.minimized is not None else self.program


@dataclass
class FuzzStats:
    """Aggregated run statistics (the fuzz harness's summary surface)."""

    seeds: int = 0
    programs: int = 0
    statements: int = 0
    events: int = 0
    failures: int = 0
    per_detector: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def tally(self, detector: str, key: str, amount: int = 1) -> None:
        row = self.per_detector.setdefault(
            detector,
            {"runs": 0, "refusals": 0, "racy": 0,
             "divergences": 0, "replay_mismatches": 0, "crashes": 0},
        )
        row[key] += amount

    def detector_rows(self) -> List[Dict[str, object]]:
        order = (
            (ORACLE,) + GENERAL + RESTRICTED + tuple(ABLATIONS)
            + tuple(BACKENDS) + (PARALLEL_NAME, RUNTIME_SERIAL)
            + RUNTIME_ROWS
        )
        rows = []
        for name in order:
            row = self.per_detector.get(name)
            if row is None:
                continue
            rows.append({"detector": name, **row})
        return rows

    def summary(self) -> Dict[str, object]:
        return {
            "seeds": self.seeds,
            "programs run": self.programs,
            "statements": self.statements,
            "events replayed": self.events,
            "failures": self.failures,
        }


def _verdict(det) -> Set[Tuple[str, int]]:
    return set(det.racy_locations)


def _run_live(
    name: str, program: Program, *, scoped: bool, record=False, obs=None
):
    """One fresh execution with one detector; returns (detector, trace).

    ``name`` may be a registry detector or an :data:`ABLATIONS` key; an
    enabled ``obs`` instruments both the detector (dtrg variants only)
    and the runtime's task/finish spans.
    """
    det = _make_detector(name, obs=obs)
    observers: List = [det]
    recorder = TraceRecorder() if record else None
    if recorder is not None:
        observers.append(recorder)
    run_program(program, observers, scoped_handles=scoped, obs=obs)
    return det, (recorder.trace if recorder is not None else None)


def _run_runtime(name: str, program: Program, seed: int = 0):
    """Execute ``program`` on the named substrate with a fresh
    :class:`ParallelRaceDetector` and statement-path write tokens.
    Returns ``(racy-location verdict, final memory fingerprint)``."""
    det = ParallelRaceDetector()
    if name == RUNTIME_SERIAL:
        _rt, mem = run_program_values(program, [det])
    elif name == "runtime[asyncio]":
        _rt, mem = run_program_asyncio(program, [det])
    else:
        workers = int(name.rsplit("-", 1)[-1].rstrip("]"))
        _rt, mem = run_program_threads(
            program, [det], workers=workers, steal_seed=seed
        )
    return _verdict(det), mem


def _triage_witnesses(program: Program):
    """Rerun ``program`` (scoped) under a provenance-enabled DTRG detector.

    Returns ``(witnesses, provenance)`` — empty/None when the repro is not
    racy under dtrg or does not complete (divergence repros may crash; the
    triage layer must never turn a reported failure into a new one).
    """
    from repro.core.detector import DeterminacyRaceDetector
    from repro.obs import RaceProvenance

    provenance = RaceProvenance()
    det = DeterminacyRaceDetector(provenance=provenance)
    try:
        run_program(program, [det], scoped_handles=True,
                    provenance=provenance)
    except Exception:
        return [], None
    return det.witnesses, provenance


def _witness_line(witness) -> str:
    """One-line triage summary of a witness certificate."""
    cert = witness.certificate or {}
    level0 = cert.get("level0", {})
    search = cert.get("search")
    if search is not None:
        how = (f"VISIT exhausted after {len(search.get('expanded', []))} "
               f"set(s), LSA chain {search.get('lsa_chain', [])}")
    elif level0.get("preorder_pruned"):
        how = "preorder prune"
    else:
        how = "level-0"
    return (f"{witness.witness_id}: {witness.kind} on {witness.loc!r} "
            f"({witness.prev_name} vs {witness.current_name}; "
            f"PRECEDE false via {how})")


def _diff_direction(got: Set, want: Set) -> str:
    extra, missing = got - want, want - got
    if extra and missing:
        return "mixed"
    return "extra" if extra else "missing"


def _divergence_predicate(
    name: str, scoped: bool
) -> Callable[[Program], bool]:
    """Reproduction check for a verdict divergence (used by the shrinker)."""

    def holds(candidate: Program) -> bool:
        try:
            det, _ = _run_live(name, candidate, scoped=scoped)
            oracle, _ = _run_live(ORACLE, candidate, scoped=scoped)
        except UnsupportedConstructError:
            return False
        return _verdict(det) != _verdict(oracle)

    return holds


def _replay_predicate(name: str, scoped: bool) -> Callable[[Program], bool]:
    def holds(candidate: Program) -> bool:
        try:
            live, trace = _run_live(name, candidate, scoped=scoped, record=True)
            replayed = DETECTORS[name]()
            replay_trace(trace, [replayed])
        except UnsupportedConstructError:
            return False
        return _verdict(live) != _verdict(replayed)

    return holds


def _parallel_predicate(jobs: int) -> Callable[[Program], bool]:
    """Reproduction check for a sequential/parallel checker divergence."""

    def holds(candidate: Program) -> bool:
        from repro.core.parallel_check import check_trace_parallel

        try:
            live, trace = _run_live(
                "dtrg", candidate, scoped=True, record=True
            )
            sequential = DETECTORS["dtrg"]()
            replay_trace(trace, [sequential])
            result = check_trace_parallel(trace, jobs=jobs)
        except Exception:
            return False
        return (set(result.racy_locations) != _verdict(live)
                or result.summary() != sequential.report.summary())

    return holds


def _runtime_divergence_predicate(
    name: str, seed: int
) -> Callable[[Program], bool]:
    """Reproduction check for a runtime-parity verdict divergence."""

    def holds(candidate: Program) -> bool:
        try:
            oracle, _ = _run_live(ORACLE, candidate, scoped=True)
            got, _mem = _run_runtime(name, candidate, seed)
        except Exception:
            return False
        return got != _verdict(oracle)

    return holds


def _crash_predicate(
    name: str, exc_type: type, scoped: bool
) -> Callable[[Program], bool]:
    def holds(candidate: Program) -> bool:
        try:
            _run_live(name, candidate, scoped=scoped)
        except exc_type:
            return True
        except Exception:
            return False
        return False

    return holds


def check_seed(
    seed: int,
    program: Program,
    *,
    modes: Sequence[str] = ("scoped", "wild"),
    stats: Optional[FuzzStats] = None,
    obs=None,
    jobs: int = 1,
    runtimes: bool = False,
) -> List[FuzzFailure]:
    """Differentially check one program; returns un-shrunk failures.

    ``obs`` (an :class:`repro.obs.Observability`) instruments the scoped
    ``dtrg`` run only — one detector's trace per seed keeps the event
    stream readable, and verdict comparisons are obs-independent.

    ``jobs`` > 1 adds a parallel-parity leg per scoped seed: the recorded
    trace is re-checked by the two-phase sharded checker
    (:func:`repro.core.parallel_check.check_trace_parallel`) at jobs ∈
    {1, ``jobs``}, and any deviation from the live dtrg racy set or from
    the sequential replay's ``summary()`` text is a
    ``parallel-divergence`` failure.

    ``runtimes`` adds the :data:`RUNTIME_ROWS` parity legs per scoped
    seed: real execution on the serial elision, ThreadRuntime at
    {1, 2, 4} workers and AsyncioRuntime, each under a fresh online
    ``ParallelRaceDetector`` — racy sets must match the oracle, and
    race-free final memory must match the serial elision's.
    """
    stats = stats if stats is not None else FuzzStats()
    failures: List[FuzzFailure] = []

    def fail(mode, kind, detector, signature, detail) -> None:
        failures.append(FuzzFailure(
            seed=seed, mode=mode, kind=kind, detector=detector,
            signature=signature, detail=detail, program=program,
        ))
        stats.failures += 1

    if "scoped" in modes:
        oracle, trace = _run_live(ORACLE, program, scoped=True, record=True)
        want = _verdict(oracle)
        stats.tally(ORACLE, "runs")
        if want:
            stats.tally(ORACLE, "racy")
        stats.events += len(trace)

        replayed_oracle = DETECTORS[ORACLE]()
        replay_trace(trace, [replayed_oracle])
        if _verdict(replayed_oracle) != want:
            stats.tally(ORACLE, "replay_mismatches")
            fail("scoped", "replay-divergence", ORACLE,
                 f"scoped:replay:{ORACLE}",
                 f"live {sorted(want, key=repr)} vs replay "
                 f"{sorted(_verdict(replayed_oracle), key=repr)}")

        for name in GENERAL + RESTRICTED + tuple(ABLATIONS) + tuple(BACKENDS):
            try:
                det, _ = _run_live(
                    name, program, scoped=True,
                    obs=obs if name == "dtrg" else None,
                )
            except UnsupportedConstructError:
                stats.tally(name, "runs")
                stats.tally(name, "refusals")
                continue
            except Exception as exc:
                stats.tally(name, "runs")
                stats.tally(name, "crashes")
                fail("scoped", "crash", name,
                     f"scoped:crash:{name}:{type(exc).__name__}",
                     f"{type(exc).__name__}: {exc}")
                continue
            stats.tally(name, "runs")
            got = _verdict(det)
            if got:
                stats.tally(name, "racy")
            if got != want:
                stats.tally(name, "divergences")
                direction = _diff_direction(got, want)
                fail("scoped", "divergence", name,
                     f"scoped:divergence:{name}:{direction}",
                     f"{name} {sorted(got, key=repr)} vs oracle "
                     f"{sorted(want, key=repr)}")
            # Record-replay parity for this detector.
            replayed = _make_detector(name)
            try:
                replay_trace(trace, [replayed])
            except UnsupportedConstructError:
                stats.tally(name, "replay_mismatches")
                fail("scoped", "replay-divergence", name,
                     f"scoped:replay-refusal:{name}",
                     "completed live but refused the recorded trace")
                continue
            if _verdict(replayed) != got:
                stats.tally(name, "replay_mismatches")
                fail("scoped", "replay-divergence", name,
                     f"scoped:replay:{name}",
                     f"live {sorted(got, key=repr)} vs replay "
                     f"{sorted(_verdict(replayed), key=repr)}")
            if name == "dtrg" and jobs > 1:
                from repro.core.parallel_check import check_trace_parallel

                seq_summary = replayed.report.summary()
                for n in (1, jobs):
                    stats.tally(PARALLEL_NAME, "runs")
                    try:
                        result = check_trace_parallel(trace, jobs=n)
                    except Exception as exc:
                        stats.tally(PARALLEL_NAME, "crashes")
                        fail("scoped", "crash", PARALLEL_NAME,
                             f"scoped:parallel-crash:{type(exc).__name__}",
                             f"jobs={n} raised "
                             f"{type(exc).__name__}: {exc}")
                        continue
                    par = set(result.racy_locations)
                    if par:
                        stats.tally(PARALLEL_NAME, "racy")
                    if par != got or result.summary() != seq_summary:
                        stats.tally(PARALLEL_NAME, "divergences")
                        fail("scoped", "parallel-divergence", PARALLEL_NAME,
                             f"scoped:parallel:{n}",
                             f"jobs={n} {sorted(par, key=repr)} vs dtrg "
                             f"{sorted(got, key=repr)} "
                             f"(summary match: "
                             f"{result.summary() == seq_summary})")

        if runtimes:
            serial_mem = None
            for name in (RUNTIME_SERIAL,) + RUNTIME_ROWS:
                stats.tally(name, "runs")
                try:
                    got, mem = _run_runtime(name, program, seed)
                except Exception as exc:
                    stats.tally(name, "crashes")
                    fail("scoped", "crash", name,
                         f"scoped:crash:{name}:{type(exc).__name__}",
                         f"{type(exc).__name__}: {exc}")
                    continue
                if got:
                    stats.tally(name, "racy")
                if got != want:
                    stats.tally(name, "divergences")
                    direction = _diff_direction(got, want)
                    fail("scoped", "divergence", name,
                         f"scoped:divergence:{name}:{direction}",
                         f"{name} {sorted(got, key=repr)} vs oracle "
                         f"{sorted(want, key=repr)}")
                if name == RUNTIME_SERIAL:
                    serial_mem = mem
                elif not want and serial_mem is not None and mem != serial_mem:
                    stats.tally(name, "divergences")
                    fail("scoped", "memory-divergence", name,
                         f"scoped:runtime-mem:{name}",
                         f"{name} final memory diverged from the serial "
                         "elision on a race-free program (Determinism "
                         "Property violated)")

    if "wild" in modes:
        verdicts: Dict[str, Set] = {}
        for name in WILD:
            try:
                det, wild_trace = _run_live(
                    name, program, scoped=False, record=True
                )
            except UnsupportedConstructError as exc:
                stats.tally(name, "runs")
                if name in BACKENDS:
                    # depa's fork-join fragment refusal is honest in any
                    # mode; from every other wild detector it is a crash.
                    stats.tally(name, "refusals")
                    continue
                stats.tally(name, "crashes")
                fail("wild", "crash", name,
                     f"wild:crash:{name}:{type(exc).__name__}",
                     f"{type(exc).__name__}: {exc}")
                continue
            except Exception as exc:
                stats.tally(name, "runs")
                stats.tally(name, "crashes")
                fail("wild", "crash", name,
                     f"wild:crash:{name}:{type(exc).__name__}",
                     f"{type(exc).__name__}: {exc}")
                continue
            stats.tally(name, "runs")
            verdicts[name] = _verdict(det)
            stats.events += len(wild_trace)
            # Replay parity holds in wild mode too: the recorded stream is
            # just events, and replay must reproduce the live verdict.
            replayed = _make_detector(name)
            try:
                replay_trace(wild_trace, [replayed])
            except Exception as exc:
                stats.tally(name, "replay_mismatches")
                fail("wild", "crash", name,
                     f"wild:replay-crash:{name}:{type(exc).__name__}",
                     f"replay raised {type(exc).__name__}: {exc}")
                continue
            if _verdict(replayed) != verdicts[name]:
                stats.tally(name, "replay_mismatches")
                fail("wild", "replay-divergence", name,
                     f"wild:replay:{name}",
                     f"live {sorted(verdicts[name], key=repr)} vs replay "
                     f"{sorted(_verdict(replayed), key=repr)}")
        # The exact detector needs no reference-flow assumption: it must
        # match the oracle even on wild handle flows.
        if ORACLE in verdicts and "exact" in verdicts:
            if verdicts["exact"] != verdicts[ORACLE]:
                stats.tally("exact", "divergences")
                direction = _diff_direction(
                    verdicts["exact"], verdicts[ORACLE]
                )
                fail("wild", "divergence", "exact",
                     f"wild:divergence:exact:{direction}",
                     f"exact {sorted(verdicts['exact'], key=repr)} vs oracle "
                     f"{sorted(verdicts[ORACLE], key=repr)}")
        # DePa accepts a wild program only when no get executed, and a
        # get-free program never consults the handle registry — so the
        # fork-join fragment's oracle parity must hold in wild mode too.
        # vc inherits the vector-clock caveat (task-granularity verdicts
        # are not compared on wild handle flows; DESIGN.md deviation #4).
        if ORACLE in verdicts and "depa" in verdicts:
            if verdicts["depa"] != verdicts[ORACLE]:
                stats.tally("depa", "divergences")
                direction = _diff_direction(
                    verdicts["depa"], verdicts[ORACLE]
                )
                fail("wild", "divergence", "depa",
                     f"wild:divergence:depa:{direction}",
                     f"depa {sorted(verdicts['depa'], key=repr)} vs oracle "
                     f"{sorted(verdicts[ORACLE], key=repr)}")

    return failures


def _shrink_failure(failure: FuzzFailure, budget: int) -> None:
    scoped = failure.mode == "scoped"
    if failure.detector.startswith("runtime["):
        if failure.kind == "divergence":
            failure.minimized = shrink_program(
                failure.program,
                _runtime_divergence_predicate(failure.detector, failure.seed),
                budget=budget,
            )
        # runtime crashes and memory divergences are schedule-dependent:
        # a shrinker predicate would flake, so those repros stay unminimized.
        return
    if failure.kind == "parallel-divergence":
        predicate = _parallel_predicate(
            int(failure.signature.rsplit(":", 1)[-1])
        )
    elif failure.detector == PARALLEL_NAME:
        return  # parallel-crash repros are kept unminimized
    elif failure.kind == "divergence":
        predicate = _divergence_predicate(failure.detector, scoped)
    elif failure.kind == "replay-divergence":
        predicate = _replay_predicate(failure.detector, scoped)
    else:  # crash: reproduce the same exception type
        exc_name = failure.signature.rsplit(":", 1)[-1]
        exc_type = getattr(builtins, exc_name, Exception)
        if not (isinstance(exc_type, type)
                and issubclass(exc_type, BaseException)):
            exc_type = Exception
        predicate = _crash_predicate(failure.detector, exc_type, scoped)
    failure.minimized = shrink_program(
        failure.program, predicate, budget=budget
    )


def fuzz_range(
    seeds: Sequence[int],
    *,
    modes: Sequence[str] = ("scoped", "wild"),
    generator_kwargs: Optional[dict] = None,
    shrink: bool = True,
    shrink_budget: int = 800,
    fail_fast: bool = False,
    verbose: bool = False,
    out=None,
    obs=None,
    jobs: int = 1,
    runtimes: bool = False,
    progress=None,
) -> Tuple[FuzzStats, List[FuzzFailure]]:
    """Fuzz ``seeds``; returns stats and signature-deduplicated failures.

    ``progress`` is an optional
    :class:`repro.obs.live.ProgressCounter`: one unit per seed (a seed
    is the campaign's natural work quantum), failures surface as the
    live race count.
    """
    generator_kwargs = generator_kwargs or {}
    stats = FuzzStats()
    unique: Dict[str, FuzzFailure] = {}
    if progress is not None:
        progress.set_total(len(seeds))
        progress.set_phase("fuzz")
    for seed in seeds:
        program = random_program(random.Random(seed), **generator_kwargs)
        stats.seeds += 1
        stats.programs += 1
        stats.statements += count_stmts(program.body)
        new_failures = 0
        for failure in check_seed(
            seed, program, modes=modes, stats=stats, obs=obs, jobs=jobs,
            runtimes=runtimes,
        ):
            if verbose or failure.signature not in unique:
                print(f"[seed {failure.seed}] {failure.signature}: "
                      f"{failure.detail}", file=out)
            if failure.signature not in unique:
                unique[failure.signature] = failure
                new_failures += 1
        if progress is not None:
            progress.add(1)
            if new_failures:
                progress.add_races(new_failures)
        if fail_fast and unique:
            break
    failures = list(unique.values())
    if shrink:
        for failure in failures:
            _shrink_failure(failure, shrink_budget)
    return stats, failures


# ---------------------------------------------------------------------- #
# Regression-corpus replay                                               #
# ---------------------------------------------------------------------- #
def load_corpus(corpus_dir: Path) -> List[CorpusEntry]:
    entries = []
    for path in sorted(corpus_dir.glob("*.json")):
        with open(path) as fh:
            entries.append(entry_from_data(json.load(fh)))
    return entries


def replay_corpus(corpus_dir: Path, out=None) -> int:
    """Re-check every corpus entry; returns the number of failures."""
    entries = load_corpus(corpus_dir)
    if not entries:
        print(f"no corpus entries under {corpus_dir}", file=out)
        return 0
    bad = 0
    for entry in entries:
        want = entry.racy_locations
        problems: List[str] = []
        oracle, trace = _run_live(ORACLE, entry.program, scoped=True,
                                  record=True)
        if _verdict(oracle) != want:
            problems.append(
                f"oracle {sorted(_verdict(oracle), key=repr)} != declared "
                f"{sorted(want, key=repr)}")
        for name in GENERAL + RESTRICTED + tuple(ABLATIONS) + tuple(BACKENDS):
            try:
                det, _ = _run_live(name, entry.program, scoped=True)
            except UnsupportedConstructError:
                continue
            if _verdict(det) != want:
                problems.append(
                    f"{name} {sorted(_verdict(det), key=repr)} != "
                    f"{sorted(want, key=repr)}")
            replayed = _make_detector(name)
            replay_trace(trace, [replayed])
            if _verdict(replayed) != _verdict(det):
                problems.append(f"{name} replay parity broken")
        status = "ok" if not problems else "FAIL"
        print(f"corpus {entry.name}: {status}", file=out)
        for problem in problems:
            print(f"  - {problem}", file=out)
        bad += bool(problems)
    return bad


def write_corpus_entries(
    failures: Sequence[FuzzFailure], corpus_dir: Path, out=None
) -> None:
    corpus_dir.mkdir(parents=True, exist_ok=True)
    for failure in failures:
        program = failure.repro
        try:
            oracle, _ = _run_live(ORACLE, program, scoped=True)
            racy = tuple(sorted(loc for _, loc in _verdict(oracle)))
        except Exception:
            continue  # no scoped ground truth (e.g. wild-only crash)
        slug = re.sub(r"[^a-z0-9]+", "_", failure.signature.lower()).strip("_")
        name = f"fuzz_seed{failure.seed}_{slug}"
        entry = CorpusEntry(
            name=name,
            description=(f"repro-fuzz seed {failure.seed}: "
                         f"{failure.signature} — {failure.detail}"),
            program=program,
            racy_locs=racy,
        )
        path = corpus_dir / f"{name}.json"
        with open(path, "w") as fh:
            json.dump(entry_to_data(entry), fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"corpus entry written to {path}", file=out)
        witnesses, _ = _triage_witnesses(program)
        if witnesses:
            from repro.obs import witness_report_data

            wpath = corpus_dir / f"{name}.witness.json"
            with open(wpath, "w") as fh:
                json.dump(witness_report_data(witnesses, program=name),
                          fh, sort_keys=True, indent=2)
                fh.write("\n")
            print(f"witness report written to {wpath}", file=out)


# ---------------------------------------------------------------------- #
# CLI                                                                    #
# ---------------------------------------------------------------------- #
def _parse_seed_range(text: str) -> range:
    match = re.fullmatch(r"(-?\d+):(-?\d+)", text)
    if not match:
        raise argparse.ArgumentTypeError(
            f"expected START:END (half-open), got {text!r}")
    start, end = int(match.group(1)), int(match.group(2))
    if end <= start:
        raise argparse.ArgumentTypeError(f"empty seed range {text!r}")
    return range(start, end)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seeds", type=_parse_seed_range, default=range(100),
                        metavar="A:B", help="half-open seed range "
                        "(default 0:100)")
    parser.add_argument("--mode", choices=("scoped", "wild", "both"),
                        default="both")
    parser.add_argument("--num-locs", type=int, default=4)
    parser.add_argument("--max-depth", type=int, default=4)
    parser.add_argument("--max-block", type=int, default=6)
    parser.add_argument("--p-task", type=float, default=0.35)
    parser.add_argument("--p-get", type=float, default=0.2)
    parser.add_argument("--no-shrink", action="store_true",
                        help="report raw failing programs unminimized")
    parser.add_argument("--shrink-budget", type=int, default=800,
                        help="max predicate calls per minimization")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first failing seed")
    parser.add_argument("--verbose", action="store_true",
                        help="print every failure, not just new signatures")
    parser.add_argument("--corpus-dir", metavar="DIR",
                        help="write minimized repros as corpus JSON entries")
    parser.add_argument("--replay-corpus", metavar="DIR",
                        help="replay a regression corpus instead of fuzzing")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="N > 1 adds a parallel-parity leg per scoped "
                             "seed: the sharded checker must reproduce the "
                             "dtrg races and summary at jobs 1 and N")
    parser.add_argument("--runtimes", action="store_true",
                        help="add the runtime-parity rows per scoped seed: "
                             "real execution on serial / ThreadRuntime "
                             "(1, 2, 4 workers) / AsyncioRuntime, each "
                             "under an online ParallelRaceDetector, with "
                             "oracle racy-set parity and race-free "
                             "final-memory parity")
    parser.add_argument("--perfetto", metavar="FILE",
                        help="write a Chrome trace of the scoped dtrg runs")
    parser.add_argument("--metrics-json", metavar="FILE", dest="metrics_json",
                        help="write the observability registry as JSON")
    parser.add_argument("--serve-metrics", type=int, default=None,
                        metavar="PORT", dest="serve_metrics",
                        help="serve live campaign telemetry over HTTP "
                             "(/metrics, /healthz, /snapshot); PORT 0 "
                             "binds an ephemeral port (printed to stderr)")
    parser.add_argument("--heartbeat", type=float, default=0.0,
                        metavar="SECS",
                        help="stderr heartbeat every SECS seconds (seeds "
                             "processed, unique failures, ETA); 0 disables")
    args = parser.parse_args(argv)

    obs = None
    if args.perfetto or args.metrics_json:
        from repro.obs import Observability, RingTracer

        obs = Observability(
            tracer=RingTracer() if args.perfetto else None
        )

    def write_obs_artifacts() -> None:
        if obs is None:
            return
        if args.perfetto:
            obs.write_trace(args.perfetto)
            print(f"perfetto trace written to {args.perfetto}")
        if args.metrics_json:
            obs.write_metrics(args.metrics_json)
            print(f"metrics written to {args.metrics_json}")

    if args.replay_corpus:
        bad = replay_corpus(Path(args.replay_corpus))
        if bad:
            print(f"{bad} corpus entr{'y' if bad == 1 else 'ies'} FAILED")
            return 1
        print("corpus replay clean")
        return 0

    telemetry = None
    if args.serve_metrics is not None or args.heartbeat > 0:
        from repro.obs.live import LiveTelemetry

        telemetry = LiveTelemetry(
            registry=getattr(obs, "registry", None) if obs else None,
            tracer=getattr(obs, "tracer", None) if obs else None,
            port=args.serve_metrics,
            heartbeat=args.heartbeat,
        )
        telemetry.start()
        if telemetry.url:
            print(f"serving live metrics at {telemetry.url}/metrics",
                  file=sys.stderr)

    modes = ("scoped", "wild") if args.mode == "both" else (args.mode,)
    try:
        stats, failures = fuzz_range(
            args.seeds,
            modes=modes,
            generator_kwargs=dict(
                num_locs=args.num_locs, max_depth=args.max_depth,
                max_block=args.max_block, p_task=args.p_task, p_get=args.p_get,
            ),
            shrink=not args.no_shrink,
            shrink_budget=args.shrink_budget,
            fail_fast=args.fail_fast,
            verbose=args.verbose,
            obs=obs,
            jobs=args.jobs,
            runtimes=args.runtimes,
            progress=telemetry.progress if telemetry is not None else None,
        )
    finally:
        if telemetry is not None:
            telemetry.stop()

    print(render_table(stats.detector_rows()))
    print()
    print(render_kv("fuzz run summary", stats.summary()))
    write_obs_artifacts()

    if failures:
        print(f"\n{len(failures)} unique failure signature"
              f"{'s' if len(failures) != 1 else ''}:")
        for failure in failures:
            program = failure.repro
            size = count_stmts(program.body)
            minimized = (" (minimized)"
                         if failure.minimized is not None else "")
            print(f"\n--- {failure.signature} [seed {failure.seed}, "
                  f"{size} stmts{minimized}] ---")
            print(f"    {failure.detail}")
            print(program)
            if failure.mode == "scoped":
                witnesses, _ = _triage_witnesses(program)
                for witness in witnesses:
                    print(f"    witness {_witness_line(witness)}")
        if args.corpus_dir:
            write_corpus_entries(failures, Path(args.corpus_dir))
        return 1

    print("\nno divergences, no crashes — all detectors agree with the "
          "oracle on every seed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
